"""Semantic tests for basis translation synthesis (paper §6.3).

Every test compares the synthesized circuit's full unitary against the
exact translation unitary built by dense linear algebra.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.basis import Basis, BasisLiteral, BasisVector
from repro.basis.basis import fourier, ij, pm, std
from repro.basis.span import spans_equal
from repro.errors import SynthesisError
from repro.sim import unitary_of_gates
from repro.synth import synthesize_basis_translation

from tests.synth.helpers import assert_unitaries_close, translation_unitary


def check(b_in, b_out):
    assert spans_equal(b_in, b_out), "test translation must be well-typed"
    gates = synthesize_basis_translation(b_in, b_out)
    got = unitary_of_gates(gates, b_in.dim)
    expected = translation_unitary(b_in, b_out)
    assert_unitaries_close(got, expected)
    return gates


def lit(*vectors):
    return Basis.literal(*vectors)


def test_swap_translation():
    # Paper §2.2: {'01','10'} >> {'10','01'} is a SWAP.
    check(lit("01", "10"), lit("10", "01"))


def test_std_flip_is_x():
    gates = check(lit("0", "1"), lit("1", "0"))
    got = unitary_of_gates(gates, 1)
    assert np.allclose(got, [[0, 1], [1, 0]])


def test_std_to_pm_is_h():
    gates = check(std(1), pm(1))
    got = unitary_of_gates(gates, 1)
    h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
    assert np.allclose(got, h)


def test_pm_to_std():
    check(pm(1), std(1))


def test_ij_roundtrips():
    check(ij(1), std(1))
    check(std(1), ij(1))
    check(ij(2), pm(2))


def test_pm_flip():
    # pm >> {'m','p'} flips |+> and |->, i.e. a Z gate.
    gates = check(pm(1), lit("m", "p"))
    got = unitary_of_gates(gates, 1)
    assert np.allclose(got, [[1, 0], [0, -1]])


def test_paper_fig7_conditional_standardization():
    # {'m'} + ij >> {'m'} + pm.
    b_in = lit("m").tensor(ij(1))
    b_out = lit("m").tensor(pm(1))
    check(b_in, b_out)


def test_paper_fig8_grover_diffuser():
    # {'p'[3]} >> {-'p'[3]}: flips the sign of |+++>.
    b_in = Basis.of(BasisLiteral((BasisVector.from_chars("ppp"),)))
    b_out = Basis.of(
        BasisLiteral((BasisVector.from_chars("ppp", phase=180.0),))
    )
    gates = check(b_in, b_out)
    got = unitary_of_gates(gates, 3)
    plus = np.full(8, 1 / np.sqrt(8))
    expected = np.eye(8) - 2 * np.outer(plus, plus)
    assert np.allclose(got, expected)


def test_paper_fig9_permutation_with_alignment():
    # {'01','10'} + {'0','1'} >> {'101','100','011','010'}.
    b_in = lit("01", "10").tensor(lit("0", "1"))
    b_out = lit("101", "100", "011", "010")
    check(b_in, b_out)


def test_paper_figE14_inseparable_fourier():
    # std + fourier[3] >> fourier[3] + std.
    check(std(1).tensor(fourier(3)), fourier(3).tensor(std(1)))


def test_fourier_to_std_is_iqft():
    check(fourier(2), std(2))
    check(fourier(3), std(3))


def test_std_to_fourier_is_qft():
    check(std(2), fourier(2))


def test_appendix_f_factoring_example():
    # {'1'} + std >> {'11','10'}: factored as {'1'}+{'0','1'} >> {'1'}+{'1','0'}.
    check(lit("1").tensor(std(1)), lit("11", "10"))


def test_appendix_f_merging_example():
    # {'0','1'} + {'0','1'} >> {'00','10','01','11'} cannot factor.
    check(
        lit("0", "1").tensor(lit("0", "1")),
        lit("00", "10", "01", "11"),
    )


def test_predicated_swap():
    # {'1'} + SWAP: a Fredkin gate.
    b_in = lit("1").tensor(lit("01", "10"))
    b_out = lit("1").tensor(lit("10", "01"))
    check(b_in, b_out)


def test_negative_polarity_predicate():
    # Predicated on |0>.
    b_in = lit("0").tensor(lit("0", "1"))
    b_out = lit("0").tensor(lit("1", "0"))
    check(b_in, b_out)


def test_predicate_with_pm_vector():
    # Paper Fig. 7 style: predicate in a non-std basis.
    b_in = lit("m").tensor(std(1))
    b_out = lit("m").tensor(pm(1))
    check(b_in, b_out)


def test_phase_only_translation():
    # {'1'} >> {'1'@90}: a phase within a one-vector span.
    b_in = lit("1")
    b_out = Basis.of(BasisLiteral((BasisVector.from_chars("1", phase=90.0),)))
    gates = check(b_in, b_out)
    got = unitary_of_gates(gates, 1)
    assert np.allclose(got, [[1, 0], [0, 1j]])


def test_phase_under_predicate():
    # {'1'} + {'1'} >> {'1'} + {'1'@90}: controlled phase.
    b_in = lit("1").tensor(lit("1"))
    b_out = Basis.of(
        BasisLiteral.of("1"),
        BasisLiteral((BasisVector.from_chars("1", phase=90.0),)),
    )
    check(b_in, b_out)


def test_phase_on_left_side_removed():
    # {'1'@45} >> {'1'}: the inverse of adding a 45-degree phase.
    b_in = Basis.of(BasisLiteral((BasisVector.from_chars("1", phase=45.0),)))
    b_out = lit("1")
    check(b_in, b_out)


def test_multi_vector_predicate():
    # An identical non-spanning pair {'00','11'} predicates the flip on
    # the last qubit: it expands to one controlled copy per pattern.
    b_in = lit("00", "11").tensor(lit("0", "1"))
    b_out = lit("00", "11").tensor(lit("1", "0"))
    check(b_in, b_out)


def test_permuted_partial_pair_acts_as_predicate():
    # Two partial pairs, each permuted; each controls the other.
    b_in = lit("01", "10").tensor(lit("01", "10"))
    b_out = lit("10", "01").tensor(lit("10", "01"))
    check(b_in, b_out)


def test_larger_permutation():
    # A 3-qubit cyclic rotation of basis vectors.
    vectors = ["000", "001", "010", "011", "100", "101", "110", "111"]
    rotated = vectors[1:] + vectors[:1]
    check(lit(*vectors), lit(*rotated))


def test_builtin_identity_is_empty():
    gates = synthesize_basis_translation(std(3), std(3))
    assert gates == []


def test_dimension_mismatch_rejected():
    with pytest.raises(SynthesisError):
        synthesize_basis_translation(std(2), std(3))


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_random_std_permutations(data):
    """Any relabeling of a random std vector subset synthesizes correctly."""
    dim = data.draw(st.integers(min_value=1, max_value=3))
    universe = list(range(2**dim))
    subset = data.draw(
        st.sets(st.sampled_from(universe), min_size=1, max_size=2**dim)
    )
    subset = sorted(subset)
    permuted = data.draw(st.permutations(subset))

    def to_chars(value):
        return format(value, f"0{dim}b")

    b_in = lit(*[to_chars(v) for v in subset])
    b_out = lit(*[to_chars(v) for v in permuted])
    check(b_in, b_out)


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_random_phases(data):
    """Random phases on both sides synthesize correctly."""
    dim = 2
    subset = [0, 3]
    phases_in = [data.draw(st.sampled_from([0.0, 45.0, 90.0, 180.0])) for _ in subset]
    phases_out = [data.draw(st.sampled_from([0.0, 45.0, 90.0, 180.0])) for _ in subset]

    def make(phases):
        return Basis.of(
            BasisLiteral(
                tuple(
                    BasisVector.from_chars(format(v, f"0{dim}b"), phase=ph)
                    for v, ph in zip(subset, phases)
                )
            )
        )

    check(make(phases_in), make(phases_out))
