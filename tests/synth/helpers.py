"""Dense linear-algebra reference model for basis translations.

Builds the exact unitary a translation must implement:
``U = sum_k |out_k><in_k| + (I - sum_k |in_k><in_k|)``
(amplitudes preserved on the spanned subspace, identity on the
orthogonal complement), for comparison with synthesized circuits.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.basis.basis import Basis
from repro.basis.builtin import BuiltinBasis
from repro.basis.literal import BasisLiteral
from repro.basis.primitive import PrimitiveBasis

_SINGLE = {
    (PrimitiveBasis.STD, 0): np.array([1, 0], dtype=complex),
    (PrimitiveBasis.STD, 1): np.array([0, 1], dtype=complex),
    (PrimitiveBasis.PM, 0): np.array([1, 1], dtype=complex) / math.sqrt(2),
    (PrimitiveBasis.PM, 1): np.array([1, -1], dtype=complex) / math.sqrt(2),
    (PrimitiveBasis.IJ, 0): np.array([1, 1j], dtype=complex) / math.sqrt(2),
    (PrimitiveBasis.IJ, 1): np.array([1, -1j], dtype=complex) / math.sqrt(2),
}


def element_vectors(element) -> list[np.ndarray]:
    """Dense vectors of one basis element, in semantic order."""
    if isinstance(element, BasisLiteral):
        out = []
        for vec in element.vectors:
            dense = np.array([1.0], dtype=complex)
            for bit in vec.eigenbits:
                dense = np.kron(dense, _SINGLE[(vec.prim, bit)])
            dense = dense * cmath.exp(1j * math.radians(vec.phase))
            out.append(dense)
        return out
    assert isinstance(element, BuiltinBasis)
    dim = 2**element.dim
    if element.prim is PrimitiveBasis.FOURIER:
        omega = cmath.exp(2j * cmath.pi / dim)
        return [
            np.array([omega ** (k * x) for x in range(dim)], dtype=complex)
            / math.sqrt(dim)
            for k in range(dim)
        ]
    out = []
    for k in range(dim):
        dense = np.array([1.0], dtype=complex)
        for position in range(element.dim):
            bit = (k >> (element.dim - 1 - position)) & 1
            dense = np.kron(dense, _SINGLE[(element.prim, bit)])
        out.append(dense)
    return out


def basis_vectors(basis: Basis) -> list[np.ndarray]:
    """Dense vectors of a whole basis, row-major across elements."""
    vectors = [np.array([1.0], dtype=complex)]
    for element in basis.elements:
        vectors = [
            np.kron(prefix, suffix)
            for prefix in vectors
            for suffix in element_vectors(element)
        ]
    return vectors


def translation_unitary(b_in: Basis, b_out: Basis) -> np.ndarray:
    """The exact unitary of ``b_in >> b_out``."""
    dim = 2**b_in.dim
    ins = basis_vectors(b_in)
    outs = basis_vectors(b_out)
    unitary = np.zeros((dim, dim), dtype=complex)
    projector = np.zeros((dim, dim), dtype=complex)
    for vec_in, vec_out in zip(ins, outs):
        unitary += np.outer(vec_out, vec_in.conj())
        projector += np.outer(vec_in, vec_in.conj())
    unitary += np.eye(dim) - projector
    return unitary


def assert_unitaries_close(got: np.ndarray, expected: np.ndarray) -> None:
    assert np.allclose(got, expected, atol=1e-9), (
        f"unitaries differ:\n{np.round(got, 3)}\nvs\n{np.round(expected, 3)}"
    )
