"""Unit tests for Algorithm E6 (standardization) and Algorithm E7 (alignment)."""

import pytest

from repro.basis import Basis, BasisLiteral, BuiltinBasis, PrimitiveBasis
from repro.basis.basis import fourier, ij, pm, std
from repro.errors import SynthesisError
from repro.synth import align_translation, determine_standardizations


def lit(*vectors):
    return Basis.literal(*vectors)


def std_list(entries):
    return [(s.prim, s.offset, s.dim, s.conditional) for s in entries]


def test_paper_fig7_conditionality():
    # {'m'} + ij >> {'m'} + pm.
    lstd, rstd = determine_standardizations(
        lit("m").tensor(ij(1)), lit("m").tensor(pm(1))
    )
    assert std_list(lstd) == [
        (PrimitiveBasis.PM, 0, 1, False),
        (PrimitiveBasis.IJ, 1, 1, True),
    ]
    assert std_list(rstd) == [
        (PrimitiveBasis.PM, 0, 1, False),
        (PrimitiveBasis.PM, 1, 1, True),
    ]


def test_paper_figE14_padding():
    # std + fourier[3] >> fourier[3] + std: no unconditional entries.
    lstd, rstd = determine_standardizations(
        std(1).tensor(fourier(3)), fourier(3).tensor(std(1))
    )
    assert std_list(lstd) == [
        (PrimitiveBasis.STD, 0, 1, True),
        (PrimitiveBasis.FOURIER, 1, 3, True),
    ]
    assert std_list(rstd) == [
        (PrimitiveBasis.FOURIER, 0, 3, True),
        (PrimitiveBasis.STD, 3, 1, True),
    ]


def test_matching_fourier_is_unconditional():
    lstd, rstd = determine_standardizations(fourier(2), fourier(2))
    assert std_list(lstd) == [(PrimitiveBasis.FOURIER, 0, 2, False)]
    assert std_list(rstd) == [(PrimitiveBasis.FOURIER, 0, 2, False)]


def test_separable_factoring_keeps_unconditional():
    # pm[3] >> pm + pm[2]: same prim everywhere, split differently.
    lstd, rstd = determine_standardizations(pm(3), pm(1).tensor(pm(2)))
    assert all(not s.conditional for s in lstd)
    assert all(not s.conditional for s in rstd)


def test_align_equal_literals():
    pairs = align_translation(lit("01", "10"), lit("10", "01"))
    assert len(pairs) == 1
    left, right = pairs[0]
    assert [v.chars() for v in left.vectors] == ["01", "10"]
    assert [v.chars() for v in right.vectors] == ["10", "01"]


def test_align_factors_preferring_structure():
    # Appendix F: {'1'} + std >> {'11','10'} factors rather than merges.
    pairs = align_translation(lit("1").tensor(std(1)), lit("11", "10"))
    assert len(pairs) == 2
    assert [v.chars() for v in pairs[0][1].vectors] == ["1"]
    assert [v.chars() for v in pairs[1][1].vectors] == ["1", "0"]


def test_align_merges_when_factoring_fails():
    # Appendix F: the right side is not a tensor product of literals.
    pairs = align_translation(
        lit("0", "1").tensor(lit("0", "1")),
        lit("00", "10", "01", "11"),
    )
    assert len(pairs) == 1
    left, right = pairs[0]
    assert [v.chars() for v in left.vectors] == ["00", "01", "10", "11"]
    assert [v.chars() for v in right.vectors] == ["00", "10", "01", "11"]


def test_align_standardizes_prims_and_phases():
    from repro.basis import BasisVector

    phased = Basis.of(
        BasisLiteral((BasisVector.from_chars("m", phase=45.0),))
    )
    pairs = align_translation(phased, lit("1"))
    left, right = pairs[0]
    assert left.prim is PrimitiveBasis.STD
    assert not left.has_phases
    assert left == right


def test_align_builtin_vs_literal_expands():
    pairs = align_translation(std(2), lit("01", "00", "10", "11"))
    left, right = pairs[0]
    assert isinstance(left, BasisLiteral)
    assert [v.chars() for v in left.vectors] == ["00", "01", "10", "11"]


def test_align_dimension_mismatch_rejected():
    with pytest.raises(SynthesisError):
        align_translation(std(2), std(3))


def test_align_fourier_becomes_std():
    pairs = align_translation(fourier(2), std(2))
    left, right = pairs[0]
    assert isinstance(left, BuiltinBasis)
    assert left.prim is PrimitiveBasis.STD
