"""Tests for the QFT/IQFT circuits used by Fourier standardization."""

import cmath
import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim import unitary_of_gates
from repro.synth.qft import iqft_gates, qft_gates


def dft_matrix(n: int) -> np.ndarray:
    dim = 2**n
    omega = cmath.exp(2j * cmath.pi / dim)
    return np.array(
        [[omega ** (row * col) for col in range(dim)] for row in range(dim)],
        dtype=complex,
    ) / math.sqrt(dim)


def test_qft_matches_dft():
    for n in (1, 2, 3, 4):
        got = unitary_of_gates(qft_gates(list(range(n))), n)
        assert np.allclose(got, dft_matrix(n)), n


def test_iqft_is_inverse():
    for n in (1, 2, 3):
        qft = unitary_of_gates(qft_gates(list(range(n))), n)
        iqft = unitary_of_gates(iqft_gates(list(range(n))), n)
        assert np.allclose(iqft @ qft, np.eye(2**n))


def test_qft_on_offset_wires():
    # QFT applied to wires 1..2 of a 3-qubit register.
    got = unitary_of_gates(qft_gates([1, 2]), 3)
    expected = np.kron(np.eye(2), dft_matrix(2))
    assert np.allclose(got, expected)


def test_qft_without_swaps_is_bit_reversed():
    n = 3
    no_swaps = unitary_of_gates(qft_gates(list(range(n)), include_swaps=False), n)
    full = unitary_of_gates(qft_gates(list(range(n))), n)
    # The swap layer bit-reverses the output indices.
    perm = np.zeros((2**n, 2**n))
    for value in range(2**n):
        reversed_bits = int(format(value, f"0{n}b")[::-1], 2)
        perm[reversed_bits, value] = 1
    assert np.allclose(perm @ no_swaps, full)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=7))
def test_qft_columns_are_fourier_states(k):
    """QFT|k> has amplitudes omega^{kx}/sqrt(D)."""
    n = 3
    qft = unitary_of_gates(qft_gates(list(range(n))), n)
    dim = 2**n
    omega = cmath.exp(2j * cmath.pi / dim)
    expected = np.array([omega ** (k * x) for x in range(dim)]) / math.sqrt(dim)
    assert np.allclose(qft[:, k], expected)
