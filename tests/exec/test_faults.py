"""Deterministic fault injection (repro.exec.faults) and the recovery
machinery above it (repro.exec.retry, the narrowed parallel dispatch).

The load-bearing assertions are the determinism contracts:

- a ``FaultPlan`` decision is a pure function of ``(seed, kind, key)``
  — same answer in every process and on every re-run;
- a run that absorbed injected crashes, hangs, or a genuinely broken
  process pool returns results **bit-identical** to the same-seed
  fault-free run, because retries change only the fault-decision key
  (``seed@attempt``), never the chunk's data seed;
- exhausting the retry budget is a coded ``QW603`` diagnostic, and
  genuine (non-injected) chunk errors propagate immediately instead of
  burning the budget.
"""

import threading

import pytest

from repro.algorithms import alternating_secret, bernstein_vazirani
from repro.errors import FaultInjectedError, RetryBudgetExhaustedError
from repro.exec import faults as faults_mod
from repro.exec import parallel as parallel_mod
from repro.exec.faults import (
    FAULT_KINDS,
    FaultPlan,
    active_fault_plan,
    chunk_fault_key,
    inject_faults,
    maybe_inject_chunk_fault,
    plan_from_env,
)
from repro.exec.parallel import (
    chunk_plan,
    derive_chunk_seeds,
    parallel_run_with_info,
)
from repro.exec.retry import (
    RetryPolicy,
    backoff_delay,
    execute_with_retry,
)
from repro.pipeline import compile_kernel


@pytest.fixture(autouse=True)
def _isolated_fault_state(monkeypatch):
    monkeypatch.delenv(faults_mod.FAULTS_ENV, raising=False)
    faults_mod.reset_counters()
    yield
    faults_mod.reset_counters()


def _circuit(n=5):
    return compile_kernel(
        bernstein_vazirani(alternating_secret(n))
    ).execution_circuit


def _crash_seed(circuit, shots, seed, workers, rate=0.5):
    """A plan seed whose crashes all clear on the first retry.

    Searching instead of hard-coding keeps the test independent of the
    hash function's exact output while still guaranteeing that at
    least one fault fires and that no chunk needs a third attempt.
    """
    sizes = chunk_plan(shots, circuit.num_qubits, workers)
    seeds = derive_chunk_seeds(seed, len(sizes))
    for plan_seed in range(2000):
        plan = FaultPlan({"worker_crash": rate}, seed=plan_seed)
        first = [
            plan.should("worker_crash", chunk_fault_key(s, 0))
            for s in seeds
        ]
        second = [
            plan.should("worker_crash", chunk_fault_key(s, 1))
            for s in seeds
        ]
        if any(first) and not any(second):
            return plan_seed
    raise AssertionError("no suitable fault seed in range")


# ----------------------------------------------------------------------
# FaultPlan: validation and the pure decision function.
# ----------------------------------------------------------------------
def test_plan_decisions_are_pure_and_seed_sensitive():
    plan = FaultPlan({"worker_crash": 0.5}, seed=1)
    twin = FaultPlan({"worker_crash": 0.5}, seed=1)
    keys = [chunk_fault_key(s, 0) for s in range(200)]
    decisions = [plan.should("worker_crash", k) for k in keys]
    assert decisions == [twin.should("worker_crash", k) for k in keys]
    assert any(decisions) and not all(decisions)
    other = FaultPlan({"worker_crash": 0.5}, seed=2)
    assert decisions != [other.should("worker_crash", k) for k in keys]


def test_plan_rate_extremes_skip_hashing():
    plan = FaultPlan({"worker_crash": 1.0, "worker_hang": 0.0})
    assert plan.should("worker_crash", "anything")
    assert not plan.should("worker_hang", "anything")
    assert not plan.should("compile_error", "unconfigured kind")


def test_plan_rejects_unknown_kind_bad_rate_bad_mode():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan({"worker_crahs": 0.1})
    with pytest.raises(ValueError, match="must be in"):
        FaultPlan({"worker_crash": 1.5})
    with pytest.raises(ValueError, match="crash_mode"):
        FaultPlan({}, crash_mode="segfault")


def test_plan_rate_roughly_matches_empirical_frequency():
    plan = FaultPlan({"worker_crash": 0.25}, seed=3)
    hits = sum(
        plan.should("worker_crash", chunk_fault_key(s, 0))
        for s in range(2000)
    )
    assert 0.20 < hits / 2000 < 0.30


# ----------------------------------------------------------------------
# Activation: contextvar, environment, precedence.
# ----------------------------------------------------------------------
def test_active_plan_defaults_to_none():
    assert active_fault_plan() is None


def test_inject_faults_scopes_the_plan():
    with inject_faults(worker_crash=0.1, seed=9) as plan:
        assert active_fault_plan() is plan
        assert plan.rates == {"worker_crash": 0.1}
    assert active_fault_plan() is None


def test_inject_faults_rejects_plan_plus_rates():
    with pytest.raises(ValueError, match="not both"):
        with inject_faults(FaultPlan({}), worker_crash=0.1):
            pass


def test_plan_from_env_parses_spec_and_knobs(monkeypatch):
    monkeypatch.setenv(
        faults_mod.FAULTS_ENV, "worker_crash=0.05, worker_hang=0.01"
    )
    monkeypatch.setenv(faults_mod.FAULTS_SEED_ENV, "42")
    monkeypatch.setenv(faults_mod.FAULTS_HANG_SECONDS_ENV, "0.5")
    monkeypatch.setenv(faults_mod.FAULTS_CRASH_MODE_ENV, "exit")
    plan = plan_from_env()
    assert plan.rates == {"worker_crash": 0.05, "worker_hang": 0.01}
    assert (plan.seed, plan.hang_seconds, plan.crash_mode) == (
        42, 0.5, "exit",
    )
    assert active_fault_plan() == plan  # env reaches the ambient lookup


def test_env_plan_yields_to_contextvar(monkeypatch):
    monkeypatch.setenv(faults_mod.FAULTS_ENV, "worker_crash=1.0")
    with inject_faults(worker_hang=0.5) as scoped:
        assert active_fault_plan() is scoped


def test_counted_draw_advances_per_kind(monkeypatch):
    with inject_faults(compile_error=0.5, seed=11):
        first = [faults_mod.draw("compile_error", "k") for _ in range(64)]
    faults_mod.reset_counters()
    with inject_faults(compile_error=0.5, seed=11):
        again = [faults_mod.draw("compile_error", "k") for _ in range(64)]
    assert first == again  # counter sequence is deterministic
    assert any(first) and not all(first)


# ----------------------------------------------------------------------
# The chunk site.
# ----------------------------------------------------------------------
def test_chunk_crash_raises_coded_fault():
    plan = FaultPlan({"worker_crash": 1.0})
    with pytest.raises(FaultInjectedError) as excinfo:
        maybe_inject_chunk_fault(plan, seed=7, attempt=0)
    assert excinfo.value.code == "QW510"


def test_chunk_exit_mode_raises_outside_pool_workers():
    # In the parent process os._exit must never run; "exit" mode falls
    # back to the exception so a misconfigured test cannot kill pytest.
    plan = FaultPlan({"worker_crash": 1.0}, crash_mode="exit")
    with pytest.raises(FaultInjectedError):
        maybe_inject_chunk_fault(plan, seed=7, attempt=0)


def test_chunk_hang_sleeps_then_continues():
    import time

    plan = FaultPlan({"worker_hang": 1.0}, hang_seconds=0.05)
    start = time.monotonic()
    maybe_inject_chunk_fault(plan, seed=7, attempt=0)  # returns normally
    assert time.monotonic() - start >= 0.05


def test_no_plan_is_a_no_op():
    maybe_inject_chunk_fault(None, seed=7, attempt=0)


# ----------------------------------------------------------------------
# Recovery: chaos runs are bit-identical to clean runs.
# ----------------------------------------------------------------------
def test_inprocess_crash_recovery_is_bit_identical():
    circuit = _circuit()
    clean, clean_info = parallel_run_with_info(
        circuit, 96, seed=5, workers=2, use_processes=False,
        retry=RetryPolicy(),
    )
    plan_seed = _crash_seed(circuit, 96, 5, 2)
    with inject_faults(worker_crash=0.5, seed=plan_seed):
        chaos, info = parallel_run_with_info(
            circuit, 96, seed=5, workers=2, use_processes=False,
            retry=RetryPolicy(),
        )
    assert chaos == clean
    assert info.retries >= 1
    assert info.faults_injected >= 1
    assert (clean_info.retries, clean_info.faults_injected) == (0, 0)
    assert not info.degraded


def test_hang_recovery_is_bit_identical_and_bounded():
    circuit = _circuit()
    clean, _ = parallel_run_with_info(
        circuit, 96, seed=5, workers=2, use_processes=False,
        retry=RetryPolicy(),
    )
    # Serial path: the injected hang is bounded by hang_seconds and the
    # chunk then completes normally — no retry needed, same bits.
    with inject_faults(worker_hang=1.0, seed=0, hang_seconds=0.01):
        hung, info = parallel_run_with_info(
            circuit, 96, seed=5, workers=2, use_processes=False,
            retry=RetryPolicy(timeout=5.0),
        )
    assert hung == clean


@pytest.mark.slow
def test_pooled_exit_crash_recovery_is_bit_identical():
    circuit = _circuit()
    clean, _ = parallel_run_with_info(
        circuit, 96, seed=5, workers=2, use_processes=True,
    )
    plan_seed = _crash_seed(circuit, 96, 5, 2)
    plan = FaultPlan(
        {"worker_crash": 0.5}, seed=plan_seed, crash_mode="exit"
    )
    try:
        with inject_faults(plan):
            chaos, info = parallel_run_with_info(
                circuit, 96, seed=5, workers=2, use_processes=True,
                retry=RetryPolicy(timeout=60.0),
            )
    finally:
        parallel_mod.shutdown_pools()
    assert chaos == clean
    assert info.retries >= 1


def test_budget_exhaustion_is_a_coded_diagnostic():
    circuit = _circuit()
    with inject_faults(worker_crash=1.0):
        with pytest.raises(RetryBudgetExhaustedError) as excinfo:
            parallel_run_with_info(
                circuit, 64, seed=5, workers=2, use_processes=False,
                retry=RetryPolicy(max_attempts=2, budget=3),
            )
    assert excinfo.value.code == "QW603"
    assert excinfo.value.retryable
    rendered = excinfo.value.render()
    assert "max_attempts=2" in rendered
    assert "injected fault" in rendered


def test_genuine_chunk_errors_propagate_unretried(monkeypatch):
    circuit = _circuit()
    calls = []

    def explode(task):
        calls.append(task)
        raise ValueError("a deterministic backend bug")

    monkeypatch.setattr(parallel_mod, "_run_chunk", explode)
    sizes = chunk_plan(64, circuit.num_qubits, 2)
    seeds = derive_chunk_seeds(5, len(sizes))
    tasks = [
        parallel_mod._ChunkTask(circuit, size, chunk_seed, None, None, None)
        for size, chunk_seed in zip(sizes, seeds)
    ]
    with pytest.raises(ValueError, match="deterministic backend bug"):
        execute_with_retry(
            tasks, 2, RetryPolicy(), use_processes=False
        )
    assert len(calls) == 1  # failed once, never retried


def test_cancel_event_stops_between_waves():
    import concurrent.futures

    circuit = _circuit()
    event = threading.Event()
    event.set()
    with pytest.raises(concurrent.futures.CancelledError):
        parallel_run_with_info(
            circuit, 64, seed=5, workers=2, use_processes=False,
            retry=RetryPolicy(), cancel_event=event,
        )


def test_backoff_is_deterministic_bounded_and_decorrelated():
    policy = RetryPolicy(backoff_base=0.01, backoff_cap=0.5)
    delays = [backoff_delay(policy, seed=123, attempt=a) for a in range(6)]
    assert delays == [
        backoff_delay(policy, seed=123, attempt=a) for a in range(6)
    ]
    assert all(0.0 <= d <= 0.5 for d in delays)
    assert delays != [
        backoff_delay(policy, seed=124, attempt=a) for a in range(6)
    ]


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(budget=-1)


# ----------------------------------------------------------------------
# The compile site and the narrowed pool dispatch (satellite fixes).
# ----------------------------------------------------------------------
def test_compile_error_injection_is_coded_and_scoped():
    kernel = bernstein_vazirani(alternating_secret(4))
    with inject_faults(compile_error=1.0):
        with pytest.raises(FaultInjectedError) as excinfo:
            compile_kernel(kernel)
    assert excinfo.value.code == "QW510"
    assert compile_kernel(kernel).circuit is not None  # scope ended


def test_pool_startup_failure_degrades_to_serial(monkeypatch):
    def no_pool(workers):
        raise OSError("no process spawning here")

    monkeypatch.setattr(parallel_mod, "_get_pool", no_pool)
    circuit = _circuit()
    clean = parallel_run_with_info(
        circuit, 64, seed=5, workers=2, use_processes=False
    )[0]
    pooled, _ = parallel_run_with_info(
        circuit, 64, seed=5, workers=2, use_processes=True
    )
    assert pooled == clean


def test_genuine_pool_dispatch_errors_propagate(monkeypatch):
    # Before the narrowing, any RuntimeError from pool dispatch fell
    # back to serial and masked the bug; now only BrokenProcessPool
    # (and pool startup failure) does.
    class AngryPool:
        def map(self, fn, tasks):
            raise RuntimeError("a genuine dispatch bug")

    monkeypatch.setattr(
        parallel_mod, "_get_pool", lambda workers: AngryPool()
    )
    circuit = _circuit()
    with pytest.raises(RuntimeError, match="genuine dispatch bug"):
        parallel_run_with_info(
            circuit, 64, seed=5, workers=2, use_processes=True
        )


def test_runinfo_merge_tolerates_old_pickles_missing_counters():
    from repro.sim.backend import RunInfo

    modern = RunInfo(
        backend="statevector", shots=32, evolutions=1, fast_path=False,
        retries=2, faults_injected=1, degraded=True,
    )
    legacy = RunInfo(
        backend="statevector", shots=32, evolutions=1, fast_path=False,
    )
    for name in ("retries", "faults_injected", "degraded"):
        object.__delattr__(legacy, name)  # as unpickled from format v1
    merged = RunInfo.merge([modern, legacy])
    assert merged.shots == 64
    assert merged.retries == 2
    assert merged.faults_injected == 1
    assert merged.degraded is True


def test_fault_kinds_is_the_closed_vocabulary():
    assert set(FAULT_KINDS) == {
        "worker_crash",
        "worker_hang",
        "diskcache_corrupt",
        "compile_error",
    }
