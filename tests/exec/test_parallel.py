"""The parallel shot executor (repro.exec.parallel).

Three layers of coverage:

- the pure planning functions (``chunk_plan``, ``derive_chunk_seeds``,
  ``resolve_workers``) and the exact ``RunInfo.merge`` arithmetic;
- the determinism contract — fixed ``(seed, workers)`` is bit-stable,
  the in-process fallback (``use_processes=False``) is bit-identical
  to the pooled run, and different worker counts give statistically
  equivalent histograms (margins from tests/stats.py);
- the ``parallel_workers=`` threading through every public entry point
  (``run_circuit``, ``simulate_kernel``, ``kernel.histogram()``,
  ``CompileOptions``).
"""

import os

import pytest

from repro.errors import SimulationError
from repro.exec import (
    chunk_plan,
    derive_chunk_seeds,
    parallel_run,
    parallel_run_with_info,
    resolve_workers,
)
from repro.algorithms import alternating_secret, bernstein_vazirani
from repro.noise import NoiseModel, depolarizing
from repro.pipeline import CompileOptions, simulate_kernel_with_info
from repro.qcircuit.examples import (
    conditioned_fanout_circuit,
    teleport_circuit,
)
from repro.sim.backend import RunInfo, run_circuit_with_info
from repro.sim.batched import batch_chunk_size
from repro.sim.statevector import run_circuit
from tests.stats import assert_histograms_close, histogram


# ----------------------------------------------------------------------
# Planning: chunk_plan / derive_chunk_seeds / resolve_workers.
# ----------------------------------------------------------------------
def test_chunk_plan_splits_under_envelope_run_across_workers():
    # 3 qubits fit millions of shots in one envelope chunk; the plan
    # must still hand every worker a piece.
    assert chunk_plan(1000, 3, 4) == [250, 250, 250, 250]


def test_chunk_plan_remainder_goes_to_a_short_final_chunk():
    assert chunk_plan(1001, 3, 4) == [251, 251, 251, 248]
    assert sum(chunk_plan(1001, 3, 4)) == 1001


def test_chunk_plan_honors_memory_envelope():
    envelope = batch_chunk_size(3, max_batch_bytes=1 << 10)
    plan = chunk_plan(10 * envelope, 3, 2, max_batch_bytes=1 << 10)
    assert len(plan) == 10
    assert all(size <= envelope for size in plan)
    assert sum(plan) == 10 * envelope


def test_chunk_plan_single_worker_under_envelope_is_one_chunk():
    assert chunk_plan(500, 3, 1) == [500]


def test_chunk_plan_is_a_pure_function():
    assert chunk_plan(12345, 5, 3) == chunk_plan(12345, 5, 3)


def test_chunk_plan_rejects_zero_shots():
    with pytest.raises(SimulationError):
        chunk_plan(0, 3, 2)


def test_derive_chunk_seeds_deterministic_distinct_uint63():
    seeds = derive_chunk_seeds(7, 16)
    assert seeds == derive_chunk_seeds(7, 16)
    assert len(set(seeds)) == 16
    assert all(0 <= s < 2**63 for s in seeds)
    # A prefix of a longer spawn is the same seeds: chunk i's seed
    # depends only on (seed, i), never on the total chunk count's tail.
    assert derive_chunk_seeds(7, 4) == derive_chunk_seeds(7, 16)[:4]


def test_resolve_workers():
    assert resolve_workers(3) == 3
    assert resolve_workers(None) == max(os.cpu_count() or 1, 1)
    assert resolve_workers(0) == resolve_workers(None)
    with pytest.raises(SimulationError):
        resolve_workers(-1)


# ----------------------------------------------------------------------
# RunInfo.merge: exact arithmetic.
# ----------------------------------------------------------------------
def _info(**overrides):
    base = dict(
        backend="statevector",
        shots=100,
        evolutions=1,
        fast_path=False,
        batched=True,
        fused_ops=4,
        channel_applications=7,
        readout_applications=2,
        gates_fused=3,
        kernel="numpy",
        workers=1,
        chunks=1,
        compile_cache="memory",
    )
    base.update(overrides)
    return RunInfo(**base)


def test_merge_sums_additive_counters_exactly():
    merged = RunInfo.merge(
        [_info(), _info(shots=50, evolutions=2, channel_applications=1,
                       readout_applications=5, gates_fused=9, fused_ops=6,
                       chunks=2)]
    )
    assert merged.shots == 150
    assert merged.evolutions == 3
    assert merged.channel_applications == 8
    assert merged.readout_applications == 7
    assert merged.gates_fused == 12
    assert merged.fused_ops == 10
    assert merged.chunks == 3
    assert merged.backend == "statevector"
    assert merged.kernel == "numpy"
    assert merged.compile_cache == "memory"


def test_merge_flags_fast_path_all_batched_any():
    a = _info(fast_path=True, batched=False)
    b = _info(fast_path=False, batched=True)
    merged = RunInfo.merge([a, b])
    assert merged.fast_path is False
    assert merged.batched is True
    assert RunInfo.merge([a, a]).fast_path is True
    assert RunInfo.merge([a, a]).batched is False


def test_merge_fused_ops_none_poisons_the_sum():
    merged = RunInfo.merge([_info(), _info(fused_ops=None)])
    assert merged.fused_ops is None


def test_merge_mixed_kernels_and_provenances():
    merged = RunInfo.merge(
        [_info(kernel="numpy"), _info(kernel="numba",
                                      compile_cache="disk")]
    )
    assert merged.kernel == "mixed"
    assert merged.compile_cache is None


def test_merge_workers_explicit_beats_input_max():
    infos = [_info(workers=2), _info(workers=3)]
    assert RunInfo.merge(infos).workers == 3
    assert RunInfo.merge(infos, workers=8).workers == 8


def test_merge_rejects_empty_and_mixed_backends():
    with pytest.raises(SimulationError):
        RunInfo.merge([])
    with pytest.raises(SimulationError):
        RunInfo.merge([_info(), _info(backend="density")])


# ----------------------------------------------------------------------
# The determinism contract.
# ----------------------------------------------------------------------
def test_same_seed_and_workers_is_bit_stable():
    circuit = teleport_circuit()
    first = parallel_run(circuit, 400, seed=3, workers=2)
    second = parallel_run(circuit, 400, seed=3, workers=2)
    assert first == second
    assert len(first) == 400


def test_serial_fallback_is_bit_identical_to_pooled_run():
    circuit = teleport_circuit()
    pooled, pooled_info = parallel_run_with_info(
        circuit, 400, seed=5, workers=2
    )
    serial, serial_info = parallel_run_with_info(
        circuit, 400, seed=5, workers=2, use_processes=False
    )
    assert pooled == serial
    assert pooled_info == serial_info
    assert pooled_info.workers == 2
    assert pooled_info.chunks == 2


def test_worker_counts_give_statistically_equivalent_histograms():
    # Different worker counts draw from different derived streams, so
    # the outputs differ bit-for-bit but must agree as distributions.
    circuit = teleport_circuit()
    one, _ = parallel_run_with_info(
        circuit, 4000, seed=11, workers=1, use_processes=False
    )
    four, _ = parallel_run_with_info(
        circuit, 4000, seed=11, workers=4, use_processes=False
    )
    assert one != four
    assert_histograms_close(one, four, label="workers=1 vs workers=4")


def test_single_worker_run_reports_one_chunk():
    _, info = parallel_run_with_info(
        teleport_circuit(), 300, seed=1, workers=1
    )
    assert (info.workers, info.chunks) == (1, 1)
    assert info.shots == 300


def test_noise_model_rides_through_the_parallel_path():
    model = NoiseModel().add_channel(depolarizing(0.05))
    results, info = parallel_run_with_info(
        conditioned_fanout_circuit(), 600, seed=9, workers=3,
        noise_model=model, use_processes=False,
    )
    assert len(results) == 600
    assert info.chunks == 3
    # Per-chunk noise counters sum: every shot applies channels.
    assert info.channel_applications > 0
    repeat, repeat_info = parallel_run_with_info(
        conditioned_fanout_circuit(), 600, seed=9, workers=3,
        noise_model=model, use_processes=False,
    )
    assert results == repeat
    assert info == repeat_info


def test_unknown_backend_fails_fast_in_the_parent():
    with pytest.raises(SimulationError):
        parallel_run(teleport_circuit(), 10, workers=2,
                     backend="no-such-backend")


def test_interpreter_backend_through_the_parallel_path():
    results, info = parallel_run_with_info(
        teleport_circuit(), 200, seed=2, workers=2,
        backend="interpreter", use_processes=False,
    )
    assert info.backend == "interpreter"
    assert info.shots == 200
    assert info.chunks == 2


# ----------------------------------------------------------------------
# parallel_workers= threading through the public entry points.
# ----------------------------------------------------------------------
def test_run_circuit_threads_parallel_workers():
    circuit = teleport_circuit()
    via_entry = run_circuit(circuit, 400, seed=3, parallel_workers=2)
    direct = parallel_run(circuit, 400, seed=3, workers=2)
    assert via_entry == direct


def test_run_circuit_with_info_records_sharding():
    _, info = run_circuit_with_info(
        teleport_circuit(), 400, seed=3, parallel_workers=2
    )
    assert (info.workers, info.chunks) == (2, 2)


def _bv_kernel(n=4):
    return bernstein_vazirani(alternating_secret(n))


def test_simulate_kernel_with_info_records_parallel_provenance():
    kernel = _bv_kernel()
    results, info = simulate_kernel_with_info(
        kernel, shots=64, seed=0, parallel_workers=2
    )
    assert len(results) == 64
    assert info.workers == 2
    assert info.chunks == 2
    assert info.compile_cache in {"compiled", "memory", "disk"}


def test_compile_options_carry_parallel_workers():
    kernel = _bv_kernel()
    baseline, base_info = simulate_kernel_with_info(
        kernel, shots=64, seed=0,
        options=CompileOptions(parallel_workers=2),
    )
    explicit, _ = simulate_kernel_with_info(
        kernel, shots=64, seed=0, parallel_workers=2
    )
    assert base_info.workers == 2
    assert [str(b) for b in baseline] == [str(b) for b in explicit]


def test_histogram_accepts_parallel_workers():
    kernel = _bv_kernel()
    counts = kernel.histogram(shots=128, seed=0, parallel_workers=2)
    assert sum(counts.values()) == 128
    serial = kernel.histogram(shots=128, seed=0)
    # Same distribution support on a deterministic BV oracle: every
    # shot reads back the secret regardless of sharding.
    assert set(counts) == set(serial)


def test_parallel_none_keeps_the_legacy_single_process_path():
    circuit = teleport_circuit()
    legacy = run_circuit(circuit, 400, seed=3)
    _, info = run_circuit_with_info(circuit, 400, seed=3)
    assert (info.workers, info.chunks) == (1, 1)
    assert histogram(legacy)  # sanity: the legacy path still samples
