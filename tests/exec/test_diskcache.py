"""The persistent on-disk compile cache (repro.exec.diskcache) and the
hit/miss/eviction accounting of the in-memory LRU layered above it.

Every test points ``REPRO_CACHE_DIR`` at a private tmpdir, so nothing
here touches (or depends on) the developer's real ``~/.cache/repro``.
"""

import pickle

import pytest

from repro.algorithms import alternating_secret, bernstein_vazirani
from repro.exec import diskcache
from repro.pipeline import (
    COMPILE_CACHE_MAX_ENTRIES_ENV,
    clear_compile_cache,
    compile_cache_info,
    compile_cache_max_entries,
    compile_kernel,
)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path))
    monkeypatch.delenv(diskcache.DISK_CACHE_ENV, raising=False)
    clear_compile_cache(disk=True)
    yield tmp_path
    clear_compile_cache(disk=True)


def _kernel(n=4):
    return bernstein_vazirani(alternating_secret(n))


def _entries(cache_dir):
    compile_root = cache_dir / "compile"
    if not compile_root.exists():
        return []
    return sorted(compile_root.glob("*.pkl"))


# ----------------------------------------------------------------------
# Provenance transitions: compiled -> memory -> disk.
# ----------------------------------------------------------------------
def test_cold_compile_writes_one_disk_entry(cache_dir):
    result = compile_kernel(_kernel(), cache=True)
    assert result.provenance == "compiled"
    assert len(_entries(cache_dir)) == 1
    disk = compile_cache_info()["disk"]
    assert disk["enabled"] is True
    assert disk["writes"] == 1
    assert disk["corrupt"] == 0


def test_memory_hit_never_touches_disk(cache_dir):
    compile_kernel(_kernel(), cache=True)
    before = compile_cache_info()["disk"]
    again = compile_kernel(_kernel(), cache=True)
    assert again.provenance == "memory"
    after = compile_cache_info()["disk"]
    assert after["hits"] == before["hits"]
    assert after["writes"] == before["writes"]


def test_disk_hit_survives_memory_clear(cache_dir):
    cold = compile_kernel(_kernel(), cache=True)
    clear_compile_cache()  # memory only — the disk entry stays
    warm = compile_kernel(_kernel(), cache=True)
    assert warm.provenance == "disk"
    assert compile_cache_info()["disk"]["hits"] == 1
    # The rehydrated result is equivalent to the compiled one.
    assert warm.circuit.instructions == cold.circuit.instructions
    assert warm.circuit.output_bits == cold.circuit.output_bits
    # ... and warms the in-memory layer for the next lookup.
    assert compile_kernel(_kernel(), cache=True).provenance == "memory"


def test_corrupt_entry_is_detected_deleted_and_recompiled(cache_dir):
    compile_kernel(_kernel(), cache=True)
    clear_compile_cache()
    [entry] = _entries(cache_dir)
    entry.write_bytes(b"not a pickle")
    result = compile_kernel(_kernel(), cache=True)
    assert result.provenance == "compiled"
    disk = compile_cache_info()["disk"]
    assert disk["corrupt"] == 1
    # The bad file was removed and replaced by the fresh compile's.
    [replacement] = _entries(cache_dir)
    assert pickle.loads(replacement.read_bytes())


def test_truncated_entry_reads_as_a_miss(cache_dir):
    compile_kernel(_kernel(), cache=True)
    clear_compile_cache()
    [entry] = _entries(cache_dir)
    entry.write_bytes(entry.read_bytes()[: entry.stat().st_size // 2])
    result = compile_kernel(_kernel(), cache=True)
    assert result.provenance == "compiled"
    assert compile_cache_info()["disk"]["corrupt"] == 1


def test_wrong_payload_type_is_rejected(cache_dir):
    compile_kernel(_kernel(), cache=True)
    clear_compile_cache()
    [entry] = _entries(cache_dir)
    entry.write_bytes(pickle.dumps({"not": "a CompileResult"}))
    assert compile_kernel(_kernel(), cache=True).provenance == "compiled"


def test_no_tmpfile_residue_after_stores(cache_dir):
    for n in (3, 4, 5):
        compile_kernel(_kernel(n), cache=True)
    assert len(_entries(cache_dir)) == 3
    assert list(cache_dir.rglob("*.tmp")) == []


def test_clear_disk_true_empties_the_store(cache_dir):
    compile_kernel(_kernel(), cache=True)
    assert _entries(cache_dir)
    clear_compile_cache(disk=True)
    assert _entries(cache_dir) == []
    assert compile_kernel(_kernel(), cache=True).provenance == "compiled"


def test_disk_cache_env_kill_switch(cache_dir, monkeypatch):
    monkeypatch.setenv(diskcache.DISK_CACHE_ENV, "0")
    result = compile_kernel(_kernel(), cache=True)
    assert result.provenance == "compiled"
    assert _entries(cache_dir) == []
    assert compile_cache_info()["disk"]["enabled"] is False
    clear_compile_cache()
    # Nothing on disk to rescue the lookup: a full recompile.
    assert compile_kernel(_kernel(), cache=True).provenance == "compiled"


def test_key_digest_is_deterministic_and_key_sensitive(cache_dir):
    key_a = ("kernel-a", 4)
    assert diskcache.key_digest(key_a) == diskcache.key_digest(key_a)
    assert diskcache.key_digest(key_a) != diskcache.key_digest(("b", 4))


def test_version_salt_folds_in_source_fingerprint(cache_dir):
    salt = diskcache.version_salt()
    assert str(diskcache.CACHE_FORMAT_VERSION) in salt
    assert salt == diskcache.version_salt()


# ----------------------------------------------------------------------
# In-memory LRU accounting: counters, eviction order, env bound.
# ----------------------------------------------------------------------
def test_hit_miss_counters(cache_dir):
    compile_kernel(_kernel(), cache=True)
    compile_kernel(_kernel(), cache=True)
    compile_kernel(_kernel(5), cache=True)
    info = compile_cache_info()
    assert info["hits"] == 1
    assert info["misses"] == 2
    assert info["evictions"] == 0


def test_lru_evicts_least_recently_used_not_oldest(cache_dir, monkeypatch):
    monkeypatch.setenv(COMPILE_CACHE_MAX_ENTRIES_ENV, "2")
    compile_kernel(_kernel(3), cache=True)  # A
    compile_kernel(_kernel(4), cache=True)  # B
    key_a = compile_cache_info()["keys"][0]
    compile_kernel(_kernel(3), cache=True)  # touch A -> B is now LRU
    compile_kernel(_kernel(5), cache=True)  # C evicts B, not A
    info = compile_cache_info()
    assert info["entries"] == 2
    assert info["evictions"] == 1
    assert key_a in info["keys"]
    # A survives in memory; B fell out and would re-enter via disk.
    assert compile_kernel(_kernel(3), cache=True).provenance == "memory"
    assert compile_kernel(_kernel(4), cache=True).provenance == "disk"


def test_max_entries_env_override(cache_dir, monkeypatch):
    from repro import pipeline as pipeline_module

    default = pipeline_module.COMPILE_CACHE_MAX_ENTRIES
    assert compile_cache_max_entries() == default
    monkeypatch.setenv(COMPILE_CACHE_MAX_ENTRIES_ENV, "7")
    assert compile_cache_max_entries() == 7
    assert compile_cache_info()["max_entries"] == 7
    # Invalid or non-positive values fall back to the module default.
    monkeypatch.setenv(COMPILE_CACHE_MAX_ENTRIES_ENV, "bogus")
    assert compile_cache_max_entries() == default
    monkeypatch.setenv(COMPILE_CACHE_MAX_ENTRIES_ENV, "0")
    assert compile_cache_max_entries() == default


# ----------------------------------------------------------------------
# Robustness: tmpfile sweeping, injected corruption, format version.
# ----------------------------------------------------------------------
def test_stale_tmpfiles_are_swept_on_cache_open(cache_dir):
    import os

    compile_kernel(_kernel(), cache=True)  # creates compile/
    orphan = cache_dir / "compile" / "deadbeef.tmp"
    orphan.write_bytes(b"half a pickle")
    old = 7200.0
    os.utime(orphan, (orphan.stat().st_atime, orphan.stat().st_mtime - old))
    fresh = cache_dir / "compile" / "cafebabe.tmp"
    fresh.write_bytes(b"a live writer's file")
    diskcache.reset_stats()  # re-arm the once-per-process sweep
    clear_compile_cache()  # memory only; disk entry stays
    compile_kernel(_kernel(), cache=True)  # first cache use -> sweep
    assert not orphan.exists()  # older than the TTL: swept
    assert fresh.exists()  # seconds old: a concurrent writer's, kept
    assert compile_cache_info()["disk"]["tmp_swept"] == 1


def test_sweep_ttl_env_override(cache_dir, monkeypatch):
    fresh = cache_dir / "compile"
    fresh.mkdir(parents=True, exist_ok=True)
    (fresh / "young.tmp").write_bytes(b"x")
    monkeypatch.setenv(diskcache.TMP_TTL_ENV, "-1")
    assert diskcache.sweep_stale_tmpfiles() == 1
    assert list(fresh.glob("*.tmp")) == []


def test_injected_corruption_drives_the_real_corrupt_path(cache_dir):
    from repro.exec.faults import inject_faults, reset_counters

    compile_kernel(_kernel(), cache=True)
    clear_compile_cache()  # force the next lookup to the disk layer
    reset_counters()
    with inject_faults(diskcache_corrupt=1.0):
        result = compile_kernel(_kernel(), cache=True)
    # The truncated blob failed to unpickle: counted, deleted, and the
    # caller recompiled — exactly the organic corrupt-entry behavior.
    assert result.provenance == "compiled"
    disk = compile_cache_info()["disk"]
    assert disk["corrupt"] == 1
    reset_counters()
    # The rewritten entry reads back fine once injection stops.
    clear_compile_cache()
    assert compile_kernel(_kernel(), cache=True).provenance == "disk"


def test_format_version_bump_salts_every_key(cache_dir, monkeypatch):
    key = ("kernel", 4)
    before = diskcache.key_digest(key)
    monkeypatch.setattr(diskcache, "CACHE_FORMAT_VERSION", 99)
    assert diskcache.key_digest(key) != before


def test_format_version_is_v2_for_runinfo_counters(cache_dir):
    # v1 pickles predate RunInfo's retries/faults_injected/degraded
    # fields; the bump keeps them from resurfacing via the disk cache.
    assert diskcache.CACHE_FORMAT_VERSION >= 2


def test_parallel_workers_not_in_cache_key(cache_dir):
    from repro.pipeline import CompileOptions

    compile_kernel(_kernel(), options=CompileOptions(), cache=True)
    second = compile_kernel(
        _kernel(),
        options=CompileOptions(parallel_workers=4),
        cache=True,
    )
    assert second.provenance == "memory"
    assert compile_cache_info()["entries"] == 1
