"""Unit tests for basis vectors."""

import pytest

from repro.basis import BasisVector, PrimitiveBasis
from repro.errors import BasisError


def test_from_chars_std():
    vec = BasisVector.from_chars("101")
    assert vec.prim is PrimitiveBasis.STD
    assert vec.eigenbits == (1, 0, 1)
    assert vec.dim == 3
    assert vec.eigenbits_int == 0b101


def test_from_chars_pm():
    vec = BasisVector.from_chars("pm")
    assert vec.prim is PrimitiveBasis.PM
    assert vec.eigenbits == (0, 1)


def test_from_chars_ij():
    vec = BasisVector.from_chars("ji")
    assert vec.prim is PrimitiveBasis.IJ
    assert vec.eigenbits == (1, 0)


def test_mixed_prim_rejected():
    with pytest.raises(BasisError):
        BasisVector.from_chars("p0")


def test_empty_rejected():
    with pytest.raises(BasisError):
        BasisVector.from_chars("")


def test_invalid_char_rejected():
    with pytest.raises(BasisError):
        BasisVector.from_chars("0x1")


def test_phase_normalization():
    assert BasisVector.from_chars("1", phase=360.0).phase == 0.0
    assert BasisVector.from_chars("1", phase=-90.0).phase == 270.0
    assert not BasisVector.from_chars("1", phase=720.0).has_phase


def test_without_phase():
    vec = BasisVector.from_chars("1", phase=45.0)
    assert vec.has_phase
    stripped = vec.without_phase()
    assert not stripped.has_phase
    assert stripped.eigenbits == vec.eigenbits


def test_prefix_suffix_concat():
    vec = BasisVector.from_chars("1101")
    assert vec.prefix(2).chars() == "11"
    assert vec.suffix_from(2).chars() == "01"
    joined = vec.prefix(2).concat(vec.suffix_from(2))
    assert joined.chars() == "1101"


def test_concat_rejects_mixed_prims():
    with pytest.raises(BasisError):
        BasisVector.from_chars("0").concat(BasisVector.from_chars("p"))


def test_str_forms():
    assert str(BasisVector.from_chars("10")) == "'10'"
    assert str(BasisVector.from_chars("p", phase=180.0)) == "-'p'"
    assert str(BasisVector.from_chars("1", phase=45.0)) == "'1'@45"


def test_ordering_is_lexicographic():
    a = BasisVector.from_chars("01")
    b = BasisVector.from_chars("10")
    assert sorted([b, a]) == [a, b]
