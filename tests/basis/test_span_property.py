"""Property tests: the polynomial span checker against dense ground truth.

The reference computes span equality by building the actual subspaces
as matrices and comparing ranks — exponential, but fine for the small
random bases hypothesis generates.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.basis import Basis, BasisLiteral, BasisVector, BuiltinBasis
from repro.basis.primitive import PrimitiveBasis
from repro.basis.span import spans_equal

from tests.synth.helpers import basis_vectors


def dense_spans_equal(b_in: Basis, b_out: Basis) -> bool:
    if b_in.dim != b_out.dim:
        return False
    left = np.array(basis_vectors(b_in)).T
    right = np.array(basis_vectors(b_out)).T
    stacked = np.hstack([left, right])
    rank_left = np.linalg.matrix_rank(left, tol=1e-9)
    rank_right = np.linalg.matrix_rank(right, tol=1e-9)
    rank_union = np.linalg.matrix_rank(stacked, tol=1e-9)
    return rank_left == rank_right == rank_union


@st.composite
def random_element(draw):
    kind = draw(st.sampled_from(["builtin", "literal"]))
    if kind == "builtin":
        prim = draw(st.sampled_from(list(PrimitiveBasis)))
        dim = draw(st.integers(min_value=1, max_value=2))
        return BuiltinBasis(prim, dim)
    prim = draw(
        st.sampled_from(
            [PrimitiveBasis.STD, PrimitiveBasis.PM, PrimitiveBasis.IJ]
        )
    )
    dim = draw(st.integers(min_value=1, max_value=2))
    universe = list(range(2**dim))
    values = draw(
        st.sets(st.sampled_from(universe), min_size=1, max_size=2**dim)
    )
    vectors = tuple(
        BasisVector(
            tuple((v >> (dim - 1 - k)) & 1 for k in range(dim)), prim
        )
        for v in sorted(values)
    )
    return BasisLiteral(vectors)


@st.composite
def random_basis(draw, max_dim=4):
    elements = []
    total = 0
    while total < max_dim:
        element = draw(random_element())
        if total + element.dim > max_dim:
            break
        elements.append(element)
        total += element.dim
        if draw(st.booleans()):
            break
    if not elements:
        elements.append(draw(random_element()))
    return Basis(tuple(elements))


@settings(max_examples=150, deadline=None)
@given(random_basis(), random_basis())
def test_span_checker_matches_dense_reference(b_in, b_out):
    assert spans_equal(b_in, b_out) == dense_spans_equal(b_in, b_out)


@settings(max_examples=50, deadline=None)
@given(random_basis())
def test_span_equivalence_is_reflexive(basis):
    assert spans_equal(basis, basis)


@settings(max_examples=50, deadline=None)
@given(random_basis(), random_basis())
def test_span_equivalence_is_symmetric(b_in, b_out):
    assert spans_equal(b_in, b_out) == spans_equal(b_out, b_in)
