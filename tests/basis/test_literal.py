"""Unit tests for basis literals and built-in bases."""

import pytest

from repro.basis import BasisLiteral, BasisVector, BuiltinBasis, PrimitiveBasis
from repro.basis.literal import full_literal
from repro.errors import BasisError


def test_literal_of_strings():
    lit = BasisLiteral.of("01", "10")
    assert lit.dim == 2
    assert lit.prim is PrimitiveBasis.STD
    assert not lit.fully_spans


def test_fully_spans():
    assert BasisLiteral.of("0", "1").fully_spans
    assert BasisLiteral.of("00", "01", "10", "11").fully_spans
    assert not BasisLiteral.of("00", "01", "10").fully_spans


def test_duplicate_eigenbits_rejected():
    with pytest.raises(BasisError):
        BasisLiteral.of("0", "0")


def test_duplicate_differing_phase_rejected():
    # Eigenbits must be distinct even if phases differ.
    with pytest.raises(BasisError):
        BasisLiteral(
            (
                BasisVector.from_chars("0"),
                BasisVector.from_chars("0", phase=90.0),
            )
        )


def test_mismatched_dims_rejected():
    with pytest.raises(BasisError):
        BasisLiteral.of("0", "11")


def test_mismatched_prims_rejected():
    with pytest.raises(BasisError):
        BasisLiteral.of("0", "p")


def test_normalized_sorts_and_strips_phases():
    lit = BasisLiteral(
        (
            BasisVector.from_chars("11", phase=180.0),
            BasisVector.from_chars("10"),
        )
    )
    norm = lit.normalized()
    assert [vec.chars() for vec in norm.vectors] == ["10", "11"]
    assert not norm.has_phases


def test_tensor_is_cartesian_product():
    left = BasisLiteral.of("0", "1")
    right = BasisLiteral.of("0", "1")
    product = left.tensor(right)
    assert {vec.chars() for vec in product.vectors} == {"00", "01", "10", "11"}


def test_full_literal():
    lit = full_literal(PrimitiveBasis.PM, 2)
    assert lit.fully_spans
    assert lit.prim is PrimitiveBasis.PM
    assert {vec.chars() for vec in lit.vectors} == {"pp", "pm", "mp", "mm"}


def test_full_literal_rejects_fourier():
    with pytest.raises(BasisError):
        full_literal(PrimitiveBasis.FOURIER, 2)


def test_builtin_basis():
    basis = BuiltinBasis(PrimitiveBasis.FOURIER, 3)
    assert basis.fully_spans
    assert basis.dim == 3
    assert str(basis) == "fourier[3]"
    assert str(BuiltinBasis(PrimitiveBasis.STD, 1)) == "std"


def test_builtin_rejects_zero_dim():
    with pytest.raises(BasisError):
        BuiltinBasis(PrimitiveBasis.STD, 0)
