"""Unit and property tests for the factoring algorithms (Appendix B)."""

from hypothesis import given, strategies as st

from repro.basis import BasisLiteral, BasisVector, PrimitiveBasis
from repro.basis.factor import (
    factor_fully_spanning,
    factor_literal,
    factor_prefix,
)
from repro.basis.literal import full_literal


def lit(*chars):
    return BasisLiteral.of(*chars)


def test_factor_fully_spanning_success():
    remainder = factor_fully_spanning(lit("00", "01", "10", "11"), 1)
    assert remainder == lit("0", "1")


def test_factor_fully_spanning_not_divisible():
    assert factor_fully_spanning(lit("00", "01", "10"), 1) is None


def test_factor_fully_spanning_missing_prefix():
    assert factor_fully_spanning(lit("00", "01"), 1) is None


def test_factor_fully_spanning_unbalanced_suffixes():
    # Divisible and both prefixes present, but suffix '0' appears once.
    assert factor_fully_spanning(lit("00", "11", "01", "10"), 1) == lit("0", "1")
    assert factor_fully_spanning(lit("000", "010", "101", "111"), 1) is None


def test_factor_fully_spanning_bad_n():
    assert factor_fully_spanning(lit("00", "01"), 0) is None
    assert factor_fully_spanning(lit("00", "01"), 2) is None


def test_factor_literal_success():
    remainder = factor_literal(lit("10", "11"), lit("1"))
    assert remainder == lit("0", "1")


def test_factor_literal_prefix_not_subset():
    assert factor_literal(lit("00", "01"), lit("1")) is None


def test_factor_literal_prim_mismatch():
    assert factor_literal(lit("10", "11"), lit("m")) is None


def test_factor_literal_not_divisible():
    assert factor_literal(lit("00", "01", "10"), lit("0", "1")) is None


def test_factor_literal_single_prefix():
    # {'100','101','110'} = {'1'} (x) {'00','01','10'}.
    remainder = factor_literal(lit("100", "101", "110"), lit("1"))
    assert remainder == lit("00", "01", "10")


def test_factor_prefix_product():
    result = factor_prefix(lit("01", "00", "10", "11"), 1)
    assert result is not None
    prefix, remainder = result
    assert prefix == lit("0", "1")
    assert remainder == lit("0", "1")


def test_factor_prefix_non_product():
    assert factor_prefix(lit("00", "11"), 1) is None


def test_factor_prefix_partial_product():
    result = factor_prefix(lit("10", "11"), 1)
    assert result is not None
    prefix, remainder = result
    assert prefix == lit("1")
    assert remainder == lit("0", "1")


@st.composite
def product_literal(draw):
    """A literal constructed as an explicit tensor product."""
    prim = draw(st.sampled_from([PrimitiveBasis.STD, PrimitiveBasis.PM]))
    pre_dim = draw(st.integers(min_value=1, max_value=3))
    suf_dim = draw(st.integers(min_value=1, max_value=3))
    pre_values = draw(
        st.sets(
            st.integers(min_value=0, max_value=2**pre_dim - 1),
            min_size=1,
            max_size=2**pre_dim,
        )
    )
    suf_values = draw(
        st.sets(
            st.integers(min_value=0, max_value=2**suf_dim - 1),
            min_size=1,
            max_size=2**suf_dim,
        )
    )

    def to_vec(value, dim):
        bits = tuple((value >> (dim - 1 - k)) & 1 for k in range(dim))
        return BasisVector(bits, prim)

    prefix = BasisLiteral(tuple(sorted(to_vec(v, pre_dim) for v in pre_values)))
    suffix = BasisLiteral(tuple(sorted(to_vec(v, suf_dim) for v in suf_values)))
    return prefix, suffix


@given(product_literal())
def test_factor_prefix_roundtrip(parts):
    """factor_prefix recovers the factors of any explicit product."""
    prefix, suffix = parts
    product = prefix.tensor(suffix)
    result = factor_prefix(product, prefix.dim)
    assert result is not None
    got_prefix, got_suffix = result
    assert got_prefix == BasisLiteral(tuple(sorted(prefix.vectors)))
    assert got_suffix == BasisLiteral(tuple(sorted(suffix.vectors)))


@given(product_literal())
def test_factor_literal_roundtrip(parts):
    """Algorithm B4 factors any explicit product by its prefix."""
    prefix, suffix = parts
    product = prefix.tensor(suffix)
    remainder = factor_literal(product, prefix)
    assert remainder == BasisLiteral(tuple(sorted(suffix.vectors)))


@given(st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=3))
def test_factor_full_literal(n, rest):
    """A fully spanning literal factors at every boundary."""
    product = full_literal(PrimitiveBasis.STD, n + rest)
    remainder = factor_fully_spanning(product, n)
    assert remainder == full_literal(PrimitiveBasis.STD, rest)
