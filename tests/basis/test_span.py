"""Span equivalence checking tests (paper §4.1, Appendix B)."""

import pytest

from repro.basis import (
    Basis,
    BasisLiteral,
    BasisVector,
    BuiltinBasis,
    PrimitiveBasis,
    spans_equal,
)
from repro.basis.basis import fourier, ij, pm, std
from repro.basis.span import check_span_equivalence
from repro.errors import SpanCheckError


def lit(*vectors):
    return Basis.literal(*vectors)


def test_identical_literals():
    assert spans_equal(lit("01", "10"), lit("01", "10"))


def test_swap_example():
    # {'01','10'} >> {'10','01'}: same span (a SWAP gate, paper §2.2).
    assert spans_equal(lit("01", "10"), lit("10", "01"))


def test_disjoint_literals_fail():
    assert not spans_equal(lit("01", "10"), lit("00", "11"))


def test_fully_spanning_literals_match_builtins():
    assert spans_equal(lit("0", "1"), std(1))
    assert spans_equal(lit("00", "01", "10", "11"), std(2))
    assert spans_equal(lit("p", "m"), std(1))
    assert spans_equal(ij(3), pm(3))
    assert spans_equal(fourier(2), std(2))


def test_exponential_blowup_avoided():
    # {'0','1'}[64] >> {'1','0'}[64] represents 2^64 vectors but must
    # type check in polynomial time (paper §4.1).
    big_in = lit("0", "1").broadcast(64)
    big_out = lit("1", "0").broadcast(64)
    assert spans_equal(big_in, big_out)


def test_dimension_mismatch_fails():
    assert not spans_equal(std(2), std(3))
    with pytest.raises(SpanCheckError, match="dimension mismatch"):
        check_span_equivalence(std(2), std(3))


def test_partial_literal_vs_builtin_fails():
    assert not spans_equal(lit("0"), std(1))
    assert not spans_equal(std(2), Basis.of(BasisLiteral.of("0")).tensor(std(1)))


def test_factoring_builtin_from_builtin():
    # std[3] vs std + std[2]: factoring fully-spanning elements.
    assert spans_equal(std(3), std(1).tensor(std(2)))
    assert spans_equal(fourier(3), std(1).tensor(pm(2)))


def test_factor_fully_spanning_from_literal():
    # {'00','01','10','11'} = std[1] (x) {'0','1'}.
    four = lit("00", "01", "10", "11")
    assert spans_equal(four, std(1).tensor(lit("0", "1")))
    assert spans_equal(four, pm(1).tensor(std(1)))


def test_factor_fails_on_non_product():
    # {'00','01','10'} is not a tensor product with a full first qubit.
    three = lit("00", "01", "10")
    assert not spans_equal(three, std(1).tensor(lit("0", "1")))


def test_factor_literal_from_literal():
    # {'10','11'} = {'1'} (x) {'0','1'}.
    assert spans_equal(lit("10", "11"), lit("1").tensor(lit("0", "1")))
    # {'100','101','110','111'} = {'1'} (x) std[2].
    assert spans_equal(
        lit("100", "101", "110", "111"), lit("1").tensor(std(2))
    )


def test_factor_literal_prefix_mismatch():
    # {'00','01'} has prefix {'0'}, not {'1'}.
    assert not spans_equal(lit("00", "01"), lit("1").tensor(lit("0", "1")))


def test_prims_matter_for_partial_literals():
    # span({'0'}) != span({'p'}).
    assert not spans_equal(lit("0"), lit("p"))
    assert not spans_equal(
        lit("0").tensor(std(1)), lit("p").tensor(std(1))
    )


def test_phases_are_normalized_away():
    # Phases never change spans (paper Fig. 3 normalize step).
    phased = Basis.of(
        BasisLiteral((BasisVector.from_chars("1", phase=45.0),))
    )
    assert spans_equal(phased, lit("1"))
    neg = Basis.of(
        BasisLiteral(
            (
                BasisVector.from_chars("11", phase=180.0),
                BasisVector.from_chars("10"),
            )
        )
    )
    assert spans_equal(neg, lit("10", "11"))


def test_paper_figure3():
    # {'p'} + fourier[3] + {'1'@45} + pm
    #   >> {-'p'} + std[2] + ij + {-'11', '10'}
    lhs = (
        lit("p")
        .tensor(fourier(3))
        .tensor(
            Basis.of(BasisLiteral((BasisVector.from_chars("1", phase=45.0),)))
        )
        .tensor(pm(1))
    )
    rhs = (
        Basis.of(BasisLiteral((BasisVector.from_chars("p", phase=180.0),)))
        .tensor(std(2))
        .tensor(ij(1))
        .tensor(
            Basis.of(
                BasisLiteral(
                    (
                        BasisVector.from_chars("11", phase=180.0),
                        BasisVector.from_chars("10"),
                    )
                )
            )
        )
    )
    check_span_equivalence(lhs, rhs)


def test_paper_figure3_wrong_variant_fails():
    # Same as Fig. 3 but the final literal does not contain '1' prefix
    # vectors, so factoring {'1'} must fail.
    lhs = lit("p").tensor(fourier(1)).tensor(lit("1"))
    rhs = lit("p").tensor(std(1)).tensor(lit("0"))
    assert not spans_equal(lhs, rhs)


def test_pm_literal_vs_pm_builtin_partial():
    # {'pm','mp'} vs {'mp','pm'}: identical after sorting.
    assert spans_equal(lit("pm", "mp"), lit("mp", "pm"))
    # But not equal span to {'pp','mm'}.
    assert not spans_equal(lit("pm", "mp"), lit("pp", "mm"))


def test_grover_diffuser_span():
    # {'p'[3]} >> {-'p'[3]} from paper Fig. 8: same single-vector span.
    plus3 = Basis.of(BasisLiteral((BasisVector.from_chars("ppp"),)))
    minus_phase = Basis.of(
        BasisLiteral((BasisVector.from_chars("ppp", phase=180.0),))
    )
    assert spans_equal(plus3, minus_phase)


def test_interleaved_factoring_both_sides():
    # Alternating element boundaries force factoring on both sides.
    lhs = std(3).tensor(pm(2)).tensor(std(1))
    rhs = pm(1).tensor(std(4)).tensor(ij(1))
    assert spans_equal(lhs, rhs)


def test_literal_requiring_repeated_factoring():
    # {'110','111'} = {'1'} (x) {'1'} (x) {'0','1'}.
    assert spans_equal(
        lit("110", "111"),
        lit("1").tensor(lit("1")).tensor(lit("0", "1")),
    )
