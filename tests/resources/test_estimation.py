"""Tests for the resource estimator (Azure RE substitute, paper §8.3)."""

import math

from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement
from repro.resources import (
    SurfaceCodeParams,
    count_logical_resources,
    estimate_physical_resources,
)


def g(name, targets, controls=(), params=()):
    return CircuitGate(name, tuple(targets), tuple(controls), tuple(params))


def make(num_qubits, gates, measurements=0):
    circuit = Circuit(num_qubits, measurements)
    for gate in gates:
        circuit.add(gate)
    for index in range(measurements):
        circuit.add(Measurement(index, index))
    return circuit


def test_t_counting():
    counts = count_logical_resources(
        make(1, [g("t", [0]), g("tdg", [0]), g("h", [0])])
    )
    assert counts.t_gates == 2
    assert counts.clifford_gates == 1


def test_rotation_classification():
    # pi/4 phases are T-like; pi/2 are Clifford; others are rotations.
    counts = count_logical_resources(
        make(
            1,
            [
                g("p", [0], params=[math.pi / 4]),
                g("p", [0], params=[math.pi / 2]),
                g("p", [0], params=[0.3]),
                g("rz", [0], params=[math.pi]),
            ],
        )
    )
    assert counts.t_gates == 1
    assert counts.rotations == 1
    assert counts.clifford_gates == 2


def test_depth_counts_parallelism():
    parallel = make(2, [g("h", [0]), g("h", [1])])
    serial = make(2, [g("h", [0]), g("x", [1], controls=[0])])
    assert count_logical_resources(parallel).logical_depth == 1
    assert count_logical_resources(serial).logical_depth == 2


def test_clifford_only_needs_no_factories():
    estimate = estimate_physical_resources(
        make(4, [g("h", [q]) for q in range(4)], measurements=4)
    )
    assert estimate.factories == 0
    assert estimate.t_states == 0


def test_t_heavy_circuit_gets_factories():
    gates = [g("t", [0]) for _ in range(100)]
    estimate = estimate_physical_resources(make(1, gates))
    assert estimate.factories >= 1
    assert estimate.t_states == 100


def test_paper_parameters():
    params = SurfaceCodeParams()
    assert params.code_distance == 13
    assert params.physical_per_logical == 338  # [[338, 1, 13]].
    assert params.logical_cycle_seconds == 5.2e-6


def test_physical_qubits_scale_with_logical():
    small = estimate_physical_resources(make(4, [g("h", [0])]))
    large = estimate_physical_resources(make(64, [g("h", [0])]))
    assert large.physical_qubits > small.physical_qubits
    # Routing overhead: 2Q + ceil(sqrt(8Q)) + 1 logical tiles.
    assert small.routed_logical_qubits == 2 * 4 + math.ceil(math.sqrt(32)) + 1


def test_runtime_scales_with_depth():
    shallow = estimate_physical_resources(make(2, [g("h", [0])]))
    deep = estimate_physical_resources(
        make(2, [g("h", [0]) for _ in range(100)])
    )
    assert deep.runtime_seconds > shallow.runtime_seconds
    assert math.isclose(
        shallow.runtime_seconds, 5.2e-6, rel_tol=1e-9
    )


def test_rotations_charged_t_cost():
    params = SurfaceCodeParams()
    estimate = estimate_physical_resources(
        make(1, [g("rz", [0], params=[0.123])])
    )
    assert estimate.t_states == params.t_per_rotation


def test_factory_cap_stretches_runtime():
    params = SurfaceCodeParams(max_factories=1)
    gates = [g("t", [0]) for _ in range(1000)]
    capped = estimate_physical_resources(make(1, gates), params)
    uncapped = estimate_physical_resources(make(1, gates))
    assert capped.factories == 1
    assert capped.runtime_seconds >= uncapped.runtime_seconds
    assert capped.physical_qubits <= uncapped.physical_qubits
