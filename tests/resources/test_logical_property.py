"""Property tests on resource-estimation invariants."""

from hypothesis import given, settings, strategies as st

from repro.qcircuit.circuit import Circuit, CircuitGate
from repro.resources import (
    SurfaceCodeParams,
    count_logical_resources,
    estimate_physical_resources,
)

_GATES = ["x", "h", "s", "t", "tdg", "z"]


@st.composite
def random_circuit(draw):
    num_qubits = draw(st.integers(min_value=1, max_value=6))
    circuit = Circuit(num_qubits)
    for _ in range(draw(st.integers(min_value=0, max_value=30))):
        name = draw(st.sampled_from(_GATES))
        target = draw(st.integers(min_value=0, max_value=num_qubits - 1))
        circuit.add(CircuitGate(name, (target,)))
    return circuit


@settings(max_examples=50, deadline=None)
@given(random_circuit())
def test_counts_partition_instructions(circuit):
    counts = count_logical_resources(circuit)
    total = counts.t_gates + counts.rotations + counts.clifford_gates
    assert total == len(circuit.gates)


@settings(max_examples=50, deadline=None)
@given(random_circuit())
def test_depth_bounded_by_gate_count(circuit):
    counts = count_logical_resources(circuit)
    assert counts.logical_depth <= len(circuit.instructions)


@settings(max_examples=30, deadline=None)
@given(random_circuit())
def test_estimates_are_monotone_in_t(circuit):
    base = estimate_physical_resources(circuit)
    extended = Circuit(circuit.num_qubits, instructions=list(circuit.instructions))
    extended.add(CircuitGate("t", (0,)))
    more = estimate_physical_resources(extended)
    assert more.t_states >= base.t_states
    assert more.runtime_seconds >= base.runtime_seconds


@settings(max_examples=30, deadline=None)
@given(random_circuit(), st.integers(min_value=7, max_value=25))
def test_runtime_scales_with_cycle_time(circuit, distance):
    slow = SurfaceCodeParams(logical_cycle_seconds=1e-5)
    fast = SurfaceCodeParams(logical_cycle_seconds=1e-6)
    slow_estimate = estimate_physical_resources(circuit, slow)
    fast_estimate = estimate_physical_resources(circuit, fast)
    assert slow_estimate.runtime_seconds >= fast_estimate.runtime_seconds
