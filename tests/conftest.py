"""Suite-wide fixtures for the tier-1 tests.

The persistent compile cache (repro.exec.diskcache) is ON by default,
so without intervention a test run would read artifacts a *previous*
run — or the developer's interactive sessions — left under
``~/.cache/repro``, and would leave its own behind.  Point the cache
root at a per-session tmpdir instead: every suite run starts from a
clean disk cache (cold -> warm transitions happen *within* the run,
which is exactly what tests/exec/test_diskcache.py exercises) and the
developer's real cache is never read or written by tests.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _hermetic_disk_cache(tmp_path_factory):
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("repro-test-cache")
    )
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
