"""Unit tests for the flat circuit representation."""

import math

import pytest
from hypothesis import given, strategies as st
import numpy as np

from repro.errors import SimulationError
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement
from repro.sim import unitary_of_gates


def g(name, targets, controls=(), params=(), ctrl_states=()):
    return CircuitGate(
        name, tuple(targets), tuple(controls), tuple(params), tuple(ctrl_states)
    )


def test_unknown_gate_rejected():
    with pytest.raises(SimulationError):
        g("frobnicate", [0])


def test_duplicate_qubits_rejected():
    with pytest.raises(SimulationError):
        g("x", [0], controls=[0])
    with pytest.raises(SimulationError):
        g("swap", [1, 1])


def test_ctrl_states_default_positive():
    gate = g("x", [1], controls=[0])
    assert gate.ctrl_states == (1,)


def test_clifford_classification():
    assert g("h", [0]).is_clifford
    assert g("s", [0]).is_clifford
    assert not g("t", [0]).is_clifford
    assert g("p", [0], params=[math.pi / 2]).is_clifford
    assert not g("p", [0], params=[math.pi / 4]).is_clifford
    assert not g("rz", [0], params=[0.3]).is_clifford


def test_shifted_and_remapped():
    gate = g("x", [1], controls=[0])
    shifted = gate.shifted(3)
    assert shifted.targets == (4,)
    assert shifted.controls == (3,)
    remapped = gate.remapped({0: 5, 1: 9})
    assert remapped.targets == (9,)
    assert remapped.controls == (5,)


def test_with_extra_controls():
    gate = g("x", [2]).with_extra_controls([0, 1], [1, 0])
    assert gate.controls == (0, 1)
    assert gate.ctrl_states == (1, 0)


@given(
    st.sampled_from(["x", "h", "s", "sdg", "t", "tdg", "swap", "p", "rz"])
)
def test_dagger_inverts(name):
    params = (0.7,) if name in ("p", "rz") else ()
    targets = (0, 1) if name == "swap" else (0,)
    gate = CircuitGate(name, targets, (), params)
    n = 2 if name == "swap" else 1
    product = unitary_of_gates([gate, gate.dagger()], n)
    assert np.allclose(product, np.eye(2**n))


def test_gate_counts():
    circuit = Circuit(3)
    circuit.add(g("h", [0]))
    circuit.add(g("h", [1]))
    circuit.add(g("x", [2], controls=[0, 1]))
    counts = circuit.gate_counts()
    assert counts == {"h": 2, "c2x": 1}


def test_depth():
    circuit = Circuit(2)
    circuit.add(g("h", [0]))
    circuit.add(g("h", [1]))
    assert circuit.depth() == 1
    circuit.add(g("x", [1], controls=[0]))
    assert circuit.depth() == 2
    circuit.add(Measurement(0, 0))
    assert circuit.depth() == 3


def test_outputs_and_measurements():
    circuit = Circuit(1, 1, output_bits=[0])
    circuit.add(Measurement(0, 0))
    assert len(circuit.measurements) == 1
    assert circuit.output_bits == [0]
