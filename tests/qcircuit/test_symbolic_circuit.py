"""Symbolic gate params at the flat-circuit layer: binding and passes.

The contract the optimizer passes keep: a pass may *fold* symbolic
angles only when the affine algebra proves it safe (exactly-opposite
rotations collapse to a 0.0 float before the pass ever sees them), and
must otherwise treat a symbolic gate as an optimization barrier —
never guess a value, never fuse it into a numeric matrix.
"""

import math

import pytest

from repro.errors import QwertyTypeError, SimulationError
from repro.parameters import ParamExpr, Parameter
from repro.qcircuit.circuit import (
    Circuit,
    CircuitGate,
    Measurement,
    bind_circuit,
    circuit_parameters,
)
from repro.qcircuit.fusion import fuse_adjacent_gates
from repro.qcircuit.peephole import run_peephole

theta = Parameter("theta")
phi = Parameter("phi")


def _symbolic_circuit() -> Circuit:
    circuit = Circuit(2, 2)
    circuit.add(CircuitGate("h", (0,)))
    circuit.add(CircuitGate("ry", (0,), params=(ParamExpr.of(theta),)))
    circuit.add(CircuitGate("rz", (1,), params=(2 * phi + 0.5,)))
    circuit.add(Measurement(0, 0))
    circuit.add(Measurement(1, 1))
    circuit.output_bits = [0, 1]
    return circuit


class TestBindCircuit:
    def test_collects_parameters_sorted(self):
        names = [p.name for p in circuit_parameters(_symbolic_circuit())]
        assert names == ["phi", "theta"]

    def test_bind_substitutes_affine_exprs(self):
        bound = bind_circuit(
            _symbolic_circuit(), {"theta": 0.25, phi: 1.0}
        )
        assert bound.instructions[1].params == (0.25,)
        assert bound.instructions[2].params == (2.5,)
        assert circuit_parameters(bound) == ()

    def test_bind_leaves_original_untouched(self):
        circuit = _symbolic_circuit()
        bind_circuit(circuit, {"theta": 1.0, "phi": 2.0})
        assert circuit.instructions[1].is_symbolic

    def test_bind_shares_concrete_instructions(self):
        circuit = _symbolic_circuit()
        bound = bind_circuit(circuit, {"theta": 1.0, "phi": 2.0})
        # Non-symbolic instructions are shared, not copied — binds of a
        # big mostly-concrete circuit stay cheap.
        assert bound.instructions[0] is circuit.instructions[0]
        assert bound.instructions[3] is circuit.instructions[3]

    def test_missing_parameter_raises_unless_partial(self):
        circuit = _symbolic_circuit()
        with pytest.raises(QwertyTypeError, match="phi"):
            bind_circuit(circuit, {"theta": 1.0})
        partial = bind_circuit(circuit, {"theta": 1.0}, partial=True)
        assert [p.name for p in circuit_parameters(partial)] == ["phi"]


class TestPassesOnSymbolicGates:
    def test_is_clifford_conservative(self):
        gate = CircuitGate("rz", (0,), params=(ParamExpr.of(theta),))
        assert gate.is_symbolic
        assert not gate.is_clifford

    def test_peephole_never_cancels_unproven_symbolic_pair(self):
        # rz(theta)·rz(-phi) only cancels for particular values; the
        # symbolic sum stays symbolic, so the peephole must keep both.
        circuit = Circuit(1, 0)
        circuit.add(CircuitGate("rz", (0,), params=(ParamExpr.of(theta),)))
        circuit.add(CircuitGate("rz", (0,), params=(-1 * phi,)))
        optimized = run_peephole(circuit)
        assert len(optimized.gates) >= 1
        assert any(g.is_symbolic for g in optimized.gates)

    def test_peephole_cancels_provably_opposite_angles(self):
        # rz(theta)·rz(-theta): the merged angle collapses to the plain
        # float 0.0 in the affine algebra, so cancellation is safe and
        # the pass needs no symbol-awareness at all.
        circuit = Circuit(1, 0)
        circuit.add(CircuitGate("rz", (0,), params=(ParamExpr.of(theta),)))
        circuit.add(CircuitGate("rz", (0,), params=(-1 * theta,)))
        optimized = run_peephole(circuit)
        assert optimized.gates == []

    def test_peephole_merge_keeps_symbolic_sum(self):
        circuit = Circuit(1, 0)
        circuit.add(CircuitGate("rz", (0,), params=(ParamExpr.of(theta),)))
        circuit.add(CircuitGate("rz", (0,), params=(ParamExpr.of(theta),)))
        optimized = run_peephole(circuit)
        [gate] = optimized.gates
        assert gate.params[0].coefficient(theta) == 2.0

    def test_fusion_barriers_on_symbolic_gates(self):
        circuit = Circuit(1, 0)
        circuit.add(CircuitGate("h", (0,)))
        circuit.add(CircuitGate("ry", (0,), params=(ParamExpr.of(theta),)))
        circuit.add(CircuitGate("h", (0,)))
        fused = fuse_adjacent_gates(circuit)
        symbolic = [
            inst
            for inst in fused.instructions
            if isinstance(inst, CircuitGate) and inst.is_symbolic
        ]
        assert len(symbolic) == 1
        assert symbolic[0].params[0] == ParamExpr.of(theta)

    def test_fused_symbolic_circuit_runs_after_bind(self):
        # Fuse first, bind second — the sweep order bind() enables —
        # and the samples must match binding the unfused circuit.
        from repro.sim.backend import run_circuit_with_info

        circuit = _symbolic_circuit()
        values = {"theta": math.pi / 3, "phi": 0.2}
        fused_bound = bind_circuit(fuse_adjacent_gates(circuit), values)
        plain_bound = bind_circuit(circuit, values)
        fused_results, _ = run_circuit_with_info(
            fused_bound, shots=64, seed=7
        )
        plain_results, _ = run_circuit_with_info(
            plain_bound, shots=64, seed=7
        )
        assert fused_results == plain_results

    def test_simulating_unbound_circuit_is_a_clear_error(self):
        from repro.sim.backend import run_circuit_with_info

        with pytest.raises(SimulationError, match="bind"):
            run_circuit_with_info(_symbolic_circuit(), shots=4, seed=0)

    def test_dagger_negates_symbolic_angle(self):
        gate = CircuitGate("rz", (0,), params=(2 * theta + 1.0,))
        adjoint = gate.dagger()
        assert adjoint.params[0].coefficient(theta) == -2.0
        assert adjoint.params[0].constant == -1.0
