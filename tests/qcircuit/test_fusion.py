"""The compile-time gate-fusion pass (repro.qcircuit.fusion).

Covers the PR's correctness obligations: fused circuits are unitarily
equivalent to their sources on random circuits (hypothesis property),
histograms are equivalent across every backend on the examples suite
(derived TVD thresholds from tests/stats.py), terminal-measurement
structure survives fusion (the fast path stays alive), the pass is
registered in the PassManager, the pipeline produces a fused
``execution_circuit``, and the relocation of ``fuse_single_qubit_gates``
keeps a deprecation shim behind it.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.qcircuit import make_circuit_pass_manager
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement, Reset
from repro.qcircuit.examples import (
    conditioned_fanout_circuit,
    qubit_reuse_circuit,
    repeat_until_success_circuit,
    teleport_circuit,
)
from repro.qcircuit.fusion import (
    FusedUnitary,
    FusionPass,
    controlled_matrix,
    fuse_adjacent_gates,
    fused_gate_savings,
)
from repro.sim import run_circuit, unitary_of_gates
from repro.sim.backend import run_circuit_with_info
from tests.stats import assert_histograms_close

# ----------------------------------------------------------------------
# Random-circuit strategy (<= 6 qubits, random targets/controls/params).
# ----------------------------------------------------------------------
_SINGLE = ("x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg")
_ROTATION = ("rx", "ry", "rz", "p")


@st.composite
def random_gates(draw, max_qubits=6, max_gates=20):
    n = draw(st.integers(min_value=2, max_value=max_qubits))
    count = draw(st.integers(min_value=0, max_value=max_gates))
    gates = []
    for _ in range(count):
        kind = draw(st.sampled_from(("single", "rotation", "controlled",
                                     "swap")))
        if kind == "swap" and n >= 2:
            a, b = draw(
                st.lists(
                    st.integers(0, n - 1), min_size=2, max_size=2,
                    unique=True,
                )
            )
            gates.append(CircuitGate("swap", (a, b)))
        elif kind == "controlled" and n >= 2:
            qubits = draw(
                st.lists(
                    st.integers(0, n - 1),
                    min_size=2,
                    max_size=min(3, n),
                    unique=True,
                )
            )
            polarity = tuple(
                draw(st.integers(0, 1)) for _ in qubits[1:]
            )
            gates.append(
                CircuitGate(
                    draw(st.sampled_from(_SINGLE)),
                    (qubits[0],),
                    controls=tuple(qubits[1:]),
                    ctrl_states=polarity,
                )
            )
        elif kind == "rotation":
            angle = draw(
                st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False)
            )
            gates.append(
                CircuitGate(
                    draw(st.sampled_from(_ROTATION)),
                    (draw(st.integers(0, n - 1)),),
                    params=(angle,),
                )
            )
        else:
            gates.append(
                CircuitGate(
                    draw(st.sampled_from(_SINGLE)),
                    (draw(st.integers(0, n - 1)),),
                )
            )
    return n, gates


@settings(max_examples=60, deadline=None)
@given(
    random_gates(),
    st.integers(min_value=1, max_value=5),
    st.booleans(),
)
def test_fused_circuits_are_unitarily_equivalent(spec, max_qubits, layer):
    n, gates = spec
    circuit = Circuit(n, 0, list(gates))
    fused = fuse_adjacent_gates(circuit, max_qubits=max_qubits, layer=layer)
    expected = unitary_of_gates(gates, n)
    actual = unitary_of_gates(fused.instructions, n)
    assert np.allclose(actual, expected, atol=1e-9)
    # Fusion is idempotent: fused blocks pass through a second run.
    refused = fuse_adjacent_gates(fused, max_qubits=max_qubits, layer=layer)
    assert np.allclose(unitary_of_gates(refused.instructions, n), expected,
                       atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(random_gates(max_qubits=4, max_gates=12))
def test_fusion_preserves_terminal_histograms(spec):
    n, gates = spec
    circuit = Circuit(n, n, list(gates))
    for q in range(n):
        circuit.add(Measurement(q, q))
    fused = fuse_adjacent_gates(circuit)
    # Terminal structure (and therefore the vectorized fast path's
    # single-evolution sampling) must survive fusion, so the two runs
    # share the sampling path bit for bit at equal seeds.
    assert run_circuit(circuit, shots=128, seed=3) == run_circuit(
        fused, shots=128, seed=3
    )


def test_measurement_flushes_every_pending_block():
    # A gate on a never-measured qubit must not drift past the
    # measurements (it would break terminal-measurement structure).
    circuit = Circuit(3, 1)
    circuit.add(CircuitGate("h", (0,)))
    circuit.add(CircuitGate("h", (2,)))
    circuit.add(CircuitGate("t", (2,)))
    circuit.add(Measurement(0, 0))
    fused = fuse_adjacent_gates(circuit)
    kinds = [type(inst) for inst in fused.instructions]
    assert kinds.index(Measurement) == len(kinds) - 1


@pytest.mark.parametrize(
    "make_circuit",
    [
        teleport_circuit,
        conditioned_fanout_circuit,
        qubit_reuse_circuit,
        repeat_until_success_circuit,
    ],
)
@pytest.mark.parametrize("backend", ["interpreter", "statevector"])
def test_examples_histograms_survive_fusion(make_circuit, backend):
    circuit = make_circuit()
    fused = fuse_adjacent_gates(circuit)
    shots = 2000
    assert_histograms_close(
        run_circuit(circuit, shots=shots, seed=11, backend=backend),
        run_circuit(fused, shots=shots, seed=12, backend=backend),
        label=f"{make_circuit.__name__}/{backend}",
    )


def test_density_matrix_histograms_survive_fusion():
    circuit = teleport_circuit()
    fused = fuse_adjacent_gates(circuit)
    shots = 2000
    assert_histograms_close(
        run_circuit(circuit, shots=shots, seed=5, backend="density_matrix"),
        run_circuit(fused, shots=shots, seed=6, backend="density_matrix"),
        label="teleport/density_matrix",
    )


def test_fused_unitary_validates_shape():
    with pytest.raises(Exception):
        FusedUnitary(np.eye(2, dtype=complex), (0, 1))
    with pytest.raises(Exception):
        FusedUnitary(np.eye(4, dtype=complex), (1, 1))


def test_controlled_matrix_folds_polarity():
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    cx = controlled_matrix(x, (1,))
    assert np.allclose(cx[:2, :2], np.eye(2))
    assert np.allclose(cx[2:, 2:], x)
    # Negative control: the X block sits where the control reads 0.
    nx = controlled_matrix(x, (0,))
    assert np.allclose(nx[:2, :2], x)
    assert np.allclose(nx[2:, 2:], np.eye(2))


def test_gate_savings_and_runinfo_telemetry():
    circuit = Circuit(2, 2)
    for _ in range(4):
        circuit.add(CircuitGate("h", (0,)))
        circuit.add(CircuitGate("t", (1,)))
    circuit.add(Measurement(0, 0))
    circuit.add(Measurement(1, 1))
    fused = fuse_adjacent_gates(circuit)
    savings = fused_gate_savings(fused)
    assert savings > 0
    _, info = run_circuit_with_info(fused, shots=16, seed=0)
    assert info.gates_fused == savings
    assert info.kernel in ("numpy", "numba")
    _, unfused_info = run_circuit_with_info(circuit, shots=16, seed=0)
    assert unfused_info.gates_fused == 0


def test_conditioned_gates_are_barriers():
    circuit = Circuit(2, 1)
    circuit.add(CircuitGate("h", (0,)))
    circuit.add(Measurement(0, 0))
    circuit.add(CircuitGate("x", (0,), condition=(0, 1)))
    circuit.add(CircuitGate("h", (0,)))
    fused = fuse_adjacent_gates(circuit)
    conditioned = [
        inst
        for inst in fused.instructions
        if isinstance(inst, CircuitGate) and inst.condition is not None
    ]
    assert len(conditioned) == 1  # never absorbed into a block


def test_reset_is_a_barrier():
    circuit = Circuit(1, 0)
    circuit.add(CircuitGate("h", (0,)))
    circuit.add(Reset(0))
    circuit.add(CircuitGate("h", (0,)))
    fused = fuse_adjacent_gates(circuit)
    assert [type(i) for i in fused.instructions] == [
        CircuitGate,
        Reset,
        CircuitGate,
    ]


def test_fusion_pass_registered_in_pass_manager():
    circuit = Circuit(2, 0)
    circuit.add(CircuitGate("h", (0,)))
    circuit.add(CircuitGate("h", (1,)))
    circuit.add(CircuitGate("x", (1,), controls=(0,)))
    expected = unitary_of_gates(circuit.gates, 2)
    make_circuit_pass_manager("fuse{max_qubits=2,layer=true}").run(circuit)
    assert any(
        isinstance(inst, FusedUnitary) for inst in circuit.instructions
    )
    assert np.allclose(
        unitary_of_gates(circuit.instructions, 2), expected, atol=1e-9
    )


def test_fusion_pass_rejects_bad_options():
    from repro.errors import PassPipelineError

    with pytest.raises(PassPipelineError):
        FusionPass(max_qubits=0)
    with pytest.raises(PassPipelineError):
        make_circuit_pass_manager("fuse{bogus=1}")


def test_pipeline_produces_fused_execution_circuit():
    from repro.algorithms import bernstein_vazirani
    from repro.pipeline import CompileOptions, compile_kernel

    kernel = bernstein_vazirani("1011")
    result = compile_kernel(kernel, CompileOptions())
    assert result.execution_circuit is not None
    assert any(
        isinstance(inst, FusedUnitary)
        for inst in result.execution_circuit.instructions
    )
    # The export artifacts never see fused ops.
    assert not any(
        isinstance(inst, FusedUnitary)
        for inst in result.optimized_circuit.instructions
    )
    assert fused_gate_savings(result.execution_circuit) > 0

    plain = compile_kernel(kernel, CompileOptions.preset("no-fusion"))
    assert plain.execution_circuit is plain.optimized_circuit


def test_simulate_kernel_matches_unfused_pipeline():
    from repro.pipeline import CompileOptions, simulate_kernel
    from repro.algorithms import bernstein_vazirani

    kernel = bernstein_vazirani("110")
    fused = simulate_kernel(kernel, shots=64, seed=9, cache=False)
    unfused = simulate_kernel(
        kernel,
        shots=64,
        seed=9,
        cache=False,
        options=CompileOptions.preset("no-fusion"),
    )
    assert [str(b) for b in fused] == [str(b) for b in unfused]


def test_fuse_single_qubit_gates_shim_warns():
    import repro.sim.statevector as statevector

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with pytest.raises(DeprecationWarning):
            statevector.fuse_single_qubit_gates
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shimmed = statevector.fuse_single_qubit_gates
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    )
    from repro.qcircuit.fusion import fuse_single_qubit_gates

    assert shimmed is fuse_single_qubit_gates
