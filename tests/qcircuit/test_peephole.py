"""Tests for peephole and relaxed peephole optimizations (paper §6.5)."""

import math

import numpy as np

from repro.qcircuit import Circuit, CircuitGate, run_peephole
from repro.qcircuit.circuit import Measurement
from repro.sim import unitary_of_gates


def g(name, targets, controls=(), params=(), ctrl_states=()):
    return CircuitGate(
        name, tuple(targets), tuple(controls), tuple(params), tuple(ctrl_states)
    )


def make(num_qubits, gates):
    circuit = Circuit(num_qubits)
    for gate in gates:
        circuit.add(gate)
    return circuit


def test_adjacent_hermitian_cancel():
    out = run_peephole(make(1, [g("h", [0]), g("h", [0])]))
    assert out.gates == []


def test_adjacent_hermitian_controlled_cancel():
    # Paper Fig. 7: adjacent controlled-Hadamards cancel.
    gates = [
        g("h", [1], controls=[0]),
        g("h", [1], controls=[0]),
    ]
    assert run_peephole(make(2, gates)).gates == []


def test_non_matching_controls_do_not_cancel():
    gates = [
        g("h", [1], controls=[0]),
        g("h", [1], controls=[0], ctrl_states=[0]),
    ]
    assert len(run_peephole(make(2, gates)).gates) == 2


def test_adjoint_pairs_cancel():
    assert run_peephole(make(1, [g("s", [0]), g("sdg", [0])])).gates == []
    assert run_peephole(make(1, [g("t", [0]), g("tdg", [0])])).gates == []


def test_intervening_gate_blocks_cancellation():
    gates = [g("h", [0]), g("x", [0]), g("h", [0])]
    out = run_peephole(make(1, gates))
    # Not cancelled, but rewritten HXH -> Z.
    assert [gate.name for gate in out.gates] == ["z"]


def test_hzh_becomes_x():
    out = run_peephole(make(1, [g("h", [0]), g("z", [0]), g("h", [0])]))
    assert [gate.name for gate in out.gates] == ["x"]


def test_hxh_controlled_becomes_cz():
    gates = [g("h", [1]), g("x", [1], controls=[0]), g("h", [1])]
    out = run_peephole(make(2, gates))
    assert [gate.name for gate in out.gates] == ["z"]
    assert out.gates[0].controls == (0,)


def test_phase_rotations_merge():
    gates = [g("p", [0], params=[0.3]), g("p", [0], params=[0.4])]
    out = run_peephole(make(1, gates))
    assert len(out.gates) == 1
    assert math.isclose(out.gates[0].params[0], 0.7)


def test_opposite_rotations_cancel():
    gates = [g("rz", [0], params=[0.3]), g("rz", [0], params=[-0.3])]
    assert run_peephole(make(1, gates)).gates == []


def test_identity_rotation_dropped():
    assert run_peephole(make(1, [g("p", [0], params=[0.0])])).gates == []


def test_cascading_cancellation():
    # X H H X: inner pair cancels, then the outer pair cancels.
    gates = [g("x", [0]), g("h", [0]), g("h", [0]), g("x", [0])]
    assert run_peephole(make(1, gates)).gates == []


def test_relaxed_peephole_fig10():
    # Paper Fig. 10: X, H on a fresh ancilla; MCX onto it; H, X ->
    # multi-controlled Z without the ancilla.
    gates = [
        g("x", [2]),
        g("h", [2]),
        g("x", [2], controls=[0, 1]),
        g("h", [2]),
        g("x", [2]),
    ]
    out = run_peephole(make(3, gates))
    assert len(out.gates) == 1
    gate = out.gates[0]
    assert gate.name == "z"
    assert len(gate.controls) == 1
    # The ancilla wire disappeared entirely.
    assert out.num_qubits == 2


def test_relaxed_peephole_preserves_semantics():
    gates = [
        g("x", [2]),
        g("h", [2]),
        g("x", [2], controls=[0, 1]),
        g("h", [2]),
        g("x", [2]),
    ]
    original = unitary_of_gates(gates, 3)
    out = run_peephole(make(3, gates))
    ccz_like = unitary_of_gates(out.gates, 2)
    # Original acts as CCZ on the ancilla-|0> sector (the ancilla is
    # qubit 2, the least significant bit).
    sector = original[0::2, 0::2]
    assert np.allclose(sector, ccz_like)


def test_relaxed_peephole_repeated_segments():
    # Grover-style: the same ancilla wire hosts several sign flips,
    # interleaved with diffuser-like gates that block cancellation.
    gates = []
    for _ in range(3):
        gates += [
            g("x", [2]),
            g("h", [2]),
            g("x", [2], controls=[0, 1]),
            g("h", [2]),
            g("x", [2]),
            g("h", [0]),
            g("h", [1]),
        ]
    out = run_peephole(make(3, gates))
    # The ancilla wire is eliminated entirely...
    assert out.num_qubits == 2
    assert all(not gate.controls or gate.name != "x" or True for gate in out.gates)
    # ...and the optimized circuit matches the original on the
    # ancilla-|0> sector.
    original = unitary_of_gates(gates, 3)
    optimized = unitary_of_gates(out.gates, 2)
    assert np.allclose(original[0::2, 0::2], optimized)


def test_relaxed_peephole_negative_controls():
    gates = [
        g("x", [1]),
        g("h", [1]),
        g("x", [1], controls=[0], ctrl_states=[0]),
        g("h", [1]),
        g("x", [1]),
    ]
    out = run_peephole(make(2, gates))
    names = [gate.name for gate in out.gates]
    assert "z" in names
    assert out.num_qubits == 1


def test_relaxed_peephole_not_applied_to_dirty_qubit():
    # The target qubit is NOT freshly |0> (an H ran first).
    gates = [
        g("h", [2]),
        g("x", [2]),
        g("h", [2]),
        g("x", [2], controls=[0, 1]),
        g("h", [2]),
        g("x", [2]),
    ]
    out = run_peephole(make(3, gates))
    assert any(gate.name == "x" and gate.controls for gate in out.gates)


def test_measurements_block_window():
    circuit = Circuit(1, 1)
    circuit.add(g("x", [0]))
    circuit.add(Measurement(0, 0))
    circuit.add(g("x", [0]))
    out = run_peephole(circuit)
    assert len(out.gates) == 2


def test_peephole_preserves_unitary_random():
    import itertools

    rng = np.random.default_rng(7)
    names = ["x", "h", "s", "t", "z", "sdg", "tdg"]
    for trial in range(20):
        # Pin both wires with un-cancellable rotations so compaction
        # cannot renumber them.
        gates = [g("p", [0], params=[0.123]), g("p", [1], params=[0.123])]
        for _ in range(12):
            name = names[rng.integers(len(names))]
            qubit = int(rng.integers(2))
            gates.append(g(name, [qubit]))
        out = run_peephole(make(2, gates))
        before = unitary_of_gates(gates, 2)
        after = unitary_of_gates(out.gates, 2)
        assert np.allclose(before, after)
