"""Tests for multi-controlled gate decomposition (paper §6.5)."""

import math

import numpy as np
import pytest

from repro.qcircuit import Circuit, CircuitGate, decompose_multi_controlled
from repro.qcircuit.selinger import full_toffoli, relative_phase_toffoli
from repro.sim import unitary_of_gates


def g(name, targets, controls=(), params=(), ctrl_states=()):
    return CircuitGate(
        name, tuple(targets), tuple(controls), tuple(params), tuple(ctrl_states)
    )


def mc_unitary(name, num_controls, params=(), ctrl_states=None):
    """Reference unitary of an n-controlled gate via the simulator."""
    gate = g(
        name,
        [num_controls] if name != "swap" else [num_controls, num_controls + 1],
        controls=range(num_controls),
        params=params,
        ctrl_states=ctrl_states or (),
    )
    targets = 2 if name == "swap" else 1
    return unitary_of_gates([gate], num_controls + targets), gate


def check_decomposition(name, num_controls, params=(), ctrl_states=None,
                        use_selinger=True):
    expected, gate = mc_unitary(name, num_controls, params, ctrl_states)
    targets = 2 if name == "swap" else 1
    circuit = Circuit(num_controls + targets)
    circuit.add(gate)
    out = decompose_multi_controlled(circuit, use_selinger=use_selinger)
    # No multi-controlled gates remain.
    assert all(len(gate.controls) <= 1 for gate in out.gates)
    assert all(
        not gate.controls or gate.name == "x" for gate in out.gates
    )
    got = unitary_of_gates(out.gates, out.num_qubits)
    # Compare on the sector where ancillas are |0>.
    dim = 2 ** (num_controls + targets)
    stride = 2 ** (out.num_qubits - num_controls - targets)
    got_sector = got[::stride, ::stride]
    assert np.allclose(got_sector, expected, atol=1e-9), name
    # Ancillas must be returned to |0>: columns map sector to sector.
    full_cols = got[:, ::stride]
    assert np.allclose(
        np.abs(full_cols[::stride, :]), np.abs(expected), atol=1e-9
    )
    return out


def test_full_toffoli_exact():
    got = unitary_of_gates(full_toffoli(0, 1, 2), 3)
    expected, _ = mc_unitary("x", 2)
    assert np.allclose(got, expected)


def test_relative_phase_toffoli_is_ccx_up_to_phase():
    got = unitary_of_gates(relative_phase_toffoli(0, 1, 2), 3)
    expected, _ = mc_unitary("x", 2)
    # Same absolute amplitudes (a relative-phase Toffoli).
    assert np.allclose(np.abs(got), np.abs(expected))
    # And compute/uncompute cancels the phases exactly.
    roundtrip = unitary_of_gates(
        relative_phase_toffoli(0, 1, 2)
        + [gate.dagger() for gate in reversed(relative_phase_toffoli(0, 1, 2))],
        3,
    )
    assert np.allclose(roundtrip, np.eye(8))


def test_ccx_decomposition():
    check_decomposition("x", 2)


def test_c3x_decomposition():
    check_decomposition("x", 3)


def test_c4x_decomposition():
    check_decomposition("x", 4)


def test_c3x_naive_decomposition():
    check_decomposition("x", 3, use_selinger=False)


def test_selinger_beats_naive_t_count():
    circuit = Circuit(6)
    circuit.add(g("x", [5], controls=[0, 1, 2, 3, 4]))
    selinger = decompose_multi_controlled(circuit, use_selinger=True)
    naive = decompose_multi_controlled(circuit, use_selinger=False)

    def t_count(c):
        return sum(1 for gate in c.gates if gate.name in ("t", "tdg"))

    assert t_count(selinger) < t_count(naive)


def test_negative_controls():
    check_decomposition("x", 2, ctrl_states=(0, 1))
    check_decomposition("x", 3, ctrl_states=(0, 0, 1))


def test_controlled_z():
    check_decomposition("z", 1)
    check_decomposition("z", 2)


def test_controlled_h():
    check_decomposition("h", 1)
    check_decomposition("h", 2)


def test_controlled_phase():
    check_decomposition("p", 1, params=(math.pi / 3,))
    check_decomposition("p", 2, params=(0.7,))


def test_controlled_rotations():
    check_decomposition("ry", 1, params=(0.9,))
    check_decomposition("rx", 1, params=(1.1,))


def test_controlled_rz_up_to_phase():
    # CRZ decomposition is exact (not merely up to phase).
    check_decomposition("rz", 1, params=(0.5,))


def test_controlled_s():
    check_decomposition("s", 1)
    check_decomposition("sdg", 1)


def test_controlled_y():
    check_decomposition("y", 1)


def test_controlled_swap():
    check_decomposition("swap", 1)
    check_decomposition("swap", 2)


def test_plain_gates_untouched():
    circuit = Circuit(2)
    circuit.add(g("h", [0]))
    circuit.add(g("x", [1], controls=[0]))
    out = decompose_multi_controlled(circuit)
    assert [gate.name for gate in out.gates] == ["h", "x"]
