"""The CI perf-regression gate (benchmarks/check_bench_json.py).

Unit-tests the gate's comparison logic with synthetic BENCH files in
tmp_path: min-aggregation of repeated records, the >max-ratio failure,
the <=max-ratio pass, the sub-jitter-floor skip, the missing-key
failure, and the new-key warning.  The gate's end-to-end behaviour
(schema check + self-test against real benchmark output) runs in CI's
benchmark-smoke job; these tests keep the decision logic honest under
plain ``pytest``.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
_MODULE_PATH = REPO_ROOT / "benchmarks" / "check_bench_json.py"

# check_bench_json imports the benchmark conftest by inserting
# benchmarks/ onto sys.path; load it the same way it runs in CI.
_spec = importlib.util.spec_from_file_location(
    "check_bench_json", _MODULE_PATH
)
check_bench_json = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_bench_json", check_bench_json)
_spec.loader.exec_module(check_bench_json)


def _bench_payload(records):
    full = []
    for benchmark, config, wall_ms in records:
        full.append(
            {
                "benchmark": benchmark,
                "config": config,
                "wall_ms": wall_ms,
                "shots": None,
                "evolutions": None,
                "gates_fused": None,
                "kernel": None,
            }
        )
    return {"schema": "repro-bench-v1", "name": "test", "records": full}


def _write(path: Path, records) -> Path:
    path.write_text(json.dumps(_bench_payload(records)))
    return path


def test_wall_times_takes_minimum_per_key(tmp_path):
    path = _write(
        tmp_path / "BENCH_x.json",
        [
            ("bench-a", "cfg", 120.0),
            ("bench-a", "cfg", 80.0),  # min wins: least-noisy statistic
            ("bench-a", "cfg", 95.0),
            ("bench-b", "cfg", 10.0),
        ],
    )
    times = check_bench_json.wall_times(path)
    assert times == {("bench-a", "cfg"): 80.0, ("bench-b", "cfg"): 10.0}


def test_compare_detects_regression(tmp_path):
    current = _write(tmp_path / "cur.json", [("bench", "cfg", 50.0)])
    baseline = _write(tmp_path / "base.json", [("bench", "cfg", 20.0)])
    problems, warnings = check_bench_json.compare_file(
        current, baseline, max_ratio=2.0, min_wall_ms=5.0
    )
    assert len(problems) == 1
    assert "2.50x > 2.00x" in problems[0]
    assert not warnings


def test_compare_passes_within_ratio(tmp_path):
    current = _write(tmp_path / "cur.json", [("bench", "cfg", 39.0)])
    baseline = _write(tmp_path / "base.json", [("bench", "cfg", 20.0)])
    problems, warnings = check_bench_json.compare_file(
        current, baseline, max_ratio=2.0, min_wall_ms=5.0
    )
    assert not problems
    assert not warnings


def test_compare_skips_jitter_dominated_baselines(tmp_path):
    # 1ms -> 100ms is a 100x "regression", but sub-floor baselines are
    # noise, not signal: no gate.
    current = _write(tmp_path / "cur.json", [("bench", "cfg", 100.0)])
    baseline = _write(tmp_path / "base.json", [("bench", "cfg", 1.0)])
    problems, _ = check_bench_json.compare_file(
        current, baseline, max_ratio=2.0, min_wall_ms=5.0
    )
    assert not problems


def test_compare_fails_on_missing_key(tmp_path):
    current = _write(tmp_path / "cur.json", [("bench", "other", 10.0)])
    baseline = _write(tmp_path / "base.json", [("bench", "cfg", 10.0)])
    problems, _ = check_bench_json.compare_file(
        current, baseline, max_ratio=2.0, min_wall_ms=5.0
    )
    assert len(problems) == 1
    assert "in baseline but not in current run" in problems[0]


def test_compare_warns_on_new_key(tmp_path):
    current = _write(
        tmp_path / "cur.json",
        [("bench", "cfg", 10.0), ("bench", "new-config", 10.0)],
    )
    baseline = _write(tmp_path / "base.json", [("bench", "cfg", 10.0)])
    problems, warnings = check_bench_json.compare_file(
        current, baseline, max_ratio=2.0, min_wall_ms=5.0
    )
    assert not problems
    assert len(warnings) == 1
    assert "no baseline entry" in warnings[0]


def test_compare_all_requires_baseline_dir(tmp_path):
    problems = check_bench_json.compare_all(
        tmp_path / "does-not-exist", max_ratio=2.0, min_wall_ms=5.0
    )
    assert len(problems) == 1
    assert "--update-baselines" in problems[0]


def test_committed_baselines_cover_the_manifest():
    baseline_dir = check_bench_json.BASELINE_DIR
    assert baseline_dir.is_dir(), (
        "benchmarks/baselines/ must be committed for the CI gate"
    )
    for name in check_bench_json.EXPECTED_BENCH_JSON:
        path = baseline_dir / name
        assert path.exists(), f"missing committed baseline {name}"
        times = check_bench_json.wall_times(path)
        assert times, f"baseline {name} has no records"
        assert all(wall >= 0.0 for wall in times.values())


def test_max_ratio_env_override(monkeypatch, tmp_path):
    # BENCH_MAX_RATIO feeds main()'s --max-ratio default: a 3x slowdown
    # fails at the 2.0 default but passes at 3.5.
    current = _write(tmp_path / "cur.json", [("bench", "cfg", 60.0)])
    baseline = _write(tmp_path / "base.json", [("bench", "cfg", 20.0)])
    for env, expect_problems in (("1.5", True), ("3.5", False)):
        monkeypatch.setenv(check_bench_json.MAX_RATIO_ENV_VAR, env)
        problems, _ = check_bench_json.compare_file(
            current, baseline, max_ratio=float(env), min_wall_ms=5.0
        )
        assert bool(problems) is expect_problems
