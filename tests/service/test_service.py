"""The async execution service (repro.service): robustness semantics.

Each test drives a real :class:`ExecutionService` through the
in-process :class:`ServiceClient` (same ``submit()`` path as TCP, no
socket timing noise) inside its own ``asyncio.run``.  The contract
under test, per docs/service.md:

- a service run returns the **same bits** as calling the execution
  stack directly with the same seed — including under injected chaos;
- overload sheds with ``QW601``, deadlines cancel with ``QW602`` (and
  actually stop the work), retry exhaustion reports ``QW603``, bad
  requests never reach the queue (``QW604``), and a draining service
  refuses new work with ``QW605``;
- every outcome is visible in ``op: "stats"``.
"""

import asyncio
import time

import pytest

from repro.algorithms import alternating_secret, bernstein_vazirani
from repro.exec.faults import FaultPlan, chunk_fault_key
from repro.exec.parallel import (
    chunk_plan,
    derive_chunk_seeds,
    parallel_run_with_info,
)
from repro.exec.retry import RetryPolicy
from repro.pipeline import compile_kernel
from repro.service import ExecutionService, ServiceClient, ServiceConfig

SHOTS = 96
SEED = 5
N = 5


def run_async(coroutine):
    return asyncio.run(coroutine)


def make_config(**overrides) -> ServiceConfig:
    defaults = dict(
        use_processes=False, parallel_workers=2, executors=2,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def direct_counts(n=N, shots=SHOTS, seed=SEED, workers=2):
    from repro.service.protocol import counts_of

    circuit = compile_kernel(
        bernstein_vazirani(alternating_secret(n))
    ).execution_circuit
    results, _ = parallel_run_with_info(
        circuit, shots, seed, workers=workers, use_processes=False
    )
    return counts_of(results)


def crash_plan(rate=0.5, n=N, shots=SHOTS, seed=SEED, workers=2):
    """A plan whose crashes all clear on the first retry (found, not
    hard-coded, so the test is independent of hash details)."""
    circuit = compile_kernel(
        bernstein_vazirani(alternating_secret(n))
    ).execution_circuit
    sizes = chunk_plan(shots, circuit.num_qubits, workers)
    seeds = derive_chunk_seeds(seed, len(sizes))
    for plan_seed in range(2000):
        plan = FaultPlan({"worker_crash": rate}, seed=plan_seed)
        if any(
            plan.should("worker_crash", chunk_fault_key(s, 0))
            for s in seeds
        ) and not any(
            plan.should("worker_crash", chunk_fault_key(s, 1))
            for s in seeds
        ):
            return plan
    raise AssertionError("no suitable fault seed in range")


# ----------------------------------------------------------------------
# The happy path: service answers == direct execution.
# ----------------------------------------------------------------------
def test_run_matches_direct_execution_bit_for_bit():
    async def scenario():
        async with ExecutionService(make_config()) as service:
            client = ServiceClient(service)
            return await client.run(
                id=1, kernel="bv", n=N, shots=SHOTS, seed=SEED, workers=2
            )

    response = run_async(scenario())
    assert response["ok"], response
    assert response["result"]["counts"] == direct_counts()
    assert response["result"]["shots"] == SHOTS
    info = response["result"]["info"]
    assert info["retries"] == 0 and not info["degraded"]


def test_repeat_requests_hit_the_compile_cache():
    async def scenario():
        async with ExecutionService(make_config()) as service:
            client = ServiceClient(service)
            first = await client.run(
                id=1, kernel="dj", n=4, shots=32, seed=1
            )
            second = await client.run(
                id=2, kernel="dj", n=4, shots=32, seed=1
            )
            return first, second

    first, second = run_async(scenario())
    assert first["result"]["counts"] == second["result"]["counts"]
    assert second["result"]["info"]["compile_cache"] == "memory"


def test_source_kernels_compile_and_run():
    source = (
        "from repro import qpu\n"
        "\n"
        "@qpu\n"
        "def flip_pair() -> \"bit[2]\":\n"
        "    return '00' | std & std.flip | std[2].measure\n"
    )

    async def scenario():
        async with ExecutionService(make_config()) as service:
            return await ServiceClient(service).run(
                id=1, source=source, shots=64, seed=1
            )

    response = run_async(scenario())
    assert response["ok"], response
    assert response["result"]["counts"] == {"01": 64}


def test_source_diagnostics_render_against_service_source():
    bad = (
        "from repro import qpu\n"
        "\n"
        "@qpu\n"
        "def broken() -> \"bit\":\n"
        "    return '0' | std.does_not_exist\n"
    )

    async def scenario():
        async with ExecutionService(make_config()) as service:
            return await ServiceClient(service).run(
                id=1, source=bad, shots=4
            )

    response = run_async(scenario())
    assert not response["ok"]
    # The frontend reparses via inspect.getsource + linecache, so the
    # caret rendering quotes the client's own source line.
    assert "does_not_exist" in response["error"]["rendered"]


def test_noise_runs_accept_channel_specs():
    async def scenario():
        async with ExecutionService(make_config()) as service:
            return await ServiceClient(service).run(
                id=1, kernel="bv", n=4, shots=64, seed=3,
                noise={"bit_flip": 0.05},
            )

    response = run_async(scenario())
    assert response["ok"], response
    assert sum(response["result"]["counts"].values()) == 64


# ----------------------------------------------------------------------
# Chaos: injected faults change telemetry, never bits.
# ----------------------------------------------------------------------
def test_chaos_run_is_bit_identical_with_retries_reported():
    plan = crash_plan()

    async def scenario():
        config = make_config(fault_plan=plan, retry=RetryPolicy())
        async with ExecutionService(config) as service:
            return await ServiceClient(service).run(
                id=1, kernel="bv", n=N, shots=SHOTS, seed=SEED, workers=2
            )

    response = run_async(scenario())
    assert response["ok"], response
    assert response["result"]["counts"] == direct_counts()
    info = response["result"]["info"]
    assert info["retries"] >= 1 and info["faults_injected"] >= 1


def test_retry_budget_exhaustion_surfaces_qw603():
    async def scenario():
        config = make_config(
            fault_plan=FaultPlan({"worker_crash": 1.0}),
            retry=RetryPolicy(max_attempts=2, budget=3),
        )
        async with ExecutionService(config) as service:
            client = ServiceClient(service)
            response = await client.run(id=1, kernel="bv", n=4, shots=32)
            stats = await client.stats()
            return response, stats

    response, stats = run_async(scenario())
    assert not response["ok"]
    assert response["error"]["code"] == "QW603"
    assert response["error"]["retryable"] is True
    assert "max_attempts=2" in response["error"]["rendered"]
    assert stats["result"]["error_codes"]["QW603"] == 1
    assert stats["result"]["counters"]["failed"] == 1


# ----------------------------------------------------------------------
# Deadlines.
# ----------------------------------------------------------------------
def test_deadline_cancels_mid_execution_promptly():
    async def scenario():
        config = make_config(
            default_deadline=0.3,
            retry=RetryPolicy(timeout=0.1),
            fault_plan=FaultPlan(
                {"worker_hang": 1.0}, hang_seconds=0.4
            ),
        )
        async with ExecutionService(config) as service:
            start = time.monotonic()
            response = await ServiceClient(service).run(
                id=1, kernel="bv", n=4, shots=64
            )
            return response, time.monotonic() - start

    response, elapsed = run_async(scenario())
    assert not response["ok"]
    assert response["error"]["code"] == "QW602"
    assert response["error"]["retryable"] is True
    assert elapsed < 2.0  # cancelled, not run to completion


def test_deadline_expired_while_queued_skips_execution():
    async def scenario():
        # One executor busy with a long run; a short-deadline request
        # behind it must expire in the queue without spending compute.
        config = make_config(executors=1)
        async with ExecutionService(config) as service:
            client = ServiceClient(service)
            blocker = asyncio.create_task(
                client.run(id=1, kernel="grover", n=7, shots=2048)
            )
            await asyncio.sleep(0.05)  # let the blocker start
            rushed = await client.run(
                id=2, kernel="bv", n=4, shots=16, deadline=0.001
            )
            await blocker
            return rushed

    response = run_async(scenario())
    assert not response["ok"]
    assert response["error"]["code"] == "QW602"
    assert "queued" in response["error"]["message"]


def test_deadline_is_capped_by_the_server_maximum():
    async def scenario():
        # The client asks for an hour; the server cap of 0.2s governs.
        # The injected hang makes the run outlast the cap.
        config = make_config(
            max_deadline=0.2,
            retry=RetryPolicy(timeout=0.1),
            fault_plan=FaultPlan(
                {"worker_hang": 1.0}, hang_seconds=0.4
            ),
        )
        async with ExecutionService(config) as service:
            return await ServiceClient(service).run(
                id=1, kernel="bv", n=4, shots=64, deadline=3600.0
            )

    response = run_async(scenario())
    assert not response["ok"]
    assert response["error"]["code"] == "QW602"


# ----------------------------------------------------------------------
# Backpressure and drain.
# ----------------------------------------------------------------------
def test_full_queue_sheds_with_qw601():
    async def scenario():
        config = make_config(
            executors=1, parallel_workers=1, queue_limit=2
        )
        async with ExecutionService(config) as service:
            client = ServiceClient(service)
            jobs = [
                asyncio.create_task(
                    client.run(
                        id=i, kernel="grover", n=8, shots=512, seed=i
                    )
                )
                for i in range(8)
            ]
            responses = await asyncio.gather(*jobs)
            stats = await client.stats()
            return responses, stats

    responses, stats = run_async(scenario())
    shed = [r for r in responses if not r["ok"]]
    served = [r for r in responses if r["ok"]]
    assert served and shed  # overload, not outage
    for response in shed:
        assert response["error"]["code"] == "QW601"
        assert response["error"]["retryable"] is True
    assert stats["result"]["counters"]["shed"] == len(shed)
    # Shedding is backpressure, not failure.
    assert stats["result"]["counters"]["failed"] == 0


def test_draining_service_refuses_new_work_with_qw605():
    async def scenario():
        service = ExecutionService(make_config())
        await service.start()
        client = ServiceClient(service)
        before = await client.run(id=1, kernel="bv", n=4, shots=16)
        await service.drain()
        after = await client.run(id=2, kernel="bv", n=4, shots=16)
        return before, after

    before, after = run_async(scenario())
    assert before["ok"]
    assert not after["ok"]
    assert after["error"]["code"] == "QW605"


def test_unstarted_service_is_unavailable_not_hung():
    async def scenario():
        service = ExecutionService(make_config())
        return await ServiceClient(service).run(
            id=1, kernel="bv", n=4, shots=16
        )

    response = run_async(scenario())
    assert not response["ok"]
    assert response["error"]["code"] == "QW605"


def test_priority_orders_queued_work():
    async def scenario():
        # Single executor, blocked: everything queued behind it drains
        # in priority order, not submission order.
        config = make_config(executors=1, parallel_workers=1)
        order = []
        async with ExecutionService(config) as service:
            client = ServiceClient(service)

            async def tracked(request_id, priority):
                response = await client.run(
                    id=request_id, kernel="bv", n=4, shots=16,
                    priority=priority,
                )
                assert response["ok"], response
                order.append(request_id)

            blocker = asyncio.create_task(
                client.run(id=0, kernel="grover", n=7, shots=1024)
            )
            await asyncio.sleep(0.05)
            jobs = [
                asyncio.create_task(tracked("low", 9)),
                asyncio.create_task(tracked("high", 1)),
                asyncio.create_task(tracked("mid", 5)),
            ]
            await asyncio.sleep(0.01)  # all three enqueued
            await asyncio.gather(blocker, *jobs)
        return order

    order = run_async(scenario())
    assert order == ["high", "mid", "low"]


# ----------------------------------------------------------------------
# Validation and observability through the full stack.
# ----------------------------------------------------------------------
def test_bad_requests_never_reach_the_queue():
    async def scenario():
        async with ExecutionService(make_config()) as service:
            client = ServiceClient(service)
            responses = [
                await client.run(id=1, kernel="not_an_algorithm"),
                await client.run(id=2),  # neither kernel nor source
                await client.run(id=3, kernel="bv", shots=0),
                await service.submit({"op": "teleport", "id": 4}),
            ]
            stats = await client.stats()
            return responses, stats

    responses, stats = run_async(scenario())
    for response in responses:
        assert not response["ok"]
        assert response["error"]["code"] == "QW604"
    # Shape errors are rejected before admission; only the unknown
    # kernel name (whose vocabulary lives in repro.evaluation, not the
    # protocol) is discovered at execution time.
    assert stats["result"]["counters"]["accepted"] == 1
    assert stats["result"]["error_codes"]["QW604"] == 4


def test_unknown_preset_reports_the_compilers_code():
    async def scenario():
        async with ExecutionService(make_config()) as service:
            return await ServiceClient(service).run(
                id=1, kernel="bv", n=4, shots=16, preset="warp_speed"
            )

    response = run_async(scenario())
    assert not response["ok"]
    assert response["error"]["code"] == "QW301"
    assert "warp_speed" in response["error"]["message"]


def test_health_and_stats_report_counters_and_cache():
    async def scenario():
        async with ExecutionService(make_config()) as service:
            client = ServiceClient(service)
            await client.run(id=1, kernel="bv", n=4, shots=16)
            await client.run(id=2, kernel="bv", n=4, shots=16)
            health = await client.health()
            stats = await client.stats()
            return health, stats

    health, stats = run_async(scenario())
    assert health["ok"]
    assert health["result"]["status"] == "ok"
    counters = stats["result"]["counters"]
    assert counters["completed"] == 2
    assert counters["received"] >= 4
    cache = stats["result"]["compile_cache"]
    assert cache["memory_hits"] >= 1
    assert stats["result"]["uptime_s"] >= 0


def test_stats_counts_injected_faults_service_wide():
    plan = crash_plan()

    async def scenario():
        config = make_config(fault_plan=plan, retry=RetryPolicy())
        async with ExecutionService(config) as service:
            client = ServiceClient(service)
            await client.run(
                id=1, kernel="bv", n=N, shots=SHOTS, seed=SEED, workers=2
            )
            return await client.stats()

    stats = run_async(scenario())
    counters = stats["result"]["counters"]
    assert counters["retries"] >= 1
    assert counters["faults_injected"] >= 1


def test_responses_resolve_concurrently_not_serially():
    async def scenario():
        config = make_config(executors=2)
        async with ExecutionService(config) as service:
            client = ServiceClient(service)
            jobs = [
                client.run(id=i, kernel="bv", n=4, shots=32, seed=i)
                for i in range(6)
            ]
            return await asyncio.gather(*jobs)

    responses = run_async(scenario())
    assert all(response["ok"] for response in responses)
    assert len({r["id"] for r in responses}) == 6


@pytest.mark.parametrize("kernel", ["bv", "dj", "simon"])
def test_algorithm_vocabulary_runs(kernel):
    async def scenario():
        async with ExecutionService(make_config()) as service:
            return await ServiceClient(service).run(
                id=1, kernel=kernel, n=4, shots=32, seed=2
            )

    response = run_async(scenario())
    assert response["ok"], response
    assert sum(response["result"]["counts"].values()) == 32
