"""The TCP front end (repro.service.server): JSON lines over a socket.

End-to-end through a real ``asyncio.start_server`` on an ephemeral
port: pipelined requests interleave on one connection and are matched
by ``id``; malformed lines get coded error lines instead of dropped
connections; chaos injected under the service still answers every
request with correct bits.
"""

import asyncio
import json

from repro.exec.faults import FaultPlan
from repro.exec.retry import RetryPolicy
from repro.service import ExecutionService, ServiceConfig
from repro.service.server import handle_connection


async def _with_server(config, scenario):
    async with ExecutionService(config) as service:
        server = await asyncio.start_server(
            lambda r, w: handle_connection(service, r, w),
            "127.0.0.1",
            0,
        )
        port = server.sockets[0].getsockname()[1]
        async with server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            try:
                return await scenario(reader, writer)
            finally:
                writer.close()
                await writer.wait_closed()


def _config(**overrides):
    defaults = dict(
        use_processes=False, parallel_workers=2, executors=2,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def _send(writer, payload):
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()


async def _collect(reader, count, timeout=60.0):
    responses = {}
    for _ in range(count):
        line = await asyncio.wait_for(reader.readline(), timeout=timeout)
        response = json.loads(line)
        responses[response["id"]] = response
    return responses


def test_pipelined_requests_match_by_id():
    async def scenario(reader, writer):
        for index in range(4):
            await _send(
                writer,
                {
                    "id": index, "kernel": "bv", "n": 4,
                    "shots": 32, "seed": index,
                },
            )
        await _send(writer, {"id": 99, "op": "health"})
        return await _collect(reader, 5)

    responses = asyncio.run(_with_server(_config(), scenario))
    for index in range(4):
        assert responses[index]["ok"], responses[index]
        assert sum(responses[index]["result"]["counts"].values()) == 32
    assert responses[99]["result"]["status"] == "ok"


def test_same_seed_same_bits_across_connections():
    async def scenario(reader, writer):
        await _send(
            writer, {"id": 1, "kernel": "bv", "n": 5, "shots": 64,
                     "seed": 7},
        )
        return await _collect(reader, 1)

    first = asyncio.run(_with_server(_config(), scenario))
    second = asyncio.run(_with_server(_config(), scenario))
    assert first[1]["result"]["counts"] == second[1]["result"]["counts"]


def test_malformed_line_gets_an_error_line_not_a_hangup():
    async def scenario(reader, writer):
        writer.write(b"{ this is not json\n")
        await writer.drain()
        responses = await _collect(reader, 1)
        # The connection survived: a valid request still works.
        await _send(writer, {"id": 2, "op": "health"})
        responses.update(await _collect(reader, 1))
        return responses

    responses = asyncio.run(_with_server(_config(), scenario))
    assert responses[None]["error"]["code"] == "QW604"
    assert responses[2]["ok"]


def test_blank_lines_are_ignored():
    async def scenario(reader, writer):
        writer.write(b"\n\n")
        await _send(writer, {"id": 1, "op": "health"})
        return await _collect(reader, 1)

    responses = asyncio.run(_with_server(_config(), scenario))
    assert responses[1]["ok"]


def test_chaos_under_tcp_still_answers_every_request():
    config = _config(
        fault_plan=FaultPlan({"worker_crash": 0.2}, seed=3),
        retry=RetryPolicy(),
    )

    async def scenario(reader, writer):
        for index in range(6):
            await _send(
                writer,
                {
                    "id": index, "kernel": "bv", "n": 4,
                    "shots": 48, "seed": index,
                },
            )
        return await _collect(reader, 6)

    responses = asyncio.run(_with_server(config, scenario))
    assert all(responses[i]["ok"] for i in range(6))
    total_faults = sum(
        responses[i]["result"]["info"]["faults_injected"]
        for i in range(6)
    )
    clean = asyncio.run(
        _with_server(
            _config(),
            lambda r, w: _chaos_compare(r, w),
        )
    )
    for index in range(6):
        assert responses[index]["result"]["counts"] == clean[index][
            "result"
        ]["counts"]
    assert total_faults >= 0  # telemetry present even if no draw fired


async def _chaos_compare(reader, writer):
    for index in range(6):
        await _send(
            writer,
            {
                "id": index, "kernel": "bv", "n": 4,
                "shots": 48, "seed": index,
            },
        )
    return await _collect(reader, 6)
