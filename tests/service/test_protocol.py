"""The wire protocol (repro.service.protocol): validation and envelopes.

Pure unit tests — no event loop, no simulator.  Every malformed input
must become a coded ``BadRequestError`` (QW604) *before* any queueing
or compute is spent on it, and every exception must serialize into the
same structured error envelope.
"""

import json

import pytest

from repro.errors import (
    BadRequestError,
    DeadlineExceededError,
    QueueFullError,
)
from repro.service import protocol


# ----------------------------------------------------------------------
# parse_request: the line layer.
# ----------------------------------------------------------------------
def test_parse_accepts_bytes_and_str():
    assert protocol.parse_request('{"op": "health"}') == {"op": "health"}
    assert protocol.parse_request(b'{"op": "stats"}') == {"op": "stats"}


def test_parse_rejects_garbage_with_coded_error():
    with pytest.raises(BadRequestError) as excinfo:
        protocol.parse_request("this is not json\n")
    assert excinfo.value.code == "QW604"


def test_parse_rejects_non_object_payloads():
    with pytest.raises(BadRequestError, match="JSON object"):
        protocol.parse_request("[1, 2, 3]")


def test_parse_rejects_unknown_op():
    with pytest.raises(BadRequestError, match="unknown op"):
        protocol.parse_request('{"op": "launch_missiles"}')


# ----------------------------------------------------------------------
# RunRequest.from_payload: field validation.
# ----------------------------------------------------------------------
def test_run_request_defaults():
    request = protocol.RunRequest.from_payload({"kernel": "bv"})
    assert (request.n, request.shots, request.seed) == (4, 256, 0)
    assert request.priority == 5
    assert request.deadline is None


def test_exactly_one_of_kernel_or_source():
    with pytest.raises(BadRequestError, match="exactly one"):
        protocol.RunRequest.from_payload({})
    with pytest.raises(BadRequestError, match="exactly one"):
        protocol.RunRequest.from_payload(
            {"kernel": "bv", "source": "def f(): pass"}
        )


def test_shots_ceiling_is_enforced():
    with pytest.raises(BadRequestError, match="ceiling"):
        protocol.RunRequest.from_payload(
            {"kernel": "bv", "shots": protocol.MAX_SHOTS + 1}
        )


def test_integer_fields_reject_floats_bools_and_minima():
    with pytest.raises(BadRequestError, match="'shots'"):
        protocol.RunRequest.from_payload({"kernel": "bv", "shots": 1.5})
    with pytest.raises(BadRequestError, match="'shots'"):
        protocol.RunRequest.from_payload({"kernel": "bv", "shots": True})
    with pytest.raises(BadRequestError, match=">= 1"):
        protocol.RunRequest.from_payload({"kernel": "bv", "shots": 0})
    with pytest.raises(BadRequestError, match=">= 1"):
        protocol.RunRequest.from_payload({"kernel": "bv", "workers": 0})


def test_deadline_must_be_a_positive_number():
    with pytest.raises(BadRequestError, match="'deadline'"):
        protocol.RunRequest.from_payload(
            {"kernel": "bv", "deadline": "soon"}
        )
    with pytest.raises(BadRequestError, match="> 0"):
        protocol.RunRequest.from_payload({"kernel": "bv", "deadline": 0})


def test_noise_vocabulary_is_closed():
    request = protocol.RunRequest.from_payload(
        {"kernel": "bv", "noise": {"depolarizing": 0.01}}
    )
    assert request.noise == {"depolarizing": 0.01}
    with pytest.raises(BadRequestError, match="unknown noise channel"):
        protocol.RunRequest.from_payload(
            {"kernel": "bv", "noise": {"cosmic_rays": 0.5}}
        )
    with pytest.raises(BadRequestError, match="must be an object"):
        protocol.RunRequest.from_payload(
            {"kernel": "bv", "noise": "depolarizing"}
        )


# ----------------------------------------------------------------------
# Response envelopes.
# ----------------------------------------------------------------------
def test_ok_response_shape():
    response = protocol.ok_response(7, {"counts": {"00": 4}})
    assert response == {
        "id": 7, "ok": True, "result": {"counts": {"00": 4}},
    }


def test_error_response_keeps_qwerty_code_and_rendering():
    error = QueueFullError("queue full")
    response = protocol.error_response(3, error)
    payload = response["error"]
    assert response["id"] == 3 and response["ok"] is False
    assert payload["code"] == "QW601"
    assert payload["retryable"] is True
    assert "QW601" in payload["rendered"]


def test_error_response_marks_deadline_retryable():
    payload = protocol.error_response(
        None, DeadlineExceededError("too slow")
    )["error"]
    assert payload["code"] == "QW602"
    assert payload["retryable"] is True


def test_error_response_wraps_foreign_exceptions_as_qw000():
    payload = protocol.error_response(1, RuntimeError("surprise"))["error"]
    assert payload["code"] == "QW000"
    assert payload["retryable"] is False
    assert "surprise" in payload["message"]


def test_encode_response_is_one_json_line():
    line = protocol.encode_response({"id": 1, "ok": True, "result": {}})
    assert line.endswith(b"\n")
    assert json.loads(line) == {"id": 1, "ok": True, "result": {}}
    assert b"\n" not in line[:-1]


def test_counts_of_folds_bit_tuples():
    assert protocol.counts_of([(0, 1), (0, 1), (1, 0)]) == {
        "01": 2, "10": 1,
    }
