"""Optimizer unit tests: hand-computed steps and classic test functions."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.variational import ADOPT, Adam, AdamW, minimize


def quadratic(x):
    return float(((x - 3.0) ** 2).sum())


def quadratic_grad(x):
    return 2.0 * (x - 3.0)


def rosenbrock(x):
    return float(
        100.0 * (x[1] - x[0] ** 2) ** 2 + (1.0 - x[0]) ** 2
    )


def rosenbrock_grad(x):
    return np.array(
        [
            -400.0 * x[0] * (x[1] - x[0] ** 2) - 2.0 * (1.0 - x[0]),
            200.0 * (x[1] - x[0] ** 2),
        ]
    )


class TestAdamFirstStep:
    def test_bias_correction_hand_computed(self):
        # Step 1 from zero state: m̂ = g, v̂ = g², so the update is
        # exactly lr·g/(|g|+eps) regardless of the gradient scale.
        lr, eps = 0.1, 1e-8
        opt = Adam(lr=lr, eps=eps)
        params = np.array([1.0, -2.0])
        grad = np.array([0.5, -4.0])
        new = opt.step(params, grad)
        expected = params - lr * grad / (np.abs(grad) + eps)
        assert new == pytest.approx(expected, abs=1e-12)

    def test_second_step_hand_computed(self):
        lr, b1, b2, eps = 0.1, 0.9, 0.999, 1e-8
        opt = Adam(lr=lr, beta1=b1, beta2=b2, eps=eps)
        g1, g2 = np.array([1.0]), np.array([2.0])
        x = opt.step(np.array([0.0]), g1)
        x = opt.step(x, g2)
        m = b1 * (1 - b1) * g1 + (1 - b1) * g2
        v = b2 * (1 - b2) * g1**2 + (1 - b2) * g2**2
        m_hat = m / (1 - b1**2)
        v_hat = v / (1 - b2**2)
        expected = (
            np.array([0.0])
            - lr * g1 / (np.abs(g1) + eps)
            - lr * m_hat / (np.sqrt(v_hat) + eps)
        )
        assert x == pytest.approx(expected, abs=1e-12)

    def test_input_not_mutated(self):
        opt = Adam()
        params = np.array([1.0, 2.0])
        opt.step(params, np.array([0.1, 0.2]))
        assert params == pytest.approx([1.0, 2.0])

    def test_shape_mismatch_rejected(self):
        opt = Adam()
        opt.step(np.zeros(2), np.ones(2))
        with pytest.raises(SimulationError, match="shape"):
            opt.step(np.zeros(3), np.ones(3))

    def test_bad_hyperparameters_rejected(self):
        with pytest.raises(SimulationError):
            Adam(beta1=1.0)
        with pytest.raises(SimulationError):
            Adam(lr=0.0)
        with pytest.raises(SimulationError):
            ADOPT(beta2=-0.1)


class TestAdamW:
    def test_decay_is_decoupled(self):
        # With a zero gradient, AdamW still shrinks the parameters by
        # lr·wd per step (decay bypasses the adaptive moments), while
        # classic Adam with weight_decay feeds it through the moments.
        opt = AdamW(lr=0.1, weight_decay=0.5)
        params = np.array([2.0])
        new = opt.step(params, np.zeros(1))
        assert new == pytest.approx([2.0 * (1.0 - 0.1 * 0.5)])

    def test_matches_adam_when_decay_zero(self):
        a, w = Adam(lr=0.05), AdamW(lr=0.05, weight_decay=0.0)
        x_a = x_w = np.array([1.0, -1.0])
        for _ in range(5):
            g_a, g_w = 2 * (x_a - 3), 2 * (x_w - 3)
            x_a, x_w = a.step(x_a, g_a), w.step(x_w, g_w)
        assert x_a == pytest.approx(x_w, abs=1e-12)


class TestADOPT:
    def test_first_step_only_seeds_second_moment(self):
        opt = ADOPT(lr=0.1)
        params = np.array([1.0, 2.0])
        new = opt.step(params, np.array([3.0, 4.0]))
        assert new == pytest.approx(params)
        assert opt.v == pytest.approx([9.0, 16.0])

    def test_second_step_uses_previous_v(self):
        lr, b1, eps = 0.1, 0.9, 1e-6
        opt = ADOPT(lr=lr, beta1=b1, eps=eps)
        x = opt.step(np.array([0.0]), np.array([2.0]))  # v = 4
        x = opt.step(x, np.array([1.0]))
        # m = (1-b1)·g/sqrt(v_prev) = 0.1·1/2; x -= lr·m.
        assert x == pytest.approx([-lr * (1 - b1) * 1.0 / 2.0])


class TestConvergence:
    @pytest.mark.parametrize(
        "optimizer",
        [Adam(lr=0.1), AdamW(lr=0.1, weight_decay=1e-4), ADOPT(lr=0.1)],
        ids=["adam", "adamw", "adopt"],
    )
    def test_quadratic(self, optimizer):
        result = minimize(
            quadratic, quadratic_grad, [0.0, 0.0],
            optimizer=optimizer, steps=300,
        )
        assert result["loss"] < 1e-2
        assert result["history"][0] == pytest.approx(18.0)
        assert result["history"][-1] < result["history"][0]

    def test_rosenbrock_adam(self):
        result = minimize(
            rosenbrock, rosenbrock_grad, [-1.2, 1.0],
            optimizer=Adam(lr=0.02), steps=4000,
        )
        assert result["loss"] < 1e-2
        assert result["x"] == pytest.approx([1.0, 1.0], abs=0.1)

    def test_minimize_returns_best_not_last(self):
        # A deliberately overshooting optimizer: the best-seen iterate
        # must be what comes back.
        losses = []
        result = minimize(
            quadratic,
            quadratic_grad,
            [0.0, 0.0],
            optimizer=Adam(lr=5.0),
            steps=20,
            callback=lambda i, x, loss: losses.append(loss),
        )
        assert result["loss"] == min(result["history"])
        assert len(losses) == 20
