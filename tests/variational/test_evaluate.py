"""Batched grid evaluation vs per-point evaluation — they must agree.

``evaluate_grid`` stacks a whole parameter sweep into the leading axis
of one ``(G, 2, …, 2)`` state tensor; these tests pin it to the scalar
path (`expectation`) point by point, including controlled gates (the
shared ``control_sliced_view`` slicing) and multi-parameter affine
angles (the einsum path).
"""

import numpy as np
import pytest

from repro.errors import QwertyTypeError, SimulationError
from repro.parameters import ParamExpr, Parameter
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement, Reset
from repro.variational import (
    evaluate_grid,
    exact_probabilities,
    expectation,
    hardware_efficient_ansatz,
    ising_observable,
    maxcut_observable,
    qaoa_maxcut_ansatz,
)
from repro.variational.evaluate import grid_probabilities

theta = Parameter("theta")
phi = Parameter("phi")


def _controlled_symbolic_circuit() -> Circuit:
    """h, controlled-p(2θ+0.1), rx(φ): controls + affine + plain mix."""
    circuit = Circuit(2, 0)
    circuit.add(CircuitGate("h", (0,)))
    circuit.add(CircuitGate("h", (1,)))
    circuit.add(
        CircuitGate("p", (1,), controls=(0,), params=(2 * theta + 0.1,))
    )
    circuit.add(CircuitGate("rx", (1,), params=(ParamExpr.of(phi),)))
    circuit.add(CircuitGate("x", (0,), controls=(1,), ctrl_states=(0,)))
    return circuit


class TestExactProbabilities:
    def test_bell_distribution(self):
        circuit = Circuit(2, 0)
        circuit.add(CircuitGate("h", (0,)))
        circuit.add(CircuitGate("x", (1,), controls=(0,)))
        probs = exact_probabilities(circuit)
        assert probs == pytest.approx([0.5, 0.0, 0.0, 0.5])

    def test_symbolic_circuit_requires_values(self):
        circuit = Circuit(1, 0)
        circuit.add(CircuitGate("ry", (0,), params=(ParamExpr.of(theta),)))
        with pytest.raises(QwertyTypeError, match="theta"):
            exact_probabilities(circuit)
        probs = exact_probabilities(circuit, {"theta": np.pi})
        assert probs == pytest.approx([0.0, 1.0])

    def test_rejects_mid_circuit_measurement_and_reset(self):
        circuit = Circuit(1, 1)
        circuit.add(Measurement(0, 0))
        circuit.add(CircuitGate("x", (0,)))
        with pytest.raises(SimulationError, match="mid-circuit"):
            exact_probabilities(circuit)
        resetting = Circuit(1, 0)
        resetting.add(Reset(0))
        with pytest.raises(SimulationError, match="reset"):
            exact_probabilities(resetting)


class TestExpectation:
    def test_exact_vs_sampled_agree(self):
        circuit, params = hardware_efficient_ansatz(3, layers=1)
        obs = ising_observable(3, [(0, 1), (1, 2)], h=0.2)
        rng = np.random.default_rng(3)
        values = {p.name: rng.uniform(-1, 1) for p in params}
        exact = expectation(circuit, obs, values)
        sampled = expectation(circuit, obs, values, shots=60_000, seed=1)
        assert sampled == pytest.approx(exact, abs=0.05)

    def test_shots_validation(self):
        circuit, _ = hardware_efficient_ansatz(1, layers=0)
        obs = ising_observable(1, [], h=1.0)
        with pytest.raises(SimulationError, match="shots"):
            expectation(circuit, obs, {"theta_0_0": 0.1}, shots=0)


class TestEvaluateGrid:
    def test_matches_per_point_on_hea(self):
        circuit, params = hardware_efficient_ansatz(3, layers=2)
        obs = ising_observable(3, [(0, 1), (1, 2)], j=0.8, h=-0.4)
        rng = np.random.default_rng(0)
        grid = {p.name: rng.uniform(-np.pi, np.pi, 11) for p in params}
        batched = evaluate_grid(circuit, obs, grid)
        for g in range(11):
            point = {name: grid[name][g] for name in grid}
            assert batched[g] == pytest.approx(
                expectation(circuit, obs, point), abs=1e-12
            )

    def test_matches_per_point_with_controls_and_affine_angles(self):
        circuit = _controlled_symbolic_circuit()
        obs = maxcut_observable([(0, 1)])
        rng = np.random.default_rng(1)
        grid = {
            "theta": rng.uniform(-np.pi, np.pi, 9),
            "phi": rng.uniform(-np.pi, np.pi, 9),
        }
        batched = evaluate_grid(circuit, obs, grid)
        for g in range(9):
            point = {name: grid[name][g] for name in grid}
            assert batched[g] == pytest.approx(
                expectation(circuit, obs, point), abs=1e-12
            )

    def test_qaoa_grid(self):
        circuit, params = qaoa_maxcut_ansatz(4, [(0, 1), (1, 2), (2, 3)])
        obs = maxcut_observable([(0, 1), (1, 2), (2, 3)])
        grid = {
            p.name: np.linspace(0.1, 1.2, 6) * (i + 1)
            for i, p in enumerate(params)
        }
        batched = evaluate_grid(circuit, obs, grid)
        assert batched.shape == (6,)
        point = {p.name: grid[p.name][2] for p in params}
        assert batched[2] == pytest.approx(
            expectation(circuit, obs, point), abs=1e-12
        )

    def test_parameter_objects_accepted_as_grid_keys(self):
        circuit = Circuit(1, 0)
        circuit.add(CircuitGate("ry", (0,), params=(ParamExpr.of(theta),)))
        obs = ising_observable(1, [], h=1.0)
        angles = np.linspace(0.0, np.pi, 5)
        by_name = evaluate_grid(circuit, obs, {"theta": angles})
        by_param = evaluate_grid(circuit, obs, {theta: angles})
        assert by_name == pytest.approx(by_param)
        # <Z> under ry(t) is cos(t).
        assert by_name == pytest.approx(np.cos(angles), abs=1e-12)

    def test_grid_validation(self):
        circuit = Circuit(1, 0)
        circuit.add(CircuitGate("ry", (0,), params=(ParamExpr.of(theta),)))
        obs = ising_observable(1, [], h=1.0)
        with pytest.raises(QwertyTypeError, match="missing"):
            evaluate_grid(circuit, obs, {})
        with pytest.raises(QwertyTypeError, match="mismatched"):
            grid_probabilities(
                circuit, {"theta": [0.1, 0.2], "phi": [0.3]}
            )

    def test_empty_grid(self):
        circuit = Circuit(1, 0)
        circuit.add(CircuitGate("ry", (0,), params=(ParamExpr.of(theta),)))
        probs = grid_probabilities(circuit, {"theta": []})
        assert probs.shape == (0, 2)
