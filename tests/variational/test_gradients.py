"""Gradient correctness: parameter shift vs central finite differences.

Exact simulation makes the finite-difference oracle accurate to
~O(step²) ≈ 1e-12, so the two must agree to ~1e-7 — far tighter than
any plausible implementation error.  Also pins the validity boundary:
the two-term rule covers controlled ``p`` but NOT controlled
``rx``/``ry``/``rz``.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.parameters import ParamExpr, Parameter
from repro.qcircuit.circuit import Circuit, CircuitGate
from repro.variational import (
    finite_difference_gradient,
    hardware_efficient_ansatz,
    ising_observable,
    maxcut_observable,
    parameter_shift_gradient,
    qaoa_maxcut_ansatz,
)

theta = Parameter("theta")


def _random_values(params, seed):
    rng = np.random.default_rng(seed)
    return {p.name: float(v) for p, v in zip(
        params, rng.uniform(-np.pi, np.pi, len(params))
    )}


class TestShiftMatchesFiniteDifferences:
    @pytest.mark.parametrize("layers", [1, 2])
    def test_hardware_efficient_ansatz(self, layers):
        circuit, params = hardware_efficient_ansatz(3, layers=layers)
        obs = ising_observable(3, [(0, 1), (1, 2)], j=1.0, h=0.5)
        values = _random_values(params, seed=layers)
        shift = parameter_shift_gradient(circuit, obs, values)
        central = finite_difference_gradient(circuit, obs, values)
        assert shift == pytest.approx(central, abs=1e-6)
        # Gradients should be non-trivial at a generic point.
        assert np.abs(shift).max() > 1e-3

    def test_qaoa_chain_rule_through_scaled_angles(self):
        # The mixer rides on 2*beta — the chain rule must multiply the
        # shift slope by the coefficient for every gate occurrence.
        edges = [(0, 1), (1, 2), (0, 2)]
        circuit, params = qaoa_maxcut_ansatz(3, edges, layers=2)
        obs = maxcut_observable(edges)
        values = _random_values(params, seed=9)
        shift = parameter_shift_gradient(circuit, obs, values)
        central = finite_difference_gradient(circuit, obs, values)
        assert shift == pytest.approx(central, abs=1e-6)

    def test_shared_parameter_across_gates(self):
        # One symbol driving two gates: contributions must sum.
        circuit = Circuit(2, 0)
        circuit.add(CircuitGate("ry", (0,), params=(ParamExpr.of(theta),)))
        circuit.add(CircuitGate("ry", (1,), params=(3 * theta,)))
        obs = ising_observable(2, [(0, 1)])
        values = {"theta": 0.37}
        shift = parameter_shift_gradient(circuit, obs, values)
        central = finite_difference_gradient(circuit, obs, values)
        assert shift == pytest.approx(central, abs=1e-6)

    def test_controlled_p_supported(self):
        circuit = Circuit(2, 0)
        circuit.add(CircuitGate("h", (0,)))
        circuit.add(CircuitGate("h", (1,)))
        circuit.add(
            CircuitGate("p", (1,), controls=(0,), params=(ParamExpr.of(theta),))
        )
        circuit.add(CircuitGate("h", (1,)))
        obs = ising_observable(2, [(0, 1)])
        values = {"theta": 0.81}
        shift = parameter_shift_gradient(circuit, obs, values)
        central = finite_difference_gradient(circuit, obs, values)
        assert shift == pytest.approx(central, abs=1e-6)

    def test_known_closed_form(self):
        # <Z> of ry(t)|0> is cos(t); gradient is -sin(t).
        circuit = Circuit(1, 0)
        circuit.add(CircuitGate("ry", (0,), params=(ParamExpr.of(theta),)))
        obs = ising_observable(1, [], h=1.0)
        for t in (0.0, 0.4, 1.3, np.pi / 2):
            [g] = parameter_shift_gradient(circuit, obs, {"theta": t})
            assert g == pytest.approx(-np.sin(t), abs=1e-12)


class TestValidityBoundary:
    def test_controlled_rotation_refused(self):
        circuit = Circuit(2, 0)
        circuit.add(CircuitGate("h", (0,)))
        circuit.add(
            CircuitGate(
                "rz", (1,), controls=(0,), params=(ParamExpr.of(theta),)
            )
        )
        obs = ising_observable(2, [(0, 1)])
        with pytest.raises(SimulationError, match="three"):
            parameter_shift_gradient(circuit, obs, {"theta": 0.5})

    def test_gradient_restricted_to_requested_parameters(self):
        circuit, params = hardware_efficient_ansatz(2, layers=1)
        obs = ising_observable(2, [(0, 1)])
        values = _random_values(params, seed=4)
        subset = params[:2]
        partial = parameter_shift_gradient(circuit, obs, values, subset)
        full = parameter_shift_gradient(circuit, obs, values)
        assert partial == pytest.approx(full[:2], abs=1e-12)

    def test_finite_difference_requires_all_values(self):
        circuit, params = hardware_efficient_ansatz(2, layers=0)
        obs = ising_observable(2, [(0, 1)])
        from repro.errors import QwertyTypeError

        with pytest.raises(QwertyTypeError, match="theta_0_1"):
            finite_difference_gradient(circuit, obs, {"theta_0_0": 0.1})
