"""Convergence tests for the VQE and QAOA drivers (fixed seeds)."""

import pytest

from repro.variational import ADOPT, run_qaoa_maxcut, run_vqe


class TestVQE:
    def test_loss_decreases_and_approaches_ground(self):
        result = run_vqe(num_qubits=3, layers=1, steps=40, seed=0)
        assert result["final_loss"] < result["initial_loss"]
        assert len(result["history"]) == 41
        # Within 20% of the exact ground energy of the 3-site chain.
        gap = result["final_loss"] - result["ground_energy"]
        assert gap < 0.2 * abs(result["ground_energy"])

    def test_record_is_complete(self):
        result = run_vqe(num_qubits=2, layers=1, steps=5, seed=1)
        assert set(result["values"]) == set(result["parameters"])
        assert result["final_loss"] == result["loss"]
        assert result["circuit"].num_qubits == 2

    def test_seed_determinism(self):
        a = run_vqe(num_qubits=2, layers=1, steps=8, seed=3)
        b = run_vqe(num_qubits=2, layers=1, steps=8, seed=3)
        assert a["history"] == b["history"]

    def test_alternate_optimizer(self):
        result = run_vqe(
            num_qubits=2, layers=1, steps=30, seed=0,
            optimizer=ADOPT(lr=0.2),
        )
        assert result["final_loss"] < result["initial_loss"]


class TestQAOA:
    def test_finds_the_ring_cut(self):
        result = run_qaoa_maxcut(num_qubits=4, layers=2, steps=30, seed=0)
        assert result["final_loss"] < result["initial_loss"]
        assert result["max_cut"] == 4
        # The most probable bitstring at the optimum is a maximum cut.
        assert result["cut_value"] == result["max_cut"]

    def test_triangle(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        result = run_qaoa_maxcut(
            num_qubits=3, edges=edges, layers=2, steps=30, seed=2
        )
        assert result["max_cut"] == 2
        assert result["final_loss"] < result["initial_loss"]
        assert result["final_loss"] == pytest.approx(
            -result["max_cut"], abs=1.0
        )
