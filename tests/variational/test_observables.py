"""Unit tests for diagonal Z-string observables."""

import pytest

from repro.errors import SimulationError
from repro.variational import (
    DiagonalObservable,
    ising_observable,
    maxcut_observable,
)


class TestDiagonalObservable:
    def test_value_on_bitstrings(self):
        obs = DiagonalObservable(((1.0, (0, 1)), (0.5, (1,))), constant=2.0)
        # ZZ on (0,0) = +1, Z on 0 = +1 → 2 + 1 + 0.5.
        assert obs.value((0, 0)) == pytest.approx(3.5)
        # ZZ on (0,1) = -1, Z on 1 = -1 → 2 - 1 - 0.5.
        assert obs.value((0, 1)) == pytest.approx(0.5)

    def test_eigenvalues_match_value_pointwise(self):
        obs = ising_observable(3, [(0, 1), (1, 2)], j=0.7, h=-0.3)
        values = obs.eigenvalues(3)
        for x in range(8):
            bits = tuple((x >> (2 - q)) & 1 for q in range(3))
            assert values[x] == pytest.approx(obs.value(bits))

    def test_eigenvalues_width_check(self):
        obs = DiagonalObservable(((1.0, (0, 3)),))
        with pytest.raises(SimulationError, match="qubit 3"):
            obs.eigenvalues(2)

    def test_duplicate_qubit_in_term_rejected(self):
        with pytest.raises(SimulationError, match="twice"):
            DiagonalObservable(((1.0, (0, 0)),))

    def test_expectation_from_counts(self):
        obs = DiagonalObservable(((1.0, (0,)),))
        # Z on qubit 0: "0..." → +1, "1..." → -1.
        counts = {"00": 3, "10": 1}
        assert obs.expectation_from_counts(counts) == pytest.approx(0.5)
        tuple_counts = {(0, 0): 3, (1, 0): 1}
        assert obs.expectation_from_counts(tuple_counts) == pytest.approx(0.5)

    def test_empty_histogram_rejected(self):
        with pytest.raises(SimulationError, match="empty"):
            DiagonalObservable(()).expectation_from_counts({})


class TestFactories:
    def test_ising_ground_energy_on_a_path(self):
        # Antiferromagnetic J>0 on a path: alternating spins minimize,
        # energy -(n-1)·J at h=0.
        obs = ising_observable(4, [(0, 1), (1, 2), (2, 3)], j=1.0)
        assert obs.eigenvalues(4).min() == pytest.approx(-3.0)
        assert obs.value((0, 1, 0, 1)) == pytest.approx(-3.0)

    def test_maxcut_observable_counts_cut_edges(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        obs = maxcut_observable(edges)
        for x in range(8):
            bits = tuple((x >> (2 - q)) & 1 for q in range(3))
            cut = sum(1 for a, b in edges if bits[a] != bits[b])
            assert obs.value(bits) == pytest.approx(-float(cut))
        # A triangle's max cut is 2.
        assert obs.eigenvalues(3).min() == pytest.approx(-2.0)

    def test_maxcut_minimum_is_negated_max_cut(self):
        ring = [(q, (q + 1) % 4) for q in range(4)]
        assert maxcut_observable(ring).eigenvalues(4).min() == pytest.approx(
            -4.0
        )
