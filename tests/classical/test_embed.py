"""Tests for Bennett/sign embeddings, verified by simulation."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.classical import (
    LogicNetwork,
    synthesize_sign_embedding,
    synthesize_xor_embedding,
)
from repro.classical.network import reduce_signals
from repro.qcircuit.circuit import CircuitGate
from repro.sim import apply_gates_to_state


def check_xor_embedding(network):
    """Exhaustively check U_f |x>|0> = |x>|f(x)> and ancilla cleanup."""
    oracle = synthesize_xor_embedding(network)
    n = oracle.num_inputs
    m = oracle.num_outputs
    total = oracle.num_qubits
    for x in range(2**n):
        x_bits = [(x >> (n - 1 - i)) & 1 for i in range(n)]
        prep = [
            CircuitGate("x", (i,)) for i, bit in enumerate(x_bits) if bit
        ]
        state = apply_gates_to_state(prep + oracle.gates, total)
        index = np.argmax(np.abs(state))
        assert abs(state[index]) > 1 - 1e-9, "output is not a basis state"
        out_bits = [(index >> (total - 1 - q)) & 1 for q in range(total)]
        assert out_bits[:n] == x_bits, "inputs must be preserved"
        expected = network.evaluate(x_bits)
        assert out_bits[n : n + m] == expected
        assert all(b == 0 for b in out_bits[n + m :]), "dirty ancilla"
    return oracle


def check_sign_embedding(network):
    oracle = synthesize_sign_embedding(network)
    n = oracle.num_inputs
    total = oracle.num_qubits
    for x in range(2**n):
        x_bits = [(x >> (n - 1 - i)) & 1 for i in range(n)]
        prep = [
            CircuitGate("x", (i,)) for i, bit in enumerate(x_bits) if bit
        ]
        state = apply_gates_to_state(prep + oracle.gates, total)
        index = np.argmax(np.abs(state))
        out_bits = [(index >> (total - 1 - q)) & 1 for q in range(total)]
        assert out_bits[:n] == x_bits
        assert all(b == 0 for b in out_bits[n:])
        expected_sign = (-1) ** network.evaluate(x_bits)[0]
        assert np.isclose(state[index], expected_sign)
    return oracle


def test_identity_wire():
    net = LogicNetwork(1)
    net.add_output(net.inputs[0])
    oracle = check_xor_embedding(net)
    assert oracle.num_ancillas == 0


def test_xor_of_inputs_uses_no_ancillas():
    # The tweedledum-style property the paper credits (§8.3): pure XOR
    # functions need no ancilla qubits.
    net = LogicNetwork(4)
    net.add_output(reduce_signals(net, net.inputs, net.xor_))
    oracle = check_xor_embedding(net)
    assert oracle.num_ancillas == 0
    assert all(g.name == "x" for g in oracle.gates)


def test_and_reduce_single_mcx():
    # An AND tree collapses to one multi-controlled X.
    net = LogicNetwork(3)
    net.add_output(reduce_signals(net, net.inputs, net.and_))
    oracle = check_xor_embedding(net)
    assert oracle.num_ancillas == 0
    mcx = [g for g in oracle.gates if g.controls]
    assert len(mcx) == 1
    assert mcx[0].num_controls == 3


def test_complemented_inputs_become_negative_controls():
    net = LogicNetwork(2)
    a, b = net.inputs
    net.add_output(net.and_(~a, b))
    oracle = check_xor_embedding(net)
    mcx = [g for g in oracle.gates if g.controls][0]
    assert set(zip(mcx.controls, mcx.ctrl_states)) == {(0, 0), (1, 1)}


def test_or_via_demorgan():
    net = LogicNetwork(2)
    a, b = net.inputs
    net.add_output(net.or_(a, b))
    check_xor_embedding(net)


def test_nested_and_of_xor_uses_ancilla():
    # (a ^ b) & c: the XOR operand is computed into an ancilla and
    # uncomputed afterwards.
    net = LogicNetwork(3)
    a, b, c = net.inputs
    net.add_output(net.and_(net.xor_(a, b), c))
    oracle = check_xor_embedding(net)
    assert oracle.num_ancillas == 1


def test_multi_output():
    net = LogicNetwork(2)
    a, b = net.inputs
    net.add_output(net.xor_(a, b))
    net.add_output(net.and_(a, b))
    check_xor_embedding(net)


def test_constant_outputs():
    net = LogicNetwork(1)
    net.add_output(net.true)
    net.add_output(net.false)
    check_xor_embedding(net)


def test_sign_embedding_all_ones():
    # The Grover oracle: match input of all 1s.
    net = LogicNetwork(3)
    net.add_output(reduce_signals(net, net.inputs, net.and_))
    check_sign_embedding(net)


def test_sign_embedding_parity():
    # The Bernstein-Vazirani shape: sign of a parity function.
    net = LogicNetwork(3)
    net.add_output(reduce_signals(net, net.inputs, net.xor_))
    check_sign_embedding(net)


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_random_networks(data):
    """Random small XAGs embed correctly."""
    num_inputs = data.draw(st.integers(min_value=1, max_value=3))
    net = LogicNetwork(num_inputs)
    pool = list(net.inputs) + [net.true]
    for _ in range(data.draw(st.integers(min_value=1, max_value=5))):
        op = data.draw(st.sampled_from(["and", "xor", "or", "not"]))
        a = data.draw(st.sampled_from(pool))
        if op == "not":
            pool.append(~a)
            continue
        b = data.draw(st.sampled_from(pool))
        fn = {"and": net.and_, "xor": net.xor_, "or": net.or_}[op]
        pool.append(fn(a, b))
    net.add_output(pool[-1])
    check_xor_embedding(net)
