"""Tests for the XAG logic network."""

from hypothesis import given, strategies as st

from repro.classical.network import LogicNetwork, reduce_signals


def test_constant_folding_and():
    net = LogicNetwork(2)
    a, b = net.inputs
    assert net.and_(a, net.false) == net.false
    assert net.and_(a, net.true) == a
    assert net.and_(a, a) == a
    assert net.and_(a, ~a) == net.false


def test_constant_folding_xor():
    net = LogicNetwork(2)
    a, b = net.inputs
    assert net.xor_(a, net.false) == a
    assert net.xor_(a, net.true) == ~a
    assert net.xor_(a, a) == net.false
    assert net.xor_(a, ~a) == net.true


def test_structural_hashing():
    net = LogicNetwork(2)
    a, b = net.inputs
    first = net.and_(a, b)
    second = net.and_(b, a)  # Commuted operands hash the same.
    assert first == second
    assert net.num_and_nodes() == 0  # Not yet an output.
    net.add_output(first)
    assert net.num_and_nodes() == 1


def test_xor_complement_normalization():
    net = LogicNetwork(2)
    a, b = net.inputs
    assert net.xor_(~a, b) == ~net.xor_(a, b)
    assert net.xor_(~a, ~b) == net.xor_(a, b)


def test_evaluate_majority():
    net = LogicNetwork(3)
    a, b, c = net.inputs
    maj = net.or_(net.or_(net.and_(a, b), net.and_(b, c)), net.and_(a, c))
    net.add_output(maj)
    for x in range(8):
        bits = [(x >> 2) & 1, (x >> 1) & 1, x & 1]
        expected = 1 if sum(bits) >= 2 else 0
        assert net.evaluate(bits) == [expected]


def test_evaluate_with_complemented_output():
    net = LogicNetwork(1)
    (a,) = net.inputs
    net.add_output(~a)
    assert net.evaluate([0]) == [1]
    assert net.evaluate([1]) == [0]


def test_reduce_signals_xor():
    net = LogicNetwork(4)
    total = reduce_signals(net, net.inputs, net.xor_)
    net.add_output(total)
    for x in range(16):
        bits = [(x >> (3 - i)) & 1 for i in range(4)]
        assert net.evaluate(bits) == [sum(bits) % 2]


def test_reduce_signals_empty():
    net = LogicNetwork(0)
    assert reduce_signals(net, [], net.xor_) == net.false


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
def test_bitwise_ops_against_python(x_value, mask):
    """The network agrees with Python's bitwise semantics."""
    net = LogicNetwork(8)
    bits = net.inputs
    masked = [
        net.and_(bit, net.constant(bool((mask >> (7 - i)) & 1)))
        for i, bit in enumerate(bits)
    ]
    parity = reduce_signals(net, masked, net.xor_)
    net.add_output(parity)
    x_bits = [(x_value >> (7 - i)) & 1 for i in range(8)]
    expected = bin(x_value & mask).count("1") % 2
    assert net.evaluate(x_bits) == [expected]
