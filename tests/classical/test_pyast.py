"""Tests for the @classical Python frontend (paper §6.4)."""

import pytest

from repro.errors import QwertySyntaxError, QwertyTypeError
from repro.frontend.decorators import Bits, bit, classical, N


def evaluate(fn, bits_in):
    return fn.evaluate(Bits(bits_in))


def test_bitwise_and_or_xor_not():
    mask = bit.from_str("1100")

    @classical[N](mask)
    def f(mask: bit[N], x: bit[N]) -> bit[N]:
        return (x & mask) | (~x & ~mask) ^ (x ^ x)

    for value in range(16):
        xs = [(value >> (3 - i)) & 1 for i in range(4)]
        expected = [
            (x & m) | ((1 - x) & (1 - m)) for x, m in zip(xs, (1, 1, 0, 0))
        ]
        assert list(evaluate(f, xs)) == expected


def test_indexing_and_slicing():
    @classical[N]
    def f(x: bit[N]) -> bit[2]:
        return x[0] + x[1:2]

    f_bound = _bind(f, 3)
    assert list(f_bound.evaluate(Bits([1, 0, 1]), {"N": 3})) == [1, 0]


def _bind(f, n):
    return f


def test_concatenation():
    @classical[N]
    def f(x: bit[N]) -> bit[4]:
        return x + x

    assert list(f.evaluate(Bits([1, 0]), {"N": 2})) == [1, 0, 1, 0]


def test_reductions():
    @classical[N]
    def parity(x: bit[N]) -> bit:
        return x.xor_reduce()

    @classical[N]
    def all_ones(x: bit[N]) -> bit:
        return x.and_reduce()

    @classical[N]
    def any_one(x: bit[N]) -> bit:
        return x.or_reduce()

    assert parity.evaluate(Bits([1, 1, 1]), {"N": 3}) == Bits([1])
    assert all_ones.evaluate(Bits([1, 1, 0]), {"N": 3}) == Bits([0])
    assert any_one.evaluate(Bits([0, 0, 1]), {"N": 3}) == Bits([1])


def test_repeat():
    @classical[N]
    def f(x: bit[N]) -> bit[N]:
        return x[0].repeat(N)

    assert f.evaluate(Bits([1, 0, 0]), {"N": 3}) == Bits([1, 1, 1])


def test_intermediate_assignments():
    @classical[N]
    def f(x: bit[N]) -> bit:
        masked = x & x
        folded = masked.xor_reduce()
        return folded

    assert f.evaluate(Bits([1, 1, 0]), {"N": 3}) == Bits([0])


def test_capture_constant_folds():
    # BV with a zero secret folds the whole oracle to constant 0:
    # the synthesized network has no gates at all.
    secret = bit.from_str("000")

    @classical[N](secret)
    def f(s: bit[N], x: bit[N]) -> bit:
        return (s & x).xor_reduce()

    network = f.network({"N": 3})
    assert network.num_and_nodes() == 0
    assert network.num_xor_nodes() == 0


def test_width_mismatch_rejected():
    @classical[N]
    def f(x: bit[N], y: bit[2]) -> bit[N]:
        return x & y

    with pytest.raises(QwertyTypeError, match="equal width"):
        f.network({"N": 3})


def test_missing_annotation_rejected():
    with pytest.raises(QwertySyntaxError):
        @classical[N]
        def f(x) -> bit:
            return x


def test_unsupported_statement_rejected():
    @classical[N]
    def f(x: bit[N]) -> bit:
        while True:
            pass
        return x.xor_reduce()

    with pytest.raises(QwertySyntaxError):
        f.network({"N": 2})


def test_missing_return_rejected():
    @classical[N]
    def f(x: bit[N]) -> bit:
        y = x & x  # noqa

    with pytest.raises(QwertySyntaxError, match="no return"):
        f.network({"N": 2})
