"""Tests for the full Qwerty IR optimization pipeline (paper §5.4)."""

from repro.basis.basis import pm, std
from repro.dialects import qwerty
from repro.ir import Builder, FuncOp, FunctionType, ModuleOp, QBundleType
from repro.ir.core import walk
from repro.ir.verifier import verify_module
from repro.qwerty_ir import run_qwerty_opt
from repro.qwerty_ir.pipeline import drop_unused_private_funcs


def rev_type(n=1):
    return FunctionType((QBundleType(n),), (QBundleType(n),), reversible=True)


def test_lambda_then_inline_end_to_end():
    module = ModuleOp()
    kernel = FuncOp("kernel", rev_type())
    builder = Builder(kernel.entry)
    lam = qwerty.lambda_op(builder, rev_type())
    lam_builder = Builder(lam.regions[0].entry)
    out = qwerty.qbtrans(
        lam_builder, lam.regions[0].entry.args[0], std(1), pm(1)
    )
    qwerty.return_op(lam_builder, [out])
    call = qwerty.call_indirect(builder, lam.result, [kernel.entry.args[0]])
    qwerty.return_op(builder, [call.results[0]])
    module.add(kernel)
    module.entry_point = "kernel"

    run_qwerty_opt(module)
    verify_module(module)
    assert list(module.funcs) == ["kernel"]
    ops = [op.name for op in module.get("kernel").entry.ops]
    assert ops == [qwerty.QBTRANS, qwerty.RETURN]


def test_no_opt_mode_only_lifts():
    module = ModuleOp()
    kernel = FuncOp("kernel", rev_type())
    builder = Builder(kernel.entry)
    lam = qwerty.lambda_op(builder, rev_type())
    lam_builder = Builder(lam.regions[0].entry)
    qwerty.return_op(lam_builder, [lam.regions[0].entry.args[0]])
    call = qwerty.call_indirect(builder, lam.result, [kernel.entry.args[0]])
    qwerty.return_op(builder, [call.results[0]])
    module.add(kernel)
    module.entry_point = "kernel"

    run_qwerty_opt(module, inline=False)
    ops = [op.name for op in walk(module.get("kernel").entry)]
    assert qwerty.CALL_INDIRECT in ops
    assert qwerty.FUNC_CONST in ops
    assert qwerty.LAMBDA not in ops


def test_drop_unused_private_funcs_keeps_referenced():
    module = ModuleOp()
    used = FuncOp("used", rev_type(), visibility="private")
    builder = Builder(used.entry)
    qwerty.return_op(builder, [used.entry.args[0]])
    module.add(used)

    unused = FuncOp("unused", rev_type(), visibility="private")
    builder = Builder(unused.entry)
    qwerty.return_op(builder, [unused.entry.args[0]])
    module.add(unused)

    kernel = FuncOp("kernel", rev_type())
    builder = Builder(kernel.entry)
    call = qwerty.call(builder, "used", [kernel.entry.args[0]], [QBundleType(1)])
    qwerty.return_op(builder, [call.results[0]])
    module.add(kernel)
    module.entry_point = "kernel"

    drop_unused_private_funcs(module)
    assert "used" in module.funcs
    assert "unused" not in module.funcs
    assert "kernel" in module.funcs


def test_public_funcs_never_dropped():
    module = ModuleOp()
    public = FuncOp("isolated", rev_type(), visibility="public")
    builder = Builder(public.entry)
    qwerty.return_op(builder, [public.entry.args[0]])
    module.add(public)
    drop_unused_private_funcs(module)
    assert "isolated" in module.funcs
