"""Tests for lambda lifting (paper §5.4, step 1 of inlining)."""

import pytest

from repro.basis.basis import pm, std
from repro.dialects import arith, qwerty
from repro.errors import LoweringError
from repro.ir import Builder, FuncOp, FunctionType, ModuleOp, QBundleType
from repro.ir.verifier import verify_module
from repro.qwerty_ir import lift_lambdas


def rev_type(n=1):
    return FunctionType((QBundleType(n),), (QBundleType(n),), reversible=True)


def test_nested_lambdas_lift_innermost_first():
    module = ModuleOp()
    func = FuncOp("f", rev_type())
    builder = Builder(func.entry)
    outer = qwerty.lambda_op(builder, rev_type())
    outer_builder = Builder(outer.regions[0].entry)
    inner = qwerty.lambda_op(outer_builder, rev_type())
    inner_builder = Builder(inner.regions[0].entry)
    qwerty.return_op(inner_builder, [inner.regions[0].entry.args[0]])
    call = qwerty.call_indirect(
        outer_builder, inner.result, [outer.regions[0].entry.args[0]]
    )
    qwerty.return_op(outer_builder, [call.results[0]])
    top_call = qwerty.call_indirect(builder, outer.result, [func.entry.args[0]])
    qwerty.return_op(builder, [top_call.results[0]])
    module.add(func)

    lift_lambdas(module)
    verify_module(module)
    lifted = [name for name in module.funcs if name.startswith("lambda")]
    assert len(lifted) == 2
    for name in lifted:
        body_ops = [op.name for op in module.get(name).entry.ops]
        assert qwerty.LAMBDA not in body_ops


def test_lambda_capturing_constant_rematerializes():
    module = ModuleOp()
    func = FuncOp("f", rev_type())
    builder = Builder(func.entry)
    angle = arith.constant(builder, 45.0)
    lam = qwerty.lambda_op(builder, rev_type())
    lam_builder = Builder(lam.regions[0].entry)
    from repro.basis import Basis

    out = qwerty.qbtrans(
        lam_builder,
        lam.regions[0].entry.args[0],
        Basis.literal("1"),
        Basis.literal("1"),
        [angle],
        [("out", 0)],
    )
    qwerty.return_op(lam_builder, [out])
    call = qwerty.call_indirect(builder, lam.result, [func.entry.args[0]])
    qwerty.return_op(builder, [call.results[0]])
    module.add(func)

    lift_lambdas(module)
    verify_module(module)
    lifted = next(f for f in module if f.name.startswith("lambda"))
    assert any(op.name == arith.CONSTANT for op in lifted.entry.ops)


def test_lambda_capturing_quantum_value_rejected():
    module = ModuleOp()
    func = FuncOp("f", FunctionType((QBundleType(2),), (QBundleType(2),), True))
    builder = Builder(func.entry)
    qubits = qwerty.qbunpack(builder, func.entry.args[0])
    stray = qwerty.qbpack(builder, [qubits[0]])
    lam = qwerty.lambda_op(builder, rev_type())
    lam_builder = Builder(lam.regions[0].entry)
    inner_qubits = qwerty.qbunpack(lam_builder, lam.regions[0].entry.args[0])
    stray_qubits = qwerty.qbunpack(lam_builder, stray)  # Captured qubit!
    merged = qwerty.qbpack(lam_builder, stray_qubits)
    qwerty.qbdiscard(lam_builder, merged)
    qwerty.return_op(
        lam_builder, [qwerty.qbpack(lam_builder, inner_qubits)]
    )
    rest = qwerty.qbpack(builder, [qubits[1]])
    call = qwerty.call_indirect(builder, lam.result, [rest])
    out = qwerty.qbunpack(builder, call.results[0])
    qwerty.return_op(builder, [qwerty.qbpack(builder, out + [])])
    module.add(func)

    with pytest.raises(LoweringError, match="re-materializable"):
        lift_lambdas(module)
