"""Tests for function specialization analysis (paper §6.2, Appendix D)."""

from repro.basis import Basis
from repro.basis.basis import pm, std
from repro.dialects import qwerty
from repro.ir import Builder, FuncOp, FunctionType, ModuleOp, QBundleType
from repro.ir.verifier import verify_module
from repro.qwerty_ir import analyze_specializations, generate_specializations
from repro.qwerty_ir.specialize import Specialization


def rev_type(n=1):
    return FunctionType((QBundleType(n),), (QBundleType(n),), reversible=True)


def trans_func(module, name):
    func = FuncOp(name, rev_type(), visibility="private")
    builder = Builder(func.entry)
    out = qwerty.qbtrans(builder, func.entry.args[0], std(1), pm(1))
    qwerty.return_op(builder, [out])
    module.add(func)
    return func


def call_func(module, name, callee, adj=False, pred=None):
    func = FuncOp(name, rev_type(), visibility="private")
    builder = Builder(func.entry)
    call = qwerty.call(
        builder, callee, [func.entry.args[0]], [QBundleType(1)], adj=adj, pred=pred
    )
    qwerty.return_op(builder, [call.results[0]])
    module.add(func)
    return func


def test_transitive_adjoint_requirement():
    # Paper Appendix D: f calls adj g; g calls h; so adj h is needed
    # even though no explicit `call adj h` exists.
    module = ModuleOp()
    trans_func(module, "h")
    call_func(module, "g", "h")
    call_func(module, "f", "g", adj=True)
    module.entry_point = "f"

    needed = analyze_specializations(module)
    assert Specialization("h", True, 0) in needed
    assert Specialization("g", True, 0) in needed
    assert Specialization("f", False, 0) in needed


def test_unreachable_specializations_dropped():
    module = ModuleOp()
    trans_func(module, "h")
    call_func(module, "g", "h")
    call_func(module, "f", "g", adj=True)
    # An unreachable function with its own exotic call.
    call_func(module, "island", "h", adj=True)
    module.entry_point = "f"

    needed = analyze_specializations(module)
    assert Specialization("island", False, 0) not in needed


def test_generate_adjoint_specialization():
    module = ModuleOp()
    trans_func(module, "g")
    call_func(module, "f", "g", adj=True)
    module.entry_point = "f"

    generate_specializations(module)
    verify_module(module)
    call = [op for op in module.get("f").entry.ops if op.name == qwerty.CALL][0]
    assert call.attrs["adj"] is False
    specialized = module.get(call.attrs["callee"])
    assert specialized.specialization_of == ("g", True, 0)
    trans = [
        op for op in specialized.entry.ops if op.name == qwerty.QBTRANS
    ][0]
    assert trans.attrs["bin"] == pm(1)


def test_generate_predicated_specialization():
    module = ModuleOp()
    trans_func(module, "g")
    call_func(module, "f", "g", pred=Basis.literal("1"))
    # Widen f's type to account for the predicate qubit.
    module.funcs["f"].type = FunctionType(
        (QBundleType(2),), (QBundleType(2),), reversible=True
    )
    module.entry_point = "f"
    # Rebuild f properly: one arg of qbundle[2].
    module.remove("f")
    func = FuncOp("f", FunctionType((QBundleType(2),), (QBundleType(2),), True))
    builder = Builder(func.entry)
    call = qwerty.call(
        builder,
        "g",
        [func.entry.args[0]],
        [QBundleType(2)],
        pred=Basis.literal("1"),
    )
    qwerty.return_op(builder, [call.results[0]])
    module.add(func)

    generate_specializations(module)
    verify_module(module)
    call = [op for op in module.get("f").entry.ops if op.name == qwerty.CALL][0]
    specialized = module.get(call.attrs["callee"])
    assert specialized.specialization_of == ("g", False, 1)
    assert specialized.type.inputs == (QBundleType(2),)


def test_transitive_generation_fixpoint():
    # Generating adj(f) introduces `call adj g` which must also be
    # satisfied in the same pass.
    module = ModuleOp()
    trans_func(module, "h")
    call_func(module, "g", "h")
    call_func(module, "f", "g", adj=True)
    module.entry_point = "f"

    generate_specializations(module)
    verify_module(module)
    specialized = [
        f.specialization_of for f in module if f.specialization_of is not None
    ]
    assert ("g", True, 0) in specialized
    assert ("h", True, 0) in specialized


def test_specializations_are_cached():
    module = ModuleOp()
    trans_func(module, "g")
    func = FuncOp("f", FunctionType((QBundleType(2),), (QBundleType(2),), True))
    builder = Builder(func.entry)
    qubits = qwerty.qbunpack(builder, func.entry.args[0])
    first = qwerty.qbpack(builder, [qubits[0]])
    second = qwerty.qbpack(builder, [qubits[1]])
    call1 = qwerty.call(builder, "g", [first], [QBundleType(1)], adj=True)
    call2 = qwerty.call(builder, "g", [second], [QBundleType(1)], adj=True)
    out1 = qwerty.qbunpack(builder, call1.results[0])
    out2 = qwerty.qbunpack(builder, call2.results[0])
    qwerty.return_op(builder, [qwerty.qbpack(builder, out1 + out2)])
    module.add(func)
    module.entry_point = "f"

    generate_specializations(module)
    adjoints = [
        f for f in module if f.specialization_of == ("g", True, 0)
    ]
    assert len(adjoints) == 1
