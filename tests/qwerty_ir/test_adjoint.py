"""Tests for taking the adjoint of basic blocks (paper §5.2)."""

import pytest

from repro.basis.basis import Basis, ij, pm, std
from repro.basis.primitive import PrimitiveBasis
from repro.dialects import arith, qwerty
from repro.errors import ReversibilityError
from repro.ir import Builder, FuncOp, FunctionType, ModuleOp, QBundleType
from repro.ir.verifier import verify_module
from repro.qwerty_ir import adjoint_function


def rev_type(n):
    return FunctionType((QBundleType(n),), (QBundleType(n),), reversible=True)


def test_adjoint_of_single_qbtrans():
    func = FuncOp("f", rev_type(1))
    builder = Builder(func.entry)
    out = qwerty.qbtrans(builder, func.entry.args[0], std(1), pm(1))
    qwerty.return_op(builder, [out])

    adj = adjoint_function(func, "f__adj")
    module = ModuleOp()
    module.add(func)
    module.add(adj)
    verify_module(module)

    trans_ops = [op for op in adj.entry.ops if op.name == qwerty.QBTRANS]
    assert len(trans_ops) == 1
    # ~(b1 >> b2) is b2 >> b1.
    assert trans_ops[0].attrs["bin"] == pm(1)
    assert trans_ops[0].attrs["bout"] == std(1)


def test_adjoint_reverses_op_order():
    func = FuncOp("f", rev_type(1))
    builder = Builder(func.entry)
    mid = qwerty.qbtrans(builder, func.entry.args[0], std(1), pm(1))
    out = qwerty.qbtrans(builder, mid, pm(1), ij(1))
    qwerty.return_op(builder, [out])

    adj = adjoint_function(func, "f__adj")
    trans_ops = [op for op in adj.entry.ops if op.name == qwerty.QBTRANS]
    assert len(trans_ops) == 2
    # First adjoint op inverts the *last* original op.
    assert trans_ops[0].attrs["bin"] == ij(1)
    assert trans_ops[0].attrs["bout"] == pm(1)
    assert trans_ops[1].attrs["bin"] == pm(1)
    assert trans_ops[1].attrs["bout"] == std(1)


def test_stationary_ops_stay(paper_fig4=None):
    # Paper Fig. 4: arith ops computing a phase are not adjointed.
    func = FuncOp("f", rev_type(1))
    builder = Builder(func.entry)
    pi = arith.constant(builder, 3.14)
    two = arith.constant(builder, 2.0)
    half = arith.divf(builder, pi, two)
    basis_in = Basis.literal("0", "1")
    basis_out = Basis.literal("0", "1")
    out = qwerty.qbtrans(
        builder,
        func.entry.args[0],
        basis_in,
        basis_out,
        [half],
        [("out", 1)],
    )
    qwerty.return_op(builder, [out])

    adj = adjoint_function(func, "f__adj")
    names = [op.name for op in adj.entry.ops]
    assert names.count("arith.constant") == 2
    assert names.count("arith.divf") == 1
    trans = [op for op in adj.entry.ops if op.name == qwerty.QBTRANS][0]
    # The dynamic phase slot flips sides with its basis.
    assert trans.attrs["phase_slots"] == (("in", 1),)
    # The stationary value feeds the adjointed translation.
    assert trans.operands[1].owner_op.name == "arith.divf"


def test_adjoint_pack_unpack():
    func = FuncOp("f", rev_type(2))
    builder = Builder(func.entry)
    qubits = qwerty.qbunpack(builder, func.entry.args[0])
    bundle = qwerty.qbpack(builder, [qubits[1], qubits[0]])
    qwerty.return_op(builder, [bundle])

    adj = adjoint_function(func, "f__adj")
    module = ModuleOp()
    module.add(func)
    module.add(adj)
    verify_module(module)
    # The adjoint of a renaming swap is the reverse renaming swap.
    names = [op.name for op in adj.entry.ops]
    assert names == [
        qwerty.QBUNPACK,
        qwerty.QBPACK,
        qwerty.RETURN,
    ]


def test_adjoint_of_prep_is_unprep():
    func = FuncOp("f", FunctionType((), (QBundleType(1),), reversible=True))
    builder = Builder(func.entry)
    bundle = qwerty.qbprep(builder, PrimitiveBasis.PM, (1,))
    qwerty.return_op(builder, [bundle])

    adj = adjoint_function(func, "f__adj")
    names = [op.name for op in adj.entry.ops]
    assert qwerty.QBUNPREP in names


def test_adjoint_of_call_toggles_adj():
    func = FuncOp("f", rev_type(1))
    builder = Builder(func.entry)
    call = qwerty.call(
        builder, "g", [func.entry.args[0]], [QBundleType(1)], adj=True
    )
    qwerty.return_op(builder, [call.results[0]])

    adj = adjoint_function(func, "f__adj")
    call_ops = [op for op in adj.entry.ops if op.name == qwerty.CALL]
    assert call_ops[0].attrs["adj"] is False


def test_adjoint_of_call_indirect_wraps_func_adj():
    fn_type = rev_type(1)
    func = FuncOp(
        "f",
        FunctionType(
            (fn_type, QBundleType(1)), (QBundleType(1),), reversible=True
        ),
    )
    builder = Builder(func.entry)
    call = qwerty.call_indirect(
        builder, func.entry.args[0], [func.entry.args[1]]
    )
    qwerty.return_op(builder, [call.results[0]])

    adj = adjoint_function(func, "f__adj")
    names = [op.name for op in adj.entry.ops]
    assert qwerty.FUNC_ADJ in names
    assert qwerty.CALL_INDIRECT in names


def test_irreversible_func_rejected():
    func = FuncOp(
        "f",
        FunctionType((QBundleType(1),), (QBundleType(1),), reversible=False),
    )
    with pytest.raises(ReversibilityError):
        adjoint_function(func, "f__adj")


def test_measure_not_adjointable():
    func = FuncOp(
        "f",
        FunctionType(
            (QBundleType(1),),
            (QBundleType(1),),
            reversible=True,
        ),
    )
    builder = Builder(func.entry)
    qwerty.qbmeas(builder, func.entry.args[0], std(1))
    # Return something bogus just to have a terminator.
    prep = qwerty.qbprep(builder, PrimitiveBasis.STD, (0,))
    qwerty.return_op(builder, [prep])
    with pytest.raises(ReversibilityError):
        adjoint_function(func, "f__adj")
