"""Tests for Qwerty IR canonicalization and inlining (paper §5.4, App. C)."""

from repro.basis import Basis
from repro.basis.basis import pm, std
from repro.dialects import arith, qwerty, scf
from repro.ir import (
    Builder,
    FuncOp,
    FunctionType,
    ModuleOp,
    QBundleType,
    inline_calls,
)
from repro.ir.core import walk
from repro.ir.types import I1
from repro.ir.verifier import verify_module
from repro.qwerty_ir import canonicalize, lift_lambdas, run_qwerty_opt


def rev_type(n):
    return FunctionType((QBundleType(n),), (QBundleType(n),), reversible=True)


def make_callee(module, name="g"):
    callee = FuncOp(name, rev_type(1), visibility="private")
    builder = Builder(callee.entry)
    out = qwerty.qbtrans(builder, callee.entry.args[0], std(1), pm(1))
    qwerty.return_op(builder, [out])
    module.add(callee)
    return callee


def test_call_indirect_func_const_becomes_call():
    module = ModuleOp()
    make_callee(module)
    func = FuncOp("f", rev_type(1))
    builder = Builder(func.entry)
    fn = qwerty.func_const(builder, "g", rev_type(1))
    call = qwerty.call_indirect(builder, fn, [func.entry.args[0]])
    qwerty.return_op(builder, [call.results[0]])
    module.add(func)

    canonicalize(module)
    verify_module(module)
    names = [op.name for op in func.entry.ops]
    assert qwerty.CALL in names
    assert qwerty.CALL_INDIRECT not in names
    assert qwerty.FUNC_CONST not in names  # DCE removed it.


def test_adj_pred_chain_folds_to_markers():
    # call_indirect(func_pred {'10'} (func_adj (func_const @f)))()
    #   --> call adj pred ({'10'}) @f()   (paper §5.4)
    module = ModuleOp()
    make_callee(module, "f_target")
    func = FuncOp("f", FunctionType((QBundleType(3),), (QBundleType(3),), True))
    builder = Builder(func.entry)
    fn = qwerty.func_const(builder, "f_target", rev_type(1))
    adj = qwerty.func_adj(builder, fn)
    pred = qwerty.func_pred(builder, adj, Basis.literal("10"))
    call = qwerty.call_indirect(builder, pred, [func.entry.args[0]])
    qwerty.return_op(builder, [call.results[0]])
    module.add(func)

    canonicalize(module)
    call_ops = [op for op in func.entry.ops if op.name == qwerty.CALL]
    assert len(call_ops) == 1
    assert call_ops[0].attrs["adj"] is True
    assert call_ops[0].attrs["pred"] == Basis.literal("10")
    assert call_ops[0].attrs["callee"] == "f_target"


def test_double_adjoint_cancels():
    module = ModuleOp()
    make_callee(module)
    func = FuncOp("f", rev_type(1))
    builder = Builder(func.entry)
    fn = qwerty.func_const(builder, "g", rev_type(1))
    adj2 = qwerty.func_adj(builder, qwerty.func_adj(builder, fn))
    call = qwerty.call_indirect(builder, adj2, [func.entry.args[0]])
    qwerty.return_op(builder, [call.results[0]])
    module.add(func)

    canonicalize(module)
    call_ops = [op for op in walk(func.entry) if op.name == qwerty.CALL]
    assert call_ops[0].attrs["adj"] is False


def test_pack_unpack_cancellation():
    module = ModuleOp()
    func = FuncOp("f", rev_type(2))
    builder = Builder(func.entry)
    qubits = qwerty.qbunpack(builder, func.entry.args[0])
    bundle = qwerty.qbpack(builder, qubits)
    qwerty.return_op(builder, [bundle])
    module.add(func)

    canonicalize(module)
    names = [op.name for op in func.entry.ops]
    assert names == [qwerty.RETURN]


def test_identity_qbtrans_removed():
    module = ModuleOp()
    func = FuncOp("f", rev_type(1))
    builder = Builder(func.entry)
    out = qwerty.qbtrans(builder, func.entry.args[0], std(1), std(1))
    qwerty.return_op(builder, [out])
    module.add(func)

    canonicalize(module)
    assert [op.name for op in func.entry.ops] == [qwerty.RETURN]


def test_scf_if_push_enables_direct_calls():
    # Paper Appendix C: call_indirect(scf.if ...) is pushed into both
    # forks, after which each fork's call_indirect(func_const) folds.
    module = ModuleOp()
    make_callee(module, "lambda3")
    make_callee(module, "lambda4")
    func = FuncOp(
        "f",
        FunctionType((I1, QBundleType(1)), (QBundleType(1),), False),
    )
    builder = Builder(func.entry)
    if_op = scf.if_op(builder, func.entry.args[0], [rev_type(1)])
    then_builder = Builder(scf.then_block(if_op))
    scf.yield_op(
        then_builder, [qwerty.func_const(then_builder, "lambda3", rev_type(1))]
    )
    else_builder = Builder(scf.else_block(if_op))
    scf.yield_op(
        else_builder, [qwerty.func_const(else_builder, "lambda4", rev_type(1))]
    )
    call = qwerty.call_indirect(builder, if_op.results[0], [func.entry.args[1]])
    qwerty.return_op(builder, [call.results[0]])
    module.add(func)

    canonicalize(module)
    verify_module(module)
    all_ops = list(walk(func.entry))
    assert not any(op.name == qwerty.CALL_INDIRECT for op in all_ops)
    call_ops = [op for op in all_ops if op.name == qwerty.CALL]
    assert {op.attrs["callee"] for op in call_ops} == {"lambda3", "lambda4"}
    # The scf.if now yields qbundles, not function values.
    if_ops = [op for op in all_ops if op.name == scf.IF]
    assert [r.type for r in if_ops[0].results] == [QBundleType(1)]


def test_lambda_lifting():
    module = ModuleOp()
    func = FuncOp("f", rev_type(1))
    builder = Builder(func.entry)
    lam = qwerty.lambda_op(builder, rev_type(1))
    lam_builder = Builder(lam.regions[0].entry)
    inner = qwerty.qbtrans(
        builder=lam_builder,
        qb=lam.regions[0].entry.args[0],
        b_in=std(1),
        b_out=pm(1),
    )
    qwerty.return_op(lam_builder, [inner])
    call = qwerty.call_indirect(builder, lam.result, [func.entry.args[0]])
    qwerty.return_op(builder, [call.results[0]])
    module.add(func)

    lift_lambdas(module)
    assert any(name.startswith("lambda") for name in module.funcs)
    names = [op.name for op in func.entry.ops]
    assert qwerty.LAMBDA not in names
    assert qwerty.FUNC_CONST in names


def test_lambda_lifting_rematerializes_captures():
    module = ModuleOp()
    make_callee(module)
    func = FuncOp("f", rev_type(1))
    builder = Builder(func.entry)
    captured = qwerty.func_const(builder, "g", rev_type(1))
    lam = qwerty.lambda_op(builder, rev_type(1))
    lam_builder = Builder(lam.regions[0].entry)
    inner_call = qwerty.call_indirect(
        lam_builder, captured, [lam.regions[0].entry.args[0]]
    )
    qwerty.return_op(lam_builder, [inner_call.results[0]])
    call = qwerty.call_indirect(builder, lam.result, [func.entry.args[0]])
    qwerty.return_op(builder, [call.results[0]])
    module.add(func)

    lift_lambdas(module)
    lifted = next(f for f in module if f.name.startswith("lambda"))
    lifted_names = [op.name for op in lifted.entry.ops]
    assert qwerty.FUNC_CONST in lifted_names  # re-materialized capture


def test_full_pipeline_inlines_to_straight_line():
    module = ModuleOp()
    make_callee(module)
    func = FuncOp("kernel", rev_type(1))
    builder = Builder(func.entry)
    fn = qwerty.func_const(builder, "g", rev_type(1))
    call = qwerty.call_indirect(builder, fn, [func.entry.args[0]])
    qwerty.return_op(builder, [call.results[0]])
    module.add(func)
    module.entry_point = "kernel"

    run_qwerty_opt(module)
    verify_module(module)
    names = [op.name for op in module.get("kernel").entry.ops]
    assert qwerty.CALL not in names
    assert qwerty.CALL_INDIRECT not in names
    assert qwerty.QBTRANS in names
    # The private callee was dropped after inlining.
    assert "g" not in module.funcs


def test_inline_adjoint_call_generates_specialization():
    module = ModuleOp()
    make_callee(module)
    func = FuncOp("kernel", rev_type(1))
    builder = Builder(func.entry)
    fn = qwerty.func_const(builder, "g", rev_type(1))
    adj = qwerty.func_adj(builder, fn)
    call = qwerty.call_indirect(builder, adj, [func.entry.args[0]])
    qwerty.return_op(builder, [call.results[0]])
    module.add(func)
    module.entry_point = "kernel"

    run_qwerty_opt(module)
    verify_module(module)
    trans = [
        op
        for op in module.get("kernel").entry.ops
        if op.name == qwerty.QBTRANS
    ]
    assert len(trans) == 1
    # The inlined body is the adjoint: pm >> std instead of std >> pm.
    assert trans[0].attrs["bin"] == pm(1)
    assert trans[0].attrs["bout"] == std(1)
