"""Tests for predicating basic blocks (paper §5.3, Fig. 5)."""

import pytest

from repro.basis import Basis, BasisLiteral
from repro.basis.basis import pm, std
from repro.dialects import qwerty
from repro.errors import LoweringError, ReversibilityError
from repro.ir import Builder, FuncOp, FunctionType, ModuleOp, QBundleType
from repro.ir.verifier import verify_module
from repro.qwerty_ir import predicate_function


def rev_type(n):
    return FunctionType((QBundleType(n),), (QBundleType(n),), reversible=True)


def pred_111():
    return Basis.literal("111")


def test_predicated_qbtrans_gains_basis():
    func = FuncOp("f", rev_type(2))
    builder = Builder(func.entry)
    out = qwerty.qbtrans(
        builder,
        func.entry.args[0],
        Basis.literal("01", "10"),
        Basis.literal("10", "01"),
    )
    qwerty.return_op(builder, [out])

    pred = predicate_function(func, pred_111(), "f__pred")
    module = ModuleOp()
    module.add(func)
    module.add(pred)
    verify_module(module)

    assert pred.type.inputs == (QBundleType(5),)
    trans = [op for op in pred.entry.ops if op.name == qwerty.QBTRANS]
    assert len(trans) == 1
    # {'111'} prepended to both sides (paper Fig. 5).
    assert trans[0].attrs["bin"].elements[0] == BasisLiteral.of("111")
    assert trans[0].attrs["bout"].elements[0] == BasisLiteral.of("111")


def test_renaming_swap_gets_unswap_fixup():
    # Paper Fig. 5: the block swaps its two rightmost qubits by
    # renaming; predication must emit an uncontrolled SWAP plus a
    # predicated SWAP.
    func = FuncOp("f", rev_type(2))
    builder = Builder(func.entry)
    qubits = qwerty.qbunpack(builder, func.entry.args[0])
    bundle = qwerty.qbpack(builder, [qubits[1], qubits[0]])
    qwerty.return_op(builder, [bundle])

    pred = predicate_function(func, pred_111(), "f__pred")
    module = ModuleOp()
    module.add(func)
    module.add(pred)
    verify_module(module)

    trans = [op for op in pred.entry.ops if op.name == qwerty.QBTRANS]
    assert len(trans) == 2
    # First: an uncontrolled SWAP (dimension 2).
    assert trans[0].attrs["bin"].dim == 2
    assert trans[0].attrs["bin"] == Basis.literal("01", "10")
    # Second: the same SWAP predicated on {'111'} (dimension 5).
    assert trans[1].attrs["bin"].dim == 5
    assert trans[1].attrs["bin"].elements[0] == BasisLiteral.of("111")


def test_no_fixup_without_renaming():
    func = FuncOp("f", rev_type(2))
    builder = Builder(func.entry)
    out = qwerty.qbtrans(builder, func.entry.args[0], std(2), pm(2))
    qwerty.return_op(builder, [out])

    pred = predicate_function(func, Basis.literal("1"), "f__pred")
    trans = [op for op in pred.entry.ops if op.name == qwerty.QBTRANS]
    assert len(trans) == 1


def test_predicated_call_concatenates_bases():
    func = FuncOp("f", rev_type(1))
    builder = Builder(func.entry)
    call = qwerty.call(
        builder,
        "g",
        [func.entry.args[0]],
        [QBundleType(1)],
        pred=Basis.literal("0"),
    )
    qwerty.return_op(builder, [call.results[0]])

    pred = predicate_function(func, Basis.literal("1"), "f__pred")
    call_ops = [op for op in pred.entry.ops if op.name == qwerty.CALL]
    combined = call_ops[0].attrs["pred"]
    assert combined.dim == 2
    assert combined.elements[0] == BasisLiteral.of("1")
    assert combined.elements[1] == BasisLiteral.of("0")


def test_predicated_call_indirect_wraps_func_pred():
    fn_type = rev_type(1)
    func = FuncOp(
        "f",
        FunctionType(
            (fn_type, QBundleType(1)), (QBundleType(1),), reversible=True
        ),
    )
    builder = Builder(func.entry)
    call = qwerty.call_indirect(
        builder, func.entry.args[0], [func.entry.args[1]]
    )
    qwerty.return_op(builder, [call.results[0]])

    # Only qbundle->qbundle functions can be predicated (paper §2.2:
    # b & f takes qubit[N] rev-> qubit[N]); mixed signatures are
    # rejected before any body transformation happens.
    with pytest.raises(LoweringError):
        predicate_function(func, Basis.literal("1"), "f__pred")


def test_irreversible_rejected():
    func = FuncOp(
        "f",
        FunctionType((QBundleType(1),), (QBundleType(1),), reversible=False),
    )
    with pytest.raises(ReversibilityError):
        predicate_function(func, Basis.literal("1"), "f__pred")


def test_ancilla_prep_not_predicated():
    from repro.basis.primitive import PrimitiveBasis

    func = FuncOp("f", rev_type(1))
    builder = Builder(func.entry)
    ancilla = qwerty.qbprep(builder, PrimitiveBasis.PM, (1,))
    arg_qubits = qwerty.qbunpack(builder, func.entry.args[0])
    anc_qubits = qwerty.qbunpack(builder, ancilla)
    combined = qwerty.qbpack(builder, arg_qubits + anc_qubits)
    translated = qwerty.qbtrans(
        builder, combined, Basis.literal("00", "11"), Basis.literal("11", "00")
    )
    qubits = qwerty.qbunpack(builder, translated)
    out = qwerty.qbpack(builder, [qubits[0]])
    anc_out = qwerty.qbpack(builder, [qubits[1]])
    qwerty.qbunprep(builder, anc_out, PrimitiveBasis.PM, (1,))
    qwerty.return_op(builder, [out])

    pred = predicate_function(func, Basis.literal("1"), "f__pred")
    preps = [op for op in pred.entry.ops if op.name == qwerty.QBPREP]
    assert len(preps) == 1
    # Prep itself is unchanged; only the translation gained a predicate.
    assert preps[0].attrs["prim"] is PrimitiveBasis.PM
    trans = [op for op in pred.entry.ops if op.name == qwerty.QBTRANS]
    assert trans[0].attrs["bin"].dim == 3
