"""The span tracer (repro.obs.trace): nesting, isolation, stitching.

The contract under test, per docs/observability.md:

- spans nest through the contextvar: a span opened inside another
  records it as parent, and ids stay unique;
- tracing off is the no-op fast path: one shared do-nothing span, no
  contextvar traffic, while ``timed_span`` still measures;
- worker processes ship their spans back on the chunk result and the
  parent absorbs them into ONE trace (tested under ``spawn``, the
  start method that inherits nothing);
- the export is loadable Chrome trace-event JSON.
"""

import json
import os
import threading

from repro.algorithms import alternating_secret, bernstein_vazirani
from repro.exec.parallel import parallel_run_with_info
from repro.obs import trace
from repro.pipeline import compile_kernel


def test_span_nesting_records_parent_and_trace_ids():
    tracer = trace.enable_tracing()
    try:
        with trace.span("outer", layer="a"):
            with trace.span("inner", layer="b"):
                pass
    finally:
        trace.disable_tracing()
    outer = tracer.by_name("outer")[0]
    inner = tracer.by_name("inner")[0]
    assert outer["parent_id"] is None
    assert inner["parent_id"] == outer["span_id"]
    assert inner["trace_id"] == outer["trace_id"]
    assert inner["span_id"] != outer["span_id"]
    assert outer["attrs"] == {"layer": "a"}
    assert outer["dur_us"] >= inner["dur_us"] >= 0


def test_span_set_after_exit_updates_the_record():
    trace.enable_tracing()
    try:
        tracer = trace.get_tracer()
        before = len(tracer.spans)
        span = trace.timed_span("work", phase="start")
        with span:
            pass
        span.set(outcome="done")
        record = tracer.spans[before]
        assert record["attrs"]["outcome"] == "done"
        assert span.seconds >= 0
    finally:
        trace.disable_tracing()


def test_error_exits_tag_the_span():
    trace.enable_tracing()
    try:
        tracer = trace.get_tracer()
        try:
            with trace.span("doomed"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert tracer.by_name("doomed")[0]["attrs"]["error"] == "ValueError"
    finally:
        trace.disable_tracing()


def test_disabled_tracing_is_the_shared_noop():
    assert not trace.tracing_enabled()
    assert trace.span("anything", x=1) is trace.span("other")
    assert trace.current_context() is None
    trace.event("ignored")  # must not raise, must not record anywhere
    # timed_span still measures without touching the contextvar.
    span = trace.timed_span("timed")
    with span:
        assert trace.current_ids() is None
    assert span.seconds >= 0


def test_thread_contexts_are_isolated_unless_attached():
    trace.enable_tracing()
    try:
        tracer = trace.get_tracer()
        seen: dict = {}

        def worker(ctx):
            seen["ambient"] = trace.current_ids()
            with trace.attached(ctx):
                with trace.span("threaded"):
                    pass

        with trace.span("parent") as _:
            ctx = trace.current_context()
            thread = threading.Thread(target=worker, args=(ctx,))
            thread.start()
            thread.join()
        # The thread did NOT inherit the parent's context ...
        assert seen["ambient"] is None
        # ... but attaching the shipped context stitched its span in.
        parent = tracer.by_name("parent")[0]
        threaded = tracer.by_name("threaded")[0]
        assert threaded["parent_id"] == parent["span_id"]
        assert threaded["trace_id"] == parent["trace_id"]
    finally:
        trace.disable_tracing()


def test_spawn_workers_ship_spans_back_into_one_trace(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_START_METHOD", "spawn")
    circuit = compile_kernel(
        bernstein_vazirani(alternating_secret(5))
    ).execution_circuit
    trace.enable_tracing()
    try:
        tracer = trace.get_tracer()
        with trace.span("request"):
            results, info = parallel_run_with_info(
                circuit, 64, seed=3, workers=2
            )
        assert len(results) == 64
        chunk_spans = tracer.by_name("exec.chunk")
        assert len(chunk_spans) == info.chunks
        trace_ids = {span["trace_id"] for span in tracer.spans}
        assert len(trace_ids) == 1  # one stitched trace
        dispatch = tracer.by_name("exec.dispatch")[0]
        assert all(
            span["parent_id"] == dispatch["span_id"]
            for span in chunk_spans
        )
        # Spawn workers recorded on their own pids and shipped back.
        worker_pids = {span["pid"] for span in chunk_spans}
        assert worker_pids and os.getpid() not in worker_pids
    finally:
        trace.disable_tracing()


def test_chrome_export_is_loadable_trace_event_json(tmp_path):
    path = tmp_path / "trace.json"
    with trace.trace_to(path) as tracer:
        with trace.span("compile.kernel", kernel="k"):
            trace.event("fault.inject", kind="worker_crash")
    assert not trace.tracing_enabled()  # restored on exit
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ms"
    events = payload["traceEvents"]
    assert len(events) == len(tracer.spans) == 2
    for event in events:
        assert event["ph"] == "X"
        assert {"name", "cat", "ts", "dur", "pid", "tid", "args"} <= set(
            event
        )
    by_name = {event["name"]: event for event in events}
    assert by_name["compile.kernel"]["cat"] == "compile"
    assert by_name["fault.inject"]["dur"] == 0.0
    assert (
        by_name["fault.inject"]["args"]["parent_id"]
        == by_name["compile.kernel"]["args"]["span_id"]
    )
