"""One counting substrate: metrics, ``stats()``, and cache info agree.

The service's ``stats()`` counters are *derived from* the metric
registry (not kept in parallel dicts), and the compile-cache layers
increment the same ``repro_cache_lookups_total`` counter their own
info dicts report — so the Prometheus exposition, the stats op, and
``compile_cache_info()`` can never tell different stories.  These
tests pin that reconciliation exactly, per docs/observability.md.
"""

import asyncio
import re

from repro.algorithms import alternating_secret, bernstein_vazirani
from repro.obs import metrics, trace
from repro.pipeline import (
    clear_compile_cache,
    compile_cache_info,
    compile_kernel,
)
from repro.service import ExecutionService, ServiceClient, ServiceConfig

N = 4
SHOTS = 32


def make_config(**overrides) -> ServiceConfig:
    defaults = dict(use_processes=False, parallel_workers=2, executors=1)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def parse_exposition(text: str, name: str) -> dict:
    """``{label-tuple-or-(): value}`` for one metric family."""
    series = {}
    pattern = re.compile(
        rf"^{re.escape(name)}(?:{{(?P<labels>[^}}]*)}})? (?P<value>\S+)$"
    )
    for line in text.splitlines():
        match = pattern.match(line)
        if match:
            labels = tuple(
                part.split("=", 1)[1].strip('"')
                for part in (match["labels"] or "").split(",")
                if part
            )
            series[labels] = float(match["value"])
    return series


def test_service_stats_and_exposition_reconcile_exactly():
    async def scenario():
        async with ExecutionService(make_config()) as service:
            client = ServiceClient(service)
            for index in range(2):
                response = await client.run(
                    id=f"eq-{index}",
                    kernel="bv",
                    n=N,
                    shots=SHOTS,
                    seed=index,
                )
                assert response["ok"], response
            bad = await client.run(id="eq-bad", kernel="no_such", n=N)
            assert not bad.get("ok")
            stats = (await client.stats())["result"]
            exposition = (await client.metrics())["result"]
        return stats, exposition, service._label

    stats, exposition, label = asyncio.run(scenario())

    assert exposition["content_type"].startswith("text/plain")
    text = exposition["exposition"]
    events = parse_exposition(text, "repro_service_events_total")
    for event, value in stats["counters"].items():
        if event == "received":
            # The metrics request itself arrived after stats was
            # captured — the one permissible skew, and exactly one.
            assert events[(label, event)] == value + 1
        else:
            assert events.get((label, event), 0) == value, event
    assert stats["counters"]["completed"] == 2
    assert stats["counters"]["failed"] == 1

    errors = parse_exposition(text, "repro_service_errors_total")
    assert {
        key[1]: int(value)
        for key, value in errors.items()
        if key[0] == label
    } == stats["error_codes"]

    latency = parse_exposition(text, "repro_service_request_seconds_count")
    assert latency[(label,)] == stats["counters"]["completed"]


def test_fresh_service_instances_do_not_share_series():
    async def run_one(request_id):
        async with ExecutionService(make_config()) as service:
            client = ServiceClient(service)
            response = await client.run(
                id=request_id, kernel="bv", n=N, shots=SHOTS, seed=1
            )
            assert response["ok"], response
            return (await client.stats())["result"]["counters"]

    first = asyncio.run(run_one("inst-a"))
    second = asyncio.run(run_one("inst-b"))
    # Each instance label starts from zero even though the process-wide
    # registry keeps accumulating across instances.
    assert first["completed"] == second["completed"] == 1
    assert first["received"] == second["received"] == 2  # run + stats


def test_cache_info_and_cache_counter_agree_on_deltas():
    lookups = metrics.counter(
        "repro_cache_lookups_total",
        labels=("layer", "outcome"),
    )

    def memory_series():
        return {
            outcome: lookups.value(layer="memory", outcome=outcome)
            for outcome in ("hit", "miss")
        }

    clear_compile_cache()
    before = memory_series()
    kernel = bernstein_vazirani(alternating_secret(N))
    compile_kernel(kernel, cache=True)
    compile_kernel(kernel, cache=True)
    info = compile_cache_info()
    after = memory_series()

    assert after["miss"] - before["miss"] == info["misses"] == 1
    assert after["hit"] - before["hit"] == info["hits"] == 1
    # The disk layer counts corrupt entries as misses in its info dict;
    # the metric keeps the outcomes apart.  Reconcile accordingly.
    disk = {
        outcome: lookups.value(layer="disk", outcome=outcome)
        for outcome in ("hit", "miss", "corrupt")
    }
    assert disk["hit"] >= info["disk"]["hits"]  # registry is process-wide
    assert disk["miss"] + disk["corrupt"] >= (
        info["disk"]["misses"]
    )


def test_compiles_counter_tracks_provenance():
    compiles = metrics.counter(
        "repro_compile_kernels_total", labels=("provenance",)
    )
    clear_compile_cache()
    before = {
        key: compiles.value(provenance=key)
        for key in ("compiled", "memory", "disk")
    }
    kernel = bernstein_vazirani(alternating_secret(N + 1))
    first = compile_kernel(kernel, cache=True)
    # Capture before the second call: a memory hit returns (and
    # re-stamps) the same cached object.
    first_provenance = first.provenance
    second = compile_kernel(kernel, cache=True)
    # A cleared memory cache forces the first call past it; whether it
    # recompiles or restores from disk depends on suite history.
    assert first_provenance in ("compiled", "disk")
    assert compiles.value(
        provenance=first_provenance
    ) - before[first_provenance] >= 1
    assert second.provenance == "memory"
    assert compiles.value(provenance="memory") - before["memory"] == 1


def test_noop_path_records_nothing_when_disabled():
    assert not trace.tracing_enabled()
    with metrics.disabled():
        lookups = metrics.counter(
            "repro_cache_lookups_total",
            labels=("layer", "outcome"),
        )
        before = lookups.value(layer="memory", outcome="miss")
        clear_compile_cache()
        compile_kernel(
            bernstein_vazirani(alternating_secret(N)), cache=True
        )
        assert lookups.value(layer="memory", outcome="miss") == before
    assert trace.current_context() is None
