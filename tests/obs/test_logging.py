"""Structured logging (repro.obs.logging): correlation and knobs.

JSON log lines must carry the active trace/span ids and the bound
request id (so logs join traces and metrics on shared identifiers),
and the ``REPRO_LOG_LEVEL`` / ``REPRO_LOG_FORMAT`` environment knobs
must take effect on (re)configuration.
"""

import json
import logging

import pytest

from repro.obs import logging as obslog
from repro.obs import trace


@pytest.fixture(autouse=True)
def _reconfigure_each_test():
    obslog.reset_logging()
    yield
    obslog.reset_logging()
    obslog.get_logger()  # leave the suite with a configured default


def _record(message: str, **extra) -> logging.LogRecord:
    record = logging.LogRecord(
        "repro.test", logging.INFO, __file__, 1, message, (), None
    )
    for key, value in extra.items():
        setattr(record, key, value)
    return record


def test_json_lines_are_sorted_json_objects():
    line = obslog.JsonLineFormatter().format(_record("hello"))
    payload = json.loads(line)
    assert payload["message"] == "hello"
    assert payload["level"] == "INFO"
    assert payload["logger"] == "repro.test"
    assert isinstance(payload["ts"], float)
    assert "trace_id" not in payload  # tracing off, nothing to correlate
    assert "request_id" not in payload
    assert list(payload) == sorted(payload)


def test_log_lines_carry_trace_and_request_ids():
    trace.enable_tracing()
    try:
        with trace.span("service.request"):
            with obslog.bound_request("req-42"):
                assert obslog.current_request_id() == "req-42"
                payload = json.loads(
                    obslog.JsonLineFormatter().format(_record("working"))
                )
            trace_id, span_id = trace.current_ids()
        assert payload["trace_id"] == trace_id
        assert payload["span_id"] == span_id
        assert payload["request_id"] == "req-42"
    finally:
        trace.disable_tracing()
    assert obslog.current_request_id() is None


def test_structured_fields_and_exceptions_ride_along():
    formatter = obslog.JsonLineFormatter()
    payload = json.loads(
        formatter.format(_record("degrading", fields={"recycles": 2}))
    )
    assert payload["recycles"] == 2
    try:
        raise RuntimeError("boom")
    except RuntimeError:
        import sys

        record = _record("failed")
        record.exc_info = sys.exc_info()
    payload = json.loads(formatter.format(record))
    assert "RuntimeError: boom" in payload["exc"]


def test_env_knobs_select_format_and_level(monkeypatch):
    monkeypatch.setenv(obslog.LOG_FORMAT_ENV, "text")
    monkeypatch.setenv(obslog.LOG_LEVEL_ENV, "debug")
    obslog.reset_logging()
    logger = obslog.get_logger("knobs")
    assert logger.name == "repro.knobs"
    root = logging.getLogger("repro")
    assert root.level == logging.DEBUG
    assert not root.propagate
    [handler] = root.handlers
    assert not isinstance(handler.formatter, obslog.JsonLineFormatter)


def test_default_format_is_json_at_info(monkeypatch):
    monkeypatch.delenv(obslog.LOG_FORMAT_ENV, raising=False)
    monkeypatch.delenv(obslog.LOG_LEVEL_ENV, raising=False)
    obslog.reset_logging()
    obslog.get_logger()
    root = logging.getLogger("repro")
    assert root.level == logging.INFO
    [handler] = root.handlers
    assert isinstance(handler.formatter, obslog.JsonLineFormatter)


def test_embedder_handlers_are_respected(monkeypatch):
    obslog.reset_logging()
    root = logging.getLogger("repro")
    sentinel = logging.NullHandler()
    root.addHandler(sentinel)
    try:
        obslog.get_logger()
        assert root.handlers == [sentinel]
    finally:
        root.removeHandler(sentinel)
        obslog.reset_logging()
