"""The metric registry (repro.obs.metrics): math and exposition.

Pins down the Prometheus-compatible behaviors other layers rely on:
``le``-inclusive histogram buckets, cumulative exposition, idempotent
registration with conflict rejection, the global disable switch, and
deterministic text output (the golden test).
"""

import pytest

from repro.obs import metrics


@pytest.fixture()
def fresh():
    metrics.reset_metrics()
    yield
    metrics.reset_metrics()


def test_counter_accumulates_per_label_set(fresh):
    counter = metrics.counter(
        "test_events_total", "events", labels=("kind",)
    )
    counter.inc(kind="a")
    counter.inc(2, kind="a")
    counter.inc(kind="b")
    assert counter.value(kind="a") == 3
    assert counter.value(kind="b") == 1
    assert counter.value(kind="missing") == 0


def test_counter_rejects_decrease_and_wrong_labels(fresh):
    counter = metrics.counter(
        "test_events_total", "events", labels=("kind",)
    )
    with pytest.raises(ValueError, match="cannot decrease"):
        counter.inc(-1, kind="a")
    with pytest.raises(ValueError, match="takes labels"):
        counter.inc(wrong="a")
    with pytest.raises(ValueError, match="takes labels"):
        counter.inc()


def test_gauge_set_inc_dec(fresh):
    gauge = metrics.gauge("test_depth")
    gauge.set(5)
    gauge.inc(2)
    gauge.dec()
    assert gauge.value() == 6


def test_histogram_buckets_are_le_inclusive(fresh):
    histogram = metrics.histogram(
        "test_latency_seconds", "latency", buckets=(0.1, 1.0, 10.0)
    )
    histogram.observe(0.1)   # == bound: lands IN the 0.1 bucket
    histogram.observe(0.100001)  # just over: next bucket
    histogram.observe(50.0)  # beyond the last bound: +Inf bucket
    cell = metrics.snapshot()["test_latency_seconds"][()]
    assert cell["count"] == 3
    assert cell["sum"] == pytest.approx(50.200001)
    # Cumulative counts for bounds (0.1, 1.0, 10.0, +Inf).
    assert cell["buckets"] == [1, 2, 2, 3]


def test_histogram_quantile_interpolates(fresh):
    histogram = metrics.histogram(
        "test_latency_seconds", "latency", buckets=(0.1, 1.0, 10.0)
    )
    for value in (0.05, 0.5, 5.0, 5.0):
        histogram.observe(value)
    assert histogram.quantile(0.5) == pytest.approx(1.0)
    assert histogram.quantile(1.0) == pytest.approx(10.0)
    assert metrics.histogram("test_other", buckets=(1,)).quantile(0.5) is (
        None
    )
    with pytest.raises(ValueError, match="quantile"):
        histogram.quantile(1.5)


def test_registration_is_idempotent_but_conflicts_raise(fresh):
    counter = metrics.counter("test_events_total", labels=("kind",))
    assert metrics.counter("test_events_total", labels=("kind",)) is counter
    with pytest.raises(ValueError, match="already registered"):
        metrics.gauge("test_events_total", labels=("kind",))
    with pytest.raises(ValueError, match="already registered"):
        metrics.counter("test_events_total", labels=("other",))
    histogram = metrics.histogram("test_seconds", buckets=(1.0, 2.0))
    with pytest.raises(ValueError, match="buckets"):
        metrics.histogram("test_seconds", buckets=(1.0, 5.0))
    assert metrics.histogram("test_seconds", buckets=(1.0, 2.0)) is (
        histogram
    )


def test_invalid_names_and_buckets_rejected(fresh):
    with pytest.raises(ValueError, match="invalid metric name"):
        metrics.counter("0bad-name")
    with pytest.raises(ValueError, match="invalid label name"):
        metrics.counter("test_ok", labels=("bad-label",))
    with pytest.raises(ValueError, match="buckets"):
        metrics.histogram("test_h1", buckets=())
    with pytest.raises(ValueError, match="buckets"):
        metrics.histogram("test_h2", buckets=(2.0, 1.0))
    with pytest.raises(ValueError, match="buckets"):
        metrics.histogram("test_h3", buckets=(float("inf"),))


def test_disabled_suppresses_every_update(fresh):
    counter = metrics.counter("test_dis_events_total", labels=("kind",))
    gauge = metrics.gauge("test_dis_depth")
    histogram = metrics.histogram("test_dis_seconds", buckets=(1.0,))
    with metrics.disabled():
        counter.inc(kind="a")
        gauge.set(9)
        histogram.observe(0.5)
    assert counter.value(kind="a") == 0
    assert gauge.value() == 0
    assert histogram.count() == 0
    counter.inc(kind="a")  # re-enabled on exit
    assert counter.value(kind="a") == 1


def test_exposition_golden_format(fresh):
    counter = metrics.counter(
        "golden_cache_lookups_total",
        "Cache lookups by outcome",
        labels=("layer", "outcome"),
    )
    counter.inc(layer="memory", outcome="miss")
    counter.inc(3, layer="memory", outcome="hit")
    gauge = metrics.gauge("golden_queue_depth", "Queued requests")
    gauge.set(2)
    histogram = metrics.histogram(
        "golden_request_seconds", "Latency", buckets=(0.5, 1.0)
    )
    histogram.observe(0.25)
    histogram.observe(0.75)
    text = metrics.render()
    expected = (
        "# HELP golden_cache_lookups_total Cache lookups by outcome\n"
        "# TYPE golden_cache_lookups_total counter\n"
        'golden_cache_lookups_total{layer="memory",outcome="hit"} 3\n'
        'golden_cache_lookups_total{layer="memory",outcome="miss"} 1\n'
        "# HELP golden_queue_depth Queued requests\n"
        "# TYPE golden_queue_depth gauge\n"
        "golden_queue_depth 2\n"
        "# HELP golden_request_seconds Latency\n"
        "# TYPE golden_request_seconds histogram\n"
        'golden_request_seconds_bucket{le="0.5"} 1\n'
        'golden_request_seconds_bucket{le="1"} 2\n'
        'golden_request_seconds_bucket{le="+Inf"} 2\n'
        "golden_request_seconds_sum 1\n"
        "golden_request_seconds_count 2\n"
    )
    # Only assert over this test's metrics: the process registry also
    # holds the instrumented layers' series.
    lines = [
        line for line in text.splitlines() if "golden_" in line
    ]
    assert "\n".join(lines) + "\n" == expected
    assert text.endswith("\n")


def test_reset_keeps_registrations_and_zeroes_series(fresh):
    counter = metrics.counter("test_events_total", labels=("kind",))
    counter.inc(kind="a")
    metrics.reset_metrics()
    assert counter.value(kind="a") == 0
    assert metrics.counter("test_events_total", labels=("kind",)) is (
        counter
    )
    assert "test_events_total" in metrics.instruments()
