"""Tests for the unified pass infrastructure (repro.ir.passmanager)."""

import pytest

from repro.errors import IRVerificationError, PassPipelineError
from repro.ir.passmanager import (
    FunctionPass,
    Pass,
    PassManager,
    PassStatistics,
    create_pass,
    parse_pipeline,
    parse_pipeline_spec,
    register_pass,
    registered_passes,
)


# ----------------------------------------------------------------------
# Spec parsing.
# ----------------------------------------------------------------------
def test_parse_simple_spec():
    assert parse_pipeline_spec("a,b,c") == [("a", {}), ("b", {}), ("c", {})]


def test_parse_empty_spec_is_empty_pipeline():
    assert parse_pipeline_spec("") == []
    assert parse_pipeline_spec("  ") == []
    assert parse_pipeline("") == []


def test_parse_options():
    assert parse_pipeline_spec("peephole{relaxed=false}") == [
        ("peephole", {"relaxed": False})
    ]
    assert parse_pipeline_spec("p{a=1,b=2.5,c=text,d=true}") == [
        ("p", {"a": 1, "b": 2.5, "c": "text", "d": True})
    ]


def test_parse_options_commas_do_not_split_passes():
    spec = "a{x=1,y=2},b"
    assert parse_pipeline_spec(spec) == [("a", {"x": 1, "y": 2}), ("b", {})]


def test_parse_whitespace_tolerated():
    assert parse_pipeline_spec(" a , b { k = v } ") == [
        ("a", {}),
        ("b", {"k": "v"}),
    ]


@pytest.mark.parametrize(
    "bad",
    ["a{k=v", "a}b", "a{k}", "{x=1}", "a,,b{"],
)
def test_parse_malformed_specs_rejected(bad):
    with pytest.raises(PassPipelineError):
        parse_pipeline_spec(bad)


def test_unknown_pass_name_rejected_with_known_list():
    with pytest.raises(PassPipelineError, match="unknown pass 'nope'"):
        parse_pipeline("nope")


def test_unknown_option_rejected():
    with pytest.raises(PassPipelineError, match="unknown options"):
        create_pass("peephole", {"bogus": 1})


def test_registered_passes_include_all_layers():
    create_pass("canonicalize")  # Force registration imports.
    names = registered_passes()
    for expected in (
        "lift-lambdas",
        "canonicalize",
        "specialize",
        "inline",
        "dce",
        "peephole",
        "decompose-multi-controlled",
    ):
        assert expected in names


def test_duplicate_registration_rejected():
    create_pass("dce")
    with pytest.raises(PassPipelineError, match="already registered"):
        register_pass("dce", lambda options: FunctionPass("dce", lambda m: False))


# ----------------------------------------------------------------------
# Manager behavior and statistics.
# ----------------------------------------------------------------------
class _Artifact:
    def __init__(self):
        self.ops = ["a"]
        self.log = []


def _appender(name, grow=1):
    def fn(artifact):
        artifact.log.append(name)
        artifact.ops.extend([name] * grow)
        return grow > 0

    return FunctionPass(name, fn)


def test_manager_runs_in_order_and_reports_changed():
    artifact = _Artifact()
    manager = PassManager([_appender("one"), _appender("two", grow=0)])
    assert manager.run(artifact) is True
    assert artifact.log == ["one", "two"]

    unchanged = PassManager([_appender("noop", grow=0)])
    assert unchanged.run(artifact) is False


def test_statistics_runs_changes_time_and_op_deltas():
    artifact = _Artifact()
    stats = PassStatistics()
    manager = PassManager(
        [_appender("grow", grow=3), _appender("noop", grow=0)],
        count_ops=lambda a: len(a.ops),
        statistics=stats,
    )
    manager.run(artifact)
    manager.run(artifact)

    grow = stats.entry("grow")
    assert grow.runs == 2
    assert grow.changes == 2
    assert grow.ops_delta == 6
    assert grow.seconds >= 0.0

    noop = stats.entry("noop")
    assert noop.runs == 2
    assert noop.changes == 0
    assert noop.ops_delta == 0


def test_statistics_report_lists_passes_and_total():
    artifact = _Artifact()
    manager = PassManager([_appender("grow")])
    manager.run(artifact)
    report = manager.statistics.report()
    assert "grow" in report
    assert "total" in report
    assert "ms" in report


def test_statistics_measure_stage():
    stats = PassStatistics()
    with stats.measure("(frontend)"):
        pass
    assert stats.entry("(frontend)").runs == 1
    assert "(frontend)" in stats.report()


def test_shared_statistics_across_managers():
    artifact = _Artifact()
    stats = PassStatistics()
    PassManager([_appender("one")], statistics=stats).run(artifact)
    PassManager([_appender("two")], statistics=stats).run(artifact)
    assert [entry.name for entry in stats.entries] == ["one", "two"]


def test_inter_pass_verifier_runs_after_changed_passes():
    checked = []

    def verifier(artifact):
        checked.append(len(artifact.log))

    artifact = _Artifact()
    manager = PassManager(
        [_appender("one"), _appender("noop", grow=0), _appender("two")],
        verifier=verifier,
    )
    manager.run(artifact)
    # Once before the pipeline, then after each *changed* pass.
    assert checked == [0, 1, 3]


def test_verifier_failure_propagates():
    def verifier(artifact):
        if artifact.log:
            raise IRVerificationError("broken invariant")

    manager = PassManager([_appender("bad")], verifier=verifier)
    with pytest.raises(IRVerificationError):
        manager.run(_Artifact())


def test_from_spec_builds_real_passes():
    manager = PassManager.from_spec("canonicalize,dce")
    assert manager.spec == "canonicalize,dce"
    assert all(isinstance(p, Pass) for p in manager.passes)


def test_manager_add_chains():
    manager = PassManager()
    manager.add(_appender("a")).add(_appender("b"))
    assert manager.spec == "a,b"
