"""Unit tests for the SSA IR core."""

import pytest

from repro.ir import (
    Builder,
    FuncOp,
    FunctionType,
    ModuleOp,
    QBundleType,
    verify_module,
)
from repro.ir.core import walk
from repro.ir.printer import print_module
from repro.errors import IRVerificationError
from repro.dialects import arith, qwerty
from repro.basis.basis import pm, std


def make_identity_func(n=2):
    func = FuncOp(
        "f", FunctionType((QBundleType(n),), (QBundleType(n),), reversible=True)
    )
    builder = Builder(func.entry)
    qwerty.return_op(builder, [func.entry.args[0]])
    return func


def test_build_and_verify_identity():
    module = ModuleOp()
    module.add(make_identity_func())
    verify_module(module)


def test_use_lists_maintained():
    func = make_identity_func()
    arg = func.entry.args[0]
    assert len(arg.uses) == 1
    ret = func.entry.terminator
    assert ret.operands == (arg,)


def test_replace_all_uses_with():
    module = ModuleOp()
    func = FuncOp(
        "f", FunctionType((QBundleType(1),), (QBundleType(1),), reversible=True)
    )
    builder = Builder(func.entry)
    out = qwerty.qbtrans(builder, func.entry.args[0], std(1), pm(1))
    qwerty.return_op(builder, [out])
    module.add(func)
    verify_module(module)

    trans = out.owner_op
    trans.result.replace_all_uses_with(func.entry.args[0])
    # Now the arg has 2 uses and the trans result none: both violations.
    with pytest.raises(IRVerificationError):
        verify_module(module)


def test_linearity_violation_detected():
    module = ModuleOp()
    func = FuncOp(
        "f", FunctionType((QBundleType(1),), (QBundleType(1),), reversible=True)
    )
    builder = Builder(func.entry)
    # Use the argument twice: measure-free duplication of a qubit.
    qwerty.qbtrans(builder, func.entry.args[0], std(1), pm(1))
    qwerty.return_op(builder, [func.entry.args[0]])
    module.add(func)
    with pytest.raises(IRVerificationError, match="linear value"):
        verify_module(module)


def test_return_type_mismatch_detected():
    module = ModuleOp()
    func = FuncOp(
        "f", FunctionType((QBundleType(2),), (QBundleType(1),), reversible=True)
    )
    builder = Builder(func.entry)
    qwerty.return_op(builder, [func.entry.args[0]])
    module.add(func)
    with pytest.raises(IRVerificationError, match="returns"):
        verify_module(module)


def test_clone_remaps_values():
    func = FuncOp(
        "f", FunctionType((QBundleType(1),), (QBundleType(1),), reversible=True)
    )
    builder = Builder(func.entry)
    out = qwerty.qbtrans(builder, func.entry.args[0], std(1), pm(1))
    qwerty.return_op(builder, [out])

    clone = func.clone("g")
    assert clone.name == "g"
    assert len(clone.entry.ops) == 2
    cloned_trans = clone.entry.ops[0]
    assert cloned_trans.operands[0] is clone.entry.args[0]
    assert cloned_trans.operands[0] is not func.entry.args[0]


def test_walk_enters_regions():
    from repro.dialects import scf
    from repro.ir.types import I1

    func = FuncOp("f", FunctionType((I1,), (), reversible=False))
    builder = Builder(func.entry)
    if_operation = scf.if_op(builder, func.entry.args[0], [])
    inner = Builder(scf.then_block(if_operation))
    arith.constant(inner, 1.0)
    scf.yield_op(inner, [])
    scf.yield_op(Builder(scf.else_block(if_operation)), [])
    qwerty.return_op(builder, [])

    names = [op.name for op in walk(func.entry)]
    assert names == [
        "scf.if",
        "arith.constant",
        "scf.yield",
        "scf.yield",
        "func.return",
    ]


def test_printer_smoke():
    module = ModuleOp()
    module.add(make_identity_func())
    text = print_module(module)
    assert "func @f" in text
    assert "func.return" in text


def test_erase_with_live_uses_rejected():
    func = FuncOp(
        "f", FunctionType((QBundleType(1),), (QBundleType(1),), reversible=True)
    )
    builder = Builder(func.entry)
    out = qwerty.qbtrans(builder, func.entry.args[0], std(1), pm(1))
    qwerty.return_op(builder, [out])
    with pytest.raises(ValueError):
        out.owner_op.erase()


def test_module_unique_name():
    module = ModuleOp()
    module.add(make_identity_func())
    assert module.unique_name("f") == "f_0"
    assert module.unique_name("g") == "g"
