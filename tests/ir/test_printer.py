"""Tests for the textual IR printer and module-level views."""

from repro.algorithms import bernstein_vazirani
from repro.ir.printer import print_module


def test_printed_bv_module_structure():
    result = bernstein_vazirani("101").compile()
    text = print_module(result.qwerty_module)
    # Fully inlined: a single function with the key quantum ops.
    assert text.count("func @") == 1
    assert "qwerty.qbprep" in text
    assert "qwerty.embed" in text
    assert "qwerty.qbtrans" in text
    assert "qwerty.qbmeas" in text
    assert "func.return" in text
    # No function-value machinery survives inlining.
    assert "call_indirect" not in text
    assert "func_const" not in text


def test_printed_noopt_module_keeps_function_values():
    result = bernstein_vazirani("101").compile(
        inline=False, to_circuit=False
    )
    text = print_module(result.qwerty_module)
    assert "qwerty.call_indirect" in text
    assert "qwerty.func_const" in text
    assert text.count("func @") > 1  # Lifted lambdas.


def test_printed_qcircuit_module():
    result = bernstein_vazirani("101").compile()
    text = print_module(result.qcircuit_module)
    assert "qcirc.qalloc" in text
    assert "qcirc.gate" in text
    assert "qcirc.measure" in text


def test_ssa_names_are_stable_within_print():
    result = bernstein_vazirani("11").compile()
    first = print_module(result.qwerty_module)
    second = print_module(result.qwerty_module)
    assert first == second
