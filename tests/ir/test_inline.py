"""Tests for the inliner and the rewrite driver."""

from repro.basis.basis import pm, std
from repro.dialects import arith, qwerty
from repro.ir import (
    Builder,
    FuncOp,
    FunctionType,
    ModuleOp,
    QBundleType,
    inline_call_op,
    inline_calls,
)
from repro.ir.rewrite import RewritePattern, apply_patterns_greedily
from repro.ir.verifier import verify_module


def rev_type(n=1):
    return FunctionType((QBundleType(n),), (QBundleType(n),), reversible=True)


def make_callee(module, name="g"):
    callee = FuncOp(name, rev_type(), visibility="private")
    builder = Builder(callee.entry)
    out = qwerty.qbtrans(builder, callee.entry.args[0], std(1), pm(1))
    qwerty.return_op(builder, [out])
    module.add(callee)
    return callee


def test_inline_single_call():
    module = ModuleOp()
    make_callee(module)
    caller = FuncOp("f", rev_type())
    builder = Builder(caller.entry)
    call = qwerty.call(builder, "g", [caller.entry.args[0]], [QBundleType(1)])
    qwerty.return_op(builder, [call.results[0]])
    module.add(caller)

    assert inline_call_op(call, module)
    verify_module(module)
    names = [op.name for op in caller.entry.ops]
    assert qwerty.CALL not in names
    assert qwerty.QBTRANS in names


def test_inline_skips_adj_marked_calls():
    module = ModuleOp()
    make_callee(module)
    caller = FuncOp("f", rev_type())
    builder = Builder(caller.entry)
    call = qwerty.call(
        builder, "g", [caller.entry.args[0]], [QBundleType(1)], adj=True
    )
    qwerty.return_op(builder, [call.results[0]])
    module.add(caller)
    assert not inline_call_op(call, module)


def test_inline_skips_missing_callee():
    module = ModuleOp()
    caller = FuncOp("f", rev_type())
    builder = Builder(caller.entry)
    call = qwerty.call(
        builder, "missing", [caller.entry.args[0]], [QBundleType(1)]
    )
    qwerty.return_op(builder, [call.results[0]])
    module.add(caller)
    assert not inline_call_op(call, module)


def test_inline_calls_transitive():
    module = ModuleOp()
    make_callee(module, "h")
    mid = FuncOp("g", rev_type(), visibility="private")
    builder = Builder(mid.entry)
    call = qwerty.call(builder, "h", [mid.entry.args[0]], [QBundleType(1)])
    qwerty.return_op(builder, [call.results[0]])
    module.add(mid)

    top = FuncOp("f", rev_type())
    builder = Builder(top.entry)
    call = qwerty.call(builder, "g", [top.entry.args[0]], [QBundleType(1)])
    qwerty.return_op(builder, [call.results[0]])
    module.add(top)

    inline_calls(module)
    verify_module(module)
    names = [op.name for op in module.get("f").entry.ops]
    assert qwerty.CALL not in names
    assert qwerty.QBTRANS in names


def test_constant_folding_patterns():
    module = ModuleOp()
    func = FuncOp("f", FunctionType((), (), False))
    builder = Builder(func.entry)
    two = arith.constant(builder, 2.0)
    three = arith.constant(builder, 3.0)
    total = arith.addf(builder, two, three)
    product = arith.mulf(builder, total, total)
    negated = arith.negf(builder, product)
    # Keep the value alive through the return? Classical values need
    # no use; attach via a dummy op-free approach: just fold.
    qwerty.return_op(builder, [])
    module.add(func)

    apply_patterns_greedily(module, arith.CANONICALIZATION_PATTERNS)
    # Everything folded then DCE'd away.
    assert [op.name for op in func.entry.ops] == [qwerty.RETURN]


def test_division_by_zero_not_folded():
    module = ModuleOp()
    func = FuncOp("f", FunctionType((), (), False))
    builder = Builder(func.entry)
    one = arith.constant(builder, 1.0)
    zero = arith.constant(builder, 0.0)
    arith.divf(builder, one, zero)
    qwerty.return_op(builder, [])
    module.add(func)

    apply_patterns_greedily(module, arith.CANONICALIZATION_PATTERNS, run_dce=False)
    names = [op.name for op in func.entry.ops]
    assert "arith.divf" in names


def test_pattern_driver_reaches_fixpoint():
    module = ModuleOp()
    func = FuncOp("f", FunctionType((), (), False))
    builder = Builder(func.entry)
    value = arith.constant(builder, 1.0)
    for _ in range(5):
        value = arith.addf(builder, value, arith.constant(builder, 1.0))
    qwerty.return_op(builder, [])
    module.add(func)

    changed = apply_patterns_greedily(module, arith.CANONICALIZATION_PATTERNS)
    assert changed
    assert apply_patterns_greedily(
        module, arith.CANONICALIZATION_PATTERNS
    ) is False
