"""Tests for AST expansion (paper §4): dimension substitution,
loop unrolling, broadcast expansion."""

import pytest

from repro.errors import DimVarError
from repro.frontend.ast_nodes import (
    AssignStmt,
    BroadcastExpr,
    QubitLiteralExpr,
    ReturnStmt,
    TensorExpr,
)
from repro.frontend.expand import expand_kernel
from repro.frontend.pyast import parse_kernel


def expand(fn, dims, dimvars=("N",)):
    return expand_kernel(parse_kernel(fn, list(dimvars)), dims)


def test_qubit_literal_broadcast():
    def kernel() -> "bit[N]":
        return 'p'[N] | std[N].measure  # noqa

    expanded = expand(kernel, {"N": 4})
    literal = expanded.body[0].value.value
    assert isinstance(literal, QubitLiteralExpr)
    assert literal.chars == "pppp"


def test_function_broadcast_becomes_tensor():
    def kernel() -> "bit[2]":
        return '00' | (std.flip)[2] | std[2].measure  # noqa

    expanded = expand(kernel, {}, dimvars=())
    tensor = expanded.body[0].value.value.fn
    assert isinstance(tensor, TensorExpr)
    assert len(tensor.parts) == 2


def test_loop_unrolling():
    def kernel() -> "bit[N]":
        q = 'p'[N]  # noqa
        for _ in range(I):  # noqa
            q = q | f.sign  # noqa
        return q | std[N].measure  # noqa

    expanded = expand(kernel, {"N": 2, "I": 3}, dimvars=("N", "I"))
    assigns = [s for s in expanded.body if isinstance(s, AssignStmt)]
    assert len(assigns) == 1 + 3  # Initial plus three unrolled.


def test_loop_variable_usable_as_dim():
    def kernel() -> "bit[3]":
        q = '0'  # noqa
        for k in range(2):  # noqa
            q = q + '1'[k + 1]  # noqa
        return q | std[4].measure  # noqa

    expanded = expand(kernel, {}, dimvars=())
    # k takes values 0 and 1: broadcasts of 1 and 2.
    second = expanded.body[1].value
    third = expanded.body[2].value
    assert second.parts[-1].chars == "1"
    assert third.parts[-1].chars == "11"


def test_unbound_dimension_rejected():
    def kernel() -> "bit[N]":
        return 'p'[N] | std[N].measure  # noqa

    with pytest.raises(DimVarError, match="unbound"):
        expand(kernel, {})


def test_dim_arithmetic_evaluates():
    def kernel() -> "bit[N]":
        return 'p'[2 * N + 1] | std[2 * N + 1].measure  # noqa

    expanded = expand(kernel, {"N": 3})
    literal = expanded.body[0].value.value
    assert literal.chars == "p" * 7


def test_vector_repeat_expands():
    def kernel() -> "bit[N]":
        return 'p'[N] | {'p'[N]} >> {-'p'[N]} | std[N].measure  # noqa

    expanded = expand(kernel, {"N": 3})
    translation = expanded.body[0].value.value.fn
    assert translation.b_in.vectors[0].chars == "ppp"
    assert translation.b_out.vectors[0].phase == 180.0


def test_zero_broadcast_rejected():
    def kernel() -> "bit[N]":
        return 'p'[N] | std[N].measure  # noqa

    with pytest.raises(DimVarError):
        expand(kernel, {"N": 0})


def test_nested_loops():
    def kernel() -> "bit[4]":
        q = '0'  # noqa
        for _ in range(2):  # noqa
            for _ in range(2):  # noqa
                q = q | std.flip  # noqa
        return q | std.measure  # noqa

    expanded = expand(kernel, {}, dimvars=())
    assigns = [s for s in expanded.body if isinstance(s, AssignStmt)]
    assert len(assigns) == 1 + 4
