"""Tests for the Qwerty type checker (paper §4), including linearity
and span equivalence enforcement."""

import pytest

from repro.errors import (
    LinearityError,
    QwertyTypeError,
    ReversibilityError,
    SpanCheckError,
)
from repro.frontend.expand import expand_kernel
from repro.frontend.pyast import parse_kernel, parse_kernel_source
from repro.frontend.typecheck import TypeChecker
from repro.frontend.types import BitType, CFuncType, QubitType


def check(fn, dims=None, captures=None, dimvars=()):
    kernel = parse_kernel(fn, list(dimvars))
    expanded = expand_kernel(kernel, dims or {})
    checker = TypeChecker(captures or {})
    return checker.check_kernel(expanded)


def test_bv_types():
    def kernel(f: "cfunc[N, 1]") -> "bit[N]":
        return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure  # noqa

    result = check(
        kernel,
        dims={"N": 4},
        captures={"f": CFuncType(4, 1)},
        dimvars=("N",),
    )
    assert result == BitType(4)


def test_qubit_used_twice_rejected():
    def kernel() -> "bit[2]":
        q = '0'  # noqa
        return q + q | std[2].measure  # noqa

    with pytest.raises(LinearityError, match="more than once"):
        check(kernel)


def test_unused_qubit_rejected():
    def kernel() -> "bit":
        q = '0'  # noqa
        r = '1'  # noqa
        return r | std.measure  # noqa

    with pytest.raises(LinearityError, match="never used"):
        check(kernel)


def test_discard_consumes():
    def kernel() -> "bit":
        q = '0' + '1'  # noqa
        r = '1'  # noqa
        m = q | std[2].measure  # noqa - measurement consumes
        return r | std.measure  # noqa

    # q measured, r measured: all consumed; m (bits) needs no use.
    check(kernel)


def test_span_mismatch_rejected():
    def kernel() -> "bit":
        return '0' | {'0'} >> {'1'} | std.measure  # noqa

    with pytest.raises(SpanCheckError):
        check(kernel)


def test_exponential_translation_checks_fast():
    # Written as a source string: CPython emits a SyntaxWarning when
    # byte-compiling a subscripted set display ({'0','1'}[64]), but the
    # kernel body is only ever parsed as Qwerty DSL, never executed.
    source = (
        'def kernel() -> "bit[64]":\n'
        "    return '0'[64] | {'0','1'}[64] >> {'1','0'}[64]"
        " | std[64].measure\n"
    )
    kernel = parse_kernel_source(source, [])
    expanded = expand_kernel(kernel, {})
    TypeChecker({}).check_kernel(expanded)


def test_pipe_dimension_mismatch():
    def kernel() -> "bit":
        return '00' | std.measure  # noqa

    with pytest.raises(QwertyTypeError, match="mismatch"):
        check(kernel)


def test_adjoint_requires_reversible():
    def kernel() -> "bit":
        return '0' | ~(std.measure) | std.measure  # noqa

    with pytest.raises(ReversibilityError):
        check(kernel)


def test_pred_requires_reversible():
    def kernel() -> "bit[2]":
        return '00' | '1' & std.measure | std[2].measure  # noqa

    with pytest.raises(ReversibilityError):
        check(kernel)


def test_pred_type_widens():
    def kernel() -> "bit[2]":
        return '10' | '1' & std.flip | std[2].measure  # noqa

    assert check(kernel) == BitType(2)


def test_measure_requires_full_span():
    def kernel() -> "bit":
        return '0' | {'0'}.measure  # noqa

    with pytest.raises(QwertyTypeError, match="fully span"):
        check(kernel)


def test_sign_embedding_requires_single_output():
    def kernel(f: "cfunc[2, 2]") -> "bit[2]":
        return '00' | f.sign | std[2].measure  # noqa

    with pytest.raises(QwertyTypeError, match="single-output"):
        check(kernel, captures={"f": CFuncType(2, 2)})


def test_xor_embedding_type():
    def kernel(f: "cfunc[2, 2]") -> "bit[4]":
        return '00' + '00' | f.xor | std[4].measure  # noqa

    assert check(kernel, captures={"f": CFuncType(2, 2)}) == BitType(4)


def test_conditional_on_qubit_rejected():
    def kernel() -> "bit":
        q = '0'  # noqa
        r = '1' | (std.flip if q else id)  # noqa
        return r | std.measure  # noqa

    with pytest.raises(QwertyTypeError, match="single bit"):
        check(kernel)


def test_conditional_branch_mismatch():
    def kernel() -> "bit":
        m = '1' | std.measure  # noqa
        q = '00' | (std[2].measure if m else id[2])  # noqa
        return '0' | std.measure  # noqa

    with pytest.raises(QwertyTypeError):
        check(kernel)


def test_rebinding_linear_variable_rejected():
    def kernel() -> "bit":
        q = '0'  # noqa
        q = '1'  # noqa
        return q | std.measure  # noqa

    with pytest.raises(LinearityError, match="rebinding"):
        check(kernel)


def test_flip_on_multiqubit_builtin_rejected():
    def kernel() -> "bit[2]":
        return '00' | fourier[2].flip | std[2].measure  # noqa

    with pytest.raises(QwertyTypeError):
        check(kernel)


def test_grover_loop_types():
    def kernel(f: "cfunc[N, 1]") -> "bit[N]":
        q = 'p'[N]  # noqa
        for _ in range(I):  # noqa
            q = q | f.sign | {'p'[N]} >> {-'p'[N]}  # noqa
        return q | std[N].measure  # noqa

    result = check(
        kernel,
        dims={"N": 3, "I": 2},
        captures={"f": CFuncType(3, 1)},
        dimvars=("N", "I"),
    )
    assert result == BitType(3)
