"""Unit tests for the symbolic angle algebra (repro.parameters).

The affine-expression invariants everything downstream leans on:
auto-collapse to plain floats when symbols cancel (the peephole's
rotation cancellation), structural equality/hashing (gate-matrix cache
keys), immutability under copy/deepcopy (AST expansion deepcopies
statement trees), and hard errors on nonlinear use.
"""

import copy
import math
import pickle

import pytest

from repro.errors import QwertyTypeError
from repro.parameters import (
    ParamExpr,
    Parameter,
    evaluate_param,
    is_symbolic,
    parameters_of,
    radians_expr,
)

theta = Parameter("theta")
phi = Parameter("phi")


class TestParameter:
    def test_name_identity(self):
        assert Parameter("theta") == theta
        assert Parameter("phi") != theta
        assert hash(Parameter("theta")) == hash(theta)

    def test_invalid_names_rejected(self):
        for bad in ("2theta", "a-b", "", 7):
            with pytest.raises(QwertyTypeError):
                Parameter(bad)

    def test_never_equals_a_number(self):
        assert theta != 0.0
        assert theta != 1
        assert not (theta == 0.5)

    def test_str(self):
        assert str(theta) == "theta"
        assert repr(theta) == "Parameter('theta')"


class TestAffineAlgebra:
    def test_arithmetic_builds_affine_exprs(self):
        expr = 2 * theta + 0.5
        assert isinstance(expr, ParamExpr)
        assert expr.constant == 0.5
        assert expr.coefficient(theta) == 2.0
        assert expr.coefficient("phi") == 0.0

    def test_terms_sorted_and_merged(self):
        expr = phi + theta + phi
        assert [p.name for p in expr.parameters] == ["phi", "theta"]
        assert expr.coefficient(phi) == 2.0

    def test_cancellation_collapses_to_float(self):
        # The collapse is what lets the peephole cancel rx(p)·rx(-p)
        # without knowing about symbols: the sum is a plain 0.0.
        assert theta + (-theta) == 0.0
        assert isinstance(theta - theta, float)
        assert isinstance((2 * theta + 1.0) - 2 * theta, float)

    def test_division_and_negation(self):
        expr = (4 * theta + 2.0) / 2
        assert expr.coefficient(theta) == 2.0
        assert expr.constant == 1.0
        assert (-expr).coefficient(theta) == -2.0

    def test_nonlinear_products_rejected(self):
        with pytest.raises(QwertyTypeError, match="nonlinear"):
            _ = (theta + 1.0) * (phi + 1.0)
        with pytest.raises(QwertyTypeError, match="nonlinear"):
            _ = ParamExpr.of(theta) / phi

    def test_scalar_products_fine_either_side(self):
        assert (3 * theta).coefficient(theta) == 3.0
        assert (theta * 3).coefficient(theta) == 3.0
        # A collapsed (constant) expr on one side is just a scalar.
        zero = theta - theta
        assert (theta + 1.0) * zero == 0.0

    def test_mod_is_identity_on_symbolic_phases(self):
        # Phase-normalization sites (`phase % 360.0`) must pass
        # symbolic angles through untouched.
        expr = 2 * theta
        assert (expr % 360.0) is expr

    def test_float_and_abs_raise(self):
        with pytest.raises(QwertyTypeError, match="bind"):
            float(ParamExpr.of(theta))
        with pytest.raises(QwertyTypeError, match="bind"):
            abs(ParamExpr.of(theta))

    def test_never_equals_a_number(self):
        assert ParamExpr.of(theta) != 0.0
        assert 2 * theta + 1.0 != 1.0


class TestEvaluateAndSubs:
    def test_evaluate(self):
        expr = 2 * theta + phi + 0.5
        assert expr.evaluate({"theta": 1.0, phi: 2.0}) == 4.5

    def test_evaluate_missing_parameter_raises(self):
        with pytest.raises(QwertyTypeError, match="theta"):
            (2 * theta).evaluate({"phi": 1.0})

    def test_partial_subs_keeps_symbolic_rest(self):
        expr = 2 * theta + phi
        partial = expr.subs({"phi": 1.0})
        assert isinstance(partial, ParamExpr)
        assert partial.constant == 1.0
        assert partial.coefficient(theta) == 2.0

    def test_full_subs_collapses_to_float(self):
        assert (2 * theta).subs({theta: 0.25}) == 0.5

    def test_subs_with_symbolic_replacement(self):
        # Substituting a symbol for a symbol (capture resolution).
        expr = (2 * theta).subs({"theta": phi + 1.0})
        assert expr.coefficient(phi) == 2.0
        assert expr.constant == 2.0

    def test_evaluate_param_passthrough(self):
        assert evaluate_param(1.5, {}) == 1.5
        assert evaluate_param(theta, {"theta": 2.0}) == 2.0


class TestStructuralIdentity:
    def test_equality_and_hash(self):
        a = 2 * theta + 0.5
        b = 0.5 + Parameter("theta") * 2
        assert a == b
        assert hash(a) == hash(b)
        assert a != 2 * theta

    def test_immutable(self):
        expr = ParamExpr.of(theta)
        with pytest.raises(AttributeError):
            expr.constant = 1.0

    def test_copy_and_deepcopy_return_self(self):
        expr = 2 * theta + 0.5
        assert copy.copy(expr) is expr
        assert copy.deepcopy(expr) is expr

    def test_pickle_roundtrip(self):
        expr = 2 * theta + 0.5
        assert pickle.loads(pickle.dumps(expr)) == expr

    def test_str_is_qasm_friendly(self):
        assert str(2 * theta + 0.5) == "2*theta + 0.5"
        assert str(-1 * theta) == "-theta"
        assert str(theta - phi) == "-phi + theta"
        assert str(ParamExpr.of(theta)) == "theta"


class TestHelpers:
    def test_is_symbolic(self):
        assert is_symbolic(theta)
        assert is_symbolic(ParamExpr.of(theta))
        assert not is_symbolic(0.5)
        assert not is_symbolic(theta - theta)

    def test_parameters_of(self):
        values = (1.0, 2 * theta, phi + theta)
        assert [p.name for p in parameters_of(values)] == ["phi", "theta"]

    def test_radians_expr(self):
        assert radians_expr(180.0) == pytest.approx(math.pi)
        expr = radians_expr(theta)
        assert expr.coefficient(theta) == pytest.approx(math.pi / 180.0)
