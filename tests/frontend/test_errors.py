"""Diagnostics: the compiler rejects ill-formed programs with clear errors."""

import pytest

from repro.errors import (
    BasisError,
    QwertySyntaxError,
    QwertyTypeError,
    SpanCheckError,
)
from repro.frontend.decorators import bit, qpu


def compile_fails(kernel, error, match=None):
    with pytest.raises(error, match=match):
        kernel.compile()


def test_invalid_literal_char():
    @qpu
    def kernel() -> bit:
        return 'q' | std.measure  # noqa

    compile_fails(kernel, BasisError, "invalid qubit literal")


def test_mixed_prim_basis_vector():
    @qpu
    def kernel() -> bit[2]:
        return '00' | {'p0'} >> {'0p'} | std[2].measure  # noqa

    compile_fails(kernel, BasisError, "mixes primitive bases")


def test_duplicate_basis_vectors():
    @qpu
    def kernel() -> bit:
        return '0' | {'0', '0'} >> {'0', '1'} | std.measure  # noqa

    compile_fails(kernel, BasisError, "distinct")


def test_span_mismatch_message_names_elements():
    @qpu
    def kernel() -> bit:
        return '0' | {'0'} >> {'1'} | std.measure  # noqa

    compile_fails(kernel, SpanCheckError)


def test_dimension_mismatch_in_translation():
    @qpu
    def kernel() -> bit[2]:
        return '00' | std[2] >> std[3] | std[2].measure  # noqa

    compile_fails(kernel, SpanCheckError, "dimension mismatch")


def test_piping_bits_into_quantum_function():
    @qpu
    def kernel() -> bit:
        m = '0' | std.measure  # noqa
        return m | std.flip | std.measure  # noqa

    compile_fails(kernel, QwertyTypeError, "mismatch")


def test_unknown_variable():
    @qpu
    def kernel() -> bit:
        return mystery | std.measure  # noqa

    compile_fails(kernel, QwertyTypeError, "undefined")


def test_kernel_without_return():
    @qpu
    def kernel() -> bit:
        q = '0' | std.measure  # noqa

    compile_fails(kernel, QwertyTypeError, "no return")


def test_return_not_last():
    def make():
        @qpu
        def kernel() -> bit:
            return '0' | std.measure  # noqa
            q = '1'  # noqa

        return kernel

    compile_fails(make(), QwertyTypeError, "final statement")


def test_starred_assignment_rejected():
    with pytest.raises(QwertySyntaxError):
        @qpu
        def kernel() -> bit:
            a, *rest = '00' | std[2].measure  # noqa
            return a  # noqa
