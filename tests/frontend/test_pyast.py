"""Tests for Python AST -> Qwerty AST conversion (paper §4)."""

import pytest

from repro.errors import QwertySyntaxError
from repro.frontend.ast_nodes import (
    AdjointExpr,
    AssignStmt,
    BasisLiteralExpr,
    BroadcastExpr,
    BuiltinBasisExpr,
    CondExpr,
    DimOp,
    DimRef,
    DiscardExpr,
    EmbedExpr,
    ForStmt,
    MeasureExpr,
    PipeExpr,
    PredExpr,
    QubitLiteralExpr,
    ReturnStmt,
    TensorExpr,
    TranslationExpr,
)
from repro.frontend.pyast import parse_kernel


def parse(fn, dimvars=("N",)):
    return parse_kernel(fn, list(dimvars))


def test_bv_kernel_shape():
    def kernel(f: "cfunc[N, 1]") -> "bit[N]":
        return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure  # noqa

    ast = parse(kernel)
    assert ast.name == "kernel"
    assert ast.params[0].annotation.kind == "cfunc"
    assert ast.params[0].annotation.dims == [DimRef("N"), 1]
    (ret,) = ast.body
    assert isinstance(ret, ReturnStmt)
    pipe = ret.value
    assert isinstance(pipe, PipeExpr)
    assert isinstance(pipe.fn, MeasureExpr)
    inner = pipe.value
    assert isinstance(inner.fn, TranslationExpr)
    assert isinstance(inner.value.fn, EmbedExpr)
    assert inner.value.fn.kind == "sign"
    literal = inner.value.value
    assert isinstance(literal, BroadcastExpr)
    assert isinstance(literal.operand, QubitLiteralExpr)
    assert literal.operand.chars == "p"


def test_basis_literal_with_phases():
    def kernel() -> "bit":
        return '0' | {'p'} >> {-'p'} | {'1'@45, '0'} >> {'0', '1'@45} | std.measure  # noqa

    ast = parse(kernel, ())
    pipe = ast.body[0].value
    translation = pipe.value.fn
    assert isinstance(translation, TranslationExpr)
    literal = translation.b_in
    assert isinstance(literal, BasisLiteralExpr)
    assert literal.vectors[0].phase == 45.0
    diffuser = pipe.value.value.fn
    assert diffuser.b_out.vectors[0].phase == 180.0


def test_symbolic_vector_repeat():
    def kernel() -> "bit[N]":
        return 'p'[N] | {'p'[N]} >> {-'p'[N]} | std[N].measure  # noqa

    ast = parse(kernel)
    translation = ast.body[0].value.value.fn
    assert translation.b_in.vectors[0].repeat == DimRef("N")


def test_tensor_flattening():
    def kernel() -> "bit[3]":
        return '0' + '1' + 'p' | std[3].measure  # noqa

    ast = parse(kernel, ())
    tensor = ast.body[0].value.value
    assert isinstance(tensor, TensorExpr)
    assert len(tensor.parts) == 3


def test_adjoint_and_pred():
    def kernel(q: "qubit[2]") -> "qubit[2]":
        return q | ~( {'0','1'} >> {'1','0'} ) | '1' & f  # noqa

    ast = parse(kernel, ())
    outer = ast.body[0].value
    assert isinstance(outer.fn, PredExpr)
    assert isinstance(outer.value.fn, AdjointExpr)


def test_for_loop():
    def kernel() -> "bit[N]":
        q = 'p'[N]  # noqa
        for _ in range(I):  # noqa
            q = q | f.sign  # noqa
        return q | std[N].measure  # noqa

    ast = parse(kernel, ("N", "I"))
    loop = ast.body[1]
    assert isinstance(loop, ForStmt)
    assert loop.count == DimRef("I")
    assert isinstance(loop.body[0], AssignStmt)


def test_tuple_unpacking():
    def kernel() -> "bit":
        alice, bob = 'p0' | '1' & std.flip  # noqa
        return alice + bob | std[2].measure  # noqa

    ast = parse(kernel, ())
    assign = ast.body[0]
    assert assign.targets == ["alice", "bob"]


def test_conditional_expression():
    def kernel() -> "bit":
        m = '1' | std.measure  # noqa
        q = '0' | (std.flip if m else id)  # noqa
        return q | std.measure  # noqa

    ast = parse(kernel, ())
    cond = ast.body[1].value.fn
    assert isinstance(cond, CondExpr)


def test_discard_attribute():
    def kernel() -> "bit[N]":
        return 'p'[N] + '0'[N] | f.xor | pm[N].measure + std[N].discard  # noqa

    ast = parse(kernel)
    tensor = ast.body[0].value.fn
    assert isinstance(tensor.parts[1], DiscardExpr)


def test_dim_arithmetic():
    def kernel() -> "bit[N]":
        return 'p'[2 * N + 1] | std[2 * N + 1].measure  # noqa

    ast = parse(kernel)
    broadcast = ast.body[0].value.value
    assert isinstance(broadcast.count, DimOp)


def test_rejects_expression_statements():
    def kernel() -> "bit":
        '0' | std.measure  # noqa
        return '0' | std.measure  # noqa

    with pytest.raises(QwertySyntaxError, match="linear"):
        parse(kernel, ())


def test_rejects_unknown_attribute():
    def kernel() -> "bit":
        return '0' | std.frobnicate  # noqa

    with pytest.raises(QwertySyntaxError, match="frobnicate"):
        parse(kernel, ())


def test_rejects_while_loops():
    def kernel() -> "bit":
        while True:
            pass
        return '0' | std.measure  # noqa

    with pytest.raises(QwertySyntaxError):
        parse(kernel, ())
