"""Tests for the decorators, Bits, and dimension-variable inference."""

import pytest

from repro.errors import DimVarError, QwertyTypeError
from repro.frontend.decorators import (
    Bits,
    bit,
    cfunc,
    classical,
    qpu,
    N,
    I,
)


def test_bits_basics():
    bits = Bits.from_str("1010")
    assert len(bits) == 4
    assert str(bits) == "1010"
    assert int(bits) == 10
    assert bits == "1010"
    assert bits == (1, 0, 1, 0)
    assert bits[0] == 1
    assert str(bits[1:3]) == "01"


def test_bits_reject_non_binary():
    with pytest.raises(QwertyTypeError):
        Bits([0, 2])


def test_bit_marker_subscriptable():
    assert bit[4] is not None
    assert bit.from_str("11") == Bits([1, 1])


def test_classical_evaluate():
    secret = bit.from_str("101")

    @classical[N](secret)
    def f(s: bit[N], x: bit[N]) -> bit:
        return (s & x).xor_reduce()

    assert f.evaluate(Bits([1, 1, 1])) == Bits([0])
    assert f.evaluate(Bits([1, 0, 0])) == Bits([1])


def test_classical_infer_dims_from_capture():
    secret = bit.from_str("1011")

    @classical[N](secret)
    def f(s: bit[N], x: bit[N]) -> bit:
        return (s & x).xor_reduce()

    assert f.infer_dims() == {"N": 4}
    assert f.signature({"N": 4}) == (4, 1)


def test_classical_capture_must_be_bits():
    with pytest.raises(QwertyTypeError):
        @classical[N]("not bits")
        def f(s: bit[N], x: bit[N]) -> bit:
            return x.xor_reduce()


def test_kernel_dim_inference_from_cfunc():
    secret = bit.from_str("110")

    @classical[N](secret)
    def f(s: bit[N], x: bit[N]) -> bit:
        return (s & x).xor_reduce()

    @qpu[N](f)
    def kernel(f: cfunc[N, 1]) -> bit[N]:
        return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure  # noqa

    assert kernel.infer_dims() == {"N": 3}


def test_kernel_subscript_binds_remaining_dims():
    @classical[N]
    def f(x: bit[N]) -> bit:
        return x.xor_reduce()

    @qpu[N, I](f)
    def kernel(f: cfunc[N, 1]) -> bit[N]:
        q = 'p'[N]  # noqa
        for _ in range(I):  # noqa
            q = q | f.sign  # noqa
        return q | std[N].measure  # noqa

    bound = kernel[4, 2]
    assert bound.infer_dims() == {"N": 4, "I": 2}


def test_missing_dims_raise():
    @classical[N]
    def f(x: bit[N]) -> bit:
        return x.xor_reduce()

    @qpu[N](f)
    def kernel(f: cfunc[N, 1]) -> bit[N]:
        return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure  # noqa

    with pytest.raises(DimVarError, match="could not infer"):
        kernel.infer_dims()


def test_conflicting_dims_raise():
    f_secret = bit.from_str("110")
    g_secret = bit.from_str("11011")

    @classical[N](f_secret)
    def f(s: bit[N], x: bit[N]) -> bit:
        return (s & x).xor_reduce()

    @classical[N](g_secret)
    def g(s: bit[N], x: bit[N]) -> bit:
        return (s & x).xor_reduce()

    @qpu[N](f, g)
    def kernel(f: cfunc[N, 1], g: cfunc[N, 1]) -> bit[N]:
        return 'p'[N] | f.sign | g.sign | pm[N] >> std[N] | std[N].measure  # noqa

    # Detected either as a dimension conflict or as a capture-width
    # mismatch when the second capture is checked against N=3.
    with pytest.raises((DimVarError, QwertyTypeError)):
        kernel.infer_dims()


def test_overbinding_dims_raise():
    secret = bit.from_str("110")

    @classical[N](secret)
    def f(s: bit[N], x: bit[N]) -> bit:
        return (s & x).xor_reduce()

    @qpu[N](f)
    def kernel(f: cfunc[N, 1]) -> bit[N]:
        return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure  # noqa

    # N is already inferred; there is nothing left to bind.
    with pytest.raises(DimVarError, match="too many"):
        kernel[5]


def test_histogram():
    @qpu
    def coin() -> bit:
        return 'p' | std.measure  # noqa

    histogram = coin.histogram(shots=64, seed=0)
    assert set(histogram) <= {"0", "1"}
    assert sum(histogram.values()) == 64
    assert histogram.get("0", 0) > 10
    assert histogram.get("1", 0) > 10


def test_shots_return_list():
    @qpu
    def one() -> bit:
        return '1' | std.measure  # noqa

    results = one(shots=3)
    assert len(results) == 3
    assert all(str(r) == "1" for r in results)


def test_runtime_params_rejected():
    @qpu
    def kernel(q: "qubit") -> "qubit":
        return q | std.flip  # noqa

    with pytest.raises(QwertyTypeError, match="runtime parameters"):
        kernel.compile()
