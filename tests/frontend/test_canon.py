"""Tests for AST canonicalization (paper §4.2)."""

from repro.frontend.ast_nodes import (
    AdjointExpr,
    IdExpr,
    PredExpr,
    TensorExpr,
    TranslationExpr,
)
from repro.frontend.canon import canonicalize_kernel
from repro.frontend.expand import expand_kernel
from repro.frontend.pyast import parse_kernel
from repro.frontend.typecheck import TypeChecker


def canonicalized(fn, dims=None, dimvars=()):
    kernel = parse_kernel(fn, list(dimvars))
    expanded = expand_kernel(kernel, dims or {})
    TypeChecker({}).check_kernel(expanded)
    return canonicalize_kernel(expanded)


def test_double_adjoint_removed():
    def kernel() -> "bit":
        return '0' | ~~std.flip | std.measure  # noqa

    out = canonicalized(kernel)
    fn = out.body[0].value.value.fn
    assert not isinstance(fn, AdjointExpr)


def test_adjoint_of_translation_swaps_sides():
    def kernel() -> "bit":
        return '0' | ~({'0'} >> {'0'}) | std.measure  # noqa

    out = canonicalized(kernel)
    fn = out.body[0].value.value.fn
    assert isinstance(fn, TranslationExpr)


def test_std_pred_becomes_id_tensor():
    def kernel() -> "bit[2]":
        return '00' | std & std.flip | std[2].measure  # noqa

    out = canonicalized(kernel)
    fn = out.body[0].value.value.fn
    assert isinstance(fn, TensorExpr)
    assert isinstance(fn.parts[0], IdExpr)


def test_pred_of_translation_prepends_basis():
    def kernel() -> "bit[2]":
        return '10' | {'1'} & ({'0','1'} >> {'1','0'}) | std[2].measure  # noqa

    out = canonicalized(kernel)
    fn = out.body[0].value.value.fn
    assert isinstance(fn, TranslationExpr)
    assert fn.resolved_in.dim == 2
    # First element of both sides is the predicate.
    assert fn.resolved_in.elements[0] == fn.resolved_out.elements[0]


def test_nonstd_pred_preserved():
    def kernel() -> "bit[2]":
        return '10' | {'1'} & std.flip | std[2].measure  # noqa

    out = canonicalized(kernel)
    fn = out.body[0].value.value.fn
    # std.flip is a FlipExpr (not a raw translation), so & survives.
    assert isinstance(fn, PredExpr)


def test_canonical_form_still_type_checks():
    def kernel() -> "bit[2]":
        return '10' | {'1'} & ({'0','1'} >> {'1','0'}) | std[2].measure  # noqa

    out = canonicalized(kernel)
    TypeChecker({}).check_kernel(out)


def test_canonicalized_semantics_preserved():
    """~(b1>>b2) and b2>>b1 compile to the same circuit behavior."""
    from repro.frontend.decorators import qpu

    @qpu
    def direct() -> "bit":
        return 'p' | pm >> std | std.measure  # noqa

    @qpu
    def adjointed() -> "bit":
        return 'p' | ~(std >> pm) | std.measure  # noqa

    assert str(direct()) == str(adjointed())
