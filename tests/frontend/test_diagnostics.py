"""Golden-text tests for the diagnostic engine (source-caret rendering).

Covers the rustc-style rendering end to end: a type error from the
checker, a span-equivalence error from basis translation checking, and
an IR verification failure injected between passes — each must render
an ``error[QWnnn]`` header, a ``file:line:col`` pointer, the offending
source line, and a caret underline.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    Diagnostic,
    ERROR_CODES,
    IRVerificationError,
    Note,
    QwertyError,
    QwertyTypeError,
    SourceSpan,
    SpanCheckError,
    UNKNOWN_SPAN,
)
from repro.frontend.decorators import bit, qpu


def compile_error(kernel, error_type) -> QwertyError:
    with pytest.raises(error_type) as info:
        kernel.compile()
    return info.value


# ----------------------------------------------------------------------
# Rendering building blocks.
# ----------------------------------------------------------------------
def test_source_span_str_and_unknown():
    span = SourceSpan("prog.py", 12, 5, 12, 9, "    expr")
    assert str(span) == "prog.py:12:5"
    assert not span.is_unknown
    assert UNKNOWN_SPAN.is_unknown
    assert str(UNKNOWN_SPAN) == "<unknown location>"


def test_diagnostic_golden_rendering():
    span = SourceSpan("prog.py", 3, 5, 3, 8, "    bad | here")
    diag = Diagnostic(
        "something is wrong",
        code="QW121",
        span=span,
        notes=(Note("while compiling @kernel"),),
    )
    assert diag.render() == (
        "error[QW121]: something is wrong\n"
        "  --> prog.py:3:5\n"
        "    |\n"
        "  3 |     bad | here\n"
        "    |     ^^^\n"
        "  = note: while compiling @kernel"
    )


def test_error_without_span_renders_as_plain_message():
    assert str(QwertyTypeError("just a message")) == "just a message"


def test_error_codes_are_unique_and_stable():
    # One code per class; spot-check the documented assignments.
    assert ERROR_CODES["QW121"] is QwertyTypeError
    assert ERROR_CODES["QW122"] is SpanCheckError
    assert ERROR_CODES["QW302"] is IRVerificationError
    codes = [cls.code for cls in set(ERROR_CODES.values())]
    assert len(codes) == len(set(codes))


def test_attach_span_keeps_innermost():
    inner = SourceSpan("a.py", 1, 1, 1, 2, "x")
    outer = SourceSpan("a.py", 9, 9, 9, 10, "y")
    error = QwertyTypeError("m", span=inner)
    error.attach_span(outer)
    assert error.span is inner


# ----------------------------------------------------------------------
# A typecheck error renders a caret at the offending expression.
# ----------------------------------------------------------------------
def test_typecheck_error_renders_caret():
    @qpu
    def kernel() -> bit:
        return '00' | std.measure  # noqa

    error = compile_error(kernel, QwertyTypeError)
    rendered = str(error)

    assert not error.span.is_unknown
    assert error.span.file.endswith("test_diagnostics.py")
    lines = rendered.splitlines()
    assert lines[0] == (
        "error[QW121]: pipe type mismatch: value is qubit[2], "
        "function takes qubit[1]"
    )
    assert lines[1].lstrip().startswith("--> ")
    assert f":{error.span.line}:" in lines[1]
    # The snippet is the real source line, caret under the expression.
    assert "return '00' | std.measure" in rendered
    assert "^" in lines[-1]


# ----------------------------------------------------------------------
# A span-equivalence (§4.1) error renders a caret at the translation.
# ----------------------------------------------------------------------
def test_span_equivalence_error_renders_caret():
    @qpu
    def kernel() -> bit:
        return '0' | {'0'} >> {'1'} | std.measure  # noqa

    error = compile_error(kernel, SpanCheckError)
    rendered = str(error)

    assert rendered.startswith("error[QW122]: ")
    assert "{'0'} >> {'1'}" in rendered  # Snippet line present.
    caret_line = rendered.splitlines()[-1]
    # The caret starts under the translation expression, not column 1.
    assert caret_line.index("^") > caret_line.index("|")
    assert error.span.col == error.span.snippet.index("{'0'}") + 1


def test_linearity_error_renders_caret():
    @qpu
    def kernel() -> bit[2]:
        q = '0'  # noqa
        return (q + q) | std[2].measure  # noqa

    error = compile_error(kernel, QwertyTypeError)
    assert "more than once" in error.message
    assert not error.span.is_unknown
    assert "return (q + q)" in str(error)


# ----------------------------------------------------------------------
# A verifier failure injected between passes names the pass and op loc.
# ----------------------------------------------------------------------
def test_verifier_failure_between_passes_names_pass_and_location():
    from repro.ir.passmanager import FunctionPass, PassManager
    from repro.ir.verifier import verify_module
    from repro.pipeline import _build_qwerty_module

    @qpu
    def kernel() -> bit:
        return '0' | std.measure  # noqa

    module, _dims = _build_qwerty_module(kernel)

    def break_ir(module) -> bool:
        # Duplicate a use of a linear value: drop the terminator's
        # operands onto another op's operand list is invasive, so
        # instead erase the terminator of the entry function — the
        # verifier must flag the missing return.
        func = module.get(module.entry_point)
        terminator = func.entry.ops.pop()
        terminator.drop_all_operands()
        return True

    manager = PassManager(
        [FunctionPass("break-ir", break_ir)], verifier=verify_module
    )
    with pytest.raises(IRVerificationError) as info:
        manager.run(module)
    rendered = str(info.value)
    assert "IR verification failed after pass 'break-ir'" in rendered
    assert rendered.startswith("error[QW302]: ")


def test_verifier_linear_value_error_carries_op_location():
    from repro.ir.verifier import verify_module
    from repro.pipeline import _build_qwerty_module
    from repro.ir.core import walk

    @qpu
    def kernel() -> bit:
        return '0' | std.measure  # noqa

    module, _dims = _build_qwerty_module(kernel)
    func = module.get(module.entry_point)
    # Orphan a linear value: detach the op consuming the prepared
    # qbundle, leaving the qbprep result with zero uses.
    consumer = next(
        op
        for op in walk(func.entry)
        if any(v.owner_op is not None and v.owner_op.name == "qwerty.qbprep"
               for v in op.operands)
    )
    consumer.drop_all_operands()
    consumer.remove_from_block()

    with pytest.raises(IRVerificationError) as info:
        verify_module(module)
    error = info.value
    # Detaching the consumer violates dominance (the return now reads
    # an undefined value); whichever invariant fires first, the error
    # must point back into this test file's kernel source.
    assert not error.span.is_unknown
    assert error.span.file.endswith("test_diagnostics.py")
    assert str(error).startswith("error[QW302]: ")


# ----------------------------------------------------------------------
# Decorator-time syntax errors carry spans too.
# ----------------------------------------------------------------------
def test_syntax_error_renders_caret():
    from repro.errors import QwertySyntaxError

    with pytest.raises(QwertySyntaxError) as info:

        @qpu
        def kernel() -> bit:
            q = '0'
            q.frobnicate  # noqa
            return q | std.measure  # noqa

    rendered = str(info.value)
    assert rendered.startswith("error[QW101]: ")
    assert "q.frobnicate" in rendered
    assert not info.value.span.is_unknown
