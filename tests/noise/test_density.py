"""Density-matrix backend tests (repro.sim.density): exact evolution,
zero-noise equivalence with the statevector backend, and exact output
distributions under noise."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.noise import (
    NoiseModel,
    ReadoutError,
    amplitude_damping,
    bit_flip,
    depolarizing,
)
from repro.qcircuit import (
    conditioned_fanout_circuit,
    qubit_reuse_circuit,
    repeat_until_success_circuit,
    teleport_circuit,
)
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement
from repro.sim import (
    DensityMatrixBackend,
    DensityMatrixSimulator,
    available_backends,
    controlled_matrix,
    gate_matrix,
    get_backend,
    run_circuit_with_info,
    terminal_measurement_plan,
)
from tests.stats import assert_histograms_close


def bell_circuit():
    circuit = Circuit(num_qubits=2, num_bits=2)
    circuit.add(CircuitGate("h", (0,)))
    circuit.add(CircuitGate("x", (1,), controls=(0,)))
    circuit.add(Measurement(0, 0))
    circuit.add(Measurement(1, 1))
    return circuit


# ----------------------------------------------------------------------
# Registration and limits.
# ----------------------------------------------------------------------
def test_density_backend_registered():
    assert "density_matrix" in available_backends()
    assert isinstance(get_backend("density_matrix"), DensityMatrixBackend)


def test_density_qubit_limit():
    with pytest.raises(SimulationError, match="density-matrix limit"):
        DensityMatrixSimulator(13)


# ----------------------------------------------------------------------
# Exact evolution semantics.
# ----------------------------------------------------------------------
def test_pure_state_evolution_matches_statevector():
    """Noiseless rho stays |psi><psi| for the simulator's |psi|."""
    from repro.sim import StatevectorSimulator

    gates = [
        CircuitGate("h", (0,)),
        CircuitGate("x", (1,), controls=(0,)),
        CircuitGate("rz", (0,), params=(0.4,)),
        CircuitGate("x", (2,), controls=(1,), ctrl_states=(0,)),
        CircuitGate("swap", (0, 2)),
    ]
    sv = StatevectorSimulator(3)
    dm = DensityMatrixSimulator(3)
    for gate in gates:
        sv.apply_gate(gate)
        dm.apply_gate(gate)
    psi = sv.statevector()
    expected = np.outer(psi, psi.conj()).reshape((2,) * 6)
    assert np.allclose(dm.rho, expected)
    assert dm.trace() == pytest.approx(1.0)


def test_controlled_matrix_polarities():
    x = gate_matrix("x")
    # Control on |1>: the standard CNOT block layout.
    cnot = controlled_matrix(x, (1,))
    expected = np.eye(4, dtype=complex)
    expected[2:, 2:] = x
    assert np.array_equal(cnot, expected)
    # Control on |0>: the X block sits in the |0> subspace.
    anti = controlled_matrix(x, (0,))
    expected = np.eye(4, dtype=complex)
    expected[:2, :2] = x
    assert np.array_equal(anti, expected)
    assert controlled_matrix(x, ()) is x


def test_channel_application_matches_analytic_action():
    """A single-qubit channel inside an entangled 2-qubit state acts as
    (channel x id) on the full density matrix."""
    channel = amplitude_damping(0.3)
    dm = DensityMatrixSimulator(2)
    dm.apply_gate(CircuitGate("h", (0,)))
    dm.apply_gate(CircuitGate("x", (1,), controls=(0,)))
    rho_before = dm.rho.reshape(4, 4).copy()
    dm.apply_channel(channel, (0,))
    # Build (K x I) rho (K x I)^dag explicitly.
    expected = sum(
        np.kron(op, np.eye(2))
        @ rho_before
        @ np.kron(op, np.eye(2)).conj().T
        for op in channel.operators
    )
    assert np.allclose(dm.rho.reshape(4, 4), expected)


def test_reset_is_trace_preserving_collapse():
    dm = DensityMatrixSimulator(1)
    dm.apply_gate(CircuitGate("h", (0,)))
    dm.reset(0)
    assert np.allclose(
        dm.rho.reshape(2, 2), [[1, 0], [0, 0]]
    )


# ----------------------------------------------------------------------
# Zero-noise equivalence with the statevector backend.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shots", [1, 7, 400])
def test_zero_noise_terminal_histograms_match_statevector_exactly(shots):
    """Acceptance: same seed convention, identical shot sequences."""
    circuit = bell_circuit()
    for seed in (0, 3, 11):
        sv = run_circuit_with_info(
            circuit, shots=shots, seed=seed, backend="statevector"
        )[0]
        dm, info = run_circuit_with_info(
            circuit, shots=shots, seed=seed, backend="density_matrix"
        )
        assert dm == sv
        assert info.fast_path and info.evolutions == 1
        assert info.channel_applications == 0


def test_zero_noise_grover_matches_statevector_exactly():
    from repro.algorithms import grover

    circuit = grover(3).compile(cache=True).optimized_circuit
    sv = run_circuit_with_info(
        circuit, shots=400, seed=5, backend="statevector"
    )[0]
    dm = run_circuit_with_info(
        circuit, shots=400, seed=5, backend="density_matrix"
    )[0]
    assert dm == sv


@pytest.mark.parametrize(
    "label, factory",
    [
        ("teleport", teleport_circuit),
        ("cond-fanout", conditioned_fanout_circuit),
        ("qubit-reuse", qubit_reuse_circuit),
        ("repeat-until-success", repeat_until_success_circuit),
    ],
)
def test_zero_noise_nonterminal_matches_statevector_distribution(
    label, factory
):
    """Branched rho evolution agrees with batched trajectories on every
    non-terminal example circuit (same distribution; the sampling paths
    differ, so this is a TVD comparison, not bit equality)."""
    circuit = factory()
    shots = 4000
    batched, _ = run_circuit_with_info(
        circuit, shots=shots, seed=13, backend="statevector"
    )
    density, info = run_circuit_with_info(
        circuit, shots=shots, seed=13, backend="density_matrix"
    )
    assert not info.fast_path and info.evolutions == 1
    assert_histograms_close(batched, density, label=label)


# ----------------------------------------------------------------------
# Exact output distributions under noise.
# ----------------------------------------------------------------------
def test_output_distribution_ideal_teleport_is_analytic():
    distribution = DensityMatrixBackend().output_distribution(
        teleport_circuit()
    )
    expected_one = math.sin(0.35) ** 2
    assert distribution[(1,)] == pytest.approx(expected_one)
    assert distribution[(0,)] == pytest.approx(1 - expected_one)


def test_output_distribution_bit_flip_before_measurement():
    """X-gate circuit with bit-flip noise: P(0) = p, analytically."""
    p = 0.2
    circuit = Circuit(num_qubits=1, num_bits=1)
    circuit.add(CircuitGate("x", (0,)))
    circuit.add(Measurement(0, 0))
    model = NoiseModel().add_channel(bit_flip(p))
    distribution = DensityMatrixBackend().output_distribution(
        circuit, noise_model=model
    )
    assert distribution[(0,)] == pytest.approx(p)
    assert distribution[(1,)] == pytest.approx(1 - p)


def test_output_distribution_readout_only():
    """Readout confusion alone: P(recorded 0 | prepared 1) = p10."""
    circuit = Circuit(num_qubits=1, num_bits=1)
    circuit.add(CircuitGate("x", (0,)))
    circuit.add(Measurement(0, 0))
    model = NoiseModel().add_readout_error(
        ReadoutError.asymmetric(0.0, 0.3)
    )
    distribution = DensityMatrixBackend().output_distribution(
        circuit, noise_model=model
    )
    assert distribution[(0,)] == pytest.approx(0.3)
    assert distribution[(1,)] == pytest.approx(0.7)


def test_readout_error_feeds_classical_conditioning():
    """A conditioned gate sees the *recorded* (corrupted) bit: with
    certain misread (p01 = 1) of a |0> coin, the conditioned X always
    fires even though the true outcome is always 0."""
    circuit = Circuit(num_qubits=2, num_bits=2, output_bits=[1])
    circuit.add(Measurement(0, 0))  # qubit 0 is |0>: true outcome 0
    circuit.add(CircuitGate("x", (1,), condition=(0, 1)))
    circuit.add(Measurement(1, 1))
    model = NoiseModel().add_readout_error(
        ReadoutError.asymmetric(1.0, 0.0), qubits=(0,)
    )
    distribution = DensityMatrixBackend().output_distribution(
        circuit, noise_model=model
    )
    assert distribution == {(1,): pytest.approx(1.0)}


def test_noisy_teleport_distribution_interpolates_to_mixed():
    """Depolarizing noise pulls the teleported bit toward 50/50, and
    the exact distribution moves monotonically with strength."""
    backend = DensityMatrixBackend()
    circuit = teleport_circuit()
    ideal_one = math.sin(0.35) ** 2
    previous = ideal_one
    for strength in (0.05, 0.2, 0.5):
        model = NoiseModel().add_channel(depolarizing(strength))
        p_one = backend.output_distribution(circuit, model)[(1,)]
        assert previous < p_one < 0.5
        previous = p_one


def test_branch_merging_bounds_branch_count():
    """qubit_reuse(8) has 8 measurements (2^8 raw paths) but only 256
    register values; merged branching must stay exact and cheap."""
    circuit = qubit_reuse_circuit(rounds=8)
    distribution = DensityMatrixBackend().output_distribution(circuit)
    assert len(distribution) == 256
    for probability in distribution.values():
        assert probability == pytest.approx(1 / 256)


def test_duplicate_measurement_readout_uses_per_measurement_semantics():
    """A qubit measured into two bits under readout confusion draws one
    independent flip per Measurement (like the trajectory engines) —
    the density backend must route this off the marginal-folding
    terminal path, which would wrongly correlate the two records."""
    circuit = Circuit(num_qubits=1, num_bits=2)
    circuit.add(CircuitGate("x", (0,)))
    circuit.add(Measurement(0, 0))
    circuit.add(Measurement(0, 1))
    p = 0.2
    model = NoiseModel().add_readout_error(ReadoutError.symmetric(p))
    distribution = DensityMatrixBackend().output_distribution(
        circuit, noise_model=model
    )
    # True outcome is always 1; each record flips independently.
    assert distribution[(0, 1)] == pytest.approx(p * (1 - p))
    assert distribution[(1, 0)] == pytest.approx(p * (1 - p))
    assert distribution[(1, 1)] == pytest.approx((1 - p) ** 2)
    # And the sampled run agrees with the batched engine's convention.
    _, info = run_circuit_with_info(
        circuit, shots=16, seed=0,
        backend="density_matrix", noise_model=model,
    )
    assert not info.fast_path
    # Without readout confusion the terminal shortcut still applies.
    assert terminal_measurement_plan(circuit) is not None
    _, info = run_circuit_with_info(
        circuit, shots=16, seed=0, backend="density_matrix"
    )
    assert info.fast_path


def test_density_run_is_deterministic_per_seed():
    circuit = teleport_circuit()
    model = NoiseModel().add_channel(depolarizing(0.1))
    first = run_circuit_with_info(
        circuit, shots=64, seed=9, backend="density_matrix",
        noise_model=model,
    )[0]
    second = run_circuit_with_info(
        circuit, shots=64, seed=9, backend="density_matrix",
        noise_model=model,
    )[0]
    third = run_circuit_with_info(
        circuit, shots=64, seed=10, backend="density_matrix",
        noise_model=model,
    )[0]
    assert first == second
    assert first != third
