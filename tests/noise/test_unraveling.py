"""Stochastic Kraus unraveling tests: the batched trajectory engine and
the per-shot interpreter must both converge to the exact density-matrix
distribution, with honest RunInfo telemetry."""

import numpy as np

from repro.noise import (
    NoiseModel,
    NoiseStats,
    ReadoutError,
    amplitude_damping,
    depolarizing,
    phase_damping,
)
from repro.qcircuit import conditioned_fanout_circuit, teleport_circuit
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement
from repro.sim import (
    BatchedStatevector,
    DensityMatrixBackend,
    StatevectorSimulator,
    batched_run,
    run_circuit_with_info,
)
from tests.stats import assert_matches_distribution, empirical_distribution


def teleport_noise_model():
    """The acceptance-criteria model: depolarizing + readout noise."""
    return (
        NoiseModel()
        .add_channel(depolarizing(0.05))
        .add_readout_error(ReadoutError.symmetric(0.02))
    )


# ----------------------------------------------------------------------
# Engine-level unraveling semantics.
# ----------------------------------------------------------------------
def test_batched_kraus_preserves_normalization():
    batch = BatchedStatevector(512, 2, rng=np.random.default_rng(1))
    batch.apply_gate(CircuitGate("h", (0,)))
    batch.apply_gate(CircuitGate("x", (1,), controls=(0,)))
    batch.apply_kraus(amplitude_damping(0.4).operators, (0,))
    flat = batch.state.reshape(512, -1)
    norms = np.einsum("si,si->s", flat, flat.conj()).real
    assert np.allclose(norms, 1.0)


def test_batched_kraus_matches_channel_statistics():
    """Unraveled amplitude damping on |1>: P(damped to |0>) = gamma."""
    gamma = 0.3
    shots = 4000
    batch = BatchedStatevector(shots, 1, rng=np.random.default_rng(7))
    batch.apply_gate(CircuitGate("x", (0,)))
    batch.apply_kraus(amplitude_damping(gamma).operators, (0,))
    p_one = batch.probability_one(0)
    # Each trajectory collapsed to exactly |0> or |1>.
    assert np.all((p_one < 1e-9) | (p_one > 1 - 1e-9))
    damped = int((p_one < 0.5).sum())
    sigma = (shots * gamma * (1 - gamma)) ** 0.5
    assert abs(damped - gamma * shots) < 5 * sigma


def test_batched_kraus_masked_subset_only():
    """A masked Kraus draw must leave unmasked trajectories untouched."""
    batch = BatchedStatevector(8, 1, rng=np.random.default_rng(3))
    batch.apply_gate(CircuitGate("x", (0,)))
    mask = np.zeros(8, dtype=bool)
    mask[:4] = True
    batch.apply_kraus(
        amplitude_damping(1.0).operators, (0,), mask=mask
    )
    p_one = batch.probability_one(0)
    assert np.allclose(p_one[:4], 0.0)  # damped with certainty
    assert np.allclose(p_one[4:], 1.0)  # untouched


def test_single_shot_kraus_matches_channel_statistics():
    gamma = 0.25
    damped = 0
    trials = 2000
    for seed in range(trials):
        sim = StatevectorSimulator(1, seed=seed)
        sim.apply_gate(CircuitGate("x", (0,)))
        sim.apply_kraus(amplitude_damping(gamma).operators, (0,))
        damped += 1 - round(sim.probability_one(0))
    sigma = (trials * gamma * (1 - gamma)) ** 0.5
    assert abs(damped - gamma * trials) < 5 * sigma


# ----------------------------------------------------------------------
# Convergence to the density-matrix distribution (acceptance criteria).
# ----------------------------------------------------------------------
def test_teleport_unraveling_converges_to_density_matrix():
    """Acceptance: teleport with depolarizing + readout noise — the
    batched unraveling matches the exact distribution within the shared
    TVD threshold."""
    circuit = teleport_circuit()
    model = teleport_noise_model()
    exact = DensityMatrixBackend().output_distribution(circuit, model)
    shots = 8192
    results, info = run_circuit_with_info(
        circuit, shots=shots, seed=17,
        backend="statevector", noise_model=model,
    )
    assert info.batched and not info.fast_path
    assert info.evolutions == 1  # one sweep over all shots
    assert_matches_distribution(
        results, exact, label="teleport unraveling"
    )


def test_conditioned_fanout_unraveling_converges_to_density_matrix():
    circuit = conditioned_fanout_circuit()
    model = (
        NoiseModel()
        .add_channel(amplitude_damping(0.08))
        .add_channel(phase_damping(0.05))
        .add_readout_error(ReadoutError.asymmetric(0.03, 0.06))
    )
    exact = DensityMatrixBackend().output_distribution(circuit, model)
    results, info = run_circuit_with_info(
        circuit, shots=8192, seed=23,
        backend="statevector", noise_model=model,
    )
    assert info.batched
    assert_matches_distribution(
        results, exact, label="cond-fanout unraveling"
    )


def test_interpreter_unraveling_converges_to_density_matrix():
    """The per-shot interpreter is a second, independent unraveling —
    cross-validating the batched implementation."""
    circuit = teleport_circuit()
    model = teleport_noise_model()
    exact = DensityMatrixBackend().output_distribution(circuit, model)
    results, info = run_circuit_with_info(
        circuit, shots=4000, seed=29,
        backend="interpreter", noise_model=model,
    )
    assert info.evolutions == 4000 and not info.batched
    assert_matches_distribution(
        results, exact, label="interpreter unraveling"
    )


def test_noisy_terminal_circuit_takes_batched_path():
    """Noise rules out the single-evolution fast path even for
    terminal-measurement circuits."""
    circuit = Circuit(num_qubits=2, num_bits=2)
    circuit.add(CircuitGate("h", (0,)))
    circuit.add(CircuitGate("x", (1,), controls=(0,)))
    circuit.add(Measurement(0, 0))
    circuit.add(Measurement(1, 1))
    model = NoiseModel().add_channel(depolarizing(0.1))
    _, info = run_circuit_with_info(
        circuit, shots=32, seed=0,
        backend="statevector", noise_model=model,
    )
    assert info.batched and not info.fast_path
    # An empty model (or none) keeps the fast path.
    _, info = run_circuit_with_info(
        circuit, shots=32, seed=0,
        backend="statevector", noise_model=NoiseModel(),
    )
    assert info.fast_path


def test_noisy_bell_histogram_matches_density_exactly_in_distribution():
    circuit = Circuit(num_qubits=2, num_bits=2)
    circuit.add(CircuitGate("h", (0,)))
    circuit.add(CircuitGate("x", (1,), controls=(0,)))
    circuit.add(Measurement(0, 0))
    circuit.add(Measurement(1, 1))
    model = NoiseModel().add_channel(depolarizing(0.2))
    exact = DensityMatrixBackend().output_distribution(circuit, model)
    results, _ = run_circuit_with_info(
        circuit, shots=8192, seed=31,
        backend="statevector", noise_model=model,
    )
    assert_matches_distribution(results, exact, label="noisy bell")
    # The noise broke the perfect (00|11) correlation.
    assert set(empirical_distribution(results)) == set(exact)
    assert len(exact) == 4


# ----------------------------------------------------------------------
# Telemetry and determinism.
# ----------------------------------------------------------------------
def test_runinfo_reports_honest_counts_per_sweep():
    """One-chunk batched run: channel applications = attached channel
    events in one circuit walk; readout = measurements with confusion."""
    circuit = teleport_circuit()
    model = teleport_noise_model()
    _, info = run_circuit_with_info(
        circuit, shots=256, seed=0,
        backend="statevector", noise_model=model,
    )
    # teleport: rx, h, cx (2 qubits), cx (2 qubits), h, then the two
    # conditioned single-qubit corrections = 9 single-qubit channel
    # applications per sweep; 3 measurements with readout confusion.
    assert info.evolutions == 1
    assert info.channel_applications == 9
    assert info.readout_applications == 3


def test_never_fired_conditioned_gate_counts_no_channel_event():
    """A gate conditioned on a bit that never reads the required value
    applies no noise — both engines must report zero channel events
    (the batched engine's masked draw no-ops on an empty mask)."""
    circuit = Circuit(num_qubits=2, num_bits=2, output_bits=[1])
    circuit.add(Measurement(0, 0))  # qubit 0 is |0>: bit 0 always 0
    circuit.add(CircuitGate("x", (1,), condition=(0, 1)))  # never fires
    circuit.add(Measurement(1, 1))
    model = NoiseModel().add_channel(depolarizing(0.2), gates=("x",))
    for backend in ("statevector", "interpreter"):
        _, info = run_circuit_with_info(
            circuit, shots=64, seed=0,
            backend=backend, noise_model=model,
        )
        assert info.channel_applications == 0, backend


def test_runinfo_counts_scale_with_chunking():
    """Two sweeps double the per-sweep noise-event counts."""
    circuit = teleport_circuit()
    model = teleport_noise_model()
    stats = NoiseStats()
    # 3 qubits -> 128 bytes/shot; cap the envelope to force 2 chunks.
    _, sweeps = batched_run(
        circuit, shots=100, seed=1, max_batch_bytes=50 * 128,
        noise_model=model, stats=stats,
    )
    assert sweeps == 2
    assert stats.channel_applications == 18
    assert stats.readout_applications == 6


def test_noisy_batched_run_is_deterministic():
    circuit = conditioned_fanout_circuit()
    model = teleport_noise_model()
    first = run_circuit_with_info(
        circuit, shots=128, seed=5,
        backend="statevector", noise_model=model,
    )[0]
    second = run_circuit_with_info(
        circuit, shots=128, seed=5,
        backend="statevector", noise_model=model,
    )[0]
    third = run_circuit_with_info(
        circuit, shots=128, seed=6,
        backend="statevector", noise_model=model,
    )[0]
    assert first == second
    assert first != third


def test_kernel_entry_points_thread_noise_model():
    from repro.algorithms import bernstein_vazirani
    from repro.noise import standard_noise_model

    kernel = bernstein_vazirani("101")
    assert kernel.histogram(shots=32) == {"101": 32}
    noisy = kernel.histogram(
        shots=2048, noise_model=standard_noise_model(0.08)
    )
    assert max(noisy, key=noisy.get) == "101"
    assert len(noisy) > 1  # noise produced corrupted readouts
    # The density backend agrees through the same entry point.
    dense = kernel.histogram(
        shots=2048,
        backend="density_matrix",
        noise_model=standard_noise_model(0.08),
    )
    assert max(dense, key=dense.get) == "101"


def test_compile_options_noise_model_fallback():
    from repro import CompileOptions, simulate_kernel
    from repro.algorithms import bernstein_vazirani
    from repro.noise import standard_noise_model

    kernel = bernstein_vazirani("11")
    options = CompileOptions(noise_model=standard_noise_model(0.5))
    results = simulate_kernel(kernel, shots=512, options=options, seed=2)
    counts = empirical_distribution([str(bits) for bits in results])
    assert len(counts) > 1  # the options-level model applied
    # An explicit noise_model=None cannot override options (it is the
    # "unset" sentinel); an explicit model wins over the options model.
    quiet = simulate_kernel(
        kernel,
        shots=64,
        options=CompileOptions(),
        noise_model=standard_noise_model(0.0),
    )
    assert {str(bits) for bits in quiet} == {"11"}
