"""NoiseModel attachment-rule tests (repro.noise.model)."""

import pytest

from repro.errors import NoiseError
from repro.noise import (
    NoiseModel,
    ReadoutError,
    amplitude_damping,
    bit_flip,
    depolarizing,
    standard_noise_model,
)
from repro.qcircuit.circuit import CircuitGate


def cx(control, target):
    return CircuitGate("x", (target,), controls=(control,))


def test_empty_model_has_no_noise():
    model = NoiseModel()
    assert not model.has_noise
    assert model.channels_for(CircuitGate("h", (0,))) == []
    assert model.readout_error_for(0) is None


def test_global_single_qubit_channel_hits_every_gate_qubit():
    channel = depolarizing(0.1)
    model = NoiseModel().add_channel(channel)
    assert model.has_noise
    assert model.channels_for(CircuitGate("h", (2,))) == [(channel, (2,))]
    # Controls and targets both decohere: one application per qubit.
    assert model.channels_for(cx(0, 3)) == [(channel, (0,)), (channel, (3,))]


def test_gate_name_filter():
    channel = amplitude_damping(0.2)
    model = NoiseModel().add_channel(channel, gates=("h", "x"))
    assert model.channels_for(CircuitGate("h", (0,))) == [(channel, (0,))]
    assert model.channels_for(CircuitGate("z", (0,))) == []


def test_unknown_gate_name_rejected():
    with pytest.raises(NoiseError, match="unknown gate name"):
        NoiseModel().add_channel(bit_flip(0.1), gates=("cnot",))


def test_qubit_filter():
    channel = bit_flip(0.05)
    model = NoiseModel().add_channel(channel, qubits=(1,))
    assert model.channels_for(CircuitGate("h", (0,))) == []
    assert model.channels_for(CircuitGate("h", (1,))) == [(channel, (1,))]
    # On a two-qubit gate only the filtered qubit decoheres.
    assert model.channels_for(cx(1, 0)) == [(channel, (1,))]
    with pytest.raises(NoiseError, match="non-negative"):
        NoiseModel().add_channel(channel, qubits=(-1,))


def test_multi_qubit_channel_matches_arity():
    two_qubit = depolarizing(0.1, num_qubits=2)
    model = NoiseModel().add_channel(two_qubit)
    # Applied once, on controls + targets order, to 2-qubit gates only.
    assert model.channels_for(cx(0, 1)) == [(two_qubit, (0, 1))]
    assert model.channels_for(CircuitGate("h", (0,))) == []
    assert model.channels_for(CircuitGate("swap", (0, 1))) == [
        (two_qubit, (0, 1))
    ]
    # A qubit filter must cover every gate qubit.
    filtered = NoiseModel().add_channel(two_qubit, qubits=(0, 1))
    assert filtered.channels_for(cx(0, 1)) == [(two_qubit, (0, 1))]
    assert filtered.channels_for(cx(0, 2)) == []


def test_rules_apply_in_insertion_order():
    first = bit_flip(0.1)
    second = amplitude_damping(0.2)
    model = NoiseModel().add_channel(first).add_channel(second)
    assert model.channels_for(CircuitGate("h", (0,))) == [
        (first, (0,)),
        (second, (0,)),
    ]
    assert len(model.channel_rules) == 2


def test_add_channel_type_checks():
    with pytest.raises(NoiseError, match="KrausChannel"):
        NoiseModel().add_channel("not-a-channel")
    with pytest.raises(NoiseError, match="ReadoutError"):
        NoiseModel().add_readout_error(0.1)


def test_readout_default_and_per_qubit_override():
    default = ReadoutError.symmetric(0.1)
    special = ReadoutError.asymmetric(0.0, 0.5)
    model = (
        NoiseModel()
        .add_readout_error(default)
        .add_readout_error(special, qubits=(2,))
    )
    assert model.has_noise
    assert model.readout_error_for(0) == default
    assert model.readout_error_for(2) == special


def test_trivial_readout_resolves_to_none():
    model = NoiseModel().add_readout_error(ReadoutError.symmetric(0.0))
    # Identity confusion is no noise at all: engines keep their ideal
    # fast paths (has_noise False) and see no confusion to apply.
    assert not model.has_noise
    assert model.readout_error_for(0) is None
    # A non-trivial per-qubit entry flips the model to noisy.
    model.add_readout_error(ReadoutError.symmetric(0.1), qubits=(3,))
    assert model.has_noise


def test_effective_noise_model_normalization():
    from repro.noise import effective_noise_model

    assert effective_noise_model(None) is None
    assert effective_noise_model(NoiseModel()) is None
    assert effective_noise_model(standard_noise_model(0.0)) is None
    model = standard_noise_model(0.1)
    assert effective_noise_model(model) is model


def test_standard_noise_model_knob():
    assert not standard_noise_model(0.0).has_noise
    model = standard_noise_model(0.1)
    assert model.has_noise
    assert len(model.channel_rules) == 1
    assert model.readout_error_for(0).p01 == pytest.approx(0.05)
    custom = standard_noise_model(0.1, readout=0.3)
    assert custom.readout_error_for(5).p01 == pytest.approx(0.3)
    assert "NoiseModel" in repr(model)
