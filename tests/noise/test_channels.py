"""Channel-algebra tests: CPTP validation, analytic channel action,
and the readout confusion matrix (repro.noise.channels)."""

import math

import numpy as np
import pytest

from repro.errors import NoiseError
from repro.noise import (
    KrausChannel,
    ReadoutError,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    phase_damping,
    phase_flip,
)

I2 = np.eye(2, dtype=complex)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)

KET0 = np.array([[1, 0], [0, 0]], dtype=complex)  # |0><0|
KET1 = np.array([[0, 0], [0, 1]], dtype=complex)  # |1><1|
PLUS = 0.5 * np.array([[1, 1], [1, 1]], dtype=complex)  # |+><+|


# ----------------------------------------------------------------------
# CPTP validation.
# ----------------------------------------------------------------------
def test_rejects_non_trace_preserving_sets():
    with pytest.raises(NoiseError, match="not trace-preserving"):
        KrausChannel("half", [0.5 * I2])
    with pytest.raises(NoiseError, match="not trace-preserving"):
        KrausChannel("overweight", [I2, 0.5 * X])
    # Projectors alone are fine (P0 + P1 = I)...
    KrausChannel("projective", [KET0, KET1])
    # ...but a lone projector is not.
    with pytest.raises(NoiseError, match="not trace-preserving"):
        KrausChannel("lossy", [KET0])


def test_rejects_malformed_operator_sets():
    with pytest.raises(NoiseError, match="no Kraus operators"):
        KrausChannel("empty", [])
    with pytest.raises(NoiseError, match="square"):
        KrausChannel("rect", [np.zeros((2, 3))])
    with pytest.raises(NoiseError, match="disagree on shape"):
        KrausChannel("mixed", [I2, np.eye(4)])
    with pytest.raises(NoiseError, match="power of two"):
        KrausChannel("dim3", [np.eye(3)])


def test_builders_validate_probability_ranges():
    for builder in (
        bit_flip,
        phase_flip,
        bit_phase_flip,
        depolarizing,
        amplitude_damping,
        phase_damping,
    ):
        with pytest.raises(NoiseError, match=r"\[0, 1\]"):
            builder(-0.1)
        with pytest.raises(NoiseError, match=r"\[0, 1\]"):
            builder(1.5)


def test_zero_strength_channels_drop_to_identity():
    # The X/Y/Z legs carry zero weight and are dropped, so unraveling
    # a zero-strength channel never draws a zero-probability operator.
    assert len(depolarizing(0.0).operators) == 1
    assert len(bit_flip(0.0).operators) == 1
    assert np.allclose(bit_flip(0.0).operators[0], I2)


def test_channel_equality_and_repr():
    assert bit_flip(0.1) == bit_flip(0.1)
    assert bit_flip(0.1) != bit_flip(0.2)
    assert "bit_flip" in repr(bit_flip(0.1))


def test_apply_rejects_wrong_dimension():
    with pytest.raises(NoiseError, match="2x2"):
        bit_flip(0.1).apply(np.eye(4))


# ----------------------------------------------------------------------
# Analytic channel action on density matrices.
# ----------------------------------------------------------------------
def test_bit_flip_action():
    p = 0.3
    out = bit_flip(p).apply(KET0)
    assert np.allclose(out, (1 - p) * KET0 + p * KET1)


def test_phase_flip_action_kills_coherence():
    p = 0.25
    out = phase_flip(p).apply(PLUS)
    # rho -> (1-p) rho + p Z rho Z: off-diagonals scale by (1 - 2p).
    expected = 0.5 * np.array(
        [[1, 1 - 2 * p], [1 - 2 * p, 1]], dtype=complex
    )
    assert np.allclose(out, expected)


def test_depolarizing_action():
    p = 0.4
    rho = 0.5 * np.array([[1.2, 0.3 - 0.1j], [0.3 + 0.1j, 0.8]])
    out = depolarizing(p).apply(rho)
    expected = (1 - p) * rho + p * np.trace(rho) * I2 / 2
    assert np.allclose(out, expected)


def test_depolarizing_two_qubit_action():
    p = 0.2
    rng = np.random.default_rng(5)
    raw = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
    rho = raw @ raw.conj().T
    rho /= np.trace(rho)
    out = depolarizing(p, num_qubits=2).apply(rho)
    expected = (1 - p) * rho + p * np.eye(4) / 4
    assert np.allclose(out, expected)
    with pytest.raises(NoiseError, match="1 to 3"):
        depolarizing(0.1, num_qubits=4)


def test_amplitude_damping_action():
    gamma = 0.35
    out = amplitude_damping(gamma).apply(KET1)
    assert np.allclose(out, gamma * KET0 + (1 - gamma) * KET1)
    # |0> is a fixed point.
    assert np.allclose(amplitude_damping(gamma).apply(KET0), KET0)
    # Coherences shrink by sqrt(1 - gamma).
    out = amplitude_damping(gamma).apply(PLUS)
    assert np.allclose(out[0, 1], 0.5 * math.sqrt(1 - gamma))


def test_phase_damping_action():
    lam = 0.5
    out = phase_damping(lam).apply(PLUS)
    # Populations untouched, coherences shrink by sqrt(1 - lambda).
    assert np.allclose(np.diag(out), [0.5, 0.5])
    assert np.allclose(out[0, 1], 0.5 * math.sqrt(1 - lam))


def test_bit_phase_flip_action():
    p = 0.2
    out = bit_phase_flip(p).apply(KET0)
    assert np.allclose(out, (1 - p) * KET0 + p * KET1)


@pytest.mark.parametrize(
    "channel",
    [
        bit_flip(0.15),
        phase_flip(0.3),
        bit_phase_flip(0.07),
        depolarizing(0.25),
        amplitude_damping(0.4),
        phase_damping(0.6),
        depolarizing(0.1, num_qubits=2),
    ],
)
def test_channels_preserve_trace_and_positivity(channel):
    rng = np.random.default_rng(11)
    dim = channel.dim
    raw = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    rho = raw @ raw.conj().T
    rho /= np.trace(rho)
    out = channel.apply(rho)
    assert np.isclose(np.trace(out).real, 1.0)
    eigenvalues = np.linalg.eigvalsh(out)
    assert eigenvalues.min() > -1e-12


# ----------------------------------------------------------------------
# Readout confusion matrix.
# ----------------------------------------------------------------------
def test_readout_validation():
    with pytest.raises(NoiseError, match="2x2"):
        ReadoutError(np.eye(3))
    with pytest.raises(NoiseError, match=r"\[0, 1\]"):
        ReadoutError([[1.2, -0.2], [0.0, 1.0]])
    with pytest.raises(NoiseError, match="sum to 1"):
        ReadoutError([[0.9, 0.2], [0.0, 1.0]])
    with pytest.raises(NoiseError, match=r"\[0, 1\]"):
        ReadoutError.symmetric(1.5)


def test_readout_round_trip():
    # The identity confusion matrix round-trips any distribution...
    identity = ReadoutError.symmetric(0.0)
    assert identity.trivial
    distribution = np.array([0.3, 0.7])
    assert np.allclose(
        identity.apply_to_distribution(distribution), distribution
    )
    # ...and a non-trivial confusion round-trips through its inverse:
    # recovering the true distribution from the recorded one is exactly
    # the readout-error-mitigation inversion.
    error = ReadoutError.asymmetric(0.1, 0.25)
    assert not error.trivial
    recorded = error.apply_to_distribution(distribution)
    recovered = recorded @ np.linalg.inv(error.matrix)
    assert np.allclose(recovered, distribution)


def test_readout_accessors_and_equality():
    error = ReadoutError.asymmetric(0.1, 0.2)
    assert error.p01 == pytest.approx(0.1)
    assert error.p10 == pytest.approx(0.2)
    assert error == ReadoutError.asymmetric(0.1, 0.2)
    assert error != ReadoutError.symmetric(0.1)
    assert "p01" in repr(error)
    symmetric = ReadoutError.symmetric(0.05)
    assert symmetric.p01 == symmetric.p10 == pytest.approx(0.05)
    with pytest.raises(NoiseError, match="length-2"):
        error.apply_to_distribution([0.2, 0.3, 0.5])
