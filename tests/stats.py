"""Shared statistical helpers for histogram-equivalence tests.

Every test that compares two sampling engines (or an engine against an
exact distribution) goes through :func:`assert_histograms_close` /
:func:`tvd_threshold` instead of an ad-hoc hand-picked margin.  The
threshold is *derived from the shot counts*:

For an empirical distribution ``p_hat`` of ``n`` samples from a true
distribution ``p`` over ``k`` outcomes,

- ``E[TVD(p_hat, p)] <= sqrt(k / (4 n))``  (Cauchy-Schwarz over the
  per-outcome binomial standard deviations), and
- TVD exceeds its mean by more than ``t`` with probability at most
  ``exp(-2 n t^2)`` (McDiarmid's bounded-differences inequality — each
  sample moves the TVD by at most ``1/n``).

So ``sqrt(k / (4n)) + sqrt(ln(1/delta) / (2n))`` bounds a single
empirical side with failure probability ``delta``, and a two-sample
comparison adds one such term per side.  With the default
``delta = 1e-6`` the margin at 4000 shots over 4 outcomes is ~0.057 per
side — comfortably above statistical noise yet far below the O(0.3+)
TVD a mis-sampling engine produces.  Seeds are fixed in tests, so any
pass/fail is reproducible; the derivation just guarantees the fixed
draw is overwhelmingly unlikely to sit outside the margin under a
*correct* engine, whatever the shot count.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

# One implementation of the distribution/TVD math serves both the
# shipped evaluation harness and these test helpers, so the margins
# the tests enforce and the numbers the benchmarks report cannot
# drift apart.  repro.stats is import-light by design — no compiler or
# evaluation stack rides along with a histogram comparison.
from repro.stats import distribution_of as empirical_distribution
from repro.stats import distribution_tvd

__all__ = [
    "assert_histograms_close",
    "assert_matches_distribution",
    "distribution_tvd",
    "empirical_distribution",
    "histogram",
    "total_variation",
    "tvd_threshold",
]


def histogram(results: Sequence) -> dict:
    """Outcome -> count over a list of sampled outcomes."""
    counts: dict = {}
    for outcome in results:
        counts[outcome] = counts.get(outcome, 0) + 1
    return counts


def total_variation(results_a: Sequence, results_b: Sequence) -> float:
    """TVD between the empirical distributions of two sample lists."""
    return distribution_tvd(
        empirical_distribution(results_a),
        empirical_distribution(results_b),
    )


def tvd_threshold(
    shots_a: int,
    shots_b: Optional[int] = None,
    outcomes: int = 2,
    delta: float = 1e-6,
) -> float:
    """The TVD margin two correct samplers stay within (see module
    docstring for the derivation).

    ``shots_b=None`` compares one empirical side against an *exact*
    distribution (e.g. the density-matrix backend's
    ``output_distribution``), contributing a single term.
    """

    def one_side(shots: int) -> float:
        return math.sqrt(outcomes / (4.0 * shots)) + math.sqrt(
            math.log(1.0 / delta) / (2.0 * shots)
        )

    threshold = one_side(shots_a)
    if shots_b is not None:
        threshold += one_side(shots_b)
    return threshold


def assert_histograms_close(
    results_a: Sequence,
    results_b: Sequence,
    outcomes: Optional[int] = None,
    label: str = "",
) -> None:
    """Assert two sample lists agree within the derived TVD threshold.

    ``outcomes`` defaults to the size of the union support — the
    natural ``k`` when the true support is not known a priori.
    """
    p = empirical_distribution(results_a)
    q = empirical_distribution(results_b)
    support = outcomes if outcomes is not None else len(set(p) | set(q))
    threshold = tvd_threshold(
        len(results_a), len(results_b), outcomes=support
    )
    distance = distribution_tvd(p, q)
    assert distance < threshold, (
        f"{label or 'histograms'}: TVD {distance:.4f} exceeds the "
        f"derived threshold {threshold:.4f} "
        f"({len(results_a)}/{len(results_b)} shots, {support} outcomes)"
    )


def assert_matches_distribution(
    results: Sequence,
    exact: dict,
    outcomes: Optional[int] = None,
    label: str = "",
) -> None:
    """Assert a sample list converges to an exact distribution within
    the derived one-sided TVD threshold."""
    p = empirical_distribution(results)
    support = outcomes if outcomes is not None else len(set(p) | set(exact))
    threshold = tvd_threshold(len(results), outcomes=support)
    distance = distribution_tvd(p, exact)
    assert distance < threshold, (
        f"{label or 'samples'}: TVD {distance:.4f} from the exact "
        f"distribution exceeds the derived threshold {threshold:.4f} "
        f"({len(results)} shots, {support} outcomes)"
    )
