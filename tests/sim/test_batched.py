"""Tests for the shot-batched trajectory engine (repro.sim.batched)
and the in-place apply kernel (repro.sim.statevector.apply_matrix_inplace).

Histogram equivalence goes through the shared statistical helpers in
``tests/stats.py``: the TVD threshold is derived from the shot counts
(expected sampling deviation plus a McDiarmid tail), and the remaining
per-outcome count checks keep margins >= 4 sigma from the expected
mean, so fixed-seed draws are robust under any correctly-sampling
engine.
"""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.qcircuit import (
    conditioned_fanout_circuit,
    qubit_reuse_circuit,
    repeat_until_success_circuit,
    teleport_circuit,
)
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement, Reset
from repro.sim import (
    BatchedStatevector,
    StatevectorSimulator,
    apply_matrix_inplace,
    batch_chunk_size,
    batched_run,
    run_circuit_with_info,
)
from tests.stats import assert_histograms_close, histogram


# ----------------------------------------------------------------------
# The in-place apply kernel vs the old tensordot reference.
# ----------------------------------------------------------------------
def tensordot_reference(state, matrix, targets, controls=(), ctrl_states=()):
    """The historical tensordot + moveaxis + copy-back sweep."""
    num_axes = state.ndim
    view = state
    if controls:
        index = [slice(None)] * num_axes
        for qubit, required in zip(controls, ctrl_states):
            index[qubit] = required
        view = state[tuple(index)]
        removed = sorted(controls)
        targets = tuple(
            t - sum(1 for r in removed if r < t) for t in targets
        )
    k = len(targets)
    tensor = matrix.reshape((2,) * (2 * k))
    moved = np.tensordot(tensor, view, axes=(range(k, 2 * k), targets))
    view[...] = np.moveaxis(moved, range(k), targets)


def random_state(rng, num_qubits):
    state = rng.normal(size=(2,) * num_qubits) + 1j * rng.normal(
        size=(2,) * num_qubits
    )
    return state / np.linalg.norm(state)


def random_unitary(rng, dim):
    matrix = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(matrix)
    return q * (np.diag(r) / np.abs(np.diag(r)))


@pytest.mark.parametrize("num_qubits", [1, 2, 3, 4, 5, 6])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_inplace_kernel_matches_tensordot_reference(num_qubits, seed):
    rng = np.random.default_rng(100 * num_qubits + seed)
    for _ in range(8):
        k = int(rng.integers(1, min(num_qubits, 3) + 1))
        qubits = rng.permutation(num_qubits)
        targets = tuple(int(q) for q in qubits[:k])
        matrix = random_unitary(rng, 2**k)

        state = random_state(rng, num_qubits)
        expected = state.copy()
        apply_matrix_inplace(state, matrix, targets)
        tensordot_reference(expected, matrix, targets)
        assert np.allclose(state, expected)


@pytest.mark.parametrize("num_qubits", [2, 3, 4, 5, 6])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_controlled_apply_matches_reference_with_polarities(num_qubits, seed):
    """Control-sliced views, any polarity, through the simulator path."""
    rng = np.random.default_rng(7000 + 100 * num_qubits + seed)
    for _ in range(6):
        qubits = [int(q) for q in rng.permutation(num_qubits)]
        k = int(rng.integers(1, min(num_qubits - 1, 2) + 1))
        num_controls = int(rng.integers(1, num_qubits - k + 1))
        targets = tuple(qubits[:k])
        controls = tuple(qubits[k : k + num_controls])
        ctrl_states = tuple(
            int(s) for s in rng.integers(0, 2, size=num_controls)
        )
        matrix = random_unitary(rng, 2**k)

        initial = random_state(rng, num_qubits)
        sim = StatevectorSimulator(num_qubits)
        sim.state = initial.copy()
        sim.apply_unitary(matrix, targets, controls, ctrl_states)

        expected = initial.copy()
        tensordot_reference(expected, matrix, targets, controls, ctrl_states)
        assert np.allclose(sim.state, expected)


def test_inplace_kernel_batch_axis_rides_along():
    """A leading non-qubit axis (the shot axis) is preserved."""
    rng = np.random.default_rng(3)
    shots, num_qubits = 5, 3
    batch = np.stack([random_state(rng, num_qubits) for _ in range(shots)])
    matrix = random_unitary(rng, 4)
    targets = (2, 1)  # qubit axes 1-based in the batch array

    expected = batch.copy()
    for shot in range(shots):
        tensordot_reference(expected[shot], matrix, (1, 0))
    apply_matrix_inplace(batch, matrix, targets)
    assert np.allclose(batch, expected)


# ----------------------------------------------------------------------
# Batched engine semantics.
# ----------------------------------------------------------------------
def test_batched_single_shot_matches_single_simulator_amplitudes():
    """With no measurements, each batch row is the single-shot state."""
    gates = [
        CircuitGate("h", (0,)),
        CircuitGate("x", (1,), controls=(0,)),
        CircuitGate("rz", (0,), params=(0.3,)),
        CircuitGate("x", (2,), controls=(1,), ctrl_states=(0,)),
    ]
    sim = StatevectorSimulator(3)
    for gate in gates:
        sim.apply_gate(gate)

    batch = BatchedStatevector(4, 3)
    for gate in gates:
        batch.apply_gate(gate)
    for shot in range(4):
        assert np.allclose(batch.state[shot], sim.state)


def test_batched_measurement_probabilities_and_projection():
    batch = BatchedStatevector(4000, 1, 1, rng=np.random.default_rng(2))
    batch.apply_gate(CircuitGate("h", (0,)))
    p_one = batch.probability_one(0)
    assert np.allclose(p_one, 0.5)
    outcomes = batch.measure(0)
    # Post-measurement, every row is a normalized basis state that
    # agrees with its recorded outcome.
    flat = batch.state.reshape(4000, -1)
    norms = np.einsum("si,si->s", flat, flat.conj()).real
    assert np.allclose(norms, 1.0)
    assert np.array_equal(
        (np.abs(flat[:, 1]) ** 2 > 0.5).astype(int), outcomes
    )
    # ~50/50 split, 5 sigma.
    sigma = math.sqrt(4000 * 0.25)
    assert abs(outcomes.sum() - 2000) < 5 * sigma


def test_batched_measurement_zero_probability_guard():
    batch = BatchedStatevector(8, 1, 1)
    outcomes = batch.measure(0)  # |0>: deterministic, never raises
    assert not outcomes.any()


def test_batched_conditioned_gate_applies_only_to_masked_shots():
    circuit = conditioned_fanout_circuit()
    results, sweeps = batched_run(circuit, shots=400, seed=9)
    assert sweeps == 1
    counts = histogram(results)
    # The conditioned X's fan the coin out exactly: only '110'/'001'.
    assert set(counts) == {(1, 1, 0), (0, 0, 1)}
    sigma = math.sqrt(400 * 0.25)
    assert abs(counts[(1, 1, 0)] - 200) < 5 * sigma


def test_batched_reset_composes_measure_and_masked_x():
    batch = BatchedStatevector(400, 1, 0, rng=np.random.default_rng(4))
    batch.apply_gate(CircuitGate("h", (0,)))
    batch.reset(0)
    # Every trajectory is |0> again.
    assert np.allclose(batch.state[:, 0], 1.0)
    assert np.allclose(batch.state[:, 1], 0.0)


def test_batched_rejects_too_many_qubits_and_empty_batches():
    with pytest.raises(SimulationError, match="dense-simulation"):
        BatchedStatevector(2, 25)
    with pytest.raises(SimulationError, match="at least one shot"):
        BatchedStatevector(0, 2)


def test_batch_chunk_size_envelope():
    # 2^n * 16 bytes per shot against the envelope.
    assert batch_chunk_size(1, max_batch_bytes=1024) == 32
    assert batch_chunk_size(3, max_batch_bytes=1024) == 8
    # Never zero, even when one shot exceeds the envelope.
    assert batch_chunk_size(10, max_batch_bytes=16) == 1


def test_batched_run_chunks_report_honest_sweeps():
    circuit = teleport_circuit()
    # 3 qubits -> 2^3 * 16 = 128 bytes/shot; cap the envelope so 100
    # shots need four sweeps of at most 30 shots.
    results, sweeps = batched_run(
        circuit, shots=100, seed=1, max_batch_bytes=30 * 128
    )
    assert len(results) == 100
    assert sweeps == math.ceil(100 / 30)
    # Chunking must not distort the distribution (~sin^2(0.35)=0.118).
    full, one_sweep = batched_run(circuit, shots=1000, seed=1)
    assert one_sweep == 1
    expected = math.sin(0.35) ** 2
    ones = sum(r[0] for r in full)
    sigma = math.sqrt(expected * (1 - expected) * 1000)
    assert abs(ones - expected * 1000) < 5 * sigma


def test_batched_run_is_deterministic():
    circuit = repeat_until_success_circuit()
    assert batched_run(circuit, 64, seed=3) == batched_run(
        circuit, 64, seed=3
    )
    assert batched_run(circuit, 64, seed=3) != batched_run(
        circuit, 64, seed=4
    )


# ----------------------------------------------------------------------
# Histogram equivalence vs the interpreter backend (the bit-exact
# per-shot reference), within the derived TVD threshold (tests/stats.py).
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "label, circuit_factory",
    [
        ("teleport", teleport_circuit),
        ("cond-fanout", conditioned_fanout_circuit),
        ("qubit-reuse", qubit_reuse_circuit),
        ("repeat-until-success", repeat_until_success_circuit),
    ],
)
def test_batched_histograms_match_interpreter(label, circuit_factory):
    circuit = circuit_factory()
    shots = 4000
    per_shot, interp_info = run_circuit_with_info(
        circuit, shots=shots, seed=13, backend="interpreter"
    )
    batched, info = run_circuit_with_info(
        circuit, shots=shots, seed=13, backend="statevector"
    )
    assert interp_info.evolutions == shots and not interp_info.batched
    assert info.batched and not info.fast_path
    assert info.evolutions == 1
    assert len(batched) == shots
    # Both engines sample the same distribution: the exact outcome sets
    # agree and the TVD sits inside the shot-count-derived threshold.
    assert set(histogram(batched)) == set(histogram(per_shot)), label
    assert_histograms_close(per_shot, batched, label=label)


def test_batched_mid_circuit_reset_reuse_histogram():
    """Three coins through one reused qubit: uniform over 8 outcomes."""
    circuit = qubit_reuse_circuit(rounds=3)
    results, info = run_circuit_with_info(
        circuit, shots=4000, seed=21, backend="statevector"
    )
    assert info.batched and info.evolutions == 1
    counts = histogram(results)
    assert len(counts) == 8
    sigma = math.sqrt(4000 * (1 / 8) * (7 / 8))
    for outcome, count in counts.items():
        assert abs(count - 500) < 5 * sigma, outcome


def test_batched_handles_unknown_instruction():
    class Bogus:
        qubit = 0

    circuit = Circuit(num_qubits=1, num_bits=1)
    circuit.add(Bogus())
    with pytest.raises(SimulationError, match="unknown instruction"):
        batched_run(circuit, shots=2)


def test_batched_respects_output_bits():
    circuit = Circuit(num_qubits=2, num_bits=3, output_bits=[2, 0])
    circuit.add(CircuitGate("x", (0,)))
    circuit.add(Measurement(0, 0))
    circuit.add(CircuitGate("h", (1,)))
    circuit.add(Measurement(1, 1))  # mid-circuit: forces the batched path
    circuit.add(CircuitGate("h", (1,)))
    circuit.add(Measurement(0, 2))
    results, info = run_circuit_with_info(
        circuit, shots=16, backend="statevector"
    )
    assert info.batched
    assert results == [(1, 1)] * 16


def test_batched_trailing_reset_after_measurement():
    circuit = Circuit(num_qubits=2, num_bits=2, output_bits=[0])
    circuit.add(CircuitGate("h", (0,)))
    circuit.add(Measurement(0, 0))
    circuit.add(CircuitGate("h", (0,)))  # mid-circuit measurement above
    circuit.add(Measurement(0, 1))
    circuit.add(Reset(1))
    results, info = run_circuit_with_info(
        circuit, shots=400, seed=2, backend="statevector"
    )
    assert info.batched
    counts = histogram(results)
    sigma = math.sqrt(400 * 0.25)
    assert abs(counts.get((0,), 0) - 200) < 5 * sigma
