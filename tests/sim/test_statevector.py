"""Tests for the statevector simulator."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement, Reset
from repro.sim import (
    StatevectorSimulator,
    apply_gates_to_state,
    run_circuit,
    unitary_of_gates,
)


def g(name, targets, controls=(), params=(), ctrl_states=(), condition=None):
    return CircuitGate(
        name,
        tuple(targets),
        tuple(controls),
        tuple(params),
        tuple(ctrl_states),
        condition,
    )


def test_x_flips():
    state = apply_gates_to_state([g("x", [0])], 1)
    assert np.allclose(state, [0, 1])


def test_h_superposition():
    state = apply_gates_to_state([g("h", [0])], 1)
    assert np.allclose(state, [1 / math.sqrt(2), 1 / math.sqrt(2)])


def test_qubit0_is_most_significant():
    state = apply_gates_to_state([g("x", [0])], 2)
    # |10>: index 2.
    assert np.allclose(state, [0, 0, 1, 0])
    state = apply_gates_to_state([g("x", [1])], 2)
    assert np.allclose(state, [0, 1, 0, 0])


def test_cx():
    # CX with control qubit 0: |10> -> |11>.
    gates = [g("x", [0]), g("x", [1], controls=[0])]
    state = apply_gates_to_state(gates, 2)
    assert np.allclose(state, [0, 0, 0, 1])
    # Control not satisfied: |01> stays.
    gates = [g("x", [1]), g("x", [0], controls=[1], ctrl_states=[0])]
    state = apply_gates_to_state(gates, 2)
    assert np.allclose(state, [0, 1, 0, 0])


def test_negative_control():
    # Control on |0>: fires when control qubit is 0.
    gates = [g("x", [1], controls=[0], ctrl_states=[0])]
    state = apply_gates_to_state(gates, 2)
    assert np.allclose(state, [0, 1, 0, 0])


def test_toffoli():
    gates = [
        g("x", [0]),
        g("x", [1]),
        g("x", [2], controls=[0, 1]),
    ]
    state = apply_gates_to_state(gates, 3)
    assert np.allclose(state, [0, 0, 0, 0, 0, 0, 0, 1])


def test_swap():
    gates = [g("x", [0]), g("swap", [0, 1])]
    state = apply_gates_to_state(gates, 2)
    assert np.allclose(state, [0, 1, 0, 0])


def test_controlled_swap():
    # Fredkin: control 0 set -> swap 1, 2.
    gates = [g("x", [0]), g("x", [1]), g("swap", [1, 2], controls=[0])]
    state = apply_gates_to_state(gates, 3)
    # |101>: index 5.
    assert np.allclose(state, [0, 0, 0, 0, 0, 1, 0, 0])


def test_phase_gate():
    gates = [g("x", [0]), g("p", [0], params=[math.pi / 2])]
    state = apply_gates_to_state(gates, 1)
    assert np.allclose(state, [0, 1j])


def test_hxh_equals_z():
    hxh = unitary_of_gates([g("h", [0]), g("x", [0]), g("h", [0])], 1)
    z = unitary_of_gates([g("z", [0])], 1)
    assert np.allclose(hxh, z)


def test_s_t_relations():
    t_squared = unitary_of_gates([g("t", [0]), g("t", [0])], 1)
    s = unitary_of_gates([g("s", [0])], 1)
    assert np.allclose(t_squared, s)
    sdg_s = unitary_of_gates([g("sdg", [0]), g("s", [0])], 1)
    assert np.allclose(sdg_s, np.eye(2))


def test_rotation_gates_unitary():
    for name in ("rx", "ry", "rz"):
        u = unitary_of_gates([g(name, [0], params=[0.7])], 1)
        assert np.allclose(u @ u.conj().T, np.eye(2))


def test_deterministic_measurement():
    sim = StatevectorSimulator(1, 1)
    sim.apply_gate(g("x", [0]))
    assert sim.measure(0) == 1


def test_measurement_collapse():
    sim = StatevectorSimulator(2, 0, seed=3)
    sim.apply_gate(g("h", [0]))
    sim.apply_gate(g("x", [1], controls=[0]))
    outcome = sim.measure(0)
    # Bell state: second qubit must agree.
    assert sim.measure(1) == outcome


def test_measurement_statistics():
    ones = 0
    for seed in range(200):
        sim = StatevectorSimulator(1, 0, seed=seed)
        sim.apply_gate(g("h", [0]))
        ones += sim.measure(0)
    assert 60 < ones < 140


def test_reset():
    sim = StatevectorSimulator(1, 0)
    sim.apply_gate(g("x", [0]))
    sim.reset(0)
    assert np.allclose(sim.statevector(), [1, 0])


def test_conditioned_gate():
    circuit = Circuit(num_qubits=2, num_bits=2)
    circuit.add(g("x", [0]))
    circuit.add(Measurement(0, 0))
    circuit.add(g("x", [1], condition=(0, 1)))
    circuit.add(Measurement(1, 1))
    (result,) = run_circuit(circuit)
    assert result == (1, 1)


def test_conditioned_gate_not_taken():
    circuit = Circuit(num_qubits=2, num_bits=2)
    circuit.add(Measurement(0, 0))
    circuit.add(g("x", [1], condition=(0, 1)))
    circuit.add(Measurement(1, 1))
    (result,) = run_circuit(circuit)
    assert result == (0, 0)


def test_run_circuit_output_bits():
    circuit = Circuit(num_qubits=1, num_bits=2, output_bits=[1])
    circuit.add(g("x", [0]))
    circuit.add(Measurement(0, 1))
    (result,) = run_circuit(circuit)
    assert result == (1,)


def test_too_many_qubits_rejected():
    with pytest.raises(SimulationError):
        StatevectorSimulator(40)


def test_reset_instruction():
    circuit = Circuit(num_qubits=1, num_bits=1)
    circuit.add(g("x", [0]))
    circuit.add(Reset(0))
    circuit.add(Measurement(0, 0))
    (result,) = run_circuit(circuit)
    assert result == (0,)
