"""Tests for the pluggable simulation backends (repro.sim.backend).

Covers the registry, terminal-measurement detection, single-qubit gate
fusion, the gate-matrix cache, and — most importantly — statistical
equivalence between vectorized sampling and per-shot execution.
"""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement, Reset
from repro.sim import (
    InterpreterBackend,
    SimBackend,
    StatevectorSimulator,
    VectorizedStatevectorBackend,
    apply_gates_to_state,
    available_backends,
    fuse_single_qubit_gates,
    gate_matrix,
    get_backend,
    register_backend,
    run_circuit,
    run_circuit_with_info,
    terminal_measurement_plan,
)
from repro.sim.backend import _REGISTRY


from tests.stats import (  # noqa: E402  (shared statistical helpers)
    assert_histograms_close,
    histogram,
)


def g(name, targets, controls=(), params=(), ctrl_states=(), condition=None):
    return CircuitGate(
        name,
        tuple(targets),
        tuple(controls),
        tuple(params),
        tuple(ctrl_states),
        condition,
    )


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
def test_both_backends_registered():
    names = available_backends()
    assert "interpreter" in names
    assert "statevector" in names


def test_get_backend_resolves_names_and_instances():
    assert isinstance(get_backend("interpreter"), InterpreterBackend)
    assert isinstance(get_backend("statevector"), VectorizedStatevectorBackend)
    instance = InterpreterBackend()
    assert get_backend(instance) is instance


def test_unknown_backend_lists_registered():
    with pytest.raises(SimulationError, match="interpreter"):
        get_backend("tensor-network")


def test_register_backend_rejects_duplicates():
    with pytest.raises(SimulationError, match="already registered"):
        register_backend("interpreter", InterpreterBackend)


def test_register_custom_backend():
    class EchoBackend(SimBackend):
        name = "echo-test"

        def run_with_info(self, circuit, shots=1, seed=0):
            from repro.sim.backend import RunInfo

            results = [(0,) * len(circuit.output_bits or range(circuit.num_bits))] * shots
            return results, RunInfo(self.name, shots, 0, False)

    register_backend("echo-test", EchoBackend)
    try:
        circuit = Circuit(num_qubits=1, num_bits=1)
        circuit.add(g("x", [0]))
        circuit.add(Measurement(0, 0))
        assert run_circuit(circuit, shots=3, backend="echo-test") == [(0,)] * 3
    finally:
        del _REGISTRY["echo-test"]


# ----------------------------------------------------------------------
# Terminal-measurement detection.
# ----------------------------------------------------------------------
def test_terminal_plan_simple():
    circuit = Circuit(num_qubits=2, num_bits=2)
    circuit.add(g("h", [0]))
    circuit.add(g("x", [1], controls=[0]))
    circuit.add(Measurement(0, 0))
    circuit.add(Measurement(1, 1))
    plan = terminal_measurement_plan(circuit)
    assert plan is not None and len(plan) == 2


def test_terminal_plan_allows_trailing_resets():
    # Simon-style: measure half the register, discard (reset) the rest.
    circuit = Circuit(num_qubits=2, num_bits=1)
    circuit.add(g("h", [0]))
    circuit.add(Measurement(0, 0))
    circuit.add(Reset(1))
    assert terminal_measurement_plan(circuit) is not None


def test_terminal_plan_rejects_measure_after_reset():
    circuit = Circuit(num_qubits=1, num_bits=2)
    circuit.add(g("h", [0]))
    circuit.add(Measurement(0, 0))
    circuit.add(Reset(0))
    circuit.add(Measurement(0, 1))
    assert terminal_measurement_plan(circuit) is None


def test_terminal_plan_rejects_mid_circuit_measurement():
    circuit = Circuit(num_qubits=1, num_bits=2)
    circuit.add(g("h", [0]))
    circuit.add(Measurement(0, 0))
    circuit.add(g("h", [0]))
    circuit.add(Measurement(0, 1))
    assert terminal_measurement_plan(circuit) is None


def test_terminal_plan_rejects_conditioned_gates():
    circuit = Circuit(num_qubits=2, num_bits=2)
    circuit.add(Measurement(0, 0))
    circuit.add(g("x", [1], condition=(0, 1)))
    circuit.add(Measurement(1, 1))
    assert terminal_measurement_plan(circuit) is None


def test_terminal_plan_rejects_reset_mid_evolution():
    circuit = Circuit(num_qubits=1, num_bits=1)
    circuit.add(g("h", [0]))
    circuit.add(Reset(0))
    circuit.add(Measurement(0, 0))
    assert terminal_measurement_plan(circuit) is None


# ----------------------------------------------------------------------
# Gate fusion and the matrix cache.
# ----------------------------------------------------------------------
def test_gate_matrix_is_cached_and_frozen():
    assert gate_matrix("h") is gate_matrix("h")
    assert gate_matrix("rz", (0.25,)) is gate_matrix("rz", (0.25,))
    with pytest.raises(ValueError):
        gate_matrix("h")[0, 0] = 7


def test_fusion_collapses_single_qubit_runs():
    gates = [
        g("h", [0]),
        g("t", [0]),
        g("x", [1]),
        g("x", [1], controls=[0]),
        g("h", [1]),
        g("s", [1]),
    ]
    fused = fuse_single_qubit_gates(gates)
    # h;t on qubit 0 and x on qubit 1 fuse, then CX, then h;s fuse.
    assert len(fused) == 4
    assert np.allclose(fused[0].matrix, gate_matrix("t") @ gate_matrix("h"))

    sim = StatevectorSimulator(2)
    sim.apply_fused(fused)
    assert np.allclose(
        sim.statevector(), apply_gates_to_state(gates, 2)
    )


def test_fusion_preserves_program_order_across_controls():
    gates = [
        g("h", [0]),
        g("x", [1], controls=[0]),
        g("h", [0]),
    ]
    fused = fuse_single_qubit_gates(gates)
    assert len(fused) == 3
    sim = StatevectorSimulator(2)
    sim.apply_fused(fused)
    assert np.allclose(sim.statevector(), apply_gates_to_state(gates, 2))


def test_fusion_rejects_conditioned_gates():
    with pytest.raises(SimulationError, match="conditioned"):
        fuse_single_qubit_gates([g("x", [0], condition=(0, 1))])


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fusion_matches_unfused_on_random_circuits(seed):
    rng = np.random.default_rng(seed)
    names = ["h", "t", "s", "x", "rz", "rx"]
    gates = []
    for _ in range(30):
        name = names[rng.integers(len(names))]
        qubit = int(rng.integers(3))
        params = (float(rng.uniform(0, math.pi)),) if name in ("rz", "rx") else ()
        if rng.random() < 0.3:
            other = int(rng.integers(3))
            if other != qubit:
                gates.append(g("x", [qubit], controls=[other]))
                continue
        gates.append(g(name, [qubit], params=params))
    fused = fuse_single_qubit_gates(gates)
    assert len(fused) <= len(gates)
    sim = StatevectorSimulator(3)
    sim.apply_fused(fused)
    assert np.allclose(sim.statevector(), apply_gates_to_state(gates, 3))


# ----------------------------------------------------------------------
# Vectorized sampling vs per-shot execution.
# ----------------------------------------------------------------------
def test_teleportation_histograms_match():
    from repro.qcircuit import teleport_circuit

    circuit = teleport_circuit(theta=0.7)
    shots = 2000
    per_shot, interp_info = run_circuit_with_info(
        circuit, shots=shots, seed=7, backend="interpreter"
    )
    sampled, vector_info = run_circuit_with_info(
        circuit, shots=shots, seed=7, backend="statevector"
    )
    # Conditioned gates rule out the terminal fast path; the batched
    # trajectory engine evolves all shots in one sweep instead.
    assert not vector_info.fast_path
    assert vector_info.batched
    assert vector_info.evolutions == 1
    assert interp_info.evolutions == shots and not interp_info.batched
    # RNG streams differ between engines, so compare distributions
    # (within the shot-count-derived TVD threshold; tests/stats.py).
    assert_histograms_close(per_shot, sampled, label="teleport")
    # And the physics holds on both: P(1) = sin^2(0.35).
    expected = math.sin(0.35) ** 2
    sigma = math.sqrt(expected * (1 - expected) * shots)
    for results in (per_shot, sampled):
        ones = sum(outcome[0] for outcome in results)
        assert abs(ones - expected * shots) < 5 * sigma


def test_grover_histograms_match():
    from repro.algorithms import grover

    circuit = grover(3).compile(cache=True).optimized_circuit
    shots = 2000
    per_shot, _ = run_circuit_with_info(
        circuit, shots=shots, seed=11, backend="interpreter"
    )
    sampled, info = run_circuit_with_info(
        circuit, shots=shots, seed=11, backend="statevector"
    )
    assert info.fast_path and info.evolutions == 1
    assert_histograms_close(per_shot, sampled, label="grover")
    # Both concentrate on the marked item.
    assert histogram(sampled)[(1, 1, 1)] > 0.9 * shots
    assert histogram(per_shot)[(1, 1, 1)] > 0.9 * shots


def test_mid_circuit_measurement_takes_batched_path_and_matches():
    circuit = Circuit(num_qubits=1, num_bits=2, output_bits=[0, 1])
    circuit.add(g("h", [0]))
    circuit.add(Measurement(0, 0))
    circuit.add(g("h", [0]))
    circuit.add(Measurement(0, 1))
    shots = 1500
    per_shot, _ = run_circuit_with_info(
        circuit, shots=shots, seed=3, backend="interpreter"
    )
    sampled, info = run_circuit_with_info(
        circuit, shots=shots, seed=3, backend="statevector"
    )
    assert not info.fast_path
    assert info.batched and info.evolutions == 1
    assert_histograms_close(
        per_shot, sampled, outcomes=4, label="mid-circuit"
    )
    # All four outcomes occur: the second measurement is a fresh coin.
    assert len(histogram(sampled)) == 4


def test_ghz_sampling_matches_exact_distribution():
    circuit = Circuit(num_qubits=3, num_bits=3)
    circuit.add(g("h", [0]))
    circuit.add(g("x", [1], controls=[0]))
    circuit.add(g("x", [2], controls=[1]))
    for qubit in range(3):
        circuit.add(Measurement(qubit, qubit))
    shots = 4000
    sampled, info = run_circuit_with_info(
        circuit, shots=shots, seed=5, backend="statevector"
    )
    assert info.fast_path and info.evolutions == 1
    counts = histogram(sampled)
    assert set(counts) == {(0, 0, 0), (1, 1, 1)}
    sigma = math.sqrt(shots * 0.25)
    assert abs(counts[(0, 0, 0)] - shots / 2) < 5 * sigma


def test_vectorized_respects_output_bits_and_duplicate_measures():
    circuit = Circuit(num_qubits=2, num_bits=3, output_bits=[2, 0])
    circuit.add(g("x", [0]))
    circuit.add(Measurement(0, 0))
    circuit.add(Measurement(0, 2))
    circuit.add(Measurement(1, 1))
    (outcome,) = run_circuit(circuit, backend="statevector")
    assert outcome == (1, 1)


def test_vectorized_no_measurements():
    circuit = Circuit(num_qubits=1, num_bits=2)
    circuit.add(g("h", [0]))
    results = run_circuit(circuit, shots=5, backend="statevector")
    assert results == [(0, 0)] * 5


# ----------------------------------------------------------------------
# Backend threading through the driver entry points.
# ----------------------------------------------------------------------
def test_simulate_kernel_backend_kwarg():
    from repro.algorithms import bernstein_vazirani
    from repro.pipeline import simulate_kernel

    kernel = bernstein_vazirani("1011")
    by_vector = simulate_kernel(kernel, shots=4, backend="statevector")
    by_shot = simulate_kernel(kernel, shots=4, backend="interpreter")
    assert [str(b) for b in by_vector] == ["1011"] * 4
    assert [str(b) for b in by_shot] == ["1011"] * 4


def test_compile_options_sim_backend_default():
    from repro.algorithms import bernstein_vazirani
    from repro.pipeline import CompileOptions, simulate_kernel

    kernel = bernstein_vazirani("101")
    options = CompileOptions(sim_backend="interpreter")
    results = simulate_kernel(kernel, shots=2, options=options)
    assert [str(b) for b in results] == ["101"] * 2
    # An explicit backend= overrides the options' default.
    results = simulate_kernel(
        kernel, shots=2, options=options, backend="statevector"
    )
    assert [str(b) for b in results] == ["101"] * 2


def test_interpret_module_backend_kwarg():
    from repro.algorithms import bernstein_vazirani
    from repro.sim import interpret_module

    result = bernstein_vazirani("1001").compile(cache=True)
    bits = interpret_module(
        result.qcircuit_module, num_qubits=12, backend="statevector"
    )
    assert bits == [1, 0, 0, 1]


def test_kernel_call_backend_kwarg():
    from repro.algorithms import bernstein_vazirani

    kernel = bernstein_vazirani("110")
    assert str(kernel(backend="interpreter")) == "110"
    assert str(kernel(backend="statevector")) == "110"
    hist = kernel.histogram(shots=16, backend="statevector")
    assert hist == {"110": 16}
