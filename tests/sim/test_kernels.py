"""The pluggable apply-matrix kernel registry (repro.sim.kernels).

Exercises the registry contract (registration, resolution, unknown
names, optional-dependency errors), the active-kernel selection
machinery (``use_kernel``, the ``REPRO_SIM_KERNEL`` default), the
pure-NumPy kernel against a dense-matrix reference, and — when numba
is installed — bit-for-bit equivalence of the JIT kernel with the
NumPy one, including the batched shot layout and the non-contiguous
fallback.  The suite must pass identically with and without numba.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement
from repro.sim import run_circuit
from repro.sim.backend import run_circuit_with_info
from repro.sim.kernels import (
    KERNEL_ENV_VAR,
    NumpyKernel,
    active_kernel_name,
    apply_matrix_inplace,
    available_kernels,
    current_kernel_selection,
    default_kernel_name,
    gate_matrix,
    get_kernel,
    numba_available,
    register_kernel,
    use_kernel,
)


def _random_state(shape, seed=0):
    rng = np.random.default_rng(seed)
    state = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    return np.ascontiguousarray(state, dtype=np.complex128)


def _random_unitary(dim, seed=1):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(
        rng.standard_normal((dim, dim)) + 1j * rng.standard_normal((dim, dim))
    )
    return np.ascontiguousarray(q, dtype=np.complex128)


def _dense_reference(state, matrix, targets):
    """Apply via the full 2^n unitary: embed, matmul, done."""
    n = state.ndim
    full = np.einsum(
        "ab,cd->acbd", matrix, np.eye(2 ** (n - len(targets)))
    ).reshape(2**n, 2**n)
    # Reorder axes so targets lead, apply, reorder back.
    rest = [ax for ax in range(n) if ax not in targets]
    perm = list(targets) + rest
    inverse = np.argsort(perm)
    flat = state.transpose(perm).reshape(-1)
    out = (full @ flat).reshape([2] * n).transpose(inverse)
    return out


# ----------------------------------------------------------------------
# Registry contract.
# ----------------------------------------------------------------------
def test_registry_lists_builtin_kernels():
    names = available_kernels()
    assert "numpy" in names
    assert "numba" in names  # registered even when not importable


def test_unknown_kernel_raises():
    with pytest.raises(SimulationError, match="unknown apply kernel"):
        get_kernel("does-not-exist")


def test_duplicate_registration_raises():
    with pytest.raises(SimulationError, match="already registered"):
        register_kernel("numpy", NumpyKernel)


def test_numba_kernel_requires_numba():
    if numba_available():
        pytest.skip("numba installed; the missing-dependency error "
                    "cannot be provoked")
    with pytest.raises(SimulationError, match="numba"):
        get_kernel("numba")


def test_default_kernel_name_honours_env(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "numpy")
    assert default_kernel_name() == "numpy"
    monkeypatch.setenv(KERNEL_ENV_VAR, "anything")
    assert default_kernel_name() == "anything"  # resolution errors later
    monkeypatch.delenv(KERNEL_ENV_VAR)
    assert default_kernel_name() == (
        "numba" if numba_available() else "numpy"
    )


def test_use_kernel_scopes_selection():
    before = active_kernel_name()
    with use_kernel("numpy"):
        assert active_kernel_name() == "numpy"
        with use_kernel(None):  # None = keep whatever is active
            assert active_kernel_name() == "numpy"
    assert active_kernel_name() == before


def test_use_kernel_restores_on_error():
    before = active_kernel_name()
    with pytest.raises(RuntimeError):
        with use_kernel("numpy"):
            raise RuntimeError("boom")
    assert active_kernel_name() == before


def test_use_kernel_validates_eagerly():
    with pytest.raises(SimulationError):
        with use_kernel("no-such-kernel"):
            pass  # pragma: no cover - must raise before entering
    assert current_kernel_selection() is None


def test_use_kernel_selection_is_context_local():
    # The override lives in a contextvars.ContextVar: a selection made
    # in one thread must never leak into another (the property the
    # parallel executor's worker dispatch relies on).
    import threading

    seen_in_thread = []
    started = threading.Event()
    release = threading.Event()

    def observer():
        started.set()
        release.wait(timeout=10)
        seen_in_thread.append(current_kernel_selection())

    thread = threading.Thread(target=observer)
    thread.start()
    started.wait(timeout=10)
    with use_kernel("numpy"):
        assert current_kernel_selection() == "numpy"
        release.set()
        thread.join(timeout=10)
    assert seen_in_thread == [None]
    assert current_kernel_selection() is None


def test_use_kernel_nests_and_unwinds_in_order():
    assert current_kernel_selection() is None
    with use_kernel("numpy"):
        outer = active_kernel_name()
        with use_kernel(outer):
            assert current_kernel_selection() == outer
        assert current_kernel_selection() == outer
    assert current_kernel_selection() is None


# ----------------------------------------------------------------------
# The NumPy reference kernel.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("targets", [(0,), (2,), (0, 2), (3, 1), (1, 2, 0)])
def test_numpy_kernel_matches_dense_reference(targets):
    n = 4
    state = _random_state((2,) * n)
    matrix = _random_unitary(2 ** len(targets))
    expected = _dense_reference(state.copy(), matrix, targets)
    NumpyKernel.apply(state, matrix, targets)
    assert np.allclose(state, expected, atol=1e-10)


def test_numpy_kernel_handles_batched_layout():
    shots, n = 5, 3
    batched = _random_state((shots,) + (2,) * n)
    matrix = _random_unitary(4)
    expected = np.stack(
        [
            _dense_reference(batched[s].copy(), matrix, (1, 0))
            for s in range(shots)
        ]
    )
    # Axis 0 is the shot axis; targets are offset by one.
    NumpyKernel.apply(batched, matrix, (2, 1))
    assert np.allclose(batched, expected, atol=1e-10)


def test_apply_matrix_inplace_uses_active_kernel():
    state = _random_state((2, 2))
    reference = state.copy()
    h = gate_matrix("h")
    with use_kernel("numpy"):
        apply_matrix_inplace(state, h, (0,))
    NumpyKernel.apply(reference, h, (0,))
    assert np.array_equal(state, reference)


def test_gate_matrices_are_frozen_and_cached():
    h = gate_matrix("h")
    assert gate_matrix("h") is h  # cached
    with pytest.raises(ValueError):
        h[0, 0] = 0.0  # read-only
    assert gate_matrix("rx", (0.5,)) is gate_matrix("rx", (0.5,))
    assert not np.allclose(
        gate_matrix("rx", (0.5,)), gate_matrix("rx", (1.5,))
    )
    with pytest.raises(SimulationError):
        gate_matrix("not-a-gate")


# ----------------------------------------------------------------------
# RunInfo records which kernel executed.
# ----------------------------------------------------------------------
def test_runinfo_records_selected_kernel():
    circuit = Circuit(2, 2)
    circuit.add(CircuitGate("h", (0,)))
    circuit.add(CircuitGate("x", (1,), controls=(0,)))
    circuit.add(Measurement(0, 0))
    circuit.add(Measurement(1, 1))
    with use_kernel("numpy"):
        _, info = run_circuit_with_info(circuit, shots=8, seed=0)
    assert info.kernel == "numpy"


def test_simulate_kernel_threads_sim_kernel_option():
    from repro.algorithms import bernstein_vazirani
    from repro.pipeline import CompileOptions, simulate_kernel

    kernel = bernstein_vazirani("101")
    options = CompileOptions(sim_kernel="numpy")
    bits = simulate_kernel(kernel, shots=16, seed=4, options=options,
                           cache=False)
    assert [str(b) for b in bits] == ["101"] * 16


# ----------------------------------------------------------------------
# numba-vs-NumPy bit equivalence (skipped when numba is absent).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("targets", [(0,), (2,), (0, 2), (3, 1), (1, 2, 0)])
def test_numba_matches_numpy_bit_for_bit(targets):
    pytest.importorskip("numba")
    n = 4
    numba_state = _random_state((2,) * n)
    numpy_state = numba_state.copy()
    matrix = _random_unitary(2 ** len(targets))
    get_kernel("numba").apply(numba_state, matrix, targets)
    NumpyKernel.apply(numpy_state, matrix, targets)
    # The JIT loop accumulates in the same order as the matmul row
    # walk, so equality is exact, not approximate.
    assert np.array_equal(numba_state, numpy_state)


def test_numba_matches_numpy_on_batched_layout():
    pytest.importorskip("numba")
    shots, n = 7, 3
    numba_state = _random_state((shots,) + (2,) * n)
    numpy_state = numba_state.copy()
    matrix = _random_unitary(4)
    get_kernel("numba").apply(numba_state, matrix, (1, 3))
    NumpyKernel.apply(numpy_state, matrix, (1, 3))
    assert np.array_equal(numba_state, numpy_state)


def test_numba_falls_back_on_noncontiguous_views():
    pytest.importorskip("numba")
    full = _random_state((2,) * 4)
    view = full[:, 1]  # control-sliced: not C-contiguous
    assert not view.flags["C_CONTIGUOUS"]
    reference = np.ascontiguousarray(view)
    matrix = _random_unitary(2)
    get_kernel("numba").apply(view, matrix, (1,))
    NumpyKernel.apply(reference, matrix, (1,))
    assert np.allclose(view, reference, atol=1e-12)


def test_run_circuit_identical_across_kernels():
    pytest.importorskip("numba")
    circuit = Circuit(3, 3)
    circuit.add(CircuitGate("h", (0,)))
    circuit.add(CircuitGate("x", (1,), controls=(0,)))
    circuit.add(CircuitGate("ry", (2,), params=(0.3,)))
    for q in range(3):
        circuit.add(Measurement(q, q))
    with use_kernel("numpy"):
        numpy_hist = run_circuit(circuit, shots=256, seed=7)
    with use_kernel("numba"):
        numba_hist = run_circuit(circuit, shots=256, seed=7)
    assert numpy_hist == numba_hist
