"""Tests for the IR interpreter: the no-opt configuration must compute
the same results as the fully inlined one (Table 1 soundness, §8.2)."""

import pytest

from repro.algorithms import bernstein_vazirani, deutsch_jozsa
from repro.errors import SimulationError
from repro.sim.interpreter import interpret_module


def test_no_opt_bv_runs_via_callables():
    kernel = bernstein_vazirani("1011")
    result = kernel.compile(inline=False, to_circuit=False)
    bits = interpret_module(result.qcircuit_module, num_qubits=12)
    assert bits == [1, 0, 1, 1]


def test_no_opt_matches_opt():
    kernel = bernstein_vazirani("110")
    opt = kernel()
    noopt_module = kernel.compile(
        inline=False, to_circuit=False
    ).qcircuit_module
    bits = interpret_module(noopt_module, num_qubits=10)
    assert list(opt) == bits


def test_no_opt_dj():
    kernel = deutsch_jozsa(3)
    noopt = kernel.compile(inline=False, to_circuit=False)
    bits = interpret_module(noopt.qcircuit_module, num_qubits=10)
    assert bits == [1, 1, 1]


def test_opt_module_also_interpretable():
    kernel = bernstein_vazirani("101")
    result = kernel.compile()
    bits = interpret_module(result.qcircuit_module, num_qubits=10)
    assert bits == [1, 0, 1]


def test_interpreter_qubit_exhaustion():
    kernel = bernstein_vazirani("1111")
    result = kernel.compile(inline=False, to_circuit=False)
    with pytest.raises(SimulationError, match="ran out"):
        interpret_module(result.qcircuit_module, num_qubits=2)
