"""Broader Qwerty DSL programs beyond the paper's benchmark suite.

Exercises corners of the language surface: GHZ preparation via chained
predications, superdense coding, phase kickback through adjoints,
multi-level tensor products, and the ij (Y eigen-) basis.
"""

from repro.frontend.decorators import bit, qpu


def test_ghz_state():
    @qpu
    def ghz() -> bit[3]:
        pair = 'p0' | '1' & std.flip  # noqa
        triple = pair + '0' | {'1'} + {'1'} & std.flip | std[3].measure  # noqa
        return triple

    outcomes = {str(ghz(seed=seed)) for seed in range(24)}
    assert outcomes == {"000", "111"}


def test_ghz_via_chained_predication():
    # Chained CNOTs via predication, with explicit rebundling.
    @qpu
    def ghz4() -> bit[4]:
        a, b, c, d = 'p000'  # noqa
        ab = a + b | '1' & std.flip  # noqa
        a2, b2 = ab  # noqa
        bc = b2 + c | '1' & std.flip  # noqa
        b3, c2 = bc  # noqa
        cd = c2 + d | '1' & std.flip  # noqa
        c3, d2 = cd  # noqa
        return a2 + b3 + c3 + d2 | std[4].measure  # noqa

    outcomes = {str(ghz4(seed=seed)) for seed in range(24)}
    assert outcomes == {"0000", "1111"}


def test_superdense_coding():
    """Send two classical bits with one qubit: encode 11 via Z then X."""

    @qpu
    def superdense() -> bit[2]:
        alice, bob = 'p0' | '1' & std.flip  # noqa
        encoded = alice | pm.flip | std.flip  # noqa: Z then X encodes 11.
        both = encoded + bob | '1' & std.flip  # noqa: CNOT
        return both | (pm + std).measure  # noqa: Bell measurement

    for seed in range(8):
        assert str(superdense(seed=seed)) == "11"


def test_phase_kickback_with_adjoint():
    # S then ~S is the identity; S applied twice is Z.
    @qpu
    def s_sdg() -> bit:
        q = 'p' | ({'0', '1'@90}) >> ({'0', '1'@90}) | id  # noqa
        s = q | {'0','1'} >> {'0','1'@90} | ~({'0','1'} >> {'0','1'@90})  # noqa
        return s | pm.measure  # noqa

    assert str(s_sdg()) == "0"  # |p> unchanged.

    @qpu
    def s_twice() -> bit:
        q = 'p' | {'0','1'} >> {'0','1'@90} | {'0','1'} >> {'0','1'@90}  # noqa
        return q | pm.measure  # noqa

    assert str(s_twice()) == "1"  # S^2 = Z maps |p> to |m>.


def test_ij_basis_roundtrip():
    @qpu
    def y_cycle() -> bit:
        return '0' | std >> ij | ij >> pm | pm >> std | std.measure  # noqa

    # |0> -> |i> -> ... a chain of basis changes; deterministic result.
    outcomes = {str(y_cycle(seed=s)) for s in range(8)}
    assert len(outcomes) == 1


def test_three_level_tensor_functions():
    @qpu
    def three() -> bit[3]:
        return '101' | std.flip + id + std.flip | std[3].measure  # noqa

    assert str(three()) == "000"  # Both outer qubits flip: 1->0, 1->0.


def test_fourier_roundtrip_is_identity():
    @qpu
    def roundtrip() -> bit[3]:
        return '101' | std[3] >> fourier[3] | fourier[3] >> std[3] | std[3].measure  # noqa

    assert str(roundtrip()) == "101"


def test_swap_program():
    @qpu
    def swap() -> bit[2]:
        return '10' | {'01','10'} >> {'10','01'} | std[2].measure  # noqa

    assert str(swap()) == "01"


def test_fredkin_program():
    @qpu
    def fredkin() -> bit[3]:
        return '110' | {'1'} & ({'01','10'} >> {'10','01'}) | std[3].measure  # noqa

    assert str(fredkin()) == "101"

    @qpu
    def fredkin_off() -> bit[3]:
        return '010' | {'1'} & ({'01','10'} >> {'10','01'}) | std[3].measure  # noqa

    assert str(fredkin_off()) == "010"
