"""Cross-cutting consistency: every backend view of one program agrees."""

from repro.algorithms import bernstein_vazirani, grover, period_finding
from repro.backends.qasm3 import parse_qasm3
from repro.sim import interpret_module, run_circuit


def test_bv_consistent_across_all_representations():
    kernel = bernstein_vazirani("10011")
    expected = [1, 0, 0, 1, 1]

    result = kernel.compile()
    # 1. Raw flattened circuit.
    assert list(run_circuit(result.circuit)[0]) == expected
    # 2. Peephole-optimized circuit.
    assert list(run_circuit(result.optimized_circuit)[0]) == expected
    # 3. Selinger-decomposed circuit.
    assert list(run_circuit(result.decomposed_circuit)[0]) == expected
    # 4. OpenQASM 3 round trip.
    parsed = parse_qasm3(result.qasm3())
    parsed.output_bits = result.optimized_circuit.output_bits
    assert list(run_circuit(parsed)[0]) == expected
    # 5. Interpreted QCircuit IR (the QIR-unrestricted view).
    assert interpret_module(result.qcircuit_module, num_qubits=12) == expected
    # 6. Interpreted no-opt module (callables view).
    noopt = kernel.compile(inline=False, to_circuit=False)
    assert interpret_module(noopt.qcircuit_module, num_qubits=12) == expected


def test_grover_decomposed_still_finds_item():
    # 400 shots with a 90% threshold is ~4 sigma below the ~94.5%
    # success probability, robust under any correctly-sampling backend.
    result = grover(3).compile()
    results = run_circuit(result.decomposed_circuit, shots=400, seed=5)
    hits = sum(1 for r in results if r == (1, 1, 1))
    assert hits >= 360


def test_period_finding_decomposed_samples_valid():
    result = period_finding(3).compile()
    for seed in range(8):
        (sample,) = run_circuit(result.decomposed_circuit, seed=seed)
        value = int("".join(str(b) for b in sample), 2)
        assert value % 2 == 0
