"""Preset pipelines vs the legacy boolean-flag paths, plus the
per-process compile cache (driver-level pass infrastructure)."""

import pytest

from repro import CompileOptions, clear_compile_cache
# Import the decorators from their defining module: the ``classical``
# attribute of the ``repro`` package is shadowed by the
# ``repro.classical`` submodule once anything imports the latter.
from repro.frontend.decorators import N, bit, cfunc, classical, qpu
from repro.algorithms import alternating_secret, bernstein_vazirani, grover
from repro.errors import PassPipelineError
from repro.pipeline import PRESETS, compile_cache_info, compile_kernel


def bv_kernel(n=6):
    return bernstein_vazirani(alternating_secret(n))


def assert_same_circuits(a, b):
    for attr in ("circuit", "optimized_circuit", "decomposed_circuit"):
        ca, cb = getattr(a, attr), getattr(b, attr)
        if ca is None or cb is None:
            assert ca is None and cb is None
            continue
        assert ca.num_qubits == cb.num_qubits
        assert ca.num_bits == cb.num_bits
        assert ca.instructions == cb.instructions
        assert ca.output_bits == cb.output_bits


# ----------------------------------------------------------------------
# Preset <-> boolean-flag equivalence (paper Table 1 / §6.5 ablations).
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "preset,flags",
    [
        ("default", {}),
        ("no-peephole", {"peephole": False}),
        ("no-relaxed-peephole", {"relaxed_peephole": False}),
        ("no-selinger", {"selinger": False}),
    ],
)
def test_presets_match_boolean_flag_paths(preset, flags):
    kernel = bv_kernel()
    assert_same_circuits(
        kernel.compile(pipeline=preset), kernel.compile(**flags)
    )


def test_no_opt_preset_matches_inline_false():
    kernel = bv_kernel()
    by_preset = kernel.compile(pipeline="no-opt")
    by_flags = kernel.compile(inline=False, to_circuit=False)
    assert by_preset.circuit is None and by_flags.circuit is None
    assert sorted(by_preset.qwerty_module.funcs) == sorted(
        by_flags.qwerty_module.funcs
    )
    assert by_preset.qir() == by_flags.qir()


def test_no_selinger_changes_decomposition():
    kernel = grover(6)
    default = kernel.compile(pipeline="default")
    naive = kernel.compile(pipeline="no-selinger")
    assert (
        default.decomposed_circuit.instructions
        != naive.decomposed_circuit.instructions
    )
    # The optimized (pre-decomposition) circuit is unaffected.
    assert (
        default.optimized_circuit.instructions
        == naive.optimized_circuit.instructions
    )


def test_every_preset_compiles_bv():
    kernel = bv_kernel()
    for name in PRESETS:
        result = kernel.compile(pipeline=name)
        assert result.qwerty_module is not None


def test_unknown_preset_rejected():
    with pytest.raises(PassPipelineError, match="unknown pipeline preset"):
        bv_kernel().compile(pipeline="turbo")


def test_conflicting_configuration_rejected():
    kernel = bv_kernel()
    with pytest.raises(TypeError):
        compile_kernel(kernel, pipeline="default", inline=False)
    with pytest.raises(TypeError):
        compile_kernel(
            kernel, options=CompileOptions(), pipeline="default"
        )


def test_verify_each_compiles_cleanly():
    options = CompileOptions.preset("default", verify_each=True)
    result = bv_kernel().compile(options=options)
    assert result.decomposed_circuit is not None


# ----------------------------------------------------------------------
# Per-pass statistics on a real compilation.
# ----------------------------------------------------------------------
def test_statistics_cover_all_layers():
    options = CompileOptions.preset("default", collect_statistics=True)
    result = bv_kernel().compile(options=options)
    names = [entry.name for entry in result.statistics.entries]
    assert "(frontend)" in names
    assert "lift-lambdas" in names and "inline" in names and "dce" in names
    assert "peephole{relaxed=true}" in names
    assert "decompose-multi-controlled{scheme=selinger}" in names
    assert result.statistics.total_seconds > 0.0
    report = result.statistics.report()
    assert "inline" in report and "total" in report


def test_statistics_off_by_default():
    assert bv_kernel().compile().statistics is None


# ----------------------------------------------------------------------
# The compile cache.
# ----------------------------------------------------------------------
def test_cache_hit_returns_same_result():
    clear_compile_cache()
    kernel = bv_kernel()
    first = kernel.compile(pipeline="default", cache=True)
    second = kernel.compile(pipeline="default", cache=True)
    assert first is second
    assert compile_cache_info()["entries"] == 1


def test_cache_miss_on_different_pipeline():
    clear_compile_cache()
    kernel = bv_kernel()
    default = kernel.compile(pipeline="default", cache=True)
    ablation = kernel.compile(pipeline="no-selinger", cache=True)
    assert default is not ablation
    assert compile_cache_info()["entries"] == 2


def test_cache_miss_on_different_dims():
    clear_compile_cache()
    bv_kernel(4).compile(cache=True)
    bv_kernel(5).compile(cache=True)
    assert compile_cache_info()["entries"] == 2


def test_cache_hit_across_equivalent_kernel_objects():
    clear_compile_cache()
    first = bv_kernel().compile(pipeline="default", cache=True)
    second = bv_kernel().compile(pipeline="default", cache=True)
    assert first is second


def test_cache_distinguishes_same_named_kernels_with_other_captures():
    # Two kernels that are textually identical but capture different
    # secrets must not share a cache entry (the quickstart pattern).
    clear_compile_cache()

    def make(secret_str):
        secret = bit.from_str(secret_str)

        @classical[N](secret)
        def f(secret: bit[N], x: bit[N]) -> bit:
            return (secret & x).xor_reduce()

        @qpu[N](f)
        def kernel(f: cfunc[N, 1]) -> bit[N]:
            return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure  # noqa

        return kernel

    assert make("1101")() == "1101"
    assert make("0110")() == "0110"
    # Same-secret recompiles hit the cache instead of adding entries.
    entries = compile_cache_info()["entries"]
    assert make("1101")() == "1101"
    assert compile_cache_info()["entries"] == entries


def test_cache_disabled_by_default():
    clear_compile_cache()
    kernel = bv_kernel()
    kernel.compile()
    assert compile_cache_info()["entries"] == 0


def test_cache_never_serves_wrong_statistics_configuration():
    # A warm cache entry compiled without statistics must not satisfy a
    # later compile that requests them (and vice versa).
    clear_compile_cache()
    kernel = bv_kernel()
    plain = kernel.compile(pipeline="default", cache=True)
    assert plain.statistics is None
    with_stats = kernel.compile(
        options=CompileOptions.preset("default", collect_statistics=True),
        cache=True,
    )
    assert with_stats is not plain
    assert with_stats.statistics is not None
    # And the plain configuration still hits its own entry.
    assert kernel.compile(pipeline="default", cache=True) is plain


def test_cache_is_lru_bounded():
    import repro.pipeline as pipeline_module

    clear_compile_cache()
    old_max = pipeline_module.COMPILE_CACHE_MAX_ENTRIES
    pipeline_module.COMPILE_CACHE_MAX_ENTRIES = 2
    try:
        kernels = [bv_kernel(n) for n in (4, 5, 6)]
        for kernel in kernels:
            kernel.compile(cache=True)
        assert compile_cache_info()["entries"] == 2
        # The oldest entry (n=4) was evicted; n=6 is still warm.
        warm = kernels[2].compile(cache=True)
        assert warm is kernels[2].compile(cache=True)
    finally:
        pipeline_module.COMPILE_CACHE_MAX_ENTRIES = old_max
        clear_compile_cache()


def test_simulate_kernel_cache_opt_out():
    from repro.pipeline import simulate_kernel

    clear_compile_cache()
    kernel = bv_kernel()
    assert "".join(map(str, simulate_kernel(kernel, cache=False)[0])) == "101010"
    assert compile_cache_info()["entries"] == 0
    simulate_kernel(kernel)
    assert compile_cache_info()["entries"] == 1
