"""Symbolic angle captures end-to-end: DSL → compile → bind → run.

The tentpole contract: a kernel capturing a :class:`repro.Parameter`
compiles *once* — the compile cache keys on the parameter's name, never
its value — and ``CompileResult.bind(values)`` produces executable
circuits for any number of sweep points without recompiling and
without ever inserting per-value cache entries.
"""

import math

import numpy as np
import pytest

from repro import (
    CompileOptions,
    Parameter,
    angle,
    bit,
    clear_compile_cache,
    compile_kernel,
    qpu,
    simulate_kernel,
)
from repro.errors import BackendError, QwertyTypeError
from repro.pipeline import compile_cache_info

from tests.stats import assert_matches_distribution

theta = Parameter("theta")


@qpu(theta)
def rotation(theta: angle) -> bit:
    return 'p' | {'0', '1'} >> {'0', '1'@theta} | pm.measure


@qpu
def concrete() -> bit:
    return 'p' | {'0', '1'} >> {'0', '1'@180} | pm.measure


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


class TestSymbolicCompile:
    def test_parameters_surface_on_the_result(self):
        result = compile_kernel(rotation)
        assert [p.name for p in result.parameters] == ["theta"]

    def test_qasm3_declares_input_and_symbolic_angle(self):
        qasm = compile_kernel(rotation).qasm3()
        assert "input float theta;" in qasm
        # DSL phases are degrees; the degree→radian factor is baked
        # into the gate's affine expression at compile time.
        assert f"{math.pi / 180.0:.12g}*theta" in qasm

    def test_bind_produces_concrete_qasm(self):
        bound = compile_kernel(rotation).bind(theta=180.0)
        assert bound.parameters == ()
        assert "input float" not in bound.qasm3()
        assert f"{math.pi:.12g}" in bound.qasm3()

    def test_bind_rejects_unknown_names(self):
        result = compile_kernel(rotation)
        with pytest.raises(QwertyTypeError, match="unknown parameter"):
            result.bind(gamma=1.0)

    def test_bound_histograms_match_physics(self):
        # '0','1'@theta in the pm frame: P(1) = sin^2(theta_deg/2).
        for degrees in (0.0, 90.0, 180.0):
            shots = 2000
            results = simulate_kernel(
                rotation, shots=shots, params={"theta": degrees}
            )
            outcomes = [tuple(r) for r in results]
            p1 = math.sin(math.radians(degrees) / 2.0) ** 2
            assert_matches_distribution(
                outcomes,
                {(0,): 1.0 - p1, (1,): p1},
                label=f"theta={degrees}",
            )

    def test_qir_refuses_unbound_parameters(self):
        result = compile_kernel(rotation)
        with pytest.raises(BackendError, match="bind"):
            result.qir()
        with pytest.raises(BackendError, match="bind"):
            result.qir(profile="base")
        # The Base Profile emits from the flat optimized circuit, which
        # bind() rebinds; the unrestricted profile emits from the IR
        # module (pre-binding by design — docs/variational.md).
        assert "call" in result.bind(theta=90.0).qir(profile="base")

    def test_nonnumeric_angle_capture_is_a_type_error(self):
        bad = "not an angle"

        @qpu(bad)
        def kernel(bad: angle) -> bit:
            return '1'@bad | std.measure

        with pytest.raises(QwertyTypeError, match="angle"):
            compile_kernel(kernel)


class TestCompileCacheAmortization:
    def test_one_compile_serves_a_hundred_point_sweep(self):
        sweep = np.linspace(0.0, 360.0, 120)
        first = compile_kernel(rotation, cache=True)
        for degrees in sweep:
            again = compile_kernel(rotation, cache=True)
            # Cache *hit*: the very same object back, every point.
            assert again is first
            bound = again.bind(theta=float(degrees))
            assert bound.parameters == ()
        assert compile_cache_info()["entries"] == 1

    def test_bind_never_inserts_cache_entries(self):
        result = compile_kernel(rotation, cache=True)
        before = compile_cache_info()["entries"]
        for degrees in (0.0, 45.0, 90.0, 135.0):
            result.bind(theta=degrees)
        info = compile_cache_info()
        assert info["entries"] == before
        # And no key anywhere mentions a bound value.
        assert not any("45" in repr(key) for key in info["keys"])

    def test_simulate_kernel_sweep_shares_one_entry(self):
        for degrees in np.linspace(0.0, 180.0, 25):
            simulate_kernel(
                rotation, shots=8, params={"theta": float(degrees)}
            )
        assert compile_cache_info()["entries"] == 1

    def test_execution_only_options_stay_out_of_the_key(self):
        # sim_backend / sim_kernel / noise_model affect execution only;
        # results compiled under different execution configs must share
        # one cache entry (the regression this PR's fix pins down).
        base = compile_kernel(rotation, cache=True)
        for options in (
            CompileOptions(sim_backend="interpreter"),
            CompileOptions(sim_kernel="numpy"),
            CompileOptions(sim_backend="density_matrix"),
        ):
            again = compile_kernel(rotation, options, cache=True)
            assert again is base
        assert compile_cache_info()["entries"] == 1

    def test_distinct_parameter_names_get_distinct_entries(self):
        phi = Parameter("phi")

        @qpu(phi)
        def other(phi: angle) -> bit:
            return 'p' | {'0', '1'} >> {'0', '1'@phi} | pm.measure

        compile_kernel(rotation, cache=True)
        compile_kernel(other, cache=True)
        assert compile_cache_info()["entries"] == 2

    def test_concrete_kernels_unaffected(self):
        result = compile_kernel(concrete, cache=True)
        assert result.parameters == ()
        assert compile_kernel(concrete, cache=True) is result
