"""Tests for the evaluation harness (paper §8)."""

from repro.evaluation import (
    ALGORITHMS,
    asdf_kernel,
    compiled_circuit,
    evaluate,
    format_series,
    format_table1,
    table1,
)


def test_asdf_kernels_build_for_all_algorithms():
    for algorithm in ALGORITHMS:
        kernel = asdf_kernel(algorithm, 4)
        assert kernel.infer_dims()


def test_compiled_circuit_small_sweep():
    rows = evaluate(
        algorithms=("bv",), compilers=("asdf", "qiskit"), sizes=(4, 8)
    )
    assert len(rows) == 4
    by_key = {(r.compiler, r.input_size): r for r in rows}
    assert (
        by_key[("asdf", 8)].physical_kiloqubits
        > by_key[("asdf", 4)].physical_kiloqubits
    )


def test_table1_structure():
    rows = table1(n=3)
    assert [r.algorithm for r in rows] == list(ALGORITHMS)
    text = format_table1(rows)
    assert "Asdf (Opt)" in text
    assert "B-V" in text


def test_format_series_grouping():
    rows = evaluate(algorithms=("dj",), compilers=("asdf",), sizes=(4,))
    series = format_series(rows, "runtime_seconds")
    assert "dj" in series
    assert "asdf" in series["dj"]
    assert series["dj"]["asdf"][0][0] == 4


def test_all_compilers_agree_on_bv_output():
    """Every toolchain's optimized circuit computes the same answer."""
    from repro.sim import run_circuit

    for compiler in ("asdf", "qiskit", "quipper", "qsharp"):
        circuit = compiled_circuit("bv", compiler, 5)
        (outcome,) = run_circuit(circuit)
        assert outcome == (1, 0, 1, 0, 1), compiler


def test_all_compilers_agree_on_grover_output():
    from repro.sim import run_circuit

    for compiler in ("asdf", "qiskit", "quipper", "qsharp"):
        circuit = compiled_circuit("grover", compiler, 3)
        results = run_circuit(circuit, shots=10, seed=1)
        hits = sum(1 for r in results if r == (1, 1, 1))
        assert hits >= 9, compiler
