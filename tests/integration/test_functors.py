"""End-to-end adjoint and predication of function values from the DSL,
including embedded classical oracles (paper §5.2, §5.3, §6.2)."""

from repro.frontend.decorators import bit, cfunc, classical, qpu, N


def test_adjoint_of_xor_embedding_is_inverse():
    secret = bit.from_str("101")

    @classical[N](secret)
    def f(s: bit[N], x: bit[N]) -> bit[N]:
        return x ^ s

    @qpu[N](f)
    def kernel(f: cfunc[N, N]) -> bit[2 * N]:
        return '101' + '000' | f.xor | ~f.xor | std[2 * N].measure  # noqa

    # U_f then its adjoint: inputs unchanged, outputs back to zero.
    assert str(kernel()) == "101000"


def test_predicated_xor_embedding():
    secret = bit.from_str("11")

    @classical[N](secret)
    def f(s: bit[N], x: bit[N]) -> bit[N]:
        return x ^ s

    @qpu[N](f)
    def pred_on(f: cfunc[N, N]) -> bit[2 * N + 1]:
        return '1' + '10' + '00' | {'1'} & f.xor | std[2 * N + 1].measure  # noqa

    # Control is |1>: the oracle fires, output = x ^ s = 10^11 = 01.
    assert str(pred_on()) == "11001"

    @qpu[N](f)
    def pred_off(f: cfunc[N, N]) -> bit[2 * N + 1]:
        return '0' + '10' + '00' | {'1'} & f.xor | std[2 * N + 1].measure  # noqa

    # Control is |0>: nothing happens.
    assert str(pred_off()) == "01000"


def test_adjoint_of_predicated_translation():
    @qpu
    def kernel() -> bit[2]:
        cnot = '1' & std.flip  # noqa
        return '10' | cnot | ~('1' & std.flip) | std[2].measure  # noqa

    # CNOT then its adjoint (itself): state unchanged.
    assert str(kernel()) == "10"


def test_adjoint_of_sign_embedding():
    @classical[N]
    def f(x: bit[N]) -> bit:
        return x.and_reduce()

    @qpu[N](f)
    def kernel(f: cfunc[N, 1]) -> bit[N]:
        return 'p'[N] | f.sign | ~f.sign | pm[N] >> std[N] | std[N].measure  # noqa

    # Sign oracle is self-adjoint: net identity, |p...p> measures 0...0.
    assert str(kernel[3]()) == "000"


def test_nested_predication():
    @qpu
    def kernel() -> bit[3]:
        toffoli = '1' & ('1' & std.flip)  # noqa
        return '110' | toffoli | std[3].measure  # noqa

    assert str(kernel()) == "111"

    @qpu
    def kernel_off() -> bit[3]:
        return '010' | '1' & ('1' & std.flip) | std[3].measure  # noqa

    assert str(kernel_off()) == "010"
