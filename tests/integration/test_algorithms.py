"""End-to-end tests: the five benchmarks compile and simulate correctly."""

import pytest

from repro.algorithms import (
    alternating_secret,
    bernstein_vazirani,
    deutsch_jozsa,
    grover,
    period_finding,
    simon,
)
from repro.frontend.decorators import Bits


def test_bernstein_vazirani_recovers_secret():
    for secret in ("101", "0110", "11011"):
        assert str(bernstein_vazirani(secret)()) == secret


def test_bernstein_vazirani_alternating():
    secret = alternating_secret(6)
    assert str(secret) == "101010"
    assert bernstein_vazirani(secret)() == secret


def test_deutsch_jozsa_balanced_is_nonzero():
    # A balanced oracle must measure something other than all zeros.
    result = deutsch_jozsa(4)()
    assert str(result) == "1111"


def test_deutsch_jozsa_constant_is_zero():
    from repro.frontend.decorators import bit, cfunc, classical, qpu, N

    @classical[N]
    def f(x: bit[N]) -> bit:
        return (x & ~x).xor_reduce()  # Constant 0.

    @qpu[N](f)
    def dj(f: cfunc[N, 1]) -> bit[N]:
        return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure  # noqa

    assert str(dj[3]()) == "000"


def test_grover_finds_all_ones():
    # Success probability is sin^2(5 theta) ~ 0.945; at 400 shots the
    # 90% threshold sits ~4 sigma below the mean, so the fixed-seed
    # draw is robust for any correctly sampling backend.
    histogram = grover(3).histogram(shots=400)
    assert histogram.get("111", 0) > 360


def test_grover_two_qubits_deterministic():
    # n=2 with 1 iteration finds the marked item with certainty.
    histogram = grover(2, iterations=1).histogram(shots=20)
    assert histogram == {"11": 20}


def test_simon_samples_orthogonal_to_secret():
    secret = "110"
    kernel = simon(secret)
    secret_bits = [int(c) for c in secret]
    for seed in range(12):
        sample = kernel(seed=seed)
        dot = sum(s * y for s, y in zip(secret_bits, sample)) % 2
        assert dot == 0, f"sample {sample} not orthogonal to {secret}"


def test_simon_rejects_zero_secret():
    with pytest.raises(ValueError):
        simon("000")


def test_period_finding_samples_multiples():
    # Mask 011: f(x) = x & 011 has period 100 (the masked-out bit).
    # Sampled outputs after the IQFT are multiples of 2^n / period = 2.
    kernel = period_finding(3, mask="011")
    for seed in range(12):
        sample = int(kernel(seed=seed))
        assert sample % 2 == 0


def test_compile_result_artifacts():
    result = bernstein_vazirani("1010").compile()
    assert result.circuit is not None
    assert result.optimized_circuit is not None
    assert result.decomposed_circuit is not None
    assert "kernel" in result.qwerty_module.funcs or result.qwerty_module.funcs
    # The optimized circuit never has more gates than the raw one.
    assert len(result.optimized_circuit.gates) <= len(result.circuit.gates)


def test_optimized_and_decomposed_agree():
    """Peephole and Selinger decomposition preserve BV semantics."""
    from repro.sim import run_circuit

    result = bernstein_vazirani("1101").compile()
    for circuit in (result.circuit, result.optimized_circuit,
                    result.decomposed_circuit):
        (outcome,) = run_circuit(circuit)
        assert outcome == (1, 1, 0, 1)


def test_no_multi_controls_after_decomposition():
    result = grover(4).compile()
    assert all(
        len(g.controls) <= 1 for g in result.decomposed_circuit.gates
    )


def test_inlining_produces_single_function():
    result = bernstein_vazirani("101").compile()
    # Everything inlined into the kernel entry (paper §8.2).
    assert list(result.qwerty_module.funcs) == ["bv_kernel"]


def test_no_opt_keeps_function_values():
    from repro.backends.qir import count_callable_intrinsics

    kernel = bernstein_vazirani("101")
    result = kernel.compile(inline=False, to_circuit=False)
    creates, invokes = count_callable_intrinsics(result.qir("unrestricted"))
    assert creates > 0
    assert invokes > 0
