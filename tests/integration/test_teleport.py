"""Quantum teleportation end to end (paper Fig. C13 / Appendix C).

Exercises predication of basic blocks, the scf.if canonicalization
pattern, measurement-conditioned gates, and dynamic circuits.

Note on the correction order: with the measurement convention here
(``m_pm`` the pm-basis outcome of the secret, ``m_std`` the std-basis
outcome of Alice's half), the Bell algebra requires an X (``std.flip``)
conditioned on ``m_std`` followed by a Z (``pm.flip``) conditioned on
``m_pm``; the paper's listing attaches the corrections the other way
around, which does not teleport under this convention.
"""

from repro.frontend.decorators import bit, qpu


def make_teleport(secret_char: str, measure_basis: str):
    if measure_basis == "pm":
        if secret_char == "p":
            @qpu
            def teleport() -> bit:
                alice, bob = 'p0' | '1' & std.flip  # noqa
                m_pm, m_std = 'p' + alice | '1' & std.flip | (pm + std).measure  # noqa
                out = bob | (std.flip if m_std else id) | (pm.flip if m_pm else id)  # noqa
                return out | pm.measure  # noqa
        else:
            @qpu
            def teleport() -> bit:
                alice, bob = 'p0' | '1' & std.flip  # noqa
                m_pm, m_std = 'm' + alice | '1' & std.flip | (pm + std).measure  # noqa
                out = bob | (std.flip if m_std else id) | (pm.flip if m_pm else id)  # noqa
                return out | pm.measure  # noqa
    else:
        if secret_char == "0":
            @qpu
            def teleport() -> bit:
                alice, bob = 'p0' | '1' & std.flip  # noqa
                m_pm, m_std = '0' + alice | '1' & std.flip | (pm + std).measure  # noqa
                out = bob | (std.flip if m_std else id) | (pm.flip if m_pm else id)  # noqa
                return out | std.measure  # noqa
        else:
            @qpu
            def teleport() -> bit:
                alice, bob = 'p0' | '1' & std.flip  # noqa
                m_pm, m_std = '1' + alice | '1' & std.flip | (pm + std).measure  # noqa
                out = bob | (std.flip if m_std else id) | (pm.flip if m_pm else id)  # noqa
                return out | std.measure  # noqa
    return teleport


def test_teleport_std_basis_secrets():
    for char, expected in (("0", "0"), ("1", "1")):
        kernel = make_teleport(char, "std")
        for seed in range(8):
            assert str(kernel(seed=seed)) == expected


def test_teleport_pm_basis_secrets():
    for char, expected in (("p", "0"), ("m", "1")):
        kernel = make_teleport(char, "pm")
        for seed in range(8):
            assert str(kernel(seed=seed)) == expected


def test_teleport_compiles_without_callables():
    kernel = make_teleport("m", "pm")
    result = kernel.compile()
    from repro.backends.qir import count_callable_intrinsics

    creates, invokes = count_callable_intrinsics(result.qir("unrestricted"))
    # The scf.if push pattern (Appendix C) converts the conditional
    # calls into direct calls, which then inline: no callables remain.
    assert creates == 0
    assert invokes == 0


def test_teleport_uses_conditioned_gates():
    kernel = make_teleport("1", "std")
    result = kernel.compile()
    conditions = {
        gate.condition
        for gate in result.optimized_circuit.gates
        if gate.condition is not None
    }
    assert conditions, "teleport must branch on measurement results"
