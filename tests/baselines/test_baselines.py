"""Tests for the baseline compilers (paper §8) and their characteristic
differences."""

import pytest

from repro.baselines import build_baseline, transpile_o3
from repro.baselines.qsharp_qir import qsharp_callable_counts
from repro.sim import run_circuit


def test_all_styles_build_all_algorithms():
    for algorithm in ("bv", "dj", "grover", "simon", "period"):
        for style in ("qiskit", "quipper", "qsharp"):
            circuit = build_baseline(algorithm, style, 4)
            assert circuit.num_qubits >= 4
            assert circuit.output_bits


def test_bv_baselines_recover_secret():
    # All three styles must compute the same answer (secret 1010...).
    for style in ("qiskit", "quipper", "qsharp"):
        circuit = build_baseline("bv", style, 4)
        (outcome,) = run_circuit(circuit)
        assert outcome == (1, 0, 1, 0), style


def test_bv_transpiled_still_correct():
    for style in ("qiskit", "quipper", "qsharp"):
        circuit = transpile_o3(build_baseline("bv", style, 4), style)
        (outcome,) = run_circuit(circuit)
        assert outcome == (1, 0, 1, 0), style


def test_grover_baselines_find_marked_item():
    # 400 shots / 90% threshold: robust margin below the ~94.5% success
    # probability under any correctly-sampling backend.
    for style in ("qiskit", "qsharp"):
        circuit = transpile_o3(build_baseline("grover", style, 3), style)
        results = run_circuit(circuit, shots=400)
        hits = sum(1 for r in results if r == (1, 1, 1))
        assert hits >= 360, style


def test_quipper_uses_more_ancillas_for_xor():
    # The paper attributes Quipper's cost to ancilla-per-XOR synthesis.
    quipper = build_baseline("dj", "quipper", 8)
    qiskit = build_baseline("dj", "qiskit", 8)
    assert quipper.num_qubits > qiskit.num_qubits


def test_quipper_iqft_has_no_swaps():
    # Paper §8.3: Quipper uses renaming-based swaps for the IQFT.
    quipper = build_baseline("period", "quipper", 4)
    qiskit = build_baseline("period", "qiskit", 4)
    assert not any(g.name == "swap" for g in quipper.gates)
    assert any(g.name == "swap" for g in qiskit.gates)


def test_period_baselines_agree():
    for style in ("qiskit", "quipper"):
        circuit = transpile_o3(build_baseline("period", style, 3), style)
        for seed in range(8):
            (sample,) = run_circuit(circuit, seed=seed)
            value = int("".join(str(b) for b in sample), 2)
            assert value % 2 == 0, style


def test_selinger_styles_have_fewer_t_gates():
    # Q#'s (and ASDF's) Selinger decomposition beats the naive ladder.
    def t_count(circuit):
        return sum(1 for g in circuit.gates if g.name in ("t", "tdg"))

    qsharp = transpile_o3(build_baseline("grover", "qsharp", 6), "qsharp")
    qiskit = transpile_o3(build_baseline("grover", "qiskit", 6), "qiskit")
    assert t_count(qsharp) < t_count(qiskit)


def test_qsharp_callable_counts_nonzero():
    for algorithm in ("bv", "dj", "grover", "simon", "period"):
        creates, invokes = qsharp_callable_counts(algorithm)
        assert creates > 0
        assert invokes > 0


def test_unknown_style_rejected():
    from repro.errors import SynthesisError

    with pytest.raises(SynthesisError):
        build_baseline("bv", "cirq", 4)
