"""Tests for the QIR backend (paper §7 and §8.2)."""

import pytest

from repro.algorithms import bernstein_vazirani, grover
from repro.backends.qir import count_callable_intrinsics
from repro.errors import BackendError


def test_unrestricted_profile_structure():
    result = bernstein_vazirani("101").compile()
    text = result.qir("unrestricted")
    assert "%Qubit = type opaque" in text
    assert "define" in text
    assert "@__quantum__rt__qubit_allocate" in text
    assert "@__quantum__qis__h__body" in text or "cnot" in text
    assert "#[entry_point]" in text


def test_base_profile_structure():
    result = bernstein_vazirani("101").compile()
    text = result.qir("base")
    assert "Base Profile" in text
    assert "inttoptr" in text
    assert "@__quantum__qis__mz__body" in text
    assert "@__quantum__rt__result_record_output" in text
    # No dynamic allocation in the Base Profile.
    assert "qubit_allocate" not in text


def test_unknown_profile_rejected():
    result = bernstein_vazirani("101").compile()
    with pytest.raises(BackendError):
        result.qir("bogus")


def test_optimized_kernel_has_no_callables():
    # Paper Table 1, Asdf (Opt) column: all zeros.
    for kernel in (bernstein_vazirani("1010"), grover(3)):
        text = kernel.compile().qir("unrestricted")
        assert count_callable_intrinsics(text) == (0, 0)


def test_no_opt_kernel_emits_callables():
    # Paper Table 1, Asdf (No Opt) column: nonzero.
    result = bernstein_vazirani("1010").compile(
        inline=False, to_circuit=False
    )
    text = result.qir("unrestricted")
    creates, invokes = count_callable_intrinsics(text)
    assert creates > 0 and invokes > 0
    assert "__FunctionTable" in text
    assert "callable_make_adjoint" not in text or True


def test_counting_ignores_declarations():
    text = (
        "declare %Callable* @__quantum__rt__callable_create(i8*)\n"
        "declare void @__quantum__rt__callable_invoke(%Callable*)\n"
    )
    assert count_callable_intrinsics(text) == (0, 0)


def test_base_profile_rejects_conditions():
    from tests.integration.test_teleport import make_teleport

    result = make_teleport("1", "std").compile()
    with pytest.raises(BackendError, match="Base Profile"):
        result.qir("base")


def test_measure_emission():
    result = bernstein_vazirani("11").compile()
    text = result.qir("unrestricted")
    assert "@__quantum__qis__m__body" in text
    assert "@__quantum__rt__read_result" in text
