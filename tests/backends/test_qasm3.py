"""Tests for the OpenQASM 3 backend (paper §7)."""

import numpy as np

from repro.algorithms import bernstein_vazirani
from repro.backends.qasm3 import emit_qasm3, parse_qasm3
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement, Reset
from repro.sim import run_circuit, unitary_of_gates


def g(name, targets, controls=(), params=(), ctrl_states=(), condition=None):
    return CircuitGate(
        name, tuple(targets), tuple(controls), tuple(params),
        tuple(ctrl_states), condition,
    )


def test_header_and_registers():
    circuit = Circuit(3, 2)
    circuit.add(g("h", [0]))
    text = emit_qasm3(circuit, name="demo")
    assert "OPENQASM 3.0;" in text
    assert 'include "stdgates.inc";' in text
    assert "qubit[3] q;" in text
    assert "bit[2] c;" in text


def test_gate_spellings():
    circuit = Circuit(2, 0)
    circuit.add(g("h", [0]))
    circuit.add(g("x", [1], controls=[0]))
    circuit.add(g("p", [1], params=[0.5]))
    circuit.add(g("swap", [0, 1]))
    text = emit_qasm3(circuit)
    assert "h q[0];" in text
    assert "ctrl @ x q[0], q[1];" in text
    assert "p(0.5) q[1];" in text
    assert "swap q[0], q[1];" in text


def test_negative_controls():
    circuit = Circuit(3, 0)
    circuit.add(g("x", [2], controls=[0, 1], ctrl_states=[1, 0]))
    text = emit_qasm3(circuit)
    assert "ctrl @ negctrl @ x q[0], q[1], q[2];" in text


def test_measurement_and_reset():
    circuit = Circuit(1, 1)
    circuit.add(Measurement(0, 0))
    circuit.add(Reset(0))
    text = emit_qasm3(circuit)
    assert "c[0] = measure q[0];" in text
    assert "reset q[0];" in text


def test_conditioned_gate():
    circuit = Circuit(2, 1)
    circuit.add(Measurement(0, 0))
    circuit.add(g("x", [1], condition=(0, 1)))
    text = emit_qasm3(circuit)
    assert "if (c[0] == 1) { x q[1]; }" in text


def test_roundtrip_preserves_semantics():
    result = bernstein_vazirani("1011").compile()
    circuit = result.optimized_circuit
    text = emit_qasm3(circuit)
    parsed = parse_qasm3(text)
    assert parsed.num_qubits == circuit.num_qubits
    (original,) = run_circuit(circuit)
    parsed.output_bits = circuit.output_bits
    (reparsed,) = run_circuit(parsed)
    assert original == reparsed


def test_roundtrip_gate_by_gate():
    circuit = Circuit(3, 0)
    gates = [
        g("h", [0]),
        g("x", [2], controls=[0, 1], ctrl_states=[1, 0]),
        g("rz", [1], params=[1.25]),
        g("tdg", [2]),
    ]
    for gate in gates:
        circuit.add(gate)
    parsed = parse_qasm3(emit_qasm3(circuit))
    before = unitary_of_gates(gates, 3)
    after = unitary_of_gates(parsed.gates, 3)
    assert np.allclose(before, after)


def test_kernel_qasm3_export():
    result = bernstein_vazirani("110").compile()
    text = result.qasm3()
    assert "OPENQASM 3.0;" in text
    assert "measure" in text
