"""Location preservation through the full compilation pipeline.

ISSUE 3 acceptance: after the full ``default`` pipeline (lift-lambdas,
canonicalize, specialize, inline, dce, lowering, flattening, peephole,
Selinger decomposition), at least 90% of ops in a compiled Grover
kernel must carry a non-unknown ``loc`` — rewritten/fused/decomposed
ops inherit the span of what they replace.
"""

from __future__ import annotations

from repro.algorithms import bernstein_vazirani, grover
from repro.ir.core import walk


def _module_loc_ratio(module) -> tuple[int, int]:
    total = known = 0
    for func in module:
        for op in walk(func.entry):
            total += 1
            if op.loc is not None and not op.loc.is_unknown:
                known += 1
    return known, total


def _circuit_loc_ratio(circuit) -> tuple[int, int]:
    total = len(circuit.instructions)
    known = sum(
        1
        for inst in circuit.instructions
        if inst.loc is not None and not inst.loc.is_unknown
    )
    return known, total


def test_grover_ops_carry_locations_after_default_pipeline():
    result = grover(3).compile(pipeline="default")

    for module in (result.qwerty_module, result.qcircuit_module):
        known, total = _module_loc_ratio(module)
        assert total > 0
        assert known / total >= 0.9, f"{known}/{total} ops have locations"

    for circuit in (
        result.circuit,
        result.optimized_circuit,
        result.decomposed_circuit,
    ):
        known, total = _circuit_loc_ratio(circuit)
        assert total > 0
        assert known / total >= 0.9, (
            f"{known}/{total} instructions have locations"
        )


def test_locations_point_into_the_kernel_source():
    import repro.algorithms.kernels as kernels

    result = bernstein_vazirani("1011").compile()
    locs = [
        inst.loc
        for inst in result.optimized_circuit.instructions
        if inst.loc is not None and not inst.loc.is_unknown
    ]
    assert locs
    source_file = kernels.__file__
    assert all(loc.file == source_file for loc in locs)
    # Line numbers are 1-based positions inside the real file.
    num_lines = len(open(source_file).read().splitlines())
    assert all(1 <= loc.line <= num_lines for loc in locs)
    # Snippets match the named line of the named file.
    lines = open(source_file).read().splitlines()
    for loc in locs:
        assert loc.snippet == lines[loc.line - 1]


def test_specialized_functions_preserve_locations():
    # Grover's diffuser goes through func_adj/func_pred specialization;
    # the generated specializations must keep the original spans.
    result = grover(3).compile()
    known, total = _module_loc_ratio(result.qwerty_module)
    assert known == total


def test_qasm3_source_comments_reference_kernel_lines():
    import repro.algorithms.kernels as kernels

    result = bernstein_vazirani("101").compile()
    text = result.qasm3(source_comments=True)
    comment_lines = [
        int(part.rsplit("// line ", 1)[1])
        for part in text.splitlines()
        if "// line " in part
    ]
    assert comment_lines
    num_lines = len(open(kernels.__file__).read().splitlines())
    assert all(1 <= line <= num_lines for line in comment_lines)
    # Plain emission stays comment-free (and still parses).
    from repro.backends.qasm3 import parse_qasm3

    assert "// line " not in result.qasm3()
    reparsed = parse_qasm3(text)
    assert len(reparsed.gates) == len(result.optimized_circuit.gates)
