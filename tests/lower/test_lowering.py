"""Tests for Qwerty IR -> QCircuit IR lowering and flattening (§6.1, §7)."""

import pytest

from repro.basis import Basis
from repro.basis.basis import pm, std
from repro.basis.primitive import PrimitiveBasis
from repro.dialects import arith, qcircuit, qwerty
from repro.errors import LoweringError
from repro.ir import Builder, FuncOp, FunctionType, ModuleOp, QBundleType
from repro.ir.core import walk
from repro.lower import flatten_to_circuit, lower_module
from repro.sim import run_circuit


def make_module(build_body, n=1, outputs=None):
    module = ModuleOp()
    func = FuncOp(
        "main",
        FunctionType((), outputs or (QBundleType(n),), reversible=False),
    )
    module.add(func)
    module.entry_point = "main"
    build_body(Builder(func.entry))
    return module


def test_qbprep_lowers_to_qalloc_and_gates():
    def body(builder):
        bundle = qwerty.qbprep(builder, PrimitiveBasis.PM, (0, 1))
        qwerty.return_op(builder, [bundle])

    lowered = lower_module(make_module(body, 2))
    ops = [op.name for op in walk(lowered.get("main").entry)]
    assert ops.count(qcircuit.QALLOC) == 2
    gate_names = [
        op.attrs["gate"]
        for op in walk(lowered.get("main").entry)
        if op.name == qcircuit.GATE
    ]
    # |p> is H; |m> is X then H.
    assert gate_names == ["h", "x", "h"]


def test_qbtrans_lowers_to_synthesized_gates():
    def body(builder):
        bundle = qwerty.qbprep(builder, PrimitiveBasis.STD, (0,))
        out = qwerty.qbtrans(builder, bundle, std(1), pm(1))
        qwerty.return_op(builder, [out])

    lowered = lower_module(make_module(body, 1))
    gates = [
        op.attrs["gate"]
        for op in walk(lowered.get("main").entry)
        if op.name == qcircuit.GATE
    ]
    assert gates == ["h"]


def test_qbmeas_lowers_to_standardize_then_measure():
    def body(builder):
        bundle = qwerty.qbprep(builder, PrimitiveBasis.STD, (0, 0))
        bits = qwerty.qbmeas(builder, bundle, pm(2))
        qwerty.return_op(builder, [bits])

    from repro.ir.types import BitBundleType

    lowered = lower_module(make_module(body, 2, outputs=(BitBundleType(2),)))
    ops = [op.name for op in walk(lowered.get("main").entry)]
    assert ops.count(qcircuit.MEASURE) == 2
    gates = [
        op.attrs["gate"]
        for op in walk(lowered.get("main").entry)
        if op.name == qcircuit.GATE
    ]
    assert gates == ["h", "h"]  # pm -> std standardization.


def test_dynamic_phase_resolution():
    def body(builder):
        bundle = qwerty.qbprep(builder, PrimitiveBasis.STD, (1,))
        angle = arith.constant(builder, 90.0)
        out = qwerty.qbtrans(
            builder,
            bundle,
            Basis.literal("1"),
            Basis.literal("1"),
            [angle],
            [("out", 0)],
        )
        qwerty.return_op(builder, [out])

    lowered = lower_module(make_module(body, 1))
    phase_gates = [
        op
        for op in walk(lowered.get("main").entry)
        if op.name == qcircuit.GATE and op.attrs["gate"] == "p"
    ]
    assert len(phase_gates) == 1
    import math

    assert phase_gates[0].attrs["params"][0] == pytest.approx(math.pi / 2)


def test_unresolved_dynamic_phase_rejected():
    def body(builder):
        bundle = qwerty.qbprep(builder, PrimitiveBasis.STD, (1,))
        a = arith.constant(builder, 90.0)
        b = builder.create("arith.addf", [a, a], [a.type])  # Unfolded.
        out = qwerty.qbtrans(
            builder,
            bundle,
            Basis.literal("1"),
            Basis.literal("1"),
            [b.result],
            [("out", 0)],
        )
        qwerty.return_op(builder, [out])

    module = make_module(body, 1)
    # Without canonicalization the addf is not a constant.
    with pytest.raises(LoweringError, match="constant"):
        lower_module(module)


def test_flatten_full_pipeline_bell_state():
    def body(builder):
        plus = qwerty.qbprep(builder, PrimitiveBasis.PM, (0,))
        zero = qwerty.qbprep(builder, PrimitiveBasis.STD, (0,))
        plus_q = qwerty.qbunpack(builder, plus)
        zero_q = qwerty.qbunpack(builder, zero)
        pair = qwerty.qbpack(builder, plus_q + zero_q)
        bell = qwerty.qbtrans(
            builder,
            pair,
            Basis.literal("10", "11"),
            Basis.literal("11", "10"),
        )
        bits = qwerty.qbmeas(builder, bell, std(2))
        qwerty.return_op(builder, [bits])

    from repro.ir.types import BitBundleType

    module = make_module(body, 2, outputs=(BitBundleType(2),))
    circuit = flatten_to_circuit(lower_module(module))
    outcomes = {run_circuit(circuit, seed=seed)[0] for seed in range(24)}
    # Bell state: both bits always agree.
    assert outcomes <= {(0, 0), (1, 1)}
    assert len(outcomes) == 2


def test_flatten_reuses_freed_qubits():
    def body(builder):
        first = qwerty.qbprep(builder, PrimitiveBasis.STD, (0,))
        qwerty.qbdiscardz(builder, first)
        second = qwerty.qbprep(builder, PrimitiveBasis.STD, (1,))
        bits = qwerty.qbmeas(builder, second, std(1))
        qwerty.return_op(builder, [bits])

    from repro.ir.types import BitBundleType

    module = make_module(body, 1, outputs=(BitBundleType(1),))
    circuit = flatten_to_circuit(lower_module(module))
    assert circuit.num_qubits == 1  # The freed wire was reused.


def test_flatten_rejects_surviving_calls():
    def body(builder):
        bundle = qwerty.qbprep(builder, PrimitiveBasis.STD, (0,))
        call = qwerty.call(builder, "helper", [bundle], [QBundleType(1)])
        qwerty.return_op(builder, [call.results[0]])

    module = make_module(body, 1)
    helper = FuncOp(
        "helper", FunctionType((QBundleType(1),), (QBundleType(1),), True)
    )
    builder = Builder(helper.entry)
    qwerty.return_op(builder, [helper.entry.args[0]])
    module.add(helper)

    with pytest.raises(LoweringError, match="inlining"):
        flatten_to_circuit(lower_module(module))


def test_embed_lowering_allocates_and_frees_ancillas():
    from repro.classical import LogicNetwork
    from repro.classical.network import reduce_signals

    net = LogicNetwork(2)
    a, b = net.inputs
    net.add_output(net.and_(net.xor_(a, b), net.and_(a, b)))  # Needs ancillas.

    def body(builder):
        bundle = qwerty.qbprep(builder, PrimitiveBasis.STD, (0, 0, 0))
        out = qwerty.embed(builder, bundle, net, "xor")
        bits = qwerty.qbmeas(builder, out, std(3))
        qwerty.return_op(builder, [bits])

    from repro.ir.types import BitBundleType

    module = make_module(body, 3, outputs=(BitBundleType(3),))
    lowered = lower_module(module)
    ops = [op.name for op in walk(lowered.get("main").entry)]
    assert ops.count(qcircuit.QALLOC) > 3  # Inputs+output+ancillas.
    assert qcircuit.QFREEZ in ops
