"""Property-based differential testing across every execution engine.

One hypothesis strategy generates random flat circuits — arbitrary
known gates with random controls/polarities and rotation angles, and
(for the trajectory tests) mid-circuit measurement, classical
conditioning, and reset — and every engine configuration must produce
statistically equivalent histograms:

- the per-shot **interpreter** (the reference trajectory engine),
- the vectorized **statevector** backend (terminal-measurement fast
  path *and* the batched trajectory engine),
- **fused** vs unfused execution (``fuse_adjacent_gates``),
- the **numpy** and (when installed) **numba** apply kernels,
- under **Pauli noise**, the stochastic Kraus unraveling,

each judged against the exact **density-matrix** distribution with the
derived TVD thresholds of ``tests/stats.py`` — no hand-tuned margins.
A disagreement means two engines implement different physics for the
same circuit; hypothesis then shrinks it to a minimal reproducer.
"""

import numpy as np
from hypothesis import given, strategies as st

from repro.noise import NoiseModel, bit_flip, depolarizing, phase_flip
from repro.qcircuit.circuit import (
    KNOWN_GATES,
    Circuit,
    CircuitGate,
    Measurement,
    Reset,
)
from repro.qcircuit.fusion import fuse_adjacent_gates
from repro.sim import get_backend
from repro.sim.kernels import numba_available, use_kernel

from tests.stats import assert_matches_distribution, tvd_threshold

MAX_QUBITS = 4
SHOTS = 1500

ROTATION_GATES = ("p", "rx", "ry", "rz")
FIXED_GATES = tuple(
    sorted(set(KNOWN_GATES) - set(ROTATION_GATES) - {"swap"})
)

# A small palette of angles (including symmetry points) beats floats
# drawn from a continuum: shrinking converges and corpus entries are
# stable across runs.
ANGLES = tuple(
    float(a)
    for a in np.concatenate(
        [
            np.array([0.0, np.pi / 4, np.pi / 2, np.pi, -np.pi / 3]),
            np.linspace(0.1, 2.9, 8),
        ]
    )
)


@st.composite
def gates(draw, num_qubits: int):
    """One random gate: fixed/rotation/swap, with optional controls."""
    kind = draw(st.sampled_from(["fixed", "rotation", "swap"]))
    if kind == "swap" and num_qubits >= 2:
        a, b = draw(
            st.permutations(range(num_qubits)).map(lambda p: p[:2])
        )
        return CircuitGate("swap", (a, b))
    if kind == "rotation":
        name = draw(st.sampled_from(ROTATION_GATES))
        params = (draw(st.sampled_from(ANGLES)),)
    else:
        name = draw(st.sampled_from(FIXED_GATES))
        params = ()
    order = draw(st.permutations(range(num_qubits)))
    target = order[0]
    max_controls = min(2, num_qubits - 1)
    num_controls = draw(st.integers(0, max_controls))
    controls = tuple(order[1 : 1 + num_controls])
    ctrl_states = tuple(
        draw(st.sampled_from([0, 1])) for _ in controls
    )
    return CircuitGate(
        name, (target,), controls=controls,
        params=params, ctrl_states=ctrl_states,
    )


@st.composite
def terminal_circuits(draw):
    """Unitary circuit + measure-all: every backend's fast path."""
    num_qubits = draw(st.integers(1, MAX_QUBITS))
    circuit = Circuit(num_qubits, num_qubits)
    for gate in draw(st.lists(gates(num_qubits), min_size=1, max_size=10)):
        circuit.add(gate)
    for q in range(num_qubits):
        circuit.add(Measurement(q, q))
    circuit.output_bits = list(range(num_qubits))
    return circuit


@st.composite
def trajectory_circuits(draw):
    """Circuits with mid-circuit measurement, conditioning, and reset —
    the shapes that force per-shot (or batched-trajectory) execution."""
    num_qubits = draw(st.integers(2, MAX_QUBITS))
    circuit = Circuit(num_qubits, num_qubits)
    for gate in draw(st.lists(gates(num_qubits), min_size=1, max_size=5)):
        circuit.add(gate)
    measured = draw(st.integers(0, num_qubits - 1))
    circuit.add(Measurement(measured, measured))
    if draw(st.booleans()):
        circuit.add(Reset(measured))
    conditioned = draw(gates(num_qubits))
    circuit.add(
        CircuitGate(
            conditioned.name,
            conditioned.targets,
            controls=conditioned.controls,
            params=conditioned.params,
            ctrl_states=conditioned.ctrl_states,
            condition=(measured, draw(st.sampled_from([0, 1]))),
        )
    )
    for gate in draw(st.lists(gates(num_qubits), min_size=0, max_size=4)):
        circuit.add(gate)
    for q in range(num_qubits):
        if q != measured:
            circuit.add(Measurement(q, q))
    circuit.output_bits = list(range(num_qubits))
    return circuit


def _reference_distribution(circuit, noise_model=None):
    return get_backend("density_matrix").output_distribution(
        circuit, noise_model=noise_model
    )


def _check_config(label, outcomes, exact):
    assert_matches_distribution(
        outcomes,
        exact,
        outcomes=len(exact) + 1,
        label=label,
    )


@given(circuit=terminal_circuits(), seed=st.integers(0, 2**16))
def test_terminal_circuits_agree_across_engines(circuit, seed):
    exact = _reference_distribution(circuit)
    fused = fuse_adjacent_gates(circuit)
    kernels = ["numpy"] + (["numba"] if numba_available() else [])
    configs = []
    for kernel in kernels:
        configs.append(("statevector", circuit, kernel))
        configs.append(("statevector", fused, kernel))
    configs.append(("interpreter", circuit, "numpy"))
    for backend_name, form, kernel in configs:
        with use_kernel(kernel):
            outcomes = get_backend(backend_name).run(
                form, shots=SHOTS, seed=seed
            )
        _check_config(
            f"{backend_name}/{kernel}"
            + ("/fused" if form is fused else ""),
            outcomes,
            exact,
        )


@given(circuit=trajectory_circuits(), seed=st.integers(0, 2**16))
def test_trajectory_circuits_agree_across_engines(circuit, seed):
    exact = _reference_distribution(circuit)
    for backend_name in ("statevector", "interpreter"):
        outcomes = get_backend(backend_name).run(
            circuit, shots=SHOTS, seed=seed
        )
        _check_config(backend_name, outcomes, exact)


@given(
    circuit=terminal_circuits(),
    seed=st.integers(0, 2**16),
    strength=st.sampled_from([0.02, 0.08]),
    channel=st.sampled_from(["depolarizing", "bit_flip", "phase_flip"]),
)
def test_noisy_circuits_agree_with_exact_density(
    circuit, seed, strength, channel
):
    factory = {
        "depolarizing": depolarizing,
        "bit_flip": bit_flip,
        "phase_flip": phase_flip,
    }[channel]
    noise_model = NoiseModel().add_channel(factory(strength))
    exact = _reference_distribution(circuit, noise_model)
    for backend_name in ("statevector", "interpreter"):
        outcomes = get_backend(backend_name).run(
            circuit, shots=SHOTS, seed=seed, noise_model=noise_model
        )
        _check_config(f"{backend_name}/{channel}", outcomes, exact)


def test_threshold_sanity():
    """The derived margin actually separates signal from noise at the
    harness's shot count: far below the O(0.3) TVD a wrong engine
    produces, far above the statistical fluctuation of a correct one."""
    threshold = tvd_threshold(SHOTS, outcomes=2**MAX_QUBITS + 1)
    assert 0.02 < threshold < 0.2
