"""Hypothesis configuration for the differential-testing harness.

Two profiles:

- ``dev`` (default): small and fast for local runs.
- ``ci``: the CI leg's profile — **derandomized** (the shrunk corpus is
  identical on every run, so a red build is reproducible, never flaky)
  and sized so the harness executes >= 200 distinct random circuits
  per run, with the per-test deadline disabled (density-matrix
  references are slow on shared runners).

Select with ``HYPOTHESIS_PROFILE=ci python -m pytest
tests/differential``; the CI workflow sets the variable.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "dev",
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=70,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
