"""Quickstart: Bernstein-Vazirani in Qwerty (paper Fig. 1).

The program recovers a secret bit string with a single oracle query.
The oracle is *classical* code (``@classical``); ASDF synthesizes its
reversible sign embedding, and the relaxed peephole optimization melts
it into multi-controlled Z gates with no ancilla.

The sampling demo at the end shows the vectorized simulation backend:
``simulate_kernel(kernel, shots=1024, backend="statevector")`` evolves
the statevector once and draws all 1024 shots from |psi|^2 in a single
vectorized sample, so shot count is a near-constant cost (see
docs/simulators.md).

Run:  python examples/quickstart.py [secret-bits]
"""

import sys
from collections import Counter

from repro import bit, cfunc, classical, qpu, simulate_kernel, N


def make_bv(secret):
    """Build the Bernstein-Vazirani kernel for a ``bit[N]`` secret.

    ``f`` is the oracle f(x) = secret . x (mod 2) as ordinary classical
    code; the kernel queries its sign embedding once between two basis
    changes and measures in the standard basis.
    """

    @classical[N](secret)
    def f(secret_str: bit[N], x: bit[N]) -> bit:
        return (secret_str & x).xor_reduce()

    @qpu[N](f)
    def kernel(f: cfunc[N, 1]) -> bit[N]:
        return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure  # noqa

    return kernel


def main() -> None:
    text = sys.argv[1] if len(sys.argv) > 1 else "110101"
    secret = bit.from_str(text)
    kernel = make_bv(secret)

    # One shot suffices: B-V is deterministic.
    measured = kernel()
    print(f"secret:   {secret}")
    print(f"measured: {measured}")
    assert measured == secret, "Bernstein-Vazirani must recover the secret"
    print("recovered the secret with one oracle query")

    # Worked shots example: 1024 shots through the vectorized backend.
    # The circuit has only terminal measurements, so the backend
    # performs ONE statevector evolution and samples all shots at once;
    # compare backend="interpreter", which replays the evolution per
    # shot.  (kernel.histogram(shots=1024, backend="statevector") wraps
    # this same call when only the counts are needed.)  Every shot
    # agrees here because the distribution is a point mass.
    results = simulate_kernel(kernel, shots=1024, backend="statevector")
    counts = Counter(str(shot) for shot in results)
    print(f"1024-shot histogram (statevector backend): {dict(counts)}")
    assert counts == {str(secret): 1024}


if __name__ == "__main__":
    main()
