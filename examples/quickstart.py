"""Quickstart: Bernstein-Vazirani in Qwerty (paper Fig. 1).

The program recovers a secret bit string with a single oracle query.
The oracle is *classical* code (``@classical``); ASDF synthesizes its
reversible sign embedding, and the relaxed peephole optimization melts
it into multi-controlled Z gates with no ancilla.

Run:  python examples/quickstart.py [secret-bits]
"""

import sys

from repro import bit, cfunc, classical, qpu, N


def bv(secret_str):
    @classical[N](secret_str)
    def f(secret_str: bit[N], x: bit[N]) -> bit:
        return (secret_str & x).xor_reduce()

    @qpu[N](f)
    def kernel(f: cfunc[N, 1]) -> bit[N]:
        return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure  # noqa

    return kernel()


def main() -> None:
    text = sys.argv[1] if len(sys.argv) > 1 else "110101"
    secret = bit.from_str(text)
    measured = bv(secret)
    print(f"secret:   {secret}")
    print(f"measured: {measured}")
    assert measured == secret, "Bernstein-Vazirani must recover the secret"
    print("recovered the secret with one oracle query")


if __name__ == "__main__":
    main()
