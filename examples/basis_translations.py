"""A tour of basis translations (paper §2.2 and §6.3).

Shows the compiler synthesizing circuits for translations straight out
of the paper: the SWAP written as vector relabeling, the conditional
standardization of Fig. 7, the Grover diffuser of Fig. 8, the aligned
permutation of Fig. 9, and the inseparable-Fourier case of Fig. E14.

Run:  python examples/basis_translations.py
"""

from repro.basis import Basis, BasisLiteral, BasisVector
from repro.basis.basis import fourier, ij, pm, std
from repro.basis.span import check_span_equivalence
from repro.synth import synthesize_basis_translation


def show(title: str, b_in: Basis, b_out: Basis) -> None:
    check_span_equivalence(b_in, b_out)  # Type checking (§4.1).
    gates = synthesize_basis_translation(b_in, b_out)
    print(f"{title}")
    print(f"  {b_in}  >>  {b_out}")
    if not gates:
        print("  (identity: no gates)")
    for gate in gates:
        controls = ""
        if gate.controls:
            polarity = "".join(str(s) for s in gate.ctrl_states)
            controls = f" controls={list(gate.controls)}@{polarity}"
        params = f" params={gate.params}" if gate.params else ""
        print(f"  {gate.name:<5} targets={list(gate.targets)}{controls}{params}")
    print()


def main() -> None:
    lit = Basis.literal
    show("SWAP as relabeling (paper §2.2)", lit("01", "10"), lit("10", "01"))
    show("std >> pm is a Hadamard", std(1), pm(1))
    show(
        "Conditional standardization (paper Fig. 7)",
        lit("m").tensor(ij(1)),
        lit("m").tensor(pm(1)),
    )
    diffuser_in = Basis.of(BasisLiteral((BasisVector.from_chars("ppp"),)))
    diffuser_out = Basis.of(
        BasisLiteral((BasisVector.from_chars("ppp", phase=180.0),))
    )
    show("Grover diffuser (paper Fig. 8)", diffuser_in, diffuser_out)
    show(
        "Alignment by factoring (paper Fig. 9)",
        lit("01", "10").tensor(lit("0", "1")),
        lit("101", "100", "011", "010"),
    )
    show(
        "Inseparable Fourier bases (paper Fig. E14)",
        std(1).tensor(fourier(3)),
        fourier(3).tensor(std(1)),
    )


if __name__ == "__main__":
    main()
