"""QFT-based period finding in Qwerty (paper §8.1).

The Fourier basis is a first-class Qwerty basis: the inverse QFT is
just the basis translation ``fourier[N] >> std[N]``.  The oracle is a
classical bitmask, so f(x) = x & mask has period 2^(n-1) when the top
bit is masked out; samples after the IQFT are multiples of 2.

Run:  python examples/period_finding.py [n-qubits]
"""

import sys
from collections import Counter

from repro import bit, cfunc, classical, qpu, N


def make_period_finder(mask_text: str):
    mask = bit.from_str(mask_text)

    @classical[N](mask)
    def f(mask: bit[N], x: bit[N]) -> bit[N]:
        return x & mask

    @qpu[N](f)
    def kernel(f: cfunc[N, N]) -> bit[N]:
        return (
            'p'[N] + '0'[N]           # noqa: input register + workspace
            | f.xor                    # noqa: the bitmask oracle
            | (fourier[N] >> std[N]) + id[N]  # noqa: IQFT on the input
            | std[N].measure + std[N].discard  # noqa
        )

    return kernel


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    mask = "0" + "1" * (n - 1)  # Top bit masked out: period 2.
    kernel = make_period_finder(mask)
    samples = Counter(str(kernel(seed=seed)) for seed in range(32))
    print(f"period finding, n={n}, mask={mask}")
    for outcome, count in sorted(samples.items()):
        print(f"  {outcome}  x{count}")
    for outcome in samples:
        assert int(outcome, 2) % 2 == 0, "samples must be multiples of 2"
    print("all samples are multiples of 2^n / period")


if __name__ == "__main__":
    main()
