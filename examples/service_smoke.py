"""Chaos smoke for the fault-tolerant execution service.

Starts the real TCP server (``python -m repro.service``) as a
subprocess — with a deterministic 5% worker-crash fault plan injected
through the environment — then fires a batch of concurrent compile/run
requests over several client connections and requires that **every
request succeeds** with the documented response shape.  Also checks
the robustness telemetry (``op: "stats"``), asks for a graceful drain
with SIGTERM, and verifies the server exits cleanly.

This is the end-to-end "is the service actually fault-tolerant" probe
the CI ``service-smoke`` job runs on every push::

    PYTHONPATH=src python examples/service_smoke.py

Tuning knobs (mostly for local experimentation)::

    REPRO_SMOKE_REQUESTS=32   # batch size
    REPRO_SMOKE_CRASH=0.05    # injected worker_crash rate

See docs/service.md for the protocol and the fault-injection contract.
"""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys

REQUESTS = int(os.environ.get("REPRO_SMOKE_REQUESTS", "32"))
CRASH_RATE = os.environ.get("REPRO_SMOKE_CRASH", "0.05")
CONNECTIONS = 4


def start_server() -> "tuple[subprocess.Popen, int]":
    """The real server process, chaos plan injected via environment."""
    env = dict(os.environ)
    env["REPRO_FAULTS"] = f"worker_crash={CRASH_RATE}"
    env["REPRO_FAULTS_SEED"] = "0"
    env["PYTHONPATH"] = os.pathsep.join(
        ["src"] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--port", "0", "--serial",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    # The first line announces the bound (ephemeral) port — a JSON log
    # line by default (``REPRO_LOG_FORMAT=text`` emits a plain one, so
    # fall back to matching the raw line).
    line = process.stdout.readline()
    try:
        message = json.loads(line).get("message", "")
    except (json.JSONDecodeError, AttributeError):
        message = line
    match = re.search(r"listening on .*:(\d+)", message)
    if not match:
        process.kill()
        raise SystemExit(f"server failed to start: {line!r}")
    return process, int(match.group(1))


async def drive(port: int) -> None:
    responses: dict = {}

    async def connection(worker: int) -> None:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        mine = list(range(worker, REQUESTS, CONNECTIONS))
        for index in mine:  # pipelined: all requests, then all replies
            request = {
                "id": index,
                "kernel": "bv",
                "n": 5,
                "shots": 96,
                "seed": index,
                "deadline": 60.0,
            }
            writer.write((json.dumps(request) + "\n").encode())
        await writer.drain()
        for _ in mine:
            line = await asyncio.wait_for(reader.readline(), timeout=120)
            response = json.loads(line)
            responses[response["id"]] = response
        writer.close()
        await writer.wait_closed()

    await asyncio.gather(
        *(connection(worker) for worker in range(CONNECTIONS))
    )

    # Stats on a fresh connection after the whole batch resolved, so
    # the counters describe the complete run.
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(b'{"id": "stats", "op": "stats"}\n')
    writer.write(b'{"id": "metrics", "op": "metrics"}\n')
    await writer.drain()
    for _ in range(2):
        line = await asyncio.wait_for(reader.readline(), timeout=30)
        response = json.loads(line)
        responses[response["id"]] = response
    writer.close()
    await writer.wait_closed()

    failed = [
        responses[i] for i in range(REQUESTS) if not responses[i]["ok"]
    ]
    if failed:
        raise SystemExit(
            f"{len(failed)}/{REQUESTS} requests failed under "
            f"{CRASH_RATE} injected crashes; first: {failed[0]}"
        )
    for index in range(REQUESTS):
        result = responses[index]["result"]
        assert sum(result["counts"].values()) == 96, result
    retries = sum(
        responses[i]["result"]["info"]["retries"] for i in range(REQUESTS)
    )
    stats = responses["stats"]["result"]
    print(
        f"{REQUESTS}/{REQUESTS} requests ok under "
        f"worker_crash={CRASH_RATE} "
        f"(retries absorbed: {retries}; service counters: "
        f"completed={stats['counters']['completed']}, "
        f"failed={stats['counters']['failed']}, "
        f"faults_injected={stats['counters']['faults_injected']})"
    )
    assert stats["counters"]["failed"] == 0, stats

    # The metrics endpoint exposes the same substrate the stats()
    # counters derive from, as Prometheus text.
    exposition = responses["metrics"]["result"]["exposition"]
    assert "repro_service_events_total" in exposition, exposition[:400]
    assert 'event="completed"' in exposition, exposition[:400]


def main() -> int:
    process, port = start_server()
    try:
        asyncio.run(drive(port))
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            raise SystemExit("server did not drain within 30s of SIGTERM")
    output = process.stdout.read()
    if "draining" not in output or "stopped" not in output:
        raise SystemExit(f"no graceful drain in server output: {output!r}")
    print("graceful drain on SIGTERM: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
