"""Quantum teleportation in Qwerty (paper Fig. C13).

Demonstrates the functional features the ASDF compiler linearizes:
predication (``'1' & std.flip`` is a CNOT written as a predicated basis
translation), measurement in a mixed basis, and classical conditionals
on measurement outcomes — which lower to ``scf.if`` ops and are pushed
through ``call_indirect`` by the Appendix C canonicalization pattern.

Note: with this measurement convention (m_pm from the secret, m_std
from Alice's half), the Bell algebra requires the X correction
(``std.flip``) on m_std and the Z correction (``pm.flip``) on m_pm.

Run:  python examples/teleportation.py
"""

from repro import bit, qpu
from repro.backends.qir import count_callable_intrinsics


@qpu
def teleport_minus() -> bit:
    # Prepare a Bell pair shared by Alice and Bob.
    alice, bob = 'p0' | '1' & std.flip  # noqa
    # The secret |m> enters a Bell measurement with Alice's half.
    m_pm, m_std = 'm' + alice | '1' & std.flip | (pm + std).measure  # noqa
    # Bob applies the classically controlled corrections.
    out = bob | (std.flip if m_std else id) | (pm.flip if m_pm else id)  # noqa
    # Measuring in the pm basis: |m> always reads 1.
    return out | pm.measure  # noqa


def main() -> None:
    outcomes = [str(teleport_minus(seed=seed)) for seed in range(16)]
    print("teleporting |m>, measuring in the pm basis:")
    print("  outcomes:", " ".join(outcomes))
    assert all(outcome == "1" for outcome in outcomes)
    print("  deterministic: the |m> state teleported faithfully")

    result = teleport_minus.compile()
    creates, invokes = count_callable_intrinsics(result.qir("unrestricted"))
    print(f"\nQIR callables after inlining: create={creates} invoke={invokes}")
    print("(the scf.if push pattern converted every conditional call)")
    conditioned = sum(
        1 for gate in result.optimized_circuit.gates
        if gate.condition is not None
    )
    print(f"classically conditioned gates in the circuit: {conditioned}")
    print("\nOpenQASM 3:")
    print(result.qasm3())


if __name__ == "__main__":
    main()
