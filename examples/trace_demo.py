"""One stitched trace across compile -> execute -> serve.

Drives a noisy teleportation request through the in-process
:class:`~repro.service.service.ServiceClient` with tracing on and a
deterministic ``worker_crash`` fault plan chosen (by pure seed search
— fault decisions are pure functions of ``(seed, kind, site key)``)
so that exactly the retry path runs.  The exported file is Chrome
trace-event JSON: open it in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` to see the request span with its compile passes,
cache lookups, chunk executions, the injected crash, and the retry
that absorbed it.

The CI ``service-smoke`` job runs this as an end-to-end probe that a
single request yields a single stitched trace with every span kind the
observability layer promises (docs/observability.md)::

    PYTHONPATH=src python examples/trace_demo.py --out trace.json

``--fig11`` instead traces the evaluation-suite workload (one service
request per paper-benchmark algorithm) without fault injection — the
trace the CI ``benchmark-smoke`` job uploads as a Perfetto artifact.
"""

import argparse
import asyncio
import json
import os
import tempfile

from repro.exec.faults import FaultPlan, chunk_fault_key
from repro.exec.parallel import chunk_plan, derive_chunk_seeds
from repro.exec.retry import RetryPolicy
from repro.obs import trace
from repro.service.service import (
    ExecutionService,
    ServiceClient,
    ServiceConfig,
)

TELEPORT_SOURCE = """
from repro import bit, qpu

@qpu
def teleport_minus() -> bit:
    alice, bob = 'p0' | '1' & std.flip  # noqa
    m_pm, m_std = 'm' + alice | '1' & std.flip | (pm + std).measure  # noqa
    out = bob | (std.flip if m_std else id) | (pm.flip if m_pm else id)  # noqa
    return out | pm.measure  # noqa
"""

SHOTS = 256
SEED = 7
WORKERS = 2
TELEPORT_QUBITS = 3

#: The span vocabulary one traced service request must produce
#: (docs/observability.md) — the acceptance bar for this demo.
EXPECTED_KINDS = {
    "service.request",
    "compile.pass",
    "cache.lookup",
    "exec.chunk",
    "retry.attempt",
    "sim.sweep",
}


def find_fault_plan() -> FaultPlan:
    """A ``worker_crash`` plan that deterministically crashes at least
    one chunk's first attempt and lets every retry succeed.

    Fault decisions are pure functions of ``(seed, kind, chunk seed @
    attempt)``, so the right plan seed can be *searched for* without
    running anything — the demo is deterministic end to end.
    """
    sizes = chunk_plan(SHOTS, TELEPORT_QUBITS, WORKERS)
    seeds = derive_chunk_seeds(SEED, len(sizes))
    for fault_seed in range(10_000):
        plan = FaultPlan(rates={"worker_crash": 0.3}, seed=fault_seed)
        first = [
            plan.should("worker_crash", chunk_fault_key(s, 0))
            for s in seeds
        ]
        second = [
            plan.should("worker_crash", chunk_fault_key(s, 1))
            for s in seeds
        ]
        if any(first) and not any(second):
            return plan
    raise SystemExit("no suitable fault seed in 10k candidates")


async def run_teleport(plan: FaultPlan) -> dict:
    config = ServiceConfig(
        executors=1,
        parallel_workers=WORKERS,
        use_processes=False,
        retry=RetryPolicy(max_attempts=3, budget=8, timeout=None),
        fault_plan=plan,
    )
    async with ExecutionService(config) as service:
        client = ServiceClient(service)
        response = await client.run(
            id="trace-demo",
            source=TELEPORT_SOURCE,
            shots=SHOTS,
            seed=SEED,
            workers=WORKERS,
            noise={"depolarizing": 0.01},
            deadline=120.0,
        )
        exposition = (await client.metrics())["result"]["exposition"]
    if not response.get("ok"):
        raise SystemExit(f"run failed: {response}")
    assert sum(response["result"]["counts"].values()) == SHOTS, response
    if response["result"]["info"]["retries"] < 1:
        raise SystemExit(
            f"expected the injected crash to cost a retry: {response}"
        )
    assert "repro_service_events_total" in exposition
    return response


async def run_fig11() -> int:
    from repro.evaluation import ALGORITHMS

    config = ServiceConfig(
        executors=2, parallel_workers=WORKERS, use_processes=False
    )
    requests = 0
    async with ExecutionService(config) as service:
        client = ServiceClient(service)
        for name in ALGORITHMS:
            response = await client.run(
                id=f"fig11-{name}",
                kernel=name,
                n=5,
                shots=128,
                seed=11,
                deadline=120.0,
            )
            if not response.get("ok"):
                raise SystemExit(f"{name} failed: {response}")
            requests += 1
    return requests


def check_chrome_format(path: str) -> int:
    """The exported file must be loadable Chrome trace-event JSON."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    events = payload["traceEvents"]
    required = {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
    assert events, "empty trace"
    assert all(required <= set(event) for event in events), events[0]
    return len(events)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.environ.get(trace.TRACE_ENV) or "trace_demo.json",
        help="Chrome trace-event JSON output path",
    )
    parser.add_argument(
        "--fig11",
        action="store_true",
        help="trace the evaluation-suite workload instead of the "
        "fault-injected teleport request",
    )
    args = parser.parse_args(argv)

    # Hermetic compile cache: a warm disk cache from a previous run
    # would serve the kernel without running a single pass, and the
    # compile.pass span-kind assertion below would fail — the demo
    # must trace a *real* compilation every time.
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(
        prefix="repro-trace-demo-"
    )

    with trace.trace_to(args.out) as tracer:
        if args.fig11:
            requests = asyncio.run(run_fig11())
        else:
            asyncio.run(run_teleport(find_fault_plan()))

    events = check_chrome_format(args.out)
    if args.fig11:
        print(
            f"fig11 workload traced: {requests} requests, "
            f"{events} events -> {args.out}"
        )
        return 0

    kinds = tracer.kinds()
    missing = EXPECTED_KINDS - kinds
    assert not missing, f"missing span kinds: {sorted(missing)}"
    trace_ids = {span["trace_id"] for span in tracer.spans}
    assert len(trace_ids) == 1, (
        f"expected one stitched trace, got {len(trace_ids)}"
    )
    print(
        f"one stitched trace ({next(iter(trace_ids))}): {events} events, "
        f"{len(kinds)} span kinds -> {args.out}"
    )
    print("  kinds:", " ".join(sorted(kinds)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
