"""Teleportation under realistic noise (docs/noise.md walkthrough).

Builds a noise model — depolarizing noise on every gate, amplitude
damping on the entangling CNOTs' qubits, and a readout confusion
matrix — and executes the teleportation circuit three ways:

1. ``density_matrix``: the exact reference — rho evolves through every
   Kraus channel, one evolution regardless of shot count;
2. ``statevector``: stochastic Kraus unraveling on the shot-batched
   trajectory engine (all shots in one vectorized sweep);
3. the same model through the ``@qpu`` kernel entry points
   (``kernel.histogram(noise_model=...)``).

Ideally the teleported qubit reads 1 with probability sin^2(0.35)
~= 0.118; noise pulls the distribution toward 50/50, and the fidelity
table at the end quantifies the decay per noise strength.

Run:  python examples/noisy_teleportation.py
"""

import math
from collections import Counter

from repro import (
    NoiseModel,
    ReadoutError,
    amplitude_damping,
    bit,
    depolarizing,
    qpu,
    standard_noise_model,
)
from repro.stats import classical_fidelity
from repro.qcircuit.examples import teleport_circuit
from repro.sim import DensityMatrixBackend, run_circuit_with_info


def build_noise_model() -> NoiseModel:
    """A hardware-flavoured model: uniform depolarizing background,
    extra T1 damping wherever a CNOT touches, and biased readout."""
    return (
        NoiseModel()
        .add_channel(depolarizing(0.02))
        .add_channel(amplitude_damping(0.03), gates=("x",))
        .add_readout_error(ReadoutError.asymmetric(0.01, 0.04))
    )


def main() -> None:
    circuit = teleport_circuit()  # rx(0.7) secret, conditioned fixes
    model = build_noise_model()
    shots = 4096
    ideal_one = math.sin(0.35) ** 2

    reference = DensityMatrixBackend()
    exact_ideal = reference.output_distribution(circuit)
    exact_noisy = reference.output_distribution(circuit, model)
    print("teleporting an rx(0.7) qubit, P(measure 1):")
    print(f"  analytic ideal:        {ideal_one:.4f}")
    print(f"  density matrix, ideal: {exact_ideal[(1,)]:.4f}")
    print(f"  density matrix, noisy: {exact_noisy[(1,)]:.4f}")
    assert abs(exact_ideal[(1,)] - ideal_one) < 1e-9
    assert exact_ideal[(1,)] < exact_noisy[(1,)] < 0.5, (
        "noise must pull the outcome toward the uniform mixture"
    )

    # Stochastic Kraus unraveling: all 4096 trajectories evolve as ONE
    # batched sweep (RunInfo.evolutions == 1), each drawing its own
    # Kraus operators — compare RunInfo under backend="interpreter",
    # which pays one evolution (and its own draws) per shot.
    results, info = run_circuit_with_info(
        circuit, shots=shots, seed=7,
        backend="statevector", noise_model=model,
    )
    sampled_one = Counter(results)[(1,)] / shots
    print(f"\nunraveled trajectories ({shots} shots): "
          f"P(1) = {sampled_one:.4f}")
    print(f"  RunInfo: {info.evolutions} batched sweep(s), "
          f"{info.channel_applications} channel applications, "
          f"{info.readout_applications} noisy readouts")
    assert info.batched and info.evolutions == 1
    assert abs(sampled_one - exact_noisy[(1,)]) < 0.05

    # The same model drives @qpu kernels through histogram()/__call__.
    @qpu
    def coin() -> bit:
        return 'p' | std.measure  # noqa: F821

    fair = coin.histogram(shots=2048, seed=1)
    rigged = coin.histogram(
        shots=2048, seed=1,
        noise_model=NoiseModel().add_readout_error(
            ReadoutError.asymmetric(0.0, 0.9)
        ),
    )
    print(f"\n@qpu Hadamard coin, ideal:          {dict(fair)}")
    print(f"@qpu coin, 90% one-sided misread:   {dict(rigged)}")
    assert rigged["0"] > fair["0"]

    # Fidelity-vs-strength sweep from the exact reference (the same
    # metric evaluation.noisy_execution_report tabulates).
    print("\nfidelity vs depolarizing strength (exact, teleport):")
    for strength in (0.0, 0.02, 0.05, 0.1, 0.2):
        noisy = reference.output_distribution(
            circuit, standard_noise_model(strength)
        )
        fidelity = classical_fidelity(noisy, exact_ideal)
        bar = "#" * round(40 * fidelity)
        print(f"  p={strength:<5g} fidelity={fidelity:.4f} {bar}")

    print("\nsee docs/noise.md for the channel zoo and attachment rules")


if __name__ == "__main__":
    main()
