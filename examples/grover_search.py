"""Grover's search in Qwerty (paper §8.1).

The oracle marks the all-ones string; the diffuser is the basis
translation ``{'p'[N]} >> {-'p'[N]}`` (paper Fig. 8) — a sign flip on
|+...+>, written with *no gates at all*.  The compiler synthesizes the
X-conjugated multi-controlled phase and decomposes it with Selinger's
controlled-iX scheme.

Run:  python examples/grover_search.py [n-qubits]
"""

import sys

from repro import bit, cfunc, classical, qpu, I, N
from repro.algorithms import grover_iterations


def make_grover(n: int):
    @classical[N]
    def oracle(x: bit[N]) -> bit:
        return x.and_reduce()

    @qpu[N, I](oracle)
    def kernel(oracle: cfunc[N, 1]) -> bit[N]:
        q = 'p'[N]  # noqa
        for _ in range(I):  # noqa
            q = q | oracle.sign | {'p'[N]} >> {-'p'[N]}  # noqa
        return q | std[N].measure  # noqa

    return kernel[n, grover_iterations(n)]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    kernel = make_grover(n)
    histogram = kernel.histogram(shots=128)
    print(f"Grover's search, n={n}, {grover_iterations(n)} iteration(s)")
    for outcome, count in sorted(histogram.items(), key=lambda kv: -kv[1]):
        bar = "#" * (count * 40 // 128)
        print(f"  {outcome}  {count:>4}  {bar}")
    marked = "1" * n
    assert histogram.get(marked, 0) > 0.5 * 128, "marked item should dominate"
    print(f"found the marked item {marked}")

    result = kernel.compile()
    print(f"\ncompiled circuit: {result.optimized_circuit.num_qubits} qubits, "
          f"{len(result.decomposed_circuit.gates)} gates after decomposition")


if __name__ == "__main__":
    main()
