"""The end-to-end ASDF compilation pipeline (paper Fig. 2).

``compile_kernel`` drives: Python AST -> Qwerty AST -> expansion ->
type checking -> AST canonicalization -> Qwerty IR -> (lambda lifting,
canonicalization, specialization, inlining) -> QCircuit IR -> flat
circuit -> peephole -> Selinger decomposition.  Each stage's artifact
is kept on the :class:`CompileResult` for inspection, testing, and the
backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import QwertyTypeError
from repro.frontend.canon import canonicalize_kernel
from repro.frontend.expand import expand_kernel
from repro.frontend.lower_ast import AstLowering
from repro.frontend.typecheck import TypeChecker
from repro.ir.module import ModuleOp
from repro.ir.verifier import verify_module
from repro.lower import flatten_to_circuit, lower_module
from repro.qcircuit import Circuit, decompose_multi_controlled, run_peephole
from repro.qwerty_ir import run_qwerty_opt


@dataclass
class CompileResult:
    """Artifacts of one kernel compilation."""

    name: str
    qwerty_module: ModuleOp
    qcircuit_module: ModuleOp
    circuit: Optional[Circuit] = None
    optimized_circuit: Optional[Circuit] = None
    decomposed_circuit: Optional[Circuit] = None
    dims: dict = field(default_factory=dict)

    def qasm3(self) -> str:
        from repro.backends.qasm3 import emit_qasm3

        if self.optimized_circuit is None:
            raise QwertyTypeError("OpenQASM 3 export requires inlining")
        return emit_qasm3(self.optimized_circuit, name=self.name)

    def qir(self, profile: str = "unrestricted") -> str:
        from repro.backends.qir import emit_qir

        return emit_qir(self, profile=profile)


def _build_qwerty_module(kernel) -> tuple[ModuleOp, dict]:
    """Frontend stages: parse/expand/typecheck/canonicalize/lower."""
    dims = kernel.infer_dims()
    expanded = expand_kernel(kernel.kernel_ast, dims)

    capture_types = kernel.capture_types(dims)
    runtime_params = [
        p for p in expanded.params if p.name not in kernel.captures
    ]
    if runtime_params:
        raise QwertyTypeError(
            f"@{kernel.name} has runtime parameters "
            f"({', '.join(p.name for p in runtime_params)}); only fully "
            f"captured kernels can be compiled standalone"
        )

    checker = TypeChecker(capture_types)
    checker.check_kernel(expanded)
    canonical = canonicalize_kernel(expanded)
    checker = TypeChecker(capture_types)
    return_type = checker.check_kernel(canonical)

    module = ModuleOp()
    networks = {}
    from repro.frontend.decorators import ClassicalFunction

    for name, capture in kernel.captures.items():
        if isinstance(capture, ClassicalFunction):
            merged = {**capture.infer_dims(), **dims}
            networks[name] = (
                lambda cap=capture, d=merged: cap.network(d)
            )
    lowering = AstLowering(module, networks)
    lowering.lower_kernel(canonical, return_type)
    module.entry_point = canonical.name
    return module, dims


def compile_kernel(
    kernel,
    inline: bool = True,
    peephole: bool = True,
    relaxed_peephole: bool = True,
    selinger: bool = True,
    to_circuit: bool = True,
    verify: bool = True,
) -> CompileResult:
    """Compile a ``@qpu`` kernel through the full pipeline.

    ``inline=False`` reproduces the paper's "Asdf (No Opt)" Table 1
    configuration; the result then has no flat circuit (function values
    survive as QIR callables).
    """
    module, dims = _build_qwerty_module(kernel)
    if verify:
        verify_module(module)
    run_qwerty_opt(module, inline=inline)
    if verify:
        verify_module(module)

    qcircuit_module = lower_module(module)
    result = CompileResult(
        kernel.name, module, qcircuit_module, dims=dims
    )
    if not (inline and to_circuit):
        return result

    circuit = flatten_to_circuit(qcircuit_module)
    result.circuit = circuit
    optimized = (
        run_peephole(circuit, relaxed=relaxed_peephole)
        if peephole
        else circuit
    )
    result.optimized_circuit = optimized
    result.decomposed_circuit = run_peephole(
        decompose_multi_controlled(optimized, use_selinger=selinger),
        relaxed=False,
    )
    return result


def simulate_kernel(kernel, shots: int = 1, seed: int = 0):
    """Compile and simulate a kernel, returning measured Bits per shot."""
    from repro.frontend.decorators import Bits
    from repro.sim import run_circuit

    result = compile_kernel(kernel)
    circuit = result.optimized_circuit
    outcomes = run_circuit(circuit, shots=shots, seed=seed)
    return [Bits(outcome) for outcome in outcomes]
