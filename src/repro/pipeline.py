"""The end-to-end ASDF compilation pipeline (paper Fig. 2).

``compile_kernel`` drives: Python AST -> Qwerty AST -> expansion ->
type checking -> AST canonicalization -> Qwerty IR -> (lambda lifting,
canonicalization, specialization, inlining) -> QCircuit IR -> flat
circuit -> peephole -> Selinger decomposition.  Each stage's artifact
is kept on the :class:`CompileResult` for inspection, testing, and the
backends.

The optimization stages are scheduled through the unified pass
infrastructure (:mod:`repro.ir.passmanager`): a :class:`CompileOptions`
names one textual pipeline spec per layer, with presets matching the
paper's Table 1 ablations (``"default"``, ``"no-opt"``,
``"no-peephole"``, ``"no-relaxed-peephole"``, ``"no-selinger"``).  A
per-process compile cache keyed on (kernel fingerprint, dims, pipeline
specs) lets repeated ``simulate_kernel``/benchmark calls skip
recompilation.
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import PassPipelineError, QwertyError, QwertyTypeError
from repro.frontend.canon import canonicalize_kernel
from repro.frontend.expand import expand_kernel
from repro.frontend.lower_ast import AstLowering
from repro.frontend.typecheck import TypeChecker
from repro.ir.module import ModuleOp
from repro.ir.passmanager import PassStatistics
from repro.ir.verifier import verify_module
from repro.lower import flatten_to_circuit, lower_module
from repro.parameters import Parameter, ParamExpr
from repro.qcircuit import (
    CIRCUIT_DECOMPOSE_SPEC,
    CIRCUIT_FUSION_SPEC,
    CIRCUIT_OPT_SPEC,
    Circuit,
    copy_circuit,
    make_circuit_pass_manager,
)
from repro.qcircuit.circuit import bind_circuit, circuit_parameters
from repro.qwerty_ir import (
    QWERTY_NOOPT_SPEC,
    QWERTY_OPT_SPEC,
    make_qwerty_pass_manager,
)


@dataclass(frozen=True)
class CompileOptions:
    """How to drive one compilation: a pipeline spec per layer.

    ``qwerty_spec`` runs on Qwerty IR modules; ``optimize_spec``
    produces the optimized flat circuit; ``decompose_spec`` produces
    the hardware-ready decomposed circuit.  ``to_circuit=False`` stops
    after QCircuit IR (required when ``qwerty_spec`` does not inline —
    function values then survive to QIR as callables).  ``verify``
    checks IR invariants before and after the Qwerty pipeline;
    ``verify_each`` additionally re-verifies after every changed pass.
    ``collect_statistics`` fills ``CompileResult.statistics`` with a
    per-pass/per-stage breakdown.  ``fusion_spec`` runs on a *copy* of
    the optimized circuit to produce ``CompileResult.execution_circuit``
    — the gate-fused form the simulation entry points execute (see
    docs/performance.md); exporters and resource estimation keep
    consuming the unfused circuits, and ``fusion_spec=""`` disables
    fusion.  ``sim_backend`` names the simulation backend
    (:mod:`repro.sim.backend`) that ``simulate_kernel`` and the
    evaluation harness use to execute the compiled circuit,
    ``sim_kernel`` selects the apply-matrix kernel
    (:mod:`repro.sim.kernels`; ``None`` keeps the process default),
    ``noise_model`` (a :class:`repro.noise.NoiseModel`) makes those
    executions noisy, and ``parallel_workers`` shards the run's shot
    chunks across a process pool (:mod:`repro.exec`; ``None`` keeps
    the single-process path, ``0`` means one worker per core); none of
    the four affects compilation itself, and all four are excluded
    from the compile-cache key.
    """

    qwerty_spec: str = QWERTY_OPT_SPEC
    optimize_spec: str = CIRCUIT_OPT_SPEC
    decompose_spec: str = CIRCUIT_DECOMPOSE_SPEC
    fusion_spec: str = CIRCUIT_FUSION_SPEC
    to_circuit: bool = True
    verify: bool = True
    verify_each: bool = False
    collect_statistics: bool = False
    sim_backend: Optional[str] = None
    sim_kernel: Optional[str] = None
    noise_model: Optional[object] = None
    parallel_workers: Optional[int] = None

    @classmethod
    def preset(cls, name: str, **overrides) -> "CompileOptions":
        """A named pipeline preset, optionally overridden per field."""
        base = PRESETS.get(name)
        if base is None:
            known = ", ".join(sorted(PRESETS))
            raise PassPipelineError(
                f"unknown pipeline preset {name!r} (known presets: {known})"
            )
        return dataclasses.replace(base, **overrides)

    @classmethod
    def from_flags(
        cls,
        inline: bool = True,
        peephole: bool = True,
        relaxed_peephole: bool = True,
        selinger: bool = True,
        to_circuit: bool = True,
        verify: bool = True,
    ) -> "CompileOptions":
        """Translate the legacy boolean flags into pipeline specs."""
        if peephole:
            optimize_spec = (
                "peephole{relaxed=true}"
                if relaxed_peephole
                else "peephole{relaxed=false}"
            )
        else:
            optimize_spec = ""
        scheme = "selinger" if selinger else "naive"
        return cls(
            qwerty_spec=QWERTY_OPT_SPEC if inline else QWERTY_NOOPT_SPEC,
            optimize_spec=optimize_spec,
            decompose_spec=(
                f"decompose-multi-controlled{{scheme={scheme}}},"
                f"peephole{{relaxed=false}}"
            ),
            to_circuit=to_circuit and inline,
            verify=verify,
        )

#: Presets matching the paper's configurations: "default" is the full
#: pipeline, "no-opt" is Table 1's "Asdf (No Opt)", and the remaining
#: three are the §6.5/§8.3 ablations.
PRESETS: dict[str, CompileOptions] = {
    "default": CompileOptions(),
    "no-opt": CompileOptions(qwerty_spec=QWERTY_NOOPT_SPEC, to_circuit=False),
    "no-peephole": CompileOptions(optimize_spec=""),
    "no-relaxed-peephole": CompileOptions(
        optimize_spec="peephole{relaxed=false}"
    ),
    "no-selinger": CompileOptions(
        decompose_spec=(
            "decompose-multi-controlled{scheme=naive},"
            "peephole{relaxed=false}"
        )
    ),
    "no-fusion": CompileOptions(fusion_spec=""),
}


@dataclass
class CompileResult:
    """Artifacts of one kernel compilation."""

    name: str
    qwerty_module: ModuleOp
    qcircuit_module: ModuleOp
    circuit: Optional[Circuit] = None
    optimized_circuit: Optional[Circuit] = None
    decomposed_circuit: Optional[Circuit] = None
    #: The gate-fused execution form of ``optimized_circuit`` (equal to
    #: it when ``options.fusion_spec`` is empty).  Simulation entry
    #: points execute this; exporters never see it.
    execution_circuit: Optional[Circuit] = None
    dims: dict = field(default_factory=dict)
    options: CompileOptions = field(default_factory=CompileOptions)
    #: Per-pass instrumentation, when compiled with collect_statistics.
    statistics: Optional[PassStatistics] = None
    #: Where the *most recent* cache lookup found this artifact:
    #: "compiled" (built fresh this call), "memory" (in-process LRU
    #: hit), or "disk" (persistent-cache hit, unpickled).  Recorded in
    #: ``RunInfo.compile_cache`` by ``simulate_kernel_with_info``.
    #: Mutated in place on cache hits — cached results are shared.
    provenance: str = "compiled"

    def qasm3(self, source_comments: bool = False) -> str:
        """OpenQASM 3 text; ``source_comments=True`` adds ``// line N``
        provenance comments from the gates' source spans."""
        from repro.backends.qasm3 import emit_qasm3

        if self.optimized_circuit is None:
            raise QwertyTypeError("OpenQASM 3 export requires inlining")
        return emit_qasm3(
            self.optimized_circuit,
            name=self.name,
            source_comments=source_comments,
        )

    def qir(self, profile: str = "unrestricted") -> str:
        from repro.backends.qir import emit_qir

        return emit_qir(self, profile=profile)

    @property
    def parameters(self) -> tuple[Parameter, ...]:
        """The distinct unbound symbolic parameters in the compiled
        circuits, sorted by name (empty for fully-concrete kernels)."""
        found: dict[str, Parameter] = {}
        for circuit in (
            self.circuit,
            self.optimized_circuit,
            self.decomposed_circuit,
            self.execution_circuit,
        ):
            if circuit is not None:
                for param in circuit_parameters(circuit):
                    found.setdefault(param.name, param)
        return tuple(found[name] for name in sorted(found))

    def bind(self, values=None, *, partial: bool = False, **kwargs):
        """A new :class:`CompileResult` with parameter values substituted
        into every circuit — **without recompiling** and without touching
        the compile cache (docs/variational.md).

        ``values`` maps :class:`~repro.parameters.Parameter` objects or
        names to numbers in the units the parameter was written in: a
        DSL phase (``'1'@theta``) is **degrees** — the compiler bakes
        the degree→radian conversion into the gate's affine param
        expression — while a parameter used directly in a circuit-level
        ansatz (:mod:`repro.variational`) is **radians**.  Keyword
        arguments are merged in by name.  Every parameter must be
        covered unless ``partial=True``.
        """
        env: dict[str, float] = {}
        for key, value in {**(values or {}), **kwargs}.items():
            name = key.name if isinstance(key, Parameter) else str(key)
            env[name] = value
        known = {p.name for p in self.parameters}
        unknown = sorted(set(env) - known)
        if unknown:
            raise QwertyTypeError(
                f"unknown parameter(s) {', '.join(unknown)}; this kernel's "
                f"parameters are: {', '.join(sorted(known)) or '(none)'}"
            )

        def bound(circuit: Optional[Circuit]) -> Optional[Circuit]:
            if circuit is None:
                return None
            return bind_circuit(circuit, env, partial=partial)

        return dataclasses.replace(
            self,
            circuit=bound(self.circuit),
            optimized_circuit=bound(self.optimized_circuit),
            decomposed_circuit=bound(self.decomposed_circuit),
            execution_circuit=bound(self.execution_circuit),
        )


def _resolve_angle_captures(expanded, kernel, dims: dict) -> None:
    """Resolve named angles in phase positions, in place.

    The parser turns a name in phase position (``'1'@theta``) into a
    placeholder :class:`ParamExpr` carrying the identifier.  After
    expansion, each placeholder resolves against the kernel's captures:
    a numeric capture folds to a concrete float, a
    :class:`~repro.parameters.Parameter` capture substitutes the symbol
    itself (staying symbolic through the whole pipeline until
    ``CompileResult.bind``), and a bound dimension variable folds to
    its value.  Anything else is a type error.
    """

    def resolve(phase: ParamExpr):
        env: dict[str, object] = {}
        for param in phase.parameters:
            name = param.name
            if name in kernel.captures:
                value = kernel.captures[name]
                if isinstance(value, (Parameter, ParamExpr)):
                    env[name] = value
                elif isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    env[name] = float(value)
                else:
                    raise QwertyTypeError(
                        f"capture '{name}' is used as an angle but is a "
                        f"{type(value).__name__}; angle captures must be "
                        "numbers or repro.Parameter symbols"
                    )
            elif name in dims:
                env[name] = float(dims[name])
            else:
                raise QwertyTypeError(
                    f"unknown angle '{name}' in @{kernel.name}; phases "
                    "may reference only angle captures or bound "
                    "dimension variables"
                )
        return phase.subs(env)

    def walk(obj) -> None:
        if isinstance(obj, (list, tuple)):
            for item in obj:
                walk(item)
            return
        if not dataclasses.is_dataclass(obj) or isinstance(obj, type):
            return
        for f in dataclasses.fields(obj):
            value = getattr(obj, f.name)
            if isinstance(value, ParamExpr):
                try:
                    setattr(obj, f.name, resolve(value))
                except QwertyError as error:
                    raise error.attach_span(getattr(obj, "span", None))
            else:
                walk(value)

    walk(expanded.body)


def _build_qwerty_module(kernel) -> tuple[ModuleOp, dict]:
    """Frontend stages: parse/expand/typecheck/canonicalize/lower."""
    dims = kernel.infer_dims()
    expanded = expand_kernel(kernel.kernel_ast, dims)
    _resolve_angle_captures(expanded, kernel, dims)

    capture_types = kernel.capture_types(dims)
    runtime_params = [
        p for p in expanded.params if p.name not in kernel.captures
    ]
    if runtime_params:
        raise QwertyTypeError(
            f"@{kernel.name} has runtime parameters "
            f"({', '.join(p.name for p in runtime_params)}); only fully "
            f"captured kernels can be compiled standalone"
        )

    checker = TypeChecker(capture_types)
    checker.check_kernel(expanded)
    canonical = canonicalize_kernel(expanded)
    checker = TypeChecker(capture_types)
    return_type = checker.check_kernel(canonical)

    module = ModuleOp()
    networks = {}
    from repro.frontend.decorators import ClassicalFunction

    for name, capture in kernel.captures.items():
        if isinstance(capture, ClassicalFunction):
            merged = {**capture.infer_dims(), **dims}
            networks[name] = (
                lambda cap=capture, d=merged: cap.network(d)
            )
    lowering = AstLowering(module, networks)
    lowering.lower_kernel(canonical, return_type)
    module.entry_point = canonical.name
    return module, dims


# ----------------------------------------------------------------------
# The two-layer compile cache: per-process LRU over a persistent
# on-disk store (repro.exec.diskcache).
# ----------------------------------------------------------------------
import os
from collections import OrderedDict

from repro.exec import diskcache as _diskcache
from repro.exec import faults as _faults
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

#: In-memory LRU lookups, mirrored into the metrics registry so the
#: service's ``op: "metrics"`` exposition reconciles exactly with
#: :func:`compile_cache_info` (the disk layer mirrors its own in
#: :mod:`repro.exec.diskcache`).
_CACHE_LOOKUPS = _metrics.counter(
    "repro_cache_lookups_total",
    "Compile-cache lookups by layer and outcome",
    labels=("layer", "outcome"),
)
_CACHE_EVICTIONS = _metrics.counter(
    "repro_cache_evictions_total",
    "In-memory compile-cache LRU evictions",
    labels=("layer",),
)
_COMPILES = _metrics.counter(
    "repro_compile_kernels_total",
    "compile_kernel calls by artifact provenance",
    labels=("provenance",),
)

#: Upper bound on cached CompileResults; each entry holds the full IR
#: module and three circuits, so the cache must not grow with the
#: number of distinct kernels a long-lived process constructs.
#: The ``REPRO_COMPILE_CACHE_MAX_ENTRIES`` environment variable
#: overrides it without code changes (long-lived services tune it up,
#: memory-tight workers tune it down).
COMPILE_CACHE_MAX_ENTRIES = 128

COMPILE_CACHE_MAX_ENTRIES_ENV = "REPRO_COMPILE_CACHE_MAX_ENTRIES"

_COMPILE_CACHE: "OrderedDict[tuple, CompileResult]" = OrderedDict()

#: Lookup counters for the in-memory layer, zeroed by
#: :func:`clear_compile_cache`.  A ``misses`` increment may still end
#: in a disk hit — the disk layer keeps its own counters.
_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def compile_cache_max_entries() -> int:
    """The effective LRU bound: the env override when set and valid,
    else :data:`COMPILE_CACHE_MAX_ENTRIES`."""
    raw = os.environ.get(COMPILE_CACHE_MAX_ENTRIES_ENV)
    if raw:
        try:
            value = int(raw)
        except ValueError:
            value = -1
        if value >= 1:
            return value
    return COMPILE_CACHE_MAX_ENTRIES


def clear_compile_cache(disk: bool = False) -> None:
    """Drop every cached :class:`CompileResult` and zero the counters.

    ``disk=True`` also deletes the persistent on-disk layer's entries
    (:mod:`repro.exec.diskcache`) — what a benchmark's *cold-cache*
    mode needs, since a fresh process with a warm disk cache never
    actually compiles.
    """
    _COMPILE_CACHE.clear()
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0
    _diskcache.reset_stats()
    if disk:
        _diskcache.clear()


def compile_cache_info() -> dict:
    """Observability hook: sizes, keys, and hit/miss/eviction counters
    for both cache layers (the in-memory LRU and, under ``"disk"``,
    the persistent store)."""
    return {
        "entries": len(_COMPILE_CACHE),
        "keys": list(_COMPILE_CACHE),
        "max_entries": compile_cache_max_entries(),
        **_CACHE_STATS,
        "disk": _diskcache.info(),
    }


def _cache_get(key: tuple) -> Optional[CompileResult]:
    with _trace.span("cache.lookup", layer="memory") as span:
        result = _COMPILE_CACHE.get(key)
        if result is not None:
            _COMPILE_CACHE.move_to_end(key)
            _CACHE_STATS["hits"] += 1
            outcome = "hit"
        else:
            _CACHE_STATS["misses"] += 1
            outcome = "miss"
        span.set(outcome=outcome)
    _CACHE_LOOKUPS.inc(layer="memory", outcome=outcome)
    return result


def _cache_put(key: tuple, result: CompileResult) -> None:
    _COMPILE_CACHE[key] = result
    _COMPILE_CACHE.move_to_end(key)
    bound = compile_cache_max_entries()
    while len(_COMPILE_CACHE) > bound:
        _COMPILE_CACHE.popitem(last=False)
        _CACHE_STATS["evictions"] += 1
        _CACHE_EVICTIONS.inc(layer="memory")


def _capture_fingerprint(capture) -> tuple:
    from repro.frontend.decorators import (
        Bits,
        ClassicalFunction,
        QpuKernel,
    )

    if isinstance(capture, Bits):
        return ("bits", str(capture))
    if isinstance(capture, ClassicalFunction):
        return (
            "classical",
            capture.name,
            _source_fingerprint(capture.python_fn),
            tuple(sorted(capture.capture_values.items())),
        )
    if isinstance(capture, QpuKernel):
        return ("qpu", _kernel_fingerprint(capture))
    if isinstance(capture, (Parameter, ParamExpr)):
        # Keyed by *name*, never by value: one compile of a
        # parameterized kernel serves every subsequent bind().
        return ("parameter", str(capture))
    return ("opaque", repr(capture))


def _source_fingerprint(fn) -> tuple:
    code = getattr(fn, "__code__", None)
    location = (
        (code.co_filename, code.co_firstlineno) if code is not None else ()
    )
    try:
        return location + (inspect.getsource(fn),)
    except (OSError, TypeError):
        return location


def _kernel_fingerprint(kernel) -> tuple:
    """Identify a kernel by name, source, and capture values — two
    same-named kernels with different secrets must never share a cache
    entry."""
    return (
        kernel.name,
        _source_fingerprint(kernel.python_fn),
        tuple(
            (name, _capture_fingerprint(capture))
            for name, capture in kernel.captures.items()
        ),
    )


def compile_kernel(
    kernel,
    options: Optional[CompileOptions] = None,
    *,
    pipeline: Optional[str] = None,
    cache: bool = False,
    **flags,
) -> CompileResult:
    """Compile a ``@qpu`` kernel through the full pipeline.

    The configuration comes from exactly one of: ``options`` (a
    :class:`CompileOptions`), ``pipeline`` (a preset name such as
    ``"no-opt"``), or the legacy boolean flags (``inline``,
    ``peephole``, ``relaxed_peephole``, ``selinger``, ``to_circuit``,
    ``verify``).  ``inline=False`` reproduces the paper's "Asdf (No
    Opt)" Table 1 configuration; the result then has no flat circuit
    (function values survive as QIR callables).

    ``cache=True`` consults the per-process compile cache; the returned
    result is shared, so treat it as read-only.
    """
    with _trace.span(
        "compile.kernel",
        kernel=getattr(kernel, "name", "<kernel>"),
        cache=cache,
    ) as span:
        result = _compile_kernel_impl(
            kernel, options, pipeline=pipeline, cache=cache, **flags
        )
        span.set(provenance=result.provenance)
    _COMPILES.inc(provenance=result.provenance)
    return result


def _compile_kernel_impl(
    kernel,
    options: Optional[CompileOptions] = None,
    pipeline: Optional[str] = None,
    cache: bool = False,
    **flags,
) -> CompileResult:
    if sum(x is not None for x in (options, pipeline)) + bool(flags) > 1:
        raise TypeError(
            "pass exactly one of options=, pipeline=, or boolean flags"
        )
    # Chaos hook: an active `compile_error` fault plan fails the
    # compile up front with a coded diagnostic (before any cache
    # consultation, so a warm cache cannot hide the injection).
    _faults.maybe_inject_compile_error(kernel.name)
    if options is None:
        options = (
            CompileOptions.preset(pipeline)
            if pipeline is not None
            else CompileOptions.from_flags(**flags)
        )

    cache_key = None
    disk_digest = None
    if cache:
        # The full (frozen) options participate in the key, so cached
        # results never cross configuration boundaries — a compile
        # requesting statistics or stricter verification is a miss,
        # not a stale hit with statistics=None.  The simulation
        # backend, kernel, noise model, and worker count are excluded:
        # they only affect execution, so the same compiled artifact
        # serves every backend, noise, and sharding configuration.
        cache_key = (
            _kernel_fingerprint(kernel),
            tuple(sorted(kernel.infer_dims().items())),
            dataclasses.replace(
                options,
                sim_backend=None,
                sim_kernel=None,
                noise_model=None,
                parallel_workers=None,
            ),
        )
        cached = _cache_get(cache_key)
        if cached is not None:
            cached.provenance = "memory"
            return cached
        # Second layer: the persistent on-disk store.  A hit skips
        # compilation entirely and warms the in-memory LRU; a corrupt
        # or stale-salt entry reads as a miss and is recompiled.
        disk_digest = _diskcache.key_digest(cache_key)
        from_disk = _diskcache.load(disk_digest)
        if isinstance(from_disk, CompileResult):
            from_disk.provenance = "disk"
            _cache_put(cache_key, from_disk)
            return from_disk

    statistics = PassStatistics() if options.collect_statistics else None

    def staged(name: str):
        if statistics is not None:
            return statistics.measure(name)
        import contextlib

        return contextlib.nullcontext()

    with staged("(frontend)"):
        module, dims = _build_qwerty_module(kernel)
    if options.verify:
        verify_module(module)
    make_qwerty_pass_manager(
        options.qwerty_spec,
        verify_each=options.verify_each,
        statistics=statistics,
    ).run(module)
    if options.verify:
        verify_module(module)

    with staged("(lower)"):
        qcircuit_module = lower_module(module)
    result = CompileResult(
        kernel.name,
        module,
        qcircuit_module,
        dims=dims,
        options=options,
        statistics=statistics,
    )
    if not options.to_circuit:
        if cache_key is not None:
            _cache_put(cache_key, result)
            _diskcache.store(disk_digest, result)
        return result

    with staged("(flatten)"):
        circuit = flatten_to_circuit(qcircuit_module)
    result.circuit = circuit

    optimized = copy_circuit(circuit)
    make_circuit_pass_manager(
        options.optimize_spec, statistics=statistics
    ).run(optimized)
    result.optimized_circuit = optimized

    decomposed = copy_circuit(optimized)
    make_circuit_pass_manager(
        options.decompose_spec, statistics=statistics
    ).run(decomposed)
    result.decomposed_circuit = decomposed

    # The execution form: gate fusion runs on a copy so the exporters,
    # gate counts, and resource estimates keep seeing plain gates.
    execution = optimized
    if options.fusion_spec:
        execution = copy_circuit(optimized)
        make_circuit_pass_manager(
            options.fusion_spec, statistics=statistics
        ).run(execution)
    result.execution_circuit = execution

    if cache_key is not None:
        _cache_put(cache_key, result)
        _diskcache.store(disk_digest, result)
    return result


def simulate_kernel_with_info(
    kernel,
    shots: int = 1,
    seed: int = 0,
    cache: bool = True,
    backend: Optional[str] = None,
    options: Optional[CompileOptions] = None,
    noise_model=None,
    params=None,
    parallel_workers: Optional[int] = None,
):
    """:func:`simulate_kernel`, also returning the run's telemetry.

    Returns ``(results, info)`` where ``info`` is the
    :class:`~repro.sim.backend.RunInfo` — including ``workers`` /
    ``chunks`` for sharded runs and ``compile_cache`` provenance
    (``"compiled"`` / ``"memory"`` / ``"disk"``) for the compile this
    run executed.
    """
    from repro.frontend.decorators import Bits
    from repro.sim import get_backend, use_kernel
    from repro.sim.backend import run_circuit_with_info

    sim_kernel = None
    if options is None:
        result = compile_kernel(kernel, cache=cache)
        chosen = backend
    else:
        result = compile_kernel(kernel, options, cache=cache)
        chosen = backend if backend is not None else options.sim_backend
        sim_kernel = options.sim_kernel
        if noise_model is None:
            noise_model = options.noise_model
        if parallel_workers is None:
            parallel_workers = options.parallel_workers
    provenance = result.provenance
    if params:
        # bind() never writes to the compile cache, so a sweep reuses
        # one cached symbolic compile for every point.
        result = result.bind(params)
    if noise_model is None:
        circuit = result.execution_circuit or result.optimized_circuit
    else:
        # Noise channels attach by gate name, so noisy runs execute the
        # unfused circuit (fused blocks would silently drop channels).
        circuit = result.optimized_circuit
    with use_kernel(sim_kernel):
        if parallel_workers is not None:
            outcomes, info = run_circuit_with_info(
                circuit,
                shots=shots,
                seed=seed,
                backend=chosen,
                noise_model=noise_model,
                parallel_workers=parallel_workers,
            )
        else:
            resolved = get_backend(chosen)
            if noise_model is None:
                outcomes, info = resolved.run_with_info(
                    circuit, shots=shots, seed=seed
                )
            else:
                outcomes, info = resolved.run_with_info(
                    circuit,
                    shots=shots,
                    seed=seed,
                    noise_model=noise_model,
                )
    info = dataclasses.replace(info, compile_cache=provenance)
    return [Bits(outcome) for outcome in outcomes], info


def simulate_kernel(
    kernel,
    shots: int = 1,
    seed: int = 0,
    cache: bool = True,
    backend: Optional[str] = None,
    options: Optional[CompileOptions] = None,
    noise_model=None,
    params=None,
    parallel_workers: Optional[int] = None,
):
    """Compile and simulate a kernel, returning measured Bits per shot.

    Compilation goes through the two-layer compile cache — the
    per-process LRU (bounded by :func:`compile_cache_max_entries`)
    over the persistent on-disk store (:mod:`repro.exec.diskcache`) —
    so repeated calls, and even *fresh processes*, skip the compiler;
    pass ``cache=False`` to force a fresh compile.

    ``backend`` selects the simulation backend (docs/simulators.md);
    it falls back to ``options.sim_backend`` and then to the registry
    default (the vectorized ``"statevector"`` backend, which makes
    large ``shots`` near-free on terminal-measurement circuits)::

        simulate_kernel(kernel, shots=1024, backend="statevector")

    ``noise_model`` (a :class:`repro.noise.NoiseModel`) executes the
    compiled circuit under noise (docs/noise.md); it falls back to
    ``options.noise_model``.  Noise never affects compilation, so noisy
    and ideal runs share one cached compile::

        simulate_kernel(kernel, shots=1024,
                        noise_model=standard_noise_model(0.01))

    ``params`` maps parameter names (or Parameter objects) to concrete
    angles for kernels with symbolic angle captures; the *symbolic*
    compile is what the cache stores, and binding happens on the cached
    artifact per call (docs/variational.md)::

        simulate_kernel(kernel, shots=1024, params={"theta": 45.0})

    ``parallel_workers`` shards the run's shot chunks across a process
    pool with per-chunk derived seeds (:mod:`repro.exec`; ``0`` means
    one worker per core — deterministic per ``(seed, workers)``, best
    for trajectory workloads)::

        simulate_kernel(kernel, shots=100_000, parallel_workers=4)
    """
    results, _ = simulate_kernel_with_info(
        kernel,
        shots=shots,
        seed=seed,
        cache=cache,
        backend=backend,
        options=options,
        noise_model=noise_model,
        params=params,
        parallel_workers=parallel_workers,
    )
    return results
