"""Taking the adjoint of basic blocks (paper §5.2).

The compiler traverses the def-use DAG of a single basic block
backwards from the terminator, building an adjoint form of each op
top-down.  Classical operations (``arith`` ops, function-value ops) are
*stationary*: they remain in place even though the quantum portion of
the DAG is inverted around them (paper Fig. 4).

Instead of hardcoding per-op logic in the traversal, adjointable ops
register a ``build_adjoint`` callback in :data:`ADJOINT_BUILDERS` — the
Pythonic equivalent of the paper's ``Adjointable`` op interface.
"""

from __future__ import annotations

from typing import Callable

from repro.basis.primitive import PrimitiveBasis
from repro.dialects import arith, qwerty
from repro.errors import ReversibilityError
from repro.ir.core import Operation, Value
from repro.ir.module import Builder, FuncOp
from repro.ir.types import FunctionType


class _AdjointMap:
    """Maps original values to their values in the adjoint block.

    Quantum values map "backwards": the adjoint value of an op's
    *result* feeds the adjoint op, which produces the adjoint values of
    the op's *operands*.  Classical (stationary) values map forward via
    their copied ops.
    """

    def __init__(self) -> None:
        self._map: dict[int, Value] = {}
        self._values: dict[int, Value] = {}

    def set(self, original: Value, adjoint: Value) -> None:
        self._map[id(original)] = adjoint

    def get(self, original: Value) -> Value:
        try:
            return self._map[id(original)]
        except KeyError:
            raise ReversibilityError(
                "adjoint traversal reached a value with no adjoint mapping "
                "(is the block truly reversible?)"
            )


#: ``build_adjoint(op, builder, amap)`` registered per op name.
ADJOINT_BUILDERS: dict[str, Callable[[Operation, Builder, _AdjointMap], None]] = {}


def adjointable(name: str):
    def wrap(fn):
        ADJOINT_BUILDERS[name] = fn
        return fn

    return wrap


def is_stationary(op: Operation) -> bool:
    """Classical ops stay in place when the quantum DAG is inverted."""
    if op.name in arith.STATIONARY_OPS:
        return True
    return op.name in (qwerty.FUNC_CONST, qwerty.FUNC_ADJ, qwerty.FUNC_PRED)


@adjointable(qwerty.QBTRANS)
def _adj_qbtrans(op: Operation, builder: Builder, amap: _AdjointMap) -> None:
    # ~(b1 >> b2) is b2 >> b1, phases riding along with their side.
    flipped_slots = tuple(
        ("out" if side == "in" else "in", index)
        for side, index in op.attrs["phase_slots"]
    )
    phase_operands = [amap.get(v) for v in op.operands[1:]]
    result = qwerty.qbtrans(
        builder,
        amap.get(op.result),
        op.attrs["bout"],
        op.attrs["bin"],
        phase_operands,
        flipped_slots,
    )
    amap.set(op.operands[0], result)


@adjointable(qwerty.QBPACK)
def _adj_qbpack(op: Operation, builder: Builder, amap: _AdjointMap) -> None:
    qubits = qwerty.qbunpack(builder, amap.get(op.result))
    for original, adjoint in zip(op.operands, qubits):
        amap.set(original, adjoint)


@adjointable(qwerty.QBUNPACK)
def _adj_qbunpack(op: Operation, builder: Builder, amap: _AdjointMap) -> None:
    bundle = qwerty.qbpack(builder, [amap.get(r) for r in op.results])
    amap.set(op.operands[0], bundle)


@adjointable(qwerty.QBPREP)
def _adj_qbprep(op: Operation, builder: Builder, amap: _AdjointMap) -> None:
    qwerty.qbunprep(
        builder, amap.get(op.result), op.attrs["prim"], op.attrs["eigenbits"]
    )


@adjointable(qwerty.QBUNPREP)
def _adj_qbunprep(op: Operation, builder: Builder, amap: _AdjointMap) -> None:
    bundle = qwerty.qbprep(builder, op.attrs["prim"], op.attrs["eigenbits"])
    amap.set(op.operands[0], bundle)


@adjointable(qwerty.QBDISCARDZ)
def _adj_qbdiscardz(op: Operation, builder: Builder, amap: _AdjointMap) -> None:
    # Reversed, "assume |0> and free" becomes "allocate |0>".
    bundle = qwerty.qbprep(
        builder, PrimitiveBasis.STD, (0,) * op.operands[0].type.n
    )
    amap.set(op.operands[0], bundle)


@adjointable(qwerty.EMBED)
def _adj_embed(op: Operation, builder: Builder, amap: _AdjointMap) -> None:
    # XOR and sign embeddings are self-adjoint.
    result = builder.create(
        qwerty.EMBED,
        [amap.get(op.result)],
        [op.result.type],
        dict(op.attrs),
    ).result
    amap.set(op.operands[0], result)


@adjointable(qwerty.CALL)
def _adj_call(op: Operation, builder: Builder, amap: _AdjointMap) -> None:
    adjoint_args = [amap.get(r) for r in op.results]
    new = qwerty.call(
        builder,
        op.attrs["callee"],
        adjoint_args,
        [operand.type for operand in op.operands],
        adj=not op.attrs.get("adj", False),
        pred=op.attrs.get("pred"),
    )
    for original, adjoint in zip(op.operands, new.results):
        amap.set(original, adjoint)


@adjointable(qwerty.CALL_INDIRECT)
def _adj_call_indirect(op: Operation, builder: Builder, amap: _AdjointMap) -> None:
    callee = amap.get(op.operands[0])
    adjoint_callee = qwerty.func_adj(builder, callee)
    adjoint_args = [amap.get(r) for r in op.results]
    new = qwerty.call_indirect(builder, adjoint_callee, adjoint_args)
    for original, adjoint in zip(op.operands[1:], new.results):
        amap.set(original, adjoint)


def adjoint_block_into(
    source_ops: list[Operation],
    source_inputs: list[Value],
    source_outputs: list[Value],
    builder: Builder,
    adjoint_inputs: list[Value],
) -> list[Value]:
    """Build the adjoint of a straight-line op list into ``builder``.

    ``source_inputs``/``source_outputs`` are the quantum interface of
    the original op list; ``adjoint_inputs`` are the values (of the
    output types) available in the new block.  Returns the adjoint
    values corresponding to ``source_inputs``.
    """
    return _adjoint_ops_into(
        source_ops,
        source_inputs,
        source_outputs,
        builder,
        adjoint_inputs,
        _AdjointMap(),
    )


def _adjoint_ops_into(
    source_ops: list[Operation],
    source_inputs: list[Value],
    source_outputs: list[Value],
    builder: Builder,
    adjoint_inputs: list[Value],
    amap: _AdjointMap,
    classical_seed: dict[Value, Value] | None = None,
) -> list[Value]:
    for original, adjoint in zip(source_outputs, adjoint_inputs):
        amap.set(original, adjoint)

    # Pass 1: copy stationary (classical) ops in original order.
    copy_map: dict[Value, Value] = dict(classical_seed or {})
    for op in source_ops:
        if is_stationary(op):
            clone = op.clone(copy_map)
            builder.insert(clone)
            for old, new in zip(op.results, clone.results):
                amap.set(old, new)

    # Pass 2: adjoint the quantum DAG in reverse program order.
    for op in reversed(source_ops):
        if is_stationary(op) or op.name == qwerty.RETURN:
            continue
        build = ADJOINT_BUILDERS.get(op.name)
        if build is None:
            raise ReversibilityError(
                f"op {op.name} is not adjointable; reversible functions "
                f"cannot contain it",
                span=op.loc,
            )
        # Adjoint ops inherit the location of the op they invert.
        builder.loc = op.loc
        build(op, builder, amap)

    return [amap.get(value) for value in source_inputs]


def adjoint_function(func: FuncOp, new_name: str) -> FuncOp:
    """Create a new function computing the adjoint of ``func``.

    ``func`` must be reversible and single-block.  Classical arguments
    (e.g. captured function values) are stationary: they remain inputs
    of the adjoint; only the quantum interface reverses.
    """
    if not func.type.reversible:
        raise ReversibilityError(f"@{func.name} is not reversible")
    classical_ins = [t for t in func.type.inputs if not t.is_quantum]
    quantum_ins = [t for t in func.type.inputs if t.is_quantum]
    if any(not t.is_quantum for t in func.type.outputs):
        raise ReversibilityError(
            f"@{func.name} returns classical values; cannot adjoint"
        )
    adjoint_type = FunctionType(
        tuple(classical_ins) + func.type.outputs,
        tuple(quantum_ins),
        reversible=True,
    )
    adjoint = FuncOp(new_name, adjoint_type, func.visibility)
    builder = Builder(adjoint.entry)
    terminator = func.entry.terminator

    amap = _AdjointMap()
    new_args = list(adjoint.entry.args)
    classical_new = new_args[: len(classical_ins)]
    quantum_new = new_args[len(classical_ins):]
    quantum_orig_args = []
    classical_seed: dict[Value, Value] = {}
    for arg in func.entry.args:
        if arg.type.is_quantum:
            quantum_orig_args.append(arg)
        else:
            new_arg = classical_new.pop(0)
            amap.set(arg, new_arg)
            classical_seed[arg] = new_arg

    results = _adjoint_ops_into(
        list(func.entry.ops),
        quantum_orig_args,
        list(terminator.operands),
        builder,
        quantum_new,
        amap,
        classical_seed,
    )
    qwerty.return_op(builder, results)
    return adjoint
