"""The Qwerty IR optimization pipeline (paper §5.4).

The sequence is: (1) lift all lambdas to funcs referenced by
``func_const``; (2) canonicalize, converting
``call_indirect(func_const @f)(...)`` into ``call @f(...)`` (including
through ``func_adj``/``func_pred`` chains and ``scf.if``); and (3)
inline repeatedly, re-running the canonicalizer to expose new
opportunities.  Function specializations are generated before inlining
so that ``call adj/pred`` ops become plain calls with real bodies.
"""

from __future__ import annotations

from repro.ir.inline import inline_calls
from repro.ir.module import ModuleOp
from repro.qwerty_ir.canonicalize import canonicalize
from repro.qwerty_ir.lift_lambdas import lift_lambdas
from repro.qwerty_ir.specialize import generate_specializations


def drop_unused_private_funcs(module: ModuleOp) -> bool:
    """Remove private functions that are no longer referenced."""
    from repro.dialects import qwerty
    from repro.ir.core import walk

    changed = False
    progress = True
    while progress:
        progress = False
        referenced: set[str] = set()
        if module.entry_point is not None:
            referenced.add(module.entry_point)
        for func in module:
            for op in walk(func.entry):
                callee = op.attrs.get("callee")
                if callee is not None:
                    referenced.add(callee)
        for func in list(module):
            if func.visibility == "public":
                continue
            if func.name not in referenced:
                module.remove(func.name)
                progress = True
                changed = True
    return changed


def run_qwerty_opt(module: ModuleOp, inline: bool = True) -> None:
    """Run the full Qwerty IR optimization pipeline on ``module``.

    ``inline=False`` reproduces the paper's "Asdf (No Opt)"
    configuration from Table 1: lambdas are still lifted (the IR must
    be executable) but no inlining happens, so function values survive
    to QIR as callables.
    """
    lift_lambdas(module)
    if not inline:
        # "Asdf (No Opt)": leave call_indirect/func_adj/func_pred in
        # place; they lower to QIR callable intrinsics (paper §8.2).
        return

    def canonicalize_and_specialize(m: ModuleOp) -> bool:
        changed = canonicalize(m)
        changed |= generate_specializations(m)
        return changed

    canonicalize_and_specialize(module)
    inline_calls(module, canonicalize=canonicalize_and_specialize)
    canonicalize(module)
    drop_unused_private_funcs(module)
