"""The Qwerty IR optimization pipeline (paper §5.4), as registered passes.

The sequence is: (1) lift all lambdas to funcs referenced by
``func_const``; (2) canonicalize, converting
``call_indirect(func_const @f)(...)`` into ``call @f(...)`` (including
through ``func_adj``/``func_pred`` chains and ``scf.if``); and (3)
inline repeatedly, re-running the canonicalizer to expose new
opportunities.  Function specializations are generated before inlining
so that ``call adj/pred`` ops become plain calls with real bodies.

Each stage is registered with the unified pass infrastructure
(:mod:`repro.ir.passmanager`), so pipelines are textual specs —
:data:`QWERTY_OPT_SPEC` is the paper's full §5.4 sequence and
:data:`QWERTY_NOOPT_SPEC` the "Asdf (No Opt)" Table 1 configuration —
and every run can be instrumented per pass.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.inline import inline_calls
from repro.ir.module import ModuleOp
from repro.ir.passmanager import (
    FunctionPass,
    PassManager,
    PassStatistics,
    count_module_ops,
    expect_no_options,
    register_pass,
)
from repro.qwerty_ir.canonicalize import canonicalize
from repro.qwerty_ir.lift_lambdas import lift_lambdas
from repro.qwerty_ir.specialize import generate_specializations

#: The full §5.4 optimization sequence.
QWERTY_OPT_SPEC = "lift-lambdas,canonicalize,specialize,inline,canonicalize,dce"

#: "Asdf (No Opt)" (Table 1): lambdas are still lifted (the IR must be
#: executable) but nothing is inlined, so function values survive to
#: QIR as callables (paper §8.2).
QWERTY_NOOPT_SPEC = "lift-lambdas"


def drop_unused_private_funcs(module: ModuleOp) -> bool:
    """Remove private functions that are no longer referenced."""
    from repro.ir.core import walk

    changed = False
    progress = True
    while progress:
        progress = False
        referenced: set[str] = set()
        if module.entry_point is not None:
            referenced.add(module.entry_point)
        for func in module:
            for op in walk(func.entry):
                callee = op.attrs.get("callee")
                if callee is not None:
                    referenced.add(callee)
        for func in list(module):
            if func.visibility == "public":
                continue
            if func.name not in referenced:
                module.remove(func.name)
                progress = True
                changed = True
    return changed


def _canonicalize_and_specialize(module: ModuleOp) -> bool:
    changed = canonicalize(module)
    changed |= generate_specializations(module)
    return changed


def _inline(module: ModuleOp) -> bool:
    # The inliner interleaves canonicalization + specialization between
    # sweeps, exactly the MLIR-style interleaving the paper describes
    # (§5.4): each sweep can expose new call_indirect(func_const)
    # patterns that become further direct calls.
    return inline_calls(module, canonicalize=_canonicalize_and_specialize)


def _simple(name: str, fn):
    def factory(options: dict) -> FunctionPass:
        expect_no_options(name, options)
        return FunctionPass(name, fn, ir="qwerty")

    register_pass(name, factory)


_simple("lift-lambdas", lift_lambdas)
_simple("canonicalize", canonicalize)
_simple("specialize", generate_specializations)
_simple("inline", _inline)
_simple("dce", drop_unused_private_funcs)


def make_qwerty_pass_manager(
    spec: str = QWERTY_OPT_SPEC,
    *,
    verify_each: bool = False,
    statistics: Optional[PassStatistics] = None,
) -> PassManager:
    """A PassManager over Qwerty IR modules for a textual ``spec``."""
    from repro.ir.verifier import verify_module

    return PassManager.from_spec(
        spec,
        verifier=verify_module if verify_each else None,
        # Counting ops costs two module walks per pass; only pay for it
        # when the caller actually wants the statistics.
        count_ops=count_module_ops if statistics is not None else None,
        statistics=statistics,
    )


def run_qwerty_opt(
    module: ModuleOp,
    inline: bool = True,
    statistics: Optional[PassStatistics] = None,
) -> None:
    """Run the full Qwerty IR optimization pipeline on ``module``.

    ``inline=False`` reproduces the paper's "Asdf (No Opt)"
    configuration from Table 1.  A thin wrapper over
    :func:`make_qwerty_pass_manager` kept for its call sites and tests.
    """
    spec = QWERTY_OPT_SPEC if inline else QWERTY_NOOPT_SPEC
    make_qwerty_pass_manager(spec, statistics=statistics).run(module)
