"""Canonicalization patterns for Qwerty IR (paper §5.4 and Appendix C).

The centerpiece converts ``call_indirect`` of a chain of
``func_const``/``func_adj``/``func_pred`` ops into a direct ``call``
with ``adj``/``pred`` markers, e.g.::

    call_indirect(func_pred {'10'} (func_adj (func_const @f)))()
        -->  call adj pred ({'10'}) @f()

A specialized pattern pushes ``call_indirect`` (and ``func_adj`` /
``func_pred``) whose callee is defined by an ``scf.if`` into both forks
of the ``scf.if`` (Appendix C), unblocking the pattern above.
"""

from __future__ import annotations

from repro.basis import Basis
from repro.dialects import arith, qwerty, scf
from repro.ir.core import Operation, Value
from repro.ir.module import Builder, ModuleOp
from repro.ir.rewrite import RewritePattern, apply_patterns_greedily


def _resolve_callee_chain(
    value: Value,
) -> tuple[str, bool, Basis | None, list[Operation]] | None:
    """Peel func_adj/func_pred wrappers down to a func_const.

    Returns (callee symbol, adjoint parity, combined predicate basis,
    wrapper ops outermost-first) or None if the chain bottoms out in
    something else (e.g. a block argument or scf.if).
    """
    adj = False
    pred: Basis | None = None
    chain: list[Operation] = []
    current = value
    while True:
        op = current.owner_op
        if op is None:
            return None
        if op.name == qwerty.FUNC_CONST:
            return op.attrs["callee"], adj, pred, chain
        if op.name == qwerty.FUNC_ADJ:
            adj = not adj
            chain.append(op)
            current = op.operands[0]
            continue
        if op.name == qwerty.FUNC_PRED:
            basis = op.attrs["basis"]
            pred = basis if pred is None else pred.tensor(basis)
            chain.append(op)
            current = op.operands[0]
            continue
        return None


def _erase_dead_chain(chain: list[Operation], root: Value) -> None:
    """Erase wrapper ops (and the func_const) if now unused."""
    for op in chain:
        if all(not r.uses for r in op.results):
            op.erase()
    const = root.owner_op
    if const is not None and const.name == qwerty.FUNC_CONST and const.result.unused:
        const.erase()


def _fold_call_indirect(op: Operation, module: ModuleOp) -> bool:
    callee_value = op.operands[0]
    resolved = _resolve_callee_chain(callee_value)
    if resolved is None:
        return False
    symbol, adj, pred, _chain = resolved
    builder = Builder.before(op)
    new = qwerty.call(
        builder,
        symbol,
        list(op.operands[1:]),
        [r.type for r in op.results],
        adj=adj,
        pred=pred,
    )
    op.replace_all_results_with(list(new.results))
    op.erase()
    # Wrapper/const ops are erased by DCE-like cleanup below.
    return True


def _fold_double_adj(op: Operation, module: ModuleOp) -> bool:
    """func_adj(func_adj(f)) -> f (AST canonicalization re-checked in IR)."""
    inner = op.operands[0].owner_op
    if inner is None or inner.name != qwerty.FUNC_ADJ:
        return False
    op.result.replace_all_uses_with(inner.operands[0])
    op.erase()
    return True


def _fold_pack_unpack(op: Operation, module: ModuleOp) -> bool:
    """qbpack(qbunpack(x)) -> x, when complete and in order."""
    sources = {operand.owner_op for operand in op.operands}
    if len(sources) != 1:
        return False
    (source,) = sources
    if source is None or source.name != qwerty.QBUNPACK:
        return False
    if tuple(op.operands) != tuple(source.results):
        return False
    op.result.replace_all_uses_with(source.operands[0])
    op.erase()
    source.erase()
    return True


def _fold_unpack_pack(op: Operation, module: ModuleOp) -> bool:
    """qbunpack(qbpack(x...)) -> x..."""
    source = op.operands[0].owner_op
    if source is None or source.name != qwerty.QBPACK:
        return False
    if not source.result.has_one_use:
        return False  # Also consumed in an exclusive scf.if fork.
    op.replace_all_results_with(list(source.operands))
    op.erase()
    source.erase()
    return True


def _fold_identity_qbtrans(op: Operation, module: ModuleOp) -> bool:
    """b >> b with no phases is the identity."""
    b_in = op.attrs["bin"]
    b_out = op.attrs["bout"]
    if op.attrs["phase_slots"]:
        return False
    if b_in != b_out or b_in.has_phases:
        return False
    op.result.replace_all_uses_with(op.operands[0])
    op.erase()
    return True


def _push_into_scf_if(op: Operation, module: ModuleOp) -> bool:
    """Appendix C: push a consumer of an scf.if function value into both
    forks of the scf.if.

    Applies when the callee operand of ``call_indirect`` (or the operand
    of ``func_adj``/``func_pred``) is defined by an ``scf.if`` whose
    sole use is this op.
    """
    if op.name == qwerty.CALL_INDIRECT:
        producer_operand = op.operands[0]
    else:
        producer_operand = op.operands[0]
    if_op = producer_operand.owner_op
    if if_op is None or if_op.name != scf.IF:
        return False
    if not producer_operand.has_one_use:
        return False
    result_index = producer_operand.index

    # The consumed value and any other operands (e.g. call args) must be
    # movable into the regions; SSA visibility permits outer values, so
    # only the op itself moves.
    new_result_types = [r.type for r in op.results]
    for region in if_op.regions:
        block = region.entry
        yield_op = block.terminator
        inner_value = yield_op.operands[result_index]
        inner_builder = Builder.before(yield_op)
        # The pushed op keeps its own location, not the yield's.
        inner_builder.loc = op.loc
        if op.name == qwerty.CALL_INDIRECT:
            inner = qwerty.call_indirect(
                inner_builder, inner_value, list(op.operands[1:])
            )
        elif op.name == qwerty.FUNC_ADJ:
            inner = qwerty.func_adj(inner_builder, inner_value).owner_op
        else:
            inner = qwerty.func_pred(
                inner_builder, inner_value, op.attrs["basis"]
            ).owner_op
        new_yield_operands = [
            operand
            for i, operand in enumerate(yield_op.operands)
            if i != result_index
        ] + list(inner.results)
        yield_op.set_operands(new_yield_operands)

    # Rebuild the scf.if with updated result types.
    kept_types = [
        r.type for i, r in enumerate(if_op.results) if i != result_index
    ]
    builder = Builder.before(if_op)
    new_if = builder.create(
        scf.IF,
        [if_op.operands[0]],
        kept_types + new_result_types,
        regions=if_op.regions,
    )
    if_op.regions = []
    # Remap kept results, then the pushed op's results.
    kept = 0
    for i, result in enumerate(if_op.results):
        if i == result_index:
            continue
        result.replace_all_uses_with(new_if.results[kept])
        kept += 1
    op.replace_all_results_with(list(new_if.results[kept:]))
    op.erase()
    if_op.drop_all_operands()
    if_op.parent_block.ops.remove(if_op)
    if_op.parent_block = None
    return True


QWERTY_CANONICALIZATION_PATTERNS = [
    RewritePattern(
        "qwerty.fold-call-indirect", (qwerty.CALL_INDIRECT,), _fold_call_indirect
    ),
    RewritePattern("qwerty.double-adj", (qwerty.FUNC_ADJ,), _fold_double_adj),
    RewritePattern("qwerty.pack-unpack", (qwerty.QBPACK,), _fold_pack_unpack),
    RewritePattern("qwerty.unpack-pack", (qwerty.QBUNPACK,), _fold_unpack_pack),
    RewritePattern(
        "qwerty.identity-qbtrans", (qwerty.QBTRANS,), _fold_identity_qbtrans
    ),
    RewritePattern(
        "qwerty.push-into-scf-if",
        (qwerty.CALL_INDIRECT, qwerty.FUNC_ADJ, qwerty.FUNC_PRED),
        _push_into_scf_if,
    ),
] + arith.CANONICALIZATION_PATTERNS


def canonicalize(module: ModuleOp) -> bool:
    """Run the Qwerty canonicalizer to a fixpoint."""
    return apply_patterns_greedily(module, QWERTY_CANONICALIZATION_PATTERNS)
