"""Predicating basic blocks (paper §5.3).

Predication rebuilds block operations in place with new predicates
present — e.g. adding the predicate basis to both sides of each basis
translation (paper Fig. 5).  Ops register a ``build_predicated``
callback in :data:`PREDICATE_BUILDERS`, the Pythonic equivalent of the
paper's ``Predicatable`` op interface.

Per-op predication is not enough: dataflow semantics allow effective
qubit swaps by *renaming*, which happen regardless of predicates.  The
pass therefore runs an intraprocedural dataflow analysis mapping each
qubit/qbundle value to the qubit indices it represents, decomposes the
permutation the block effects into transpositions, and emits an
uncontrolled SWAP (to undo the renaming everywhere) immediately
followed by a predicated SWAP (to redo it inside the predicated space).
SWAPs are emitted as ``qbtrans {'01','10'} >> {'10','01'}`` ops so the
usual basis-translation synthesis handles them.
"""

from __future__ import annotations

from typing import Callable

from repro.basis import Basis, BasisLiteral
from repro.dialects import qwerty
from repro.errors import ReversibilityError
from repro.ir.core import Operation, Value
from repro.ir.module import Builder, FuncOp
from repro.ir.types import FunctionType, QBundleType
from repro.qwerty_ir.adjoint import is_stationary


class _PredState:
    """State threaded through predication of one block."""

    def __init__(self, pred_basis: Basis, controls: list[Value]) -> None:
        self.pred_basis = pred_basis
        self.controls = controls  # Current SSA values of the M control qubits.
        self.value_map: dict[int, Value] = {}
        #: Qubit-index analysis: id(value) -> tuple of indices (paper §5.3).
        self.indices: dict[int, tuple[int, ...]] = {}
        self.next_index = 0

    def map(self, original: Value, new: Value) -> None:
        self.value_map[id(original)] = new

    def get(self, original: Value) -> Value:
        return self.value_map[id(original)]

    def fresh_indices(self, count: int) -> tuple[int, ...]:
        indices = tuple(range(self.next_index, self.next_index + count))
        self.next_index += count
        return indices


#: ``build_predicated(op, builder, state)`` registered per op name.
PREDICATE_BUILDERS: dict[str, Callable[[Operation, Builder, "_PredState"], None]] = {}


def predicatable(name: str):
    def wrap(fn):
        PREDICATE_BUILDERS[name] = fn
        return fn

    return wrap


def _with_controls(
    builder: Builder, state: _PredState, payload: Value
) -> Value:
    """Pack current controls in front of a payload bundle."""
    payload_qubits = qwerty.qbunpack(builder, payload)
    return qwerty.qbpack(builder, state.controls + payload_qubits)


def _split_controls(
    builder: Builder, state: _PredState, combined: Value, payload_n: int
) -> Value:
    """Unpack a combined bundle, refresh controls, return payload bundle."""
    qubits = qwerty.qbunpack(builder, combined)
    m = len(state.controls)
    state.controls = qubits[:m]
    return qwerty.qbpack(builder, qubits[m:])


@predicatable(qwerty.QBTRANS)
def _pred_qbtrans(op: Operation, builder: Builder, state: _PredState) -> None:
    # b3 & (b1 >> b2) is b3 + b1 >> b3 + b2 (paper §4.2).
    operand = state.get(op.operands[0])
    combined_in = _with_controls(builder, state, operand)
    shift = sum(
        len(element.vectors)
        for element in state.pred_basis.elements
        if isinstance(element, BasisLiteral)
    )
    shifted_slots = tuple(
        (side, index + shift) for side, index in op.attrs["phase_slots"]
    )
    phase_operands = [state.get(v) for v in op.operands[1:]]
    result = qwerty.qbtrans(
        builder,
        combined_in,
        state.pred_basis.tensor(op.attrs["bin"]),
        state.pred_basis.tensor(op.attrs["bout"]),
        phase_operands,
        shifted_slots,
    )
    payload = _split_controls(builder, state, result, op.result.type.n)
    state.map(op.result, payload)
    state.indices[id(payload)] = state.indices[id(operand)]


@predicatable(qwerty.CALL)
def _pred_call(op: Operation, builder: Builder, state: _PredState) -> None:
    if len(op.operands) != 1 or len(op.results) != 1:
        raise ReversibilityError("predicated calls must be qbundle -> qbundle")
    operand = state.get(op.operands[0])
    combined_in = _with_controls(builder, state, operand)
    existing = op.attrs.get("pred")
    pred = state.pred_basis if existing is None else state.pred_basis.tensor(existing)
    new = qwerty.call(
        builder,
        op.attrs["callee"],
        [combined_in],
        [QBundleType(combined_in.type.n)],
        adj=op.attrs.get("adj", False),
        pred=pred,
    )
    payload = _split_controls(builder, state, new.results[0], op.results[0].type.n)
    state.map(op.results[0], payload)
    state.indices[id(payload)] = state.indices[id(operand)]


@predicatable(qwerty.CALL_INDIRECT)
def _pred_call_indirect(op: Operation, builder: Builder, state: _PredState) -> None:
    if len(op.operands) != 2 or len(op.results) != 1:
        raise ReversibilityError("predicated calls must be qbundle -> qbundle")
    callee = state.get(op.operands[0])
    pred_callee = qwerty.func_pred(builder, callee, state.pred_basis)
    operand = state.get(op.operands[1])
    combined_in = _with_controls(builder, state, operand)
    new = qwerty.call_indirect(builder, pred_callee, [combined_in])
    payload = _split_controls(builder, state, new.results[0], op.results[0].type.n)
    state.map(op.results[0], payload)
    state.indices[id(payload)] = state.indices[id(operand)]


@predicatable(qwerty.EMBED)
def _pred_embed(op: Operation, builder: Builder, state: _PredState) -> None:
    operand = state.get(op.operands[0])
    combined_in = _with_controls(builder, state, operand)
    attrs = dict(op.attrs)
    existing = attrs.get("pred")
    attrs["pred"] = (
        state.pred_basis if existing is None else state.pred_basis.tensor(existing)
    )
    from repro.ir.types import QBundleType

    combined = builder.create(
        qwerty.EMBED,
        [combined_in],
        [QBundleType(combined_in.type.n)],
        attrs,
    ).result
    payload = _split_controls(builder, state, combined, op.result.type.n)
    state.map(op.result, payload)
    state.indices[id(payload)] = state.indices[id(operand)]


@predicatable(qwerty.QBPACK)
def _pred_qbpack(op: Operation, builder: Builder, state: _PredState) -> None:
    operands = [state.get(v) for v in op.operands]
    result = qwerty.qbpack(builder, operands)
    state.map(op.result, result)
    state.indices[id(result)] = tuple(
        index for v in operands for index in state.indices[id(v)]
    )


@predicatable(qwerty.QBUNPACK)
def _pred_qbunpack(op: Operation, builder: Builder, state: _PredState) -> None:
    operand = state.get(op.operands[0])
    qubits = qwerty.qbunpack(builder, operand)
    indices = state.indices[id(operand)]
    for original, new, index in zip(op.results, qubits, indices):
        state.map(original, new)
        state.indices[id(new)] = (index,)


@predicatable(qwerty.QBPREP)
def _pred_qbprep(op: Operation, builder: Builder, state: _PredState) -> None:
    # Ancilla allocation is not predicated; the predicated ops that act
    # on the ancilla leave it untouched outside the predicate space, so
    # the matching unprep/discardz below stays sound.
    result = qwerty.qbprep(builder, op.attrs["prim"], op.attrs["eigenbits"])
    state.map(op.result, result)
    state.indices[id(result)] = state.fresh_indices(result.type.n)


@predicatable(qwerty.QBUNPREP)
def _pred_qbunprep(op: Operation, builder: Builder, state: _PredState) -> None:
    qwerty.qbunprep(
        builder, state.get(op.operands[0]), op.attrs["prim"], op.attrs["eigenbits"]
    )


@predicatable(qwerty.QBDISCARDZ)
def _pred_qbdiscardz(op: Operation, builder: Builder, state: _PredState) -> None:
    qwerty.qbdiscardz(builder, state.get(op.operands[0]))


_SWAP_IN = Basis.literal("01", "10")
_SWAP_OUT = Basis.literal("10", "01")


def _emit_swap_pair(
    builder: Builder, state: _PredState, qubits: list[Value], i: int, j: int
) -> None:
    """Uncontrolled SWAP then predicated SWAP on positions i, j."""
    pair = qwerty.qbpack(builder, [qubits[i], qubits[j]])
    swapped = qwerty.qbtrans(builder, pair, _SWAP_IN, _SWAP_OUT)
    unpacked = qwerty.qbunpack(builder, swapped)
    combined = qwerty.qbpack(builder, state.controls + unpacked)
    redone = qwerty.qbtrans(
        builder,
        combined,
        state.pred_basis.tensor(_SWAP_IN),
        state.pred_basis.tensor(_SWAP_OUT),
    )
    all_qubits = qwerty.qbunpack(builder, redone)
    m = len(state.controls)
    state.controls = all_qubits[:m]
    qubits[i], qubits[j] = all_qubits[m], all_qubits[m + 1]


def predicate_function(
    func: FuncOp, pred_basis: Basis, new_name: str
) -> FuncOp:
    """Create a function computing ``pred_basis & func`` (paper §5.3)."""
    if not func.type.reversible:
        raise ReversibilityError(f"@{func.name} is not reversible")
    m = pred_basis.dim
    pred_type = qwerty.predicated_type(func.type, m)
    pred_func = FuncOp(new_name, pred_type, func.visibility)
    builder = Builder(pred_func.entry)

    combined_arg = pred_func.entry.args[0]
    qubits = qwerty.qbunpack(builder, combined_arg)
    controls = qubits[:m]
    payload = qwerty.qbpack(builder, qubits[m:])

    state = _PredState(pred_basis, controls)
    (orig_arg,) = func.entry.args
    state.map(orig_arg, payload)
    n = orig_arg.type.n
    state.next_index = 0
    state.indices[id(payload)] = state.fresh_indices(n)
    initial_indices = state.indices[id(payload)]

    copy_map: dict[Value, Value] = {}
    for op in func.entry.ops:
        if op.name == qwerty.RETURN:
            break
        if is_stationary(op):
            clone = op.clone(copy_map)
            builder.insert(clone)
            for old, new in zip(op.results, clone.results):
                state.map(old, new)
            continue
        build = PREDICATE_BUILDERS.get(op.name)
        if build is None:
            raise ReversibilityError(
                f"op {op.name} is not predicatable; reversible functions "
                f"cannot contain it",
                span=op.loc,
            )
        # Predicated ops inherit the location of the op they replace.
        builder.loc = op.loc
        build(op, builder, state)

    terminator = func.entry.terminator
    (orig_result,) = terminator.operands
    result_bundle = state.get(orig_result)

    # Swap-undo: compare the indices of the returned bundle against the
    # indices assigned at entry; undo the renaming-induced permutation.
    final_indices = list(state.indices[id(result_bundle)])
    result_qubits = qwerty.qbunpack(builder, result_bundle)
    wanted = list(initial_indices)
    if sorted(final_indices) == sorted(wanted) and final_indices != wanted:
        current = list(final_indices)
        for position in range(len(wanted)):
            if current[position] == wanted[position]:
                continue
            other = current.index(wanted[position])
            _emit_swap_pair(builder, state, result_qubits, position, other)
            current[position], current[other] = (
                current[other],
                current[position],
            )

    final = qwerty.qbpack(builder, state.controls + result_qubits)
    qwerty.return_op(builder, [final])
    return pred_func
