"""Function specialization (paper §6.2 and Appendix D).

A Qwerty function value may be adjointed or predicated, so the compiler
must generate specializations (reversed/predicated function bodies).
:func:`analyze_specializations` reproduces Algorithm D5: it labels the
call graph with (funcName, isAdjoint, numControls) tuples and closes it
transitively (an ``call adj g`` inside ``f`` makes the adjoint of every
callee of ``g`` necessary).  :func:`generate_specializations`
materializes the required function bodies using the adjoint and
predication passes and retargets ``call adj/pred`` ops at them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.basis import Basis, BasisLiteral
from repro.dialects import qwerty
from repro.ir.core import Operation, walk
from repro.ir.module import FuncOp, ModuleOp
from repro.qwerty_ir.adjoint import adjoint_function
from repro.qwerty_ir.canonicalize import _resolve_callee_chain
from repro.qwerty_ir.predicate import predicate_function


@dataclass(frozen=True)
class Specialization:
    """A node of the specialization call graph (Algorithm D5)."""

    func_name: str
    is_adjoint: bool
    num_controls: int


def _callee_tuples(func: FuncOp) -> list[Specialization]:
    """Specializations directly requested by a forward invocation of
    ``func`` (the intraprocedural part of the analysis)."""
    out = []
    for op in walk(func.entry):
        if op.name == qwerty.CALL:
            pred = op.attrs.get("pred")
            out.append(
                Specialization(
                    op.attrs["callee"],
                    bool(op.attrs.get("adj", False)),
                    pred.dim if pred is not None else 0,
                )
            )
        elif op.name == qwerty.CALL_INDIRECT:
            resolved = _resolve_callee_chain(op.operands[0])
            if resolved is not None:
                symbol, adj, pred, _chain = resolved
                out.append(
                    Specialization(
                        symbol, adj, pred.dim if pred is not None else 0
                    )
                )
    return out


def analyze_specializations(
    module: ModuleOp, entry_point: str | None = None
) -> set[Specialization]:
    """Algorithm D5: the set of specializations needed to execute the IR."""
    vertices: set[Specialization] = set()
    edges: set[tuple[Specialization, Specialization]] = set()
    direct: dict[str, list[Specialization]] = {}

    for func in module:
        forward = Specialization(func.name, False, 0)
        vertices.add(forward)
        callees = _callee_tuples(func)
        direct[func.name] = callees
        for callee in callees:
            vertices.add(callee)
            edges.add((forward, callee))

    # Transitive closure: a specialization of f implies the composed
    # specialization of each of f's callees.
    changed = True
    while changed:
        changed = False
        for vertex in list(vertices):
            for callee in direct.get(vertex.func_name, []):
                composed = Specialization(
                    callee.func_name,
                    vertex.is_adjoint ^ callee.is_adjoint,
                    vertex.num_controls + callee.num_controls,
                )
                if composed not in vertices:
                    vertices.add(composed)
                    changed = True
                if (vertex, composed) not in edges:
                    edges.add((vertex, composed))
                    changed = True

    # DFS from the entry point; unreached specializations are dropped.
    if entry_point is None:
        entry_point = module.entry_point
    if entry_point is None:
        return vertices
    root = Specialization(entry_point, False, 0)
    reached: set[Specialization] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node in reached or node not in vertices:
            continue
        reached.add(node)
        for src, dst in edges:
            if src == node:
                stack.append(dst)
        # Any specialization of f requires walking f's callees too.
        for callee in direct.get(node.func_name, []):
            composed = Specialization(
                callee.func_name,
                node.is_adjoint ^ callee.is_adjoint,
                node.num_controls + callee.num_controls,
            )
            stack.append(composed)
    return reached


def _mangle(base: str, adj: bool, pred: Basis | None) -> str:
    name = base
    if adj:
        name += "__adj"
    if pred is not None:
        tag = "".join(str(v) for v in _pred_signature(pred))
        name += f"__pred_{abs(hash(_pred_signature(pred))) % 10**8}_{pred.dim}"
    return name


def _pred_signature(pred: Basis) -> tuple:
    parts = []
    for element in pred.elements:
        if isinstance(element, BasisLiteral):
            parts.append(
                (
                    "lit",
                    element.prim.value,
                    tuple(vec.eigenbits for vec in element.vectors),
                )
            )
        else:
            parts.append(("builtin", element.prim.value, element.dim))
    return tuple(parts)


def generate_specializations(module: ModuleOp) -> bool:
    """Materialize specializations for every ``call adj/pred`` op.

    Runs to a fixpoint: building an adjoint body can introduce further
    ``call adj`` ops (the transitive requirement of Appendix D), which
    the next sweep satisfies.  After this pass every ``call`` op is a
    plain forward call.
    """
    generated: dict[tuple[str, bool, tuple | None], str] = {}
    changed = False
    progress = True
    while progress:
        progress = False
        for func in list(module):
            for op in list(walk(func.entry)):
                if op.name != qwerty.CALL or op.parent_block is None:
                    continue
                adj = bool(op.attrs.get("adj", False))
                pred = op.attrs.get("pred")
                if not adj and pred is None:
                    continue
                key = (
                    op.attrs["callee"],
                    adj,
                    _pred_signature(pred) if pred is not None else None,
                )
                if key not in generated:
                    base = module.get(op.attrs["callee"])
                    specialized = base
                    if adj:
                        specialized = adjoint_function(
                            specialized,
                            module.unique_name(_mangle(base.name, True, None)),
                        )
                        module.add(specialized)
                    if pred is not None:
                        specialized = predicate_function(
                            specialized,
                            pred,
                            module.unique_name(_mangle(base.name, adj, pred)),
                        )
                        module.add(specialized)
                    specialized.specialization_of = (
                        base.name,
                        adj,
                        pred.dim if pred is not None else 0,
                    )
                    generated[key] = specialized.name
                op.attrs["callee"] = generated[key]
                op.attrs["adj"] = False
                op.attrs["pred"] = None
                progress = True
                changed = True
    return changed
