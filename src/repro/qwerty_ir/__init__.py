"""Transformations on Qwerty IR (paper §5).

* :mod:`repro.qwerty_ir.adjoint` — reversing basic blocks (§5.2).
* :mod:`repro.qwerty_ir.predicate` — predicating basic blocks, including
  the swap-undo dataflow analysis (§5.3).
* :mod:`repro.qwerty_ir.lift_lambdas` — lifting lambdas to functions.
* :mod:`repro.qwerty_ir.canonicalize` — canonicalization patterns,
  including the ``scf.if`` inlining-enabler (§5.4, Appendix C).
* :mod:`repro.qwerty_ir.specialize` — function specialization analysis
  and generation (§6.2, Appendix D).
* :mod:`repro.qwerty_ir.pipeline` — the full §5.4 pass sequence.
"""

from repro.qwerty_ir.adjoint import adjoint_function
from repro.qwerty_ir.predicate import predicate_function
from repro.qwerty_ir.lift_lambdas import lift_lambdas
from repro.qwerty_ir.canonicalize import canonicalize
from repro.qwerty_ir.specialize import (
    analyze_specializations,
    generate_specializations,
)
from repro.qwerty_ir.pipeline import (
    QWERTY_NOOPT_SPEC,
    QWERTY_OPT_SPEC,
    make_qwerty_pass_manager,
    run_qwerty_opt,
)

__all__ = [
    "QWERTY_NOOPT_SPEC",
    "QWERTY_OPT_SPEC",
    "adjoint_function",
    "analyze_specializations",
    "canonicalize",
    "generate_specializations",
    "lift_lambdas",
    "make_qwerty_pass_manager",
    "predicate_function",
    "run_qwerty_opt",
]
