"""Lifting lambdas to functions referenced by ``func_const`` (paper §5.4).

This is step (1) of the inlining sequence: every ``qwerty.lambda`` op
becomes a module-level function, and the lambda value is replaced by a
``func_const``.  Classical values the lambda captures from its
enclosing scope (constants, function values) are re-materialized inside
the lifted body; capturing quantum values is impossible in well-typed
Qwerty (linearity), so anything else is an error.
"""

from __future__ import annotations

from repro.dialects import qwerty
from repro.errors import LoweringError
from repro.ir.core import Operation, Value, walk
from repro.ir.module import Builder, FuncOp, ModuleOp
from repro.qwerty_ir.adjoint import is_stationary


def _rematerialize(
    value: Value, builder: Builder, cache: dict[int, Value]
) -> Value:
    """Clone the classical def chain of ``value`` into ``builder``."""
    if id(value) in cache:
        return cache[id(value)]
    op = value.owner_op
    if op is None or not is_stationary(op):
        raise LoweringError(
            "lambda captures a value that is not re-materializable "
            f"(defined by {op.name if op else 'a block argument'})",
            span=op.loc if op is not None else None,
        )
    operands = [_rematerialize(operand, builder, cache) for operand in op.operands]
    clone = Operation(
        op.name, operands, [r.type for r in op.results], dict(op.attrs),
        loc=op.loc,
    )
    builder.insert(clone)
    for old, new in zip(op.results, clone.results):
        cache[id(old)] = new
    return cache[id(value)]


def _lift_one(lam: Operation, module: ModuleOp) -> None:
    func_type = lam.result.type
    name = module.unique_name("lambda")
    func = FuncOp(name, func_type, visibility="private")
    module.add(func)

    body = lam.regions[0].entry
    value_map: dict[Value, Value] = {}
    for old_arg, new_arg in zip(body.args, func.entry.args):
        value_map[old_arg] = new_arg

    # Identify captured values (operands defined outside the lambda).
    inside: set[int] = {id(arg) for arg in body.args}
    for op in walk(body):
        for result in op.results:
            inside.add(id(result))
    capture_builder = Builder(func.entry)
    cache: dict[int, Value] = {}
    for op in walk(body):
        for operand in op.operands:
            if id(operand) not in inside and operand not in value_map:
                value_map[operand] = _rematerialize(
                    operand, capture_builder, cache
                )

    for op in body.ops:
        func.entry.append(op.clone(value_map))

    builder = Builder.before(lam)
    const = qwerty.func_const(builder, name, func_type)
    lam.result.replace_all_uses_with(const)
    lam.erase()


def lift_lambdas(module: ModuleOp) -> bool:
    """Lift every lambda in the module.  Returns True if any lifted."""
    changed = False
    progress = True
    while progress:
        progress = False
        for func in list(module):
            for op in list(walk(func.entry)):
                if op.name == qwerty.LAMBDA and op.parent_block is not None:
                    # Lift innermost-first so nested lambdas are handled.
                    if any(
                        inner is not op and inner.name == qwerty.LAMBDA
                        for inner in walk(op)
                    ):
                        continue
                    _lift_one(op, module)
                    progress = True
                    changed = True
    return changed
