"""Qwerty programs for the benchmark suite (paper §8.1)."""

from __future__ import annotations

import math

from repro.frontend.decorators import (
    Bits,
    I,
    N,
    QpuKernel,
    bit,
    cfunc,
    classical,
    qpu,
)


def alternating_secret(n: int) -> Bits:
    """The paper's Bernstein-Vazirani secret: 1010..."""
    return Bits((1 - (i % 2)) for i in range(n))


def grover_iterations(n: int, cap: int = 12) -> int:
    """Optimal Grover iterations for one marked item, capped (paper
    caps at 12 to keep the evaluation feasible)."""
    optimal = max(1, int(math.floor(math.pi / 4 * math.sqrt(2**n))))
    return min(optimal, cap)


def bernstein_vazirani(secret: Bits | str) -> QpuKernel:
    """Bernstein-Vazirani (paper Fig. 1)."""
    secret_bits = (
        secret if isinstance(secret, Bits) else Bits.from_str(secret)
    )

    @classical[N](secret_bits)
    def f(secret_str: bit[N], x: bit[N]) -> bit:
        return (secret_str & x).xor_reduce()

    @qpu[N](f)
    def bv_kernel(f: cfunc[N, 1]) -> bit[N]:
        return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure

    return bv_kernel


def deutsch_jozsa(n: int) -> QpuKernel:
    """Deutsch-Jozsa with the balanced oracle XORing all input bits."""

    @classical[N]
    def f(x: bit[N]) -> bit:
        return x.xor_reduce()

    @qpu[N](f)
    def dj_kernel(f: cfunc[N, 1]) -> bit[N]:
        return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure

    return dj_kernel[n]


def grover(n: int, iterations: int | None = None) -> QpuKernel:
    """Grover's search with the all-ones oracle (capped at 12 iters)."""
    if iterations is None:
        iterations = grover_iterations(n)

    @classical[N]
    def oracle(x: bit[N]) -> bit:
        return x.and_reduce()

    @qpu[N, I](oracle)
    def grover_kernel(oracle: cfunc[N, 1]) -> bit[N]:
        q = 'p'[N]
        for _ in range(I):
            q = q | oracle.sign | {'p'[N]} >> {-'p'[N]}
        return q | std[N].measure

    return grover_kernel[n, iterations]


def simon(secret: Bits | str) -> QpuKernel:
    """Simon's algorithm with a nonzero secret string.

    The oracle is the standard construction f(x) = x if x_j = 0 else
    x ^ s, where j is the index of the first set bit of s; as classical
    logic, f(x) = x ^ (s & repeat(x_j)).
    """
    secret_bits = (
        secret if isinstance(secret, Bits) else Bits.from_str(secret)
    )
    if not any(secret_bits):
        raise ValueError("Simon's algorithm needs a nonzero secret")
    pivot = next(i for i, v in enumerate(secret_bits) if v)
    pivot_mask = Bits(
        1 if i == pivot else 0 for i in range(len(secret_bits))
    )

    @classical[N](secret_bits, pivot_mask)
    def f(s: bit[N], piv: bit[N], x: bit[N]) -> bit[N]:
        return x ^ (s & (piv & x).xor_reduce().repeat(N))

    @qpu[N](f)
    def simon_kernel(f: cfunc[N, N]) -> bit[N]:
        return 'p'[N] + '0'[N] | f.xor | pm[N].measure + std[N].discard

    return simon_kernel


def period_finding(n: int, mask: Bits | str | None = None) -> QpuKernel:
    """QFT-based period finding with a bitmasking oracle."""
    if mask is None:
        mask_bits = Bits(0 if i == 0 else 1 for i in range(n))
    else:
        mask_bits = mask if isinstance(mask, Bits) else Bits.from_str(mask)

    @classical[N](mask_bits)
    def f(mask: bit[N], x: bit[N]) -> bit[N]:
        return x & mask

    @qpu[N](f)
    def period_kernel(f: cfunc[N, N]) -> bit[N]:
        return (
            'p'[N] + '0'[N]
            | f.xor
            | (fourier[N] >> std[N]) + id[N]
            | std[N].measure + std[N].discard
        )

    return period_kernel
