"""The paper's five benchmark algorithms, written in Qwerty (§8.1).

Each builder returns a ready-to-run :class:`QpuKernel`: Bernstein-
Vazirani with an alternating secret, Deutsch-Jozsa with a balanced
XOR oracle, Grover's search for the all-ones string (iterations capped
at 12, as in the paper), Simon's algorithm with a nonzero secret, and
QFT-based period finding with a bitmask oracle.
"""

from repro.algorithms.kernels import (
    alternating_secret,
    bernstein_vazirani,
    deutsch_jozsa,
    grover,
    grover_iterations,
    period_finding,
    simon,
)

__all__ = [
    "alternating_secret",
    "bernstein_vazirani",
    "deutsch_jozsa",
    "grover",
    "grover_iterations",
    "period_finding",
    "simon",
]
