"""Lowering a type-checked Qwerty AST to Qwerty IR (paper §5.1).

Function-typed Qwerty expressions (translations, ``.measure``,
``.flip``, embeddings, ``id``, tensor products of functions) lower to
*function values*: lambdas wrapping the corresponding op.  The pipe
operator calls function values, so the initial IR contains only
``call_indirect`` ops — never direct calls — exactly as the paper
describes; lambda lifting, canonicalization and inlining then linearize
everything (§5.4).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.basis import Basis
from repro.basis.primitive import CHAR_TO_PRIM_EIGENBIT
from repro.dialects import qwerty, scf
from repro.errors import LoweringError
from repro.frontend.ast_nodes import (
    AdjointExpr,
    AssignStmt,
    CondExpr,
    DiscardExpr,
    EmbedExpr,
    Expr,
    FlipExpr,
    IdExpr,
    KernelAST,
    MeasureExpr,
    PipeExpr,
    PredExpr,
    QubitLiteralExpr,
    ReturnStmt,
    TensorExpr,
    TranslationExpr,
    VariableExpr,
)
from repro.frontend.types import (
    BitType,
    FuncType,
    QubitType,
    QwertyType,
    TupleType,
    UNIT,
)
from repro.ir.core import Value
from repro.ir.module import Builder, FuncOp, ModuleOp
from repro.ir.types import (
    BitBundleType,
    FunctionType,
    QBundleType,
    Type,
)


def ir_type(qtype: QwertyType) -> tuple[Type, ...]:
    """The IR types for one Qwerty type (unit vanishes)."""
    if isinstance(qtype, QubitType):
        return (QBundleType(qtype.n),)
    if isinstance(qtype, BitType):
        return (BitBundleType(qtype.n),)
    if isinstance(qtype, TupleType):
        out: list[Type] = []
        for part in qtype.parts:
            out.extend(ir_type(part))
        return tuple(out)
    if isinstance(qtype, FuncType):
        return (
            FunctionType(
                ir_type(qtype.input), ir_type(qtype.output), qtype.reversible
            ),
        )
    raise LoweringError(f"no IR type for {qtype}")


@contextmanager
def _expr_loc(builder: Builder, node: Expr):
    """Scope the builder's location to one expression's span.

    Ops emitted while lowering the expression carry its source span;
    the builder's location is restored afterwards so sibling
    expressions are not attributed to this one.
    """
    previous = builder.loc
    if node.span is not None:
        builder.loc = node.span
    try:
        yield
    finally:
        builder.loc = previous


class AstLowering:
    """Lowers one kernel into a module, given resolved captures.

    ``networks`` maps @classical capture names to LogicNetwork builders
    (callables returning a network), consumed by ``f.xor`` / ``f.sign``.
    """

    def __init__(self, module: ModuleOp, networks: dict[str, object]) -> None:
        self.module = module
        self.networks = networks

    def lower_kernel(self, kernel: KernelAST, return_type: QwertyType) -> FuncOp:
        func_type = FunctionType((), ir_type(return_type), reversible=False)
        func = FuncOp(kernel.name, func_type)
        self.module.add(func)
        builder = Builder(func.entry)
        env: dict[str, Value] = {}

        for stmt in kernel.body:
            builder.loc = stmt.span
            if isinstance(stmt, AssignStmt):
                if isinstance(stmt.value.type, FuncType):
                    # A function value bound to a name.
                    if len(stmt.targets) != 1:
                        raise LoweringError(
                            "cannot unpack a function value"
                        )
                    env[stmt.targets[0]] = self.function_of(
                        stmt.value, builder, env
                    )
                    continue
                values = self.values_of(stmt.value, builder, env)
                self._bind(stmt.targets, stmt.value.type, values, builder, env)
            elif isinstance(stmt, ReturnStmt):
                values = self.values_of(stmt.value, builder, env)
                qwerty.return_op(builder, values)
            else:
                raise LoweringError(f"cannot lower statement {stmt!r}")
        return func

    # ------------------------------------------------------------------
    def _bind(
        self,
        targets: list[str],
        value_type: QwertyType,
        values: list[Value],
        builder: Builder,
        env: dict[str, Value],
    ) -> None:
        if len(targets) == 1:
            if len(values) != 1:
                raise LoweringError("cannot bind multiple values to one name")
            env[targets[0]] = values[0]
            return
        if len(values) == len(targets):
            for name, value in zip(targets, values):
                env[name] = value
            return
        if len(values) == 1 and isinstance(value_type, (QubitType, BitType)):
            each = value_type.n // len(targets)
            if isinstance(value_type, QubitType):
                qubits = qwerty.qbunpack(builder, values[0])
                for index, name in enumerate(targets):
                    env[name] = qwerty.qbpack(
                        builder, qubits[index * each : (index + 1) * each]
                    )
            else:
                bits = qwerty.bitunpack(builder, values[0])
                for index, name in enumerate(targets):
                    env[name] = qwerty.bitpack(
                        builder, bits[index * each : (index + 1) * each]
                    )
            return
        raise LoweringError("unsupported unpacking pattern")

    # ------------------------------------------------------------------
    # Value-typed expressions (qubits / bits / tuples).
    # ------------------------------------------------------------------
    def values_of(
        self, node: Expr, builder: Builder, env: dict[str, Value]
    ) -> list[Value]:
        with _expr_loc(builder, node):
            return self._values_of(node, builder, env)

    def _values_of(
        self, node: Expr, builder: Builder, env: dict[str, Value]
    ) -> list[Value]:
        if isinstance(node, QubitLiteralExpr):
            return [self._prep_literal(node, builder)]
        if isinstance(node, VariableExpr):
            if node.name not in env:
                raise LoweringError(f"unbound variable {node.name!r}")
            return [env[node.name]]
        if isinstance(node, PipeExpr):
            args = self.values_of(node.value, builder, env)
            fn = self.function_of(node.fn, builder, env)
            call = qwerty.call_indirect(builder, fn, args)
            return list(call.results)
        if isinstance(node, TensorExpr) and isinstance(node.type, QubitType):
            qubits: list[Value] = []
            for part in node.parts:
                (bundle,) = self.values_of(part, builder, env)
                qubits.extend(qwerty.qbunpack(builder, bundle))
            return [qwerty.qbpack(builder, qubits)]
        raise LoweringError(
            f"cannot lower value expression {type(node).__name__}"
        )

    def _prep_literal(self, node: QubitLiteralExpr, builder: Builder) -> Value:
        """Prepare a (possibly mixed-basis) qubit literal.

        Runs of equal primitive basis become one qbprep each; mixed
        literals are prepared piecewise and repacked.  The literal's
        global phase is unobservable and dropped.
        """
        runs: list[tuple[object, list[int]]] = []
        for ch in node.chars:
            prim, eigenbit = CHAR_TO_PRIM_EIGENBIT[ch]
            if runs and runs[-1][0] is prim:
                runs[-1][1].append(eigenbit)
            else:
                runs.append((prim, [eigenbit]))
        bundles = [
            qwerty.qbprep(builder, prim, eigenbits) for prim, eigenbits in runs
        ]
        if len(bundles) == 1:
            return bundles[0]
        qubits: list[Value] = []
        for bundle in bundles:
            qubits.extend(qwerty.qbunpack(builder, bundle))
        return qwerty.qbpack(builder, qubits)

    # ------------------------------------------------------------------
    # Function-typed expressions become function values (paper §5.1).
    # ------------------------------------------------------------------
    def function_of(
        self, node: Expr, builder: Builder, env: dict[str, Value]
    ) -> Value:
        with _expr_loc(builder, node):
            return self._function_of(node, builder, env)

    def _function_of(
        self, node: Expr, builder: Builder, env: dict[str, Value]
    ) -> Value:
        if isinstance(node, TranslationExpr):
            return self._lambda_wrapping(
                node.type,
                builder,
                lambda b, args: [
                    qwerty.qbtrans(
                        b, args[0], node.resolved_in, node.resolved_out
                    )
                ],
            )
        if isinstance(node, FlipExpr):
            return self._lambda_wrapping(
                node.type,
                builder,
                lambda b, args: [
                    qwerty.qbtrans(
                        b, args[0], node.resolved_in, node.resolved_out
                    )
                ],
            )
        if isinstance(node, MeasureExpr):
            basis = node.resolved_basis
            return self._lambda_wrapping(
                node.type,
                builder,
                lambda b, args: [qwerty.qbmeas(b, args[0], basis)],
            )
        if isinstance(node, IdExpr):
            return self._lambda_wrapping(
                node.type, builder, lambda b, args: [args[0]]
            )
        if isinstance(node, DiscardExpr):
            def build_discard(b, args):
                qwerty.qbdiscard(b, args[0])
                return []

            return self._lambda_wrapping(node.type, builder, build_discard)
        if isinstance(node, EmbedExpr):
            network_builder = self.networks.get(node.capture_name)
            if network_builder is None:
                raise LoweringError(
                    f"no @classical capture named {node.capture_name!r}"
                )
            network = network_builder()
            return self._lambda_wrapping(
                node.type,
                builder,
                lambda b, args: [
                    qwerty.embed(b, args[0], network, node.kind)
                ],
            )
        if isinstance(node, AdjointExpr):
            inner = self.function_of(node.fn, builder, env)
            return qwerty.func_adj(builder, inner)
        if isinstance(node, PredExpr):
            inner = self.function_of(node.fn, builder, env)
            return qwerty.func_pred(builder, inner, node.resolved_basis)
        if isinstance(node, CondExpr):
            return self._lower_cond(node, builder, env)
        if isinstance(node, TensorExpr):
            return self._tensor_functions(node, builder, env)
        if isinstance(node, VariableExpr):
            if node.name in env:
                return env[node.name]
            raise LoweringError(f"unbound function variable {node.name!r}")
        raise LoweringError(
            f"cannot lower function expression {type(node).__name__}"
        )

    def _lambda_wrapping(
        self, fn_type: FuncType, builder: Builder, build_body
    ) -> Value:
        (lambda_type,) = ir_type(fn_type)
        lam = qwerty.lambda_op(builder, lambda_type)
        body = Builder(lam.regions[0].entry, loc=builder.loc)
        results = build_body(body, list(lam.regions[0].entry.args))
        qwerty.return_op(body, results)
        return lam.result

    def _tensor_functions(
        self, node: TensorExpr, builder: Builder, env: dict[str, Value]
    ) -> Value:
        """Tensor of functions: a lambda that unpacks the input bundle,
        calls each part with its slice, and repacks results (§5.1)."""
        part_values = [
            self.function_of(part, builder, env) for part in node.parts
        ]
        (lambda_type,) = ir_type(node.type)
        lam = qwerty.lambda_op(builder, lambda_type)
        body = Builder(lam.regions[0].entry, loc=builder.loc)
        (arg,) = lam.regions[0].entry.args
        qubits = qwerty.qbunpack(body, arg)

        qubit_results: list[Value] = []
        bit_results: list[Value] = []
        other_results: list[Value] = []
        offset = 0
        for part, fn_value in zip(node.parts, part_values):
            part_type: FuncType = part.type
            width = part_type.input.n
            chunk = qwerty.qbpack(body, qubits[offset : offset + width])
            offset += width
            call = qwerty.call_indirect(body, fn_value, [chunk])
            for result in call.results:
                if isinstance(result.type, QBundleType):
                    qubit_results.extend(qwerty.qbunpack(body, result))
                elif isinstance(result.type, BitBundleType):
                    bit_results.extend(qwerty.bitunpack(body, result))
                else:
                    other_results.append(result)

        results: list[Value] = []
        output = node.type.output
        if isinstance(output, QubitType):
            results.append(qwerty.qbpack(body, qubit_results))
        elif isinstance(output, BitType):
            results.append(qwerty.bitpack(body, bit_results))
        elif output == UNIT:
            pass
        elif isinstance(output, TupleType):
            # Preserve part order per kind: qubits first, then bits.
            for part_type in output.parts:
                if isinstance(part_type, QubitType):
                    results.append(
                        qwerty.qbpack(body, qubit_results[: part_type.n])
                    )
                    qubit_results = qubit_results[part_type.n :]
                else:
                    results.append(
                        qwerty.bitpack(body, bit_results[: part_type.n])
                    )
                    bit_results = bit_results[part_type.n :]
        else:
            raise LoweringError(f"unsupported tensor output {output}")
        results.extend(other_results)
        qwerty.return_op(body, results)
        return lam.result

    def _lower_cond(
        self, node: CondExpr, builder: Builder, env: dict[str, Value]
    ) -> Value:
        """``f if cond else g``: an scf.if yielding a function value.

        The condition is a one-bit bitbundle; unpack it to an i1.
        """
        (cond_bundle,) = self.values_of(node.cond, builder, env)
        (cond_bit,) = qwerty.bitunpack(builder, cond_bundle)
        (fn_ir_type,) = ir_type(node.type)
        if_op = scf.if_op(builder, cond_bit, [fn_ir_type])
        then_builder = Builder(scf.then_block(if_op), loc=builder.loc)
        then_value = self.function_of(node.then_fn, then_builder, env)
        scf.yield_op(then_builder, [then_value])
        else_builder = Builder(scf.else_block(if_op), loc=builder.loc)
        else_value = self.function_of(node.else_fn, else_builder, env)
        scf.yield_op(else_builder, [else_value])
        return if_op.results[0]
