"""The Qwerty type checker (paper §4).

Enforces linear types for qubits (every quantum value used exactly
once), validates bases and basis literals, checks span equivalence of
basis translations in polynomial time (§4.1), verifies reversibility
requirements for ``~f`` and ``b & f``, and annotates every expression
with its type.  Basis-typed expressions additionally get a resolved
:class:`repro.basis.Basis` attached for lowering.
"""

from __future__ import annotations

from repro.basis import Basis, BasisLiteral, BasisVector
from repro.basis.primitive import PrimitiveBasis
from repro.basis.span import check_span_equivalence
from repro.errors import (
    BasisError,
    LinearityError,
    QwertyError,
    QwertyTypeError,
    ReversibilityError,
)
from repro.frontend.ast_nodes import (
    AdjointExpr,
    AssignStmt,
    BasisLiteralExpr,
    BuiltinBasisExpr,
    CondExpr,
    DiscardExpr,
    EmbedExpr,
    Expr,
    FlipExpr,
    IdExpr,
    KernelAST,
    MeasureExpr,
    PipeExpr,
    PredExpr,
    QubitLiteralExpr,
    ReturnStmt,
    TensorExpr,
    TranslationExpr,
    VariableExpr,
)
from repro.frontend.types import (
    BasisType,
    BitType,
    CFuncType,
    FuncType,
    QubitType,
    QwertyType,
    TupleType,
    UNIT,
)

_PRIMS = {
    "std": PrimitiveBasis.STD,
    "pm": PrimitiveBasis.PM,
    "ij": PrimitiveBasis.IJ,
    "fourier": PrimitiveBasis.FOURIER,
}


def resolve_basis(expr: Expr) -> Basis:
    """Build a :class:`Basis` from a basis-typed expression."""
    if isinstance(expr, BuiltinBasisExpr):
        return Basis.builtin(_PRIMS[expr.prim], expr.dim)
    if isinstance(expr, BasisLiteralExpr):
        vectors = tuple(
            BasisVector.from_chars(vec.chars, vec.phase)
            for vec in expr.vectors
        )
        return Basis((BasisLiteral(vectors),))
    if isinstance(expr, QubitLiteralExpr):
        vector = BasisVector.from_chars(expr.chars, expr.phase)
        return Basis((BasisLiteral((vector,)),))
    if isinstance(expr, TensorExpr):
        basis = resolve_basis(expr.parts[0])
        for part in expr.parts[1:]:
            basis = basis.tensor(resolve_basis(part))
        return basis
    raise QwertyTypeError(f"expected a basis, found {type(expr).__name__}")


def _flip_basis(basis: Basis) -> Basis:
    """The target of ``b.flip``: each 1-qubit builtin becomes the
    swapped literal (std.flip is std >> {'1','0'})."""
    from repro.basis.builtin import BuiltinBasis

    elements = []
    for element in basis.elements:
        if not isinstance(element, BuiltinBasis) or element.dim != 1:
            raise QwertyTypeError(".flip applies to one-qubit built-in bases")
        if element.prim is PrimitiveBasis.FOURIER:
            raise QwertyTypeError(".flip does not apply to the fourier basis")
        prim = element.prim
        elements.append(
            BasisLiteral(
                (
                    BasisVector((1,), prim),
                    BasisVector((0,), prim),
                )
            )
        )
    return Basis(tuple(elements))


class _Scope:
    """Variable typing environment with linear-use tracking."""

    def __init__(self) -> None:
        self.types: dict[str, QwertyType] = {}
        self.used: set[str] = set()

    def define(self, name: str, type: QwertyType) -> None:
        if name in self.types and name not in self.used:
            if self.types[name].is_linear:
                raise LinearityError(
                    f"rebinding {name!r} would discard a linear value"
                )
        self.types[name] = type
        self.used.discard(name)

    def use(self, name: str) -> QwertyType:
        if name not in self.types:
            raise QwertyTypeError(f"undefined variable {name!r}")
        type = self.types[name]
        if type.is_linear:
            if name in self.used:
                raise LinearityError(
                    f"qubit variable {name!r} used more than once"
                )
            self.used.add(name)
        return type

    def check_all_consumed(self) -> None:
        for name, type in self.types.items():
            if type.is_linear and name not in self.used:
                raise LinearityError(
                    f"qubit variable {name!r} is never used (qubits cannot "
                    f"be silently discarded)"
                )


class TypeChecker:
    """Type checks one expanded kernel."""

    def __init__(self, capture_types: dict[str, QwertyType]) -> None:
        self.captures = dict(capture_types)
        self.scope = _Scope()

    def check_kernel(self, kernel: KernelAST) -> QwertyType:
        for name, type in self.captures.items():
            self.scope.define(name, type)
        return_type: QwertyType | None = None
        for index, stmt in enumerate(kernel.body):
            try:
                if isinstance(stmt, ReturnStmt):
                    if index != len(kernel.body) - 1:
                        raise QwertyTypeError(
                            "return must be the final statement"
                        )
                    return_type = self.expr(stmt.value)
                elif isinstance(stmt, AssignStmt):
                    value_type = self.expr(stmt.value)
                    self._bind_targets(stmt.targets, value_type)
                else:
                    raise QwertyTypeError(f"unsupported statement {stmt!r}")
            except QwertyError as error:
                raise error.attach_span(stmt.span)
        try:
            if return_type is None:
                raise QwertyTypeError("kernel has no return statement")
            self.scope.check_all_consumed()
        except QwertyError as error:
            raise error.attach_span(kernel.span)
        return return_type

    def _bind_targets(self, targets: list[str], value_type: QwertyType) -> None:
        if len(targets) == 1:
            self.scope.define(targets[0], value_type)
            return
        parts: list[QwertyType]
        if isinstance(value_type, TupleType):
            if len(value_type.parts) != len(targets):
                raise QwertyTypeError("tuple unpacking arity mismatch")
            parts = list(value_type.parts)
        elif isinstance(value_type, (QubitType, BitType)):
            if value_type.n % len(targets) != 0:
                raise QwertyTypeError(
                    f"cannot unpack {value_type} into {len(targets)} names"
                )
            each = value_type.n // len(targets)
            maker = QubitType if isinstance(value_type, QubitType) else BitType
            parts = [maker(each) for _ in targets]
        else:
            raise QwertyTypeError(f"cannot unpack {value_type}")
        for name, part in zip(targets, parts):
            self.scope.define(name, part)

    # ------------------------------------------------------------------
    def expr(self, node: Expr) -> QwertyType:
        method = getattr(self, "_check_" + type(node).__name__)
        try:
            node.type = method(node)
        except QwertyError as error:
            # Attach the nearest enclosing expression's span to errors
            # escaping span-less helpers (basis resolution, span
            # checking); inner expressions have already attached their
            # own tighter span via the recursive call.
            raise error.attach_span(node.span)
        return node.type

    def _check_QubitLiteralExpr(self, node: QubitLiteralExpr) -> QwertyType:
        if not node.chars:
            raise QwertyTypeError("empty qubit literal")
        for ch in node.chars:
            if ch not in "01pmij":
                raise BasisError(f"invalid qubit literal character {ch!r}")
        return QubitType(len(node.chars))

    def _check_BuiltinBasisExpr(self, node: BuiltinBasisExpr) -> QwertyType:
        node.resolved_basis = resolve_basis(node)
        return BasisType(node.resolved_basis.dim)

    def _check_BasisLiteralExpr(self, node: BasisLiteralExpr) -> QwertyType:
        node.resolved_basis = resolve_basis(node)  # Validates (§2.2).
        return BasisType(node.resolved_basis.dim)

    def _check_TensorExpr(self, node: TensorExpr) -> QwertyType:
        part_types = [self.expr(part) for part in node.parts]
        if all(isinstance(t, BasisType) for t in part_types):
            node.resolved_basis = resolve_basis(node)
            return BasisType(node.resolved_basis.dim)
        if all(isinstance(t, (QubitType, BasisType)) for t in part_types) and any(
            isinstance(t, QubitType) for t in part_types
        ):
            # Qubit literals mixed with basis elements stay qubit-like
            # only if every part is a qubit value.
            if all(isinstance(t, QubitType) for t in part_types):
                return QubitType(sum(t.n for t in part_types))
            raise QwertyTypeError("cannot tensor qubits with bases")
        if all(isinstance(t, FuncType) for t in part_types):
            return self._tensor_functions(part_types)
        raise QwertyTypeError(
            "tensor operands must be all qubits, all bases, or all functions"
        )

    def _tensor_functions(self, types: list[FuncType]) -> FuncType:
        total_in = 0
        for t in types:
            if not isinstance(t.input, QubitType):
                raise QwertyTypeError("tensored functions must take qubits")
            total_in += t.input.n
        outputs: list[QwertyType] = []
        for t in types:
            if isinstance(t.output, TupleType):
                outputs.extend(t.output.parts)
            else:
                outputs.append(t.output)
        outputs = [o for o in outputs if o != UNIT]
        if all(isinstance(o, QubitType) for o in outputs):
            output: QwertyType = QubitType(sum(o.n for o in outputs))
        elif all(isinstance(o, BitType) for o in outputs) and outputs:
            output = BitType(sum(o.n for o in outputs))
        elif not outputs:
            output = UNIT
        else:
            output = TupleType(tuple(outputs))
        reversible = all(t.reversible for t in types)
        return FuncType(QubitType(total_in), output, reversible)

    def _check_TranslationExpr(self, node: TranslationExpr) -> QwertyType:
        self.expr(node.b_in)
        self.expr(node.b_out)
        b_in = resolve_basis(node.b_in)
        b_out = resolve_basis(node.b_out)
        check_span_equivalence(b_in, b_out)  # §4.1.
        node.resolved_in = b_in
        node.resolved_out = b_out
        return FuncType(QubitType(b_in.dim), QubitType(b_out.dim), True)

    def _check_PipeExpr(self, node: PipeExpr) -> QwertyType:
        value_type = self.expr(node.value)
        fn_type = self.expr(node.fn)
        if not isinstance(fn_type, FuncType):
            raise QwertyTypeError(
                f"right side of | must be a function, found {fn_type}"
            )
        if fn_type.input != value_type:
            raise QwertyTypeError(
                f"pipe type mismatch: value is {value_type}, function "
                f"takes {fn_type.input}"
            )
        return fn_type.output

    def _check_AdjointExpr(self, node: AdjointExpr) -> QwertyType:
        fn_type = self.expr(node.fn)
        if not isinstance(fn_type, FuncType) or not fn_type.reversible:
            raise ReversibilityError("~ applies only to reversible functions")
        return FuncType(fn_type.output, fn_type.input, True)

    def _check_PredExpr(self, node: PredExpr) -> QwertyType:
        self.expr(node.basis)
        basis = resolve_basis(node.basis)
        node.resolved_basis = basis
        fn_type = self.expr(node.fn)
        if not isinstance(fn_type, FuncType) or not fn_type.reversible:
            raise ReversibilityError("& applies only to reversible functions")
        if not isinstance(fn_type.input, QubitType) or not isinstance(
            fn_type.output, QubitType
        ):
            raise QwertyTypeError("predicated functions must map qubits to qubits")
        m = basis.dim
        return FuncType(
            QubitType(m + fn_type.input.n),
            QubitType(m + fn_type.output.n),
            True,
        )

    def _check_MeasureExpr(self, node: MeasureExpr) -> QwertyType:
        self.expr(node.basis)
        basis = resolve_basis(node.basis)
        if not basis.fully_spans:
            raise QwertyTypeError("measurement bases must fully span")
        node.resolved_basis = basis
        return FuncType(QubitType(basis.dim), BitType(basis.dim), False)

    def _check_FlipExpr(self, node: FlipExpr) -> QwertyType:
        self.expr(node.basis)
        basis = resolve_basis(node.basis)
        node.resolved_in = basis
        node.resolved_out = _flip_basis(basis)
        return FuncType(QubitType(basis.dim), QubitType(basis.dim), True)

    def _check_EmbedExpr(self, node: EmbedExpr) -> QwertyType:
        capture = self.captures.get(node.capture_name)
        if not isinstance(capture, CFuncType):
            raise QwertyTypeError(
                f".{node.kind} applies to @classical captures; "
                f"{node.capture_name!r} is {capture}"
            )
        if node.kind == "xor":
            total = capture.n_in + capture.n_out
            return FuncType(QubitType(total), QubitType(total), True)
        if capture.n_out != 1:
            raise QwertyTypeError(".sign requires a single-output function")
        return FuncType(QubitType(capture.n_in), QubitType(capture.n_in), True)

    def _check_IdExpr(self, node: IdExpr) -> QwertyType:
        return FuncType(QubitType(node.dim), QubitType(node.dim), True)

    def _check_DiscardExpr(self, node: DiscardExpr) -> QwertyType:
        dim = node.dim
        if node.basis is not None:
            self.expr(node.basis)
            dim = resolve_basis(node.basis).dim
            node.dim = dim
        return FuncType(QubitType(dim), UNIT, False)

    def _check_VariableExpr(self, node: VariableExpr) -> QwertyType:
        return self.scope.use(node.name)

    def _check_CondExpr(self, node: CondExpr) -> QwertyType:
        cond_type = self.expr(node.cond)
        if cond_type != BitType(1):
            raise QwertyTypeError("conditional tests must be a single bit")
        then_type = self.expr(node.then_fn)
        else_type = self.expr(node.else_fn)
        if not isinstance(then_type, FuncType) or not isinstance(
            else_type, FuncType
        ):
            raise QwertyTypeError("conditional branches must be functions")
        if (then_type.input, then_type.output) != (
            else_type.input,
            else_type.output,
        ):
            raise QwertyTypeError("conditional branches must have equal types")
        # Classical control makes the combined value irreversible
        # (paper §4: reversible functions have no classical conditionals).
        return FuncType(then_type.input, then_type.output, False)
