"""The Qwerty type system (paper §2.2 and §4).

Types: ``qubit[N]`` (linear), ``bit[N]``, ``basis[N]``, function types
(reversible or not), classical function types ``cfunc[N, M]``, and
tuples for multi-value returns.
"""

from __future__ import annotations

from dataclasses import dataclass


class QwertyType:
    """Base class for Qwerty types."""

    @property
    def is_linear(self) -> bool:
        return False


@dataclass(frozen=True)
class QubitType(QwertyType):
    n: int

    @property
    def is_linear(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"qubit[{self.n}]"


@dataclass(frozen=True)
class BitType(QwertyType):
    n: int

    def __str__(self) -> str:
        return f"bit[{self.n}]"


@dataclass(frozen=True)
class BasisType(QwertyType):
    n: int

    def __str__(self) -> str:
        return f"basis[{self.n}]"


@dataclass(frozen=True)
class FuncType(QwertyType):
    """``T1 -> T2``, or ``T1 rev-> T2`` when reversible."""

    input: QwertyType
    output: QwertyType
    reversible: bool = False

    def __str__(self) -> str:
        arrow = "rev->" if self.reversible else "->"
        return f"({self.input} {arrow} {self.output})"


@dataclass(frozen=True)
class CFuncType(QwertyType):
    """A classical function from N bits to M bits (``cfunc[N, M]``)."""

    n_in: int
    n_out: int

    def __str__(self) -> str:
        return f"cfunc[{self.n_in},{self.n_out}]"


@dataclass(frozen=True)
class AngleType(QwertyType):
    """A classical rotation angle in degrees (``angle``).

    Non-linear: an angle capture may be used any number of times
    (including zero) inside a kernel.  Angles enter kernels only as
    captures — either concrete numbers or symbolic
    :class:`repro.parameters.Parameter` objects that stay unbound
    until ``CompileResult.bind``.
    """

    def __str__(self) -> str:
        return "angle"


@dataclass(frozen=True)
class TupleType(QwertyType):
    parts: tuple[QwertyType, ...]

    @property
    def is_linear(self) -> bool:
        return any(part.is_linear for part in self.parts)

    def __str__(self) -> str:
        return "(" + ", ".join(str(p) for p in self.parts) + ")"


UNIT = TupleType(())
