"""Converting the Python AST of a ``@qpu`` kernel to a Qwerty AST.

ASDF retrieves the Python AST with the standard library and recognizes
the patterns formed by Qwerty syntax (paper §4): string literals are
qubit literals, ``{...}`` sets are basis literals, ``+`` is tensor,
``>>`` is a basis translation, ``|`` is the pipe, ``&`` is predication,
``~`` is adjoint, subscripts broadcast, and attributes select
``.measure`` / ``.flip`` / ``.xor`` / ``.sign``.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Optional

from repro.errors import QwertyError, QwertySyntaxError, SourceSpan
from repro.frontend.ast_nodes import (
    AdjointExpr,
    AssignStmt,
    BasisLiteralExpr,
    BroadcastExpr,
    BuiltinBasisExpr,
    CondExpr,
    DimExpr,
    DimOp,
    DimRef,
    DiscardExpr,
    EmbedExpr,
    Expr,
    FlipExpr,
    ForStmt,
    IdExpr,
    KernelAST,
    KernelParam,
    MeasureExpr,
    ParamAnnotation,
    PipeExpr,
    PredExpr,
    QubitLiteralExpr,
    ReturnStmt,
    Stmt,
    TensorExpr,
    TranslationExpr,
    VariableExpr,
    VectorExpr,
)
from repro.parameters import Parameter, ParamExpr

_BUILTIN_BASES = {"std", "pm", "ij", "fourier"}
_ANNOTATION_KINDS = {"qubit", "bit", "cfunc", "qfunc", "rev_qfunc", "angle"}


class SourceMap:
    """Maps positions in a parsed (dedented) kernel source back to the
    user's file, producing :class:`SourceSpan` objects.

    ``line_offset`` is added to 1-based parse line numbers to obtain
    file line numbers; ``col_offset`` re-adds the indentation stripped
    by :func:`textwrap.dedent`.  ``lines`` holds the *original*
    (pre-dedent) source lines so rendered snippets match the file.
    """

    def __init__(
        self, file: str, line_offset: int, col_offset: int, lines: list[str]
    ) -> None:
        self.file = file
        self.line_offset = line_offset
        self.col_offset = col_offset
        self.lines = lines

    def span(self, node: ast.AST) -> Optional[SourceSpan]:
        lineno = getattr(node, "lineno", None)
        if lineno is None:
            return None
        end_lineno = getattr(node, "end_lineno", None) or lineno
        col = getattr(node, "col_offset", 0)
        end_col = getattr(node, "end_col_offset", None)
        if end_col is None:
            end_col = col
        index = lineno - 1
        snippet = self.lines[index] if 0 <= index < len(self.lines) else ""
        return SourceSpan(
            self.file,
            lineno + self.line_offset,
            col + self.col_offset + 1,
            end_lineno + self.line_offset,
            end_col + self.col_offset + 1,
            snippet,
        )


def parse_kernel(fn, dimvars: list[str]) -> KernelAST:
    """Retrieve and convert the Python AST of a kernel function."""
    source = inspect.getsource(fn)
    try:
        file = inspect.getsourcefile(fn) or "<unknown>"
    except TypeError:
        file = "<unknown>"
    code = getattr(fn, "__code__", None)
    line_offset = code.co_firstlineno - 1 if code is not None else 0
    return parse_kernel_source(
        source, dimvars, file=file, line_offset=line_offset
    )


def parse_kernel_source(
    source: str,
    dimvars: list[str],
    *,
    file: str = "<string>",
    line_offset: int = 0,
) -> KernelAST:
    """Convert kernel source text directly.

    Unlike :func:`parse_kernel` this never byte-compiles the source, so
    DSL constructs that CPython flags at compile time (e.g. subscripted
    set displays like ``{'0','1'}[64]``, a SyntaxWarning since the body
    is never *executed* as Python) parse silently.

    ``file`` and ``line_offset`` place the source in the user's file so
    the :class:`SourceSpan` stamped on every AST node (and rendered in
    diagnostics) uses real file coordinates.
    """
    original_lines = source.splitlines()
    source = textwrap.dedent(source)
    # The dedent margin comes from comparing dedent's actual output with
    # the original, so the column offset matches exactly what was
    # stripped (whatever dedent's common-prefix rules did).
    margin = next(
        (
            len(original) - len(dedented)
            for original, dedented in zip(
                original_lines, source.splitlines()
            )
            if dedented.strip()
        ),
        0,
    )
    tree = ast.parse(source)
    func_def = None
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func_def = node
            break
    if func_def is None:
        raise QwertySyntaxError("could not find the kernel function definition")

    source_map = SourceMap(file, line_offset, margin, original_lines)
    converter = _Converter(dimvars, source_map)
    params = [
        KernelParam(arg.arg, converter.annotation(arg.annotation))
        for arg in func_def.args.args
    ]
    return_annotation = (
        converter.annotation(func_def.returns) if func_def.returns else None
    )
    body = [converter.stmt(node) for node in func_def.body]
    kernel = KernelAST(func_def.name, params, return_annotation, body, dimvars)
    kernel.span = source_map.span(func_def)
    return kernel


class _Converter:
    def __init__(
        self, dimvars: list[str], source_map: Optional[SourceMap] = None
    ) -> None:
        self.dimvars = set(dimvars)
        self.source_map = source_map

    def span_of(self, node: ast.AST) -> Optional[SourceSpan]:
        return self.source_map.span(node) if self.source_map else None

    # ------------------------------------------------------------------
    # Dimension expressions.
    # ------------------------------------------------------------------
    def dim(self, node: ast.expr) -> DimExpr:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if isinstance(node, ast.Name):
            return DimRef(node.id)
        if isinstance(node, ast.BinOp):
            ops = {
                ast.Add: "+",
                ast.Sub: "-",
                ast.Mult: "*",
                ast.FloorDiv: "//",
                ast.Pow: "**",
            }
            for py_op, name in ops.items():
                if isinstance(node.op, py_op):
                    return DimOp(name, self.dim(node.left), self.dim(node.right))
        raise QwertySyntaxError(
            f"unsupported dimension expression: {ast.dump(node)}"
        )

    def annotation(self, node: ast.expr) -> ParamAnnotation:
        span = self.span_of(node)
        try:
            return self._annotation(node)
        except QwertyError as error:
            raise error.attach_span(span)

    def _annotation(self, node: ast.expr) -> ParamAnnotation:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotations ("cfunc[N, 1]") parse as expressions.
            node = ast.parse(node.value, mode="eval").body
        if isinstance(node, ast.Name):
            if node.id not in _ANNOTATION_KINDS:
                raise QwertySyntaxError(f"unknown type annotation {node.id!r}")
            return ParamAnnotation(
                node.id, [1] if node.id not in ("cfunc", "angle") else []
            )
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
            kind = node.value.id
            if kind not in _ANNOTATION_KINDS:
                raise QwertySyntaxError(f"unknown type annotation {kind!r}")
            index = node.slice
            if isinstance(index, ast.Tuple):
                dims = [self.dim(elt) for elt in index.elts]
            else:
                dims = [self.dim(index)]
            return ParamAnnotation(kind, dims)
        raise QwertySyntaxError(
            f"unsupported type annotation: {ast.dump(node)}"
        )

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------
    def stmt(self, node: ast.stmt) -> Stmt:
        """Convert one statement, stamping its source span; errors from
        the conversion are annotated with the span before re-raising."""
        span = self.span_of(node)
        try:
            converted = self._stmt(node)
        except QwertyError as error:
            raise error.attach_span(span)
        if converted.span is None:
            converted.span = span
        return converted

    def _stmt(self, node: ast.stmt) -> Stmt:
        if isinstance(node, ast.Return):
            if node.value is None:
                raise QwertySyntaxError("kernels must return a value")
            return ReturnStmt(self.expr(node.value))
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1:
                raise QwertySyntaxError("chained assignment is not supported")
            target = node.targets[0]
            if isinstance(target, ast.Name):
                names = [target.id]
            elif isinstance(target, ast.Tuple) and all(
                isinstance(elt, ast.Name) for elt in target.elts
            ):
                names = [elt.id for elt in target.elts]
            else:
                raise QwertySyntaxError("unsupported assignment target")
            return AssignStmt(names, self.expr(node.value))
        if isinstance(node, ast.For):
            if not (
                isinstance(node.iter, ast.Call)
                and isinstance(node.iter.func, ast.Name)
                and node.iter.func.id == "range"
                and len(node.iter.args) == 1
            ):
                raise QwertySyntaxError("only `for _ in range(n)` loops are supported")
            if not isinstance(node.target, ast.Name):
                raise QwertySyntaxError("loop target must be a name")
            body = [self.stmt(inner) for inner in node.body]
            return ForStmt(node.target.id, self.dim(node.iter.args[0]), body)
        if isinstance(node, ast.Expr):
            raise QwertySyntaxError(
                "expression statements are not allowed (qubits are linear)"
            )
        raise QwertySyntaxError(f"unsupported statement: {ast.dump(node)}")

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------
    def expr(self, node: ast.expr) -> Expr:
        """Convert one expression, stamping its source span (innermost
        span wins when a conversion returns a child node unchanged)."""
        span = self.span_of(node)
        try:
            converted = self._expr(node)
        except QwertyError as error:
            raise error.attach_span(span)
        if converted.span is None:
            converted.span = span
        return converted

    def _expr(self, node: ast.expr) -> Expr:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return QubitLiteralExpr(node.value)
        if isinstance(node, ast.Set):
            return BasisLiteralExpr([self.vector(elt) for elt in node.elts])
        if isinstance(node, ast.Name):
            return self.name(node.id)
        if isinstance(node, ast.BinOp):
            return self.binop(node)
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Invert):
                return AdjointExpr(self.expr(node.operand))
            if isinstance(node.op, ast.USub):
                operand = self.expr(node.operand)
                if isinstance(operand, QubitLiteralExpr):
                    operand.phase += 180.0
                    return operand
            raise QwertySyntaxError("unsupported unary operator")
        if isinstance(node, ast.Subscript):
            return self.subscript(node)
        if isinstance(node, ast.Attribute):
            return self.attribute(node)
        if isinstance(node, ast.IfExp):
            return CondExpr(
                self.expr(node.body),
                self.expr(node.orelse),
                self.expr(node.test),
            )
        raise QwertySyntaxError(f"unsupported expression: {ast.dump(node)}")

    def name(self, identifier: str) -> Expr:
        if identifier in _BUILTIN_BASES:
            return BuiltinBasisExpr(identifier, 1)
        if identifier == "id":
            return IdExpr(1)
        if identifier == "discard":
            return DiscardExpr(1)
        return VariableExpr(identifier)

    def vector(self, node: ast.expr) -> VectorExpr:
        phase = 0.0
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            phase += 180.0
            node = node.operand
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            phase += self.angle(node.right)
            node = node.left
        chars, extra_phase, repeat = self._vector_chars(node)
        return VectorExpr(chars, phase + extra_phase, repeat)

    def _vector_chars(self, node: ast.expr):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value, 0.0, 1
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            chars, phase, repeat = self._vector_chars(node.operand)
            return chars, phase + 180.0, repeat
        if isinstance(node, ast.Subscript):
            # 'p'[N] inside a literal: a (possibly symbolic) repeat.
            chars, phase, repeat = self._vector_chars(node.value)
            if repeat != 1:
                raise QwertySyntaxError("nested vector broadcasts")
            return chars, phase, self.dim(node.slice)
        raise QwertySyntaxError("basis literal vectors must be qubit literals")

    def angle(self, node: ast.expr):
        if isinstance(node, ast.Constant) and isinstance(
            node.value, (int, float)
        ):
            return float(node.value)
        if isinstance(node, ast.Name):
            # A named angle: a placeholder ParamExpr carrying the
            # identifier.  After expansion the pipeline resolves it
            # against the kernel's captures — to a concrete float for
            # numeric captures, or to the captured Parameter symbol
            # for symbolic ones (see pipeline._resolve_angle_captures).
            return ParamExpr.of(Parameter(node.id))
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -self.angle(node.operand)
        if isinstance(node, ast.BinOp):
            ops = {
                ast.Add: lambda a, b: a + b,
                ast.Sub: lambda a, b: a - b,
                ast.Mult: lambda a, b: a * b,
                ast.Div: lambda a, b: a / b,
            }
            for py_op, fn in ops.items():
                if isinstance(node.op, py_op):
                    return fn(self.angle(node.left), self.angle(node.right))
        raise QwertySyntaxError(
            "phases must be numeric constants or angle-annotated "
            "kernel parameters"
        )

    def binop(self, node: ast.BinOp) -> Expr:
        if isinstance(node.op, ast.Add):
            left = self.expr(node.left)
            right = self.expr(node.right)
            parts = []
            for part in (left, right):
                if isinstance(part, TensorExpr):
                    parts.extend(part.parts)
                else:
                    parts.append(part)
            return TensorExpr(parts)
        if isinstance(node.op, ast.RShift):
            return TranslationExpr(self.expr(node.left), self.expr(node.right))
        if isinstance(node.op, ast.BitOr):
            return PipeExpr(self.expr(node.left), self.expr(node.right))
        if isinstance(node.op, ast.BitAnd):
            return PredExpr(self.expr(node.left), self.expr(node.right))
        if isinstance(node.op, ast.MatMult):
            operand = self.expr(node.left)
            if isinstance(operand, QubitLiteralExpr):
                operand.phase += self.angle(node.right)
                return operand
            raise QwertySyntaxError("@ phase applies only to qubit literals")
        raise QwertySyntaxError(
            f"unsupported binary operator: {ast.dump(node.op)}"
        )

    def subscript(self, node: ast.Subscript) -> Expr:
        count = self.dim(node.slice)
        base = self.expr(node.value)
        if isinstance(base, BuiltinBasisExpr) and base.dim == 1:
            # fourier[N] is one N-dimensional basis, not a broadcast,
            # and the same representation works for separable bases.
            return BuiltinBasisExpr(base.prim, count)
        if isinstance(base, IdExpr):
            return IdExpr(count)
        if isinstance(base, DiscardExpr):
            return DiscardExpr(count)
        return BroadcastExpr(base, count)

    def attribute(self, node: ast.Attribute) -> Expr:
        if node.attr == "measure":
            return MeasureExpr(self.expr(node.value))
        if node.attr == "discard":
            return DiscardExpr(1, self.expr(node.value))
        if node.attr == "flip":
            return FlipExpr(self.expr(node.value))
        if node.attr in ("xor", "sign"):
            if not isinstance(node.value, ast.Name):
                raise QwertySyntaxError(
                    ".xor/.sign apply to captured @classical functions"
                )
            return EmbedExpr(node.value.id, node.attr)
        raise QwertySyntaxError(f"unknown attribute .{node.attr}")
