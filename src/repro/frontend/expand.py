"""AST expansion (paper §4): dimension variable substitution, loop
unrolling, and broadcast expansion (``expr[N]`` into ``expr + ... +
expr``)."""

from __future__ import annotations

import copy

from repro.errors import DimVarError, QwertyError
from repro.frontend.ast_nodes import (
    AssignStmt,
    BasisLiteralExpr,
    BroadcastExpr,
    BuiltinBasisExpr,
    CondExpr,
    DiscardExpr,
    EmbedExpr,
    Expr,
    FlipExpr,
    ForStmt,
    IdExpr,
    KernelAST,
    MeasureExpr,
    PipeExpr,
    PredExpr,
    AdjointExpr,
    QubitLiteralExpr,
    ReturnStmt,
    Stmt,
    TensorExpr,
    TranslationExpr,
    VariableExpr,
    eval_dim,
)


def expand_kernel(kernel: KernelAST, dims: dict[str, int]) -> KernelAST:
    """Substitute dimension values and unroll loops and broadcasts."""
    for name in kernel.dimvars:
        if name not in dims:
            raise DimVarError(
                f"dimension variable {name} of @{kernel.name} is unbound"
            )
    expander = _Expander(dims)
    body = expander.stmts(kernel.body)
    expanded = KernelAST(
        kernel.name,
        kernel.params,
        kernel.return_annotation,
        body,
        kernel.dimvars,
        kernel.span,
    )
    return expanded


class _Expander:
    def __init__(self, dims: dict[str, int]) -> None:
        self.dims = dict(dims)

    def stmts(self, body: list[Stmt]) -> list[Stmt]:
        out: list[Stmt] = []
        for stmt in body:
            if isinstance(stmt, ForStmt):
                count = eval_dim(stmt.count, self.dims)
                for iteration in range(count):
                    self.dims[stmt.var] = iteration
                    out.extend(self.stmts(copy.deepcopy(stmt.body)))
                self.dims.pop(stmt.var, None)
            elif isinstance(stmt, AssignStmt):
                expanded = AssignStmt(stmt.targets, self.expr(stmt.value))
                expanded.span = stmt.span
                out.append(expanded)
            elif isinstance(stmt, ReturnStmt):
                expanded = ReturnStmt(self.expr(stmt.value))
                expanded.span = stmt.span
                out.append(expanded)
            else:
                out.append(stmt)
        return out

    def expr(self, node: Expr) -> Expr:
        """Expand one expression; expanded nodes inherit the span of the
        node they came from, and dimension errors are annotated with it."""
        try:
            expanded = self._expand(node)
        except QwertyError as error:
            raise error.attach_span(getattr(node, "span", None))
        if getattr(expanded, "span", None) is None and isinstance(
            expanded, Expr
        ):
            expanded.span = node.span
        return expanded

    def _expand(self, node: Expr) -> Expr:
        if isinstance(node, BroadcastExpr):
            operand = self.expr(node.operand)
            count = eval_dim(node.count, self.dims)
            if count < 1:
                raise DimVarError("broadcast count must be >= 1")
            if isinstance(operand, QubitLiteralExpr):
                return QubitLiteralExpr(
                    operand.chars * count, operand.phase * count
                )
            parts = [copy.deepcopy(operand) for _ in range(count)]
            return TensorExpr(parts)
        if isinstance(node, BuiltinBasisExpr):
            return BuiltinBasisExpr(node.prim, eval_dim(node.dim, self.dims))
        if isinstance(node, IdExpr):
            return IdExpr(eval_dim(node.dim, self.dims))
        if isinstance(node, DiscardExpr):
            basis = self.expr(node.basis) if node.basis is not None else None
            return DiscardExpr(eval_dim(node.dim, self.dims), basis)
        if isinstance(node, TensorExpr):
            return TensorExpr([self.expr(part) for part in node.parts])
        if isinstance(node, TranslationExpr):
            return TranslationExpr(self.expr(node.b_in), self.expr(node.b_out))
        if isinstance(node, PipeExpr):
            return PipeExpr(self.expr(node.value), self.expr(node.fn))
        if isinstance(node, AdjointExpr):
            return AdjointExpr(self.expr(node.fn))
        if isinstance(node, PredExpr):
            return PredExpr(self.expr(node.basis), self.expr(node.fn))
        if isinstance(node, MeasureExpr):
            return MeasureExpr(self.expr(node.basis))
        if isinstance(node, FlipExpr):
            return FlipExpr(self.expr(node.basis))
        if isinstance(node, CondExpr):
            return CondExpr(
                self.expr(node.then_fn),
                self.expr(node.else_fn),
                self.expr(node.cond),
            )
        if isinstance(node, BasisLiteralExpr):
            from repro.frontend.ast_nodes import VectorExpr

            vectors = []
            for vec in node.vectors:
                count = eval_dim(vec.repeat, self.dims)
                vectors.append(VectorExpr(vec.chars * count, vec.phase, 1))
            return BasisLiteralExpr(vectors)
        if isinstance(node, (QubitLiteralExpr, EmbedExpr, VariableExpr)):
            return node
        raise DimVarError(f"cannot expand node {node!r}")
