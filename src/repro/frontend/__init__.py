"""The Qwerty frontend: a Python-embedded DSL (paper §4).

``@qpu`` kernels and ``@classical`` functions are written as ordinary
Python functions; the decorators retrieve their Python AST with the
standard ``ast`` module (no interpreter changes), convert it to a typed
Qwerty AST, infer and expand dimension variables, type check (including
linear qubit types and span equivalence), canonicalize, and lower to
Qwerty IR.
"""

from repro.frontend.decorators import (
    Bits,
    DimVar,
    I,
    J,
    K,
    M,
    N,
    bit,
    classical,
    qpu,
)

__all__ = [
    "Bits",
    "DimVar",
    "I",
    "J",
    "K",
    "M",
    "N",
    "bit",
    "classical",
    "qpu",
]
