"""The ``@qpu`` and ``@classical`` decorators (paper §4).

The decorators retrieve the Python AST of the decorated function; no
changes to the Python interpreter are needed.  Dimension variables are
pre-declared symbols (``N``, ``M``, ``K``, ``I``, ``J``) used in
subscripts like ``@qpu[N](f)``; ASDF infers their values from the types
of captures when possible (e.g. ``N`` from the length of a captured
secret bit string), and remaining variables can be bound by
subscripting the kernel (``kernel[12]``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import DimVarError, QwertyTypeError
from repro.frontend.ast_nodes import DimRef, eval_dim
from repro.frontend.types import AngleType, BitType, CFuncType, QwertyType
from repro.parameters import Parameter, ParamExpr


@dataclass(frozen=True)
class DimVar:
    """A dimension variable symbol, e.g. ``N`` in ``@qpu[N](f)``.

    Arithmetic returns the symbol itself so annotations like
    ``bit[2 * N + 1]`` evaluate harmlessly at function-definition time;
    the compiler reads the annotation's AST, never its runtime value.
    """

    name: str

    def __repr__(self) -> str:
        return self.name

    def _arith(self, *_args) -> "DimVar":
        return self

    __add__ = __radd__ = _arith
    __sub__ = __rsub__ = _arith
    __mul__ = __rmul__ = _arith
    __floordiv__ = __rfloordiv__ = _arith
    __pow__ = __rpow__ = _arith


N = DimVar("N")
M = DimVar("M")
K = DimVar("K")
I = DimVar("I")  # noqa: E741 - matches the paper's variable names.
J = DimVar("J")


class Bits:
    """A classical bit string value (the runtime form of ``bit[N]``)."""

    def __init__(self, values: Iterable[int]) -> None:
        self.values = tuple(int(v) for v in values)
        if any(v not in (0, 1) for v in self.values):
            raise QwertyTypeError("bits must be 0 or 1")

    @classmethod
    def from_str(cls, text: str) -> "Bits":
        return cls(int(ch) for ch in text)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Bits(self.values[index])
        return self.values[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, Bits):
            return self.values == other.values
        if isinstance(other, str):
            return str(self) == other
        if isinstance(other, tuple):
            return self.values == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.values)

    def __int__(self) -> int:
        value = 0
        for bit_value in self.values:
            value = (value << 1) | bit_value
        return value

    def __str__(self) -> str:
        return "".join(str(v) for v in self.values)

    def __repr__(self) -> str:
        return f"Bits('{self}')"


class _TypeMarker:
    """Placeholder returned by ``bit[N]`` etc. so that annotations
    evaluate without error; the compiler reads the AST, not these."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __getitem__(self, item) -> "_TypeMarker":
        return self

    def __call__(self, *args, **kwargs):
        raise QwertyTypeError(f"{self.name} is a type annotation, not a value")


class _BitMarker(_TypeMarker):
    """``bit`` doubles as the Bits factory (``bit.from_str``)."""

    @staticmethod
    def from_str(text: str) -> Bits:
        return Bits.from_str(text)


bit = _BitMarker("bit")
qubit = _TypeMarker("qubit")
cfunc = _TypeMarker("cfunc")
qfunc = _TypeMarker("qfunc")
rev_qfunc = _TypeMarker("rev_qfunc")
angle = _TypeMarker("angle")


def _as_dimvar_list(item) -> list[str]:
    if isinstance(item, DimVar):
        return [item.name]
    if isinstance(item, tuple):
        return [dim.name for dim in item]
    raise DimVarError("subscript decorators with dimension variables")


# ----------------------------------------------------------------------
# @classical
# ----------------------------------------------------------------------
class ClassicalFunction:
    """A parsed ``@classical`` function plus its captures."""

    def __init__(self, fn, dimvars: list[str], captures: tuple) -> None:
        from repro.classical.pyast import parse_classical_source

        self.python_fn = fn
        self.name, self.params, self.body = parse_classical_source(fn)
        self.dimvars = dimvars
        self.capture_values: dict[str, tuple[int, ...]] = {}
        for (param_name, _dim), capture in zip(self.params, captures):
            if not isinstance(capture, Bits):
                raise QwertyTypeError(
                    "@classical captures must be bit strings"
                )
            self.capture_values[param_name] = capture.values

    def infer_dims(self) -> dict[str, int]:
        dims: dict[str, int] = {}
        for param_name, dim in self.params:
            if param_name in self.capture_values:
                width = len(self.capture_values[param_name])
                if isinstance(dim, DimRef):
                    if dims.get(dim.name, width) != width:
                        raise DimVarError(
                            f"conflicting values for {dim.name}"
                        )
                    dims[dim.name] = width
                elif isinstance(dim, int) and dim != width:
                    raise QwertyTypeError(
                        f"capture {param_name!r} width mismatch"
                    )
        return dims

    def signature(self, dims: dict[str, int]) -> tuple[int, int]:
        """(input width, output width) once dims are known."""
        network = self.network(dims)
        return network.num_inputs, len(network.outputs)

    def network(self, dims: dict[str, int]):
        from repro.classical.pyast import build_network

        widths = [
            (name, eval_dim(dim, dims)) for name, dim in self.params
        ]
        return build_network(self.body, widths, self.capture_values, dims)

    def evaluate(self, bits: Bits, dims: Optional[dict[str, int]] = None) -> Bits:
        """Run the classical function on concrete bits (for testing)."""
        dims = dims if dims is not None else self.infer_dims()
        network = self.network(dims)
        return Bits(network.evaluate(list(bits)))


class _ClassicalFactory:
    def __init__(self, dimvars: list[str] = ()) -> None:
        self.dimvars = list(dimvars)

    def __getitem__(self, item) -> "_ClassicalFactory":
        return _ClassicalFactory(_as_dimvar_list(item))

    def __call__(self, *args):
        if len(args) == 1 and callable(args[0]) and not isinstance(args[0], Bits):
            return ClassicalFunction(args[0], self.dimvars, ())
        captures = args

        def decorate(fn):
            return ClassicalFunction(fn, self.dimvars, captures)

        return decorate


classical = _ClassicalFactory()


# ----------------------------------------------------------------------
# @qpu
# ----------------------------------------------------------------------
class QpuKernel:
    """A parsed ``@qpu`` kernel: compile lazily, simulate on call."""

    def __init__(self, fn, dimvars: list[str], captures: tuple,
                 bound_dims: Optional[dict[str, int]] = None) -> None:
        from repro.frontend.pyast import parse_kernel

        self.python_fn = fn
        self.dimvars = dimvars
        self.kernel_ast = parse_kernel(fn, dimvars)
        self.name = self.kernel_ast.name
        self.captures: dict[str, object] = {}
        for param, capture in zip(self.kernel_ast.params, captures):
            self.captures[param.name] = capture
        self.bound_dims = dict(bound_dims or {})
        self._compiled = None

    # ------------------------------------------------------------------
    def __getitem__(self, item) -> "QpuKernel":
        """Bind remaining dimension variables positionally."""
        values = item if isinstance(item, tuple) else (item,)
        inferred = self.infer_dims(allow_unbound=True)
        unbound = [name for name in self.dimvars if name not in inferred]
        if len(values) > len(unbound):
            raise DimVarError("too many dimension values")
        bound = dict(self.bound_dims)
        for name, value in zip(unbound, values):
            bound[name] = int(value)
        clone = QpuKernel(
            self.python_fn,
            self.dimvars,
            (),
            bound,
        )
        clone.captures = dict(self.captures)
        return clone

    def infer_dims(self, allow_unbound: bool = False) -> dict[str, int]:
        """Infer dimension variables from capture types (paper §4)."""
        dims = dict(self.bound_dims)
        for param in self.kernel_ast.params:
            capture = self.captures.get(param.name)
            if capture is None:
                continue
            annotation = param.annotation
            if isinstance(capture, ClassicalFunction):
                try:
                    inner = capture.infer_dims()
                    n_in, n_out = capture.signature({**inner, **dims})
                except DimVarError:
                    continue  # Not inferable from this capture alone.
                if annotation.kind == "cfunc" and annotation.dims:
                    self._unify(dims, annotation.dims[0], n_in)
                    if len(annotation.dims) > 1:
                        self._unify(dims, annotation.dims[1], n_out)
            elif isinstance(capture, Bits):
                if annotation.kind == "bit" and annotation.dims:
                    self._unify(dims, annotation.dims[0], len(capture))
            elif isinstance(capture, QpuKernel):
                pass  # Dimensions of kernel captures are explicit.
        missing = [name for name in self.dimvars if name not in dims]
        if missing and not allow_unbound:
            raise DimVarError(
                f"could not infer dimension variables {missing} of "
                f"@{self.name}; bind them with kernel{missing}",
                span=self.kernel_ast.span,
            )
        return dims

    @staticmethod
    def _unify(dims: dict[str, int], dim_expr, value: int) -> None:
        if isinstance(dim_expr, DimRef):
            existing = dims.get(dim_expr.name)
            if existing is not None and existing != value:
                raise DimVarError(
                    f"conflicting values for {dim_expr.name}: "
                    f"{existing} vs {value}"
                )
            dims[dim_expr.name] = value
        elif isinstance(dim_expr, int) and dim_expr != value:
            raise QwertyTypeError("capture width mismatch")

    def capture_types(self, dims: dict[str, int]) -> dict[str, QwertyType]:
        types: dict[str, QwertyType] = {}
        for name, capture in self.captures.items():
            if isinstance(capture, ClassicalFunction):
                inner = capture.infer_dims()
                n_in, n_out = capture.signature({**inner, **dims})
                types[name] = CFuncType(n_in, n_out)
            elif isinstance(capture, Bits):
                types[name] = BitType(len(capture))
            elif isinstance(capture, (Parameter, ParamExpr)):
                types[name] = AngleType()
            elif isinstance(capture, (int, float)) and not isinstance(
                capture, bool
            ):
                types[name] = AngleType()
            else:
                raise QwertyTypeError(
                    f"unsupported capture type {type(capture).__name__}"
                )
        return types

    # ------------------------------------------------------------------
    def compile(self, **options):
        from repro.pipeline import compile_kernel

        return compile_kernel(self, **options)

    def __call__(
        self,
        shots: int = 1,
        seed: int = 0,
        backend: str | None = None,
        noise_model=None,
        params=None,
        parallel_workers: int | None = None,
    ):
        """Compile, simulate, and return the measured bits.

        ``backend`` names a simulation backend (docs/simulators.md);
        the default vectorized backend samples all shots from one
        statevector evolution whenever the circuit allows it.
        ``noise_model`` (a :class:`repro.noise.NoiseModel`) executes
        the compiled circuit under noise (docs/noise.md).
        ``params`` maps :class:`repro.parameters.Parameter` names (or
        Parameter objects) to concrete angles; the kernel is compiled
        once symbolically and bound per call (docs/variational.md).
        ``parallel_workers`` shards the shot chunks across a process
        pool (:mod:`repro.exec`; ``0`` = one worker per core,
        docs/performance.md).
        """
        from repro.pipeline import simulate_kernel

        results = simulate_kernel(
            self,
            shots=shots,
            seed=seed,
            backend=backend,
            noise_model=noise_model,
            params=params,
            parallel_workers=parallel_workers,
        )
        if shots == 1:
            return results[0]
        return results

    def histogram(
        self,
        shots: int = 128,
        seed: int = 0,
        backend: str | None = None,
        noise_model=None,
        params=None,
        parallel_workers: int | None = None,
    ) -> dict[str, int]:
        from repro.pipeline import simulate_kernel

        counts: dict[str, int] = {}
        for result in simulate_kernel(
            self,
            shots=shots,
            seed=seed,
            backend=backend,
            noise_model=noise_model,
            params=params,
            parallel_workers=parallel_workers,
        ):
            counts[str(result)] = counts.get(str(result), 0) + 1
        return counts


class _QpuFactory:
    def __init__(self, dimvars: list[str] = ()) -> None:
        self.dimvars = list(dimvars)

    def __getitem__(self, item) -> "_QpuFactory":
        return _QpuFactory(_as_dimvar_list(item))

    def __call__(self, *args):
        if (
            len(args) == 1
            and callable(args[0])
            and not isinstance(args[0], (Bits, ClassicalFunction, QpuKernel))
        ):
            return QpuKernel(args[0], self.dimvars, ())
        captures = args

        def decorate(fn):
            return QpuKernel(fn, self.dimvars, captures)

        return decorate


qpu = _QpuFactory()
