"""AST canonicalization (paper §4.2).

Rewrites performed after type checking:

* ``~~f`` becomes ``f``;
* ``std[N] & f`` becomes ``id[N] + f`` (``std[N]`` fully spans);
* ``~(b1 >> b2)`` becomes ``b2 >> b1``;
* ``b3 & (b1 >> b2)`` becomes ``b3 + b1 >> b3 + b2``; and
* float constant folding (already performed during parsing, since
  phases are evaluated to constants by the converter).

These run at the AST level because they take ~5 lines here versus ~50
at the IR level (paper §4.2).
"""

from __future__ import annotations

from repro.frontend.ast_nodes import (
    AdjointExpr,
    AssignStmt,
    BuiltinBasisExpr,
    CondExpr,
    Expr,
    IdExpr,
    KernelAST,
    MeasureExpr,
    PipeExpr,
    PredExpr,
    ReturnStmt,
    Stmt,
    TensorExpr,
    TranslationExpr,
)


def canonicalize_kernel(kernel: KernelAST) -> KernelAST:
    body: list[Stmt] = []
    for stmt in kernel.body:
        if isinstance(stmt, AssignStmt):
            rewritten: Stmt = AssignStmt(stmt.targets, _rewrite(stmt.value))
        elif isinstance(stmt, ReturnStmt):
            rewritten = ReturnStmt(_rewrite(stmt.value))
        else:
            body.append(stmt)
            continue
        rewritten.span = stmt.span
        body.append(rewritten)
    return KernelAST(
        kernel.name,
        kernel.params,
        kernel.return_annotation,
        body,
        kernel.dimvars,
        kernel.span,
    )


def _rewrite(node: Expr) -> Expr:
    rewritten = _rewrite_node(node)
    # Rewritten expressions inherit the span of what they replace.
    if rewritten is not node and rewritten.span is None:
        rewritten.span = node.span
    return rewritten


def _rewrite_node(node: Expr) -> Expr:
    node = _rewrite_children(node)

    # ~~f -> f.
    if isinstance(node, AdjointExpr) and isinstance(node.fn, AdjointExpr):
        return node.fn.fn
    # ~(b1 >> b2) -> b2 >> b1.
    if isinstance(node, AdjointExpr) and isinstance(node.fn, TranslationExpr):
        inner = node.fn
        swapped = TranslationExpr(inner.b_out, inner.b_in)
        if hasattr(inner, "resolved_in"):
            swapped.resolved_in = inner.resolved_out
            swapped.resolved_out = inner.resolved_in
        swapped.type = None if inner.type is None else _flip_func_type(inner.type)
        swapped.span = node.span
        return swapped
    if isinstance(node, PredExpr):
        # std[N] & f -> id[N] + f.
        if (
            isinstance(node.basis, BuiltinBasisExpr)
            and node.basis.prim == "std"
        ):
            id_expr = IdExpr(node.basis.dim)
            id_expr.span = node.basis.span
            tensor = TensorExpr([id_expr, node.fn])
            tensor.type = node.type
            tensor.span = node.span
            return tensor
        # b3 & (b1 >> b2) -> b3 + b1 >> b3 + b2.
        if isinstance(node.fn, TranslationExpr):
            inner = node.fn
            combined = TranslationExpr(
                TensorExpr([node.basis, inner.b_in]),
                TensorExpr([node.basis, inner.b_out]),
            )
            if hasattr(inner, "resolved_in") and hasattr(node, "resolved_basis"):
                combined.resolved_in = node.resolved_basis.tensor(
                    inner.resolved_in
                )
                combined.resolved_out = node.resolved_basis.tensor(
                    inner.resolved_out
                )
            combined.type = node.type
            combined.span = node.span
            return combined
    return node


def _flip_func_type(type):
    from repro.frontend.types import FuncType

    if isinstance(type, FuncType):
        return FuncType(type.output, type.input, type.reversible)
    return type


def _rewrite_children(node: Expr) -> Expr:
    for attr in ("value", "fn", "b_in", "b_out", "basis", "then_fn",
                 "else_fn", "cond", "operand"):
        child = getattr(node, attr, None)
        if isinstance(child, Expr):
            setattr(node, attr, _rewrite(child))
    if isinstance(node, TensorExpr):
        node.parts = [_rewrite(part) for part in node.parts]
    return node
