"""The typed Qwerty AST (paper §4).

Dimension expressions (:class:`DimExpr`) stay symbolic until expansion
substitutes concrete values.  After expansion and type checking, every
expression node carries its inferred :class:`QwertyType` in ``type``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import DimVarError, SourceSpan
from repro.frontend.types import QwertyType

# ----------------------------------------------------------------------
# Dimension expressions.
# ----------------------------------------------------------------------
DimExpr = Union[int, "DimRef", "DimOp"]


@dataclass(frozen=True)
class DimRef:
    name: str


@dataclass(frozen=True)
class DimOp:
    op: str  # '+', '-', '*', '//', '**'
    left: DimExpr
    right: DimExpr


def eval_dim(dim: DimExpr, env: dict[str, int]) -> int:
    if isinstance(dim, int):
        return dim
    if isinstance(dim, DimRef):
        if dim.name not in env:
            raise DimVarError(f"dimension variable {dim.name} is unbound")
        return env[dim.name]
    left = eval_dim(dim.left, env)
    right = eval_dim(dim.right, env)
    ops = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "//": lambda a, b: a // b,
        "**": lambda a, b: a**b,
    }
    return ops[dim.op](left, right)


# ----------------------------------------------------------------------
# Expressions.
# ----------------------------------------------------------------------
@dataclass
class Expr:
    type: Optional[QwertyType] = field(default=None, init=False, repr=False)
    #: Where this expression came from in the user's Python source,
    #: stamped by the converter (repro.frontend.pyast) and preserved by
    #: expansion/canonicalization so every layer can point back at it.
    span: Optional[SourceSpan] = field(default=None, init=False, repr=False)


@dataclass
class QubitLiteralExpr(Expr):
    """A qubit literal such as ``'p0'`` (mixed primitive bases allowed)."""

    chars: str
    phase: float = 0.0  # Degrees; global for the literal.


@dataclass
class VectorExpr:
    """A basis-literal vector: chars, an optional phase in degrees, and
    an optional symbolic repeat count (``'p'[N]`` inside a literal)."""

    chars: str
    phase: float = 0.0
    repeat: DimExpr = 1


@dataclass
class BasisLiteralExpr(Expr):
    vectors: list[VectorExpr] = field(default_factory=list)


@dataclass
class BuiltinBasisExpr(Expr):
    prim: str  # 'std' | 'pm' | 'ij' | 'fourier'
    dim: DimExpr = 1


@dataclass
class TensorExpr(Expr):
    parts: list[Expr] = field(default_factory=list)


@dataclass
class BroadcastExpr(Expr):
    """``expr[N]``: the N-fold tensor product of ``expr``."""

    operand: Expr = None
    count: DimExpr = 1


@dataclass
class TranslationExpr(Expr):
    """A basis translation ``b_in >> b_out``."""

    b_in: Expr = None
    b_out: Expr = None


@dataclass
class PipeExpr(Expr):
    """``value | fn``."""

    value: Expr = None
    fn: Expr = None


@dataclass
class AdjointExpr(Expr):
    """``~f``."""

    fn: Expr = None


@dataclass
class PredExpr(Expr):
    """``b & f``."""

    basis: Expr = None
    fn: Expr = None


@dataclass
class MeasureExpr(Expr):
    """``b.measure``."""

    basis: Expr = None


@dataclass
class FlipExpr(Expr):
    """``b.flip``: sugar for ``b >> reversed-b`` on one-qubit bases."""

    basis: Expr = None


@dataclass
class EmbedExpr(Expr):
    """``f.xor`` or ``f.sign`` for a @classical capture ``f``."""

    capture_name: str = ""
    kind: str = "xor"  # 'xor' | 'sign'


@dataclass
class IdExpr(Expr):
    """``id``: the identity function on qubits."""

    dim: DimExpr = 1


@dataclass
class DiscardExpr(Expr):
    """``discard`` / ``b.discard``: consumes qubits (irreversible)."""

    dim: DimExpr = 1
    basis: Optional["Expr"] = None


@dataclass
class VariableExpr(Expr):
    name: str = ""


@dataclass
class CondExpr(Expr):
    """``f if cond else g`` on classical ``cond``."""

    then_fn: Expr = None
    else_fn: Expr = None
    cond: Expr = None


# ----------------------------------------------------------------------
# Statements.
# ----------------------------------------------------------------------
@dataclass
class Stmt:
    span: Optional[SourceSpan] = field(default=None, init=False, repr=False)


@dataclass
class AssignStmt(Stmt):
    targets: list[str]
    value: Expr


@dataclass
class ReturnStmt(Stmt):
    value: Expr


@dataclass
class ForStmt(Stmt):
    """``for var in range(count)``, fully unrolled during expansion."""

    var: str
    count: DimExpr
    body: list[Stmt]


@dataclass
class KernelParam:
    name: str
    annotation: "ParamAnnotation"


@dataclass
class ParamAnnotation:
    """A parsed parameter annotation: kind plus dimension expressions."""

    kind: str  # 'qubit' | 'bit' | 'cfunc' | 'qfunc' | 'rev_qfunc'
    dims: list[DimExpr] = field(default_factory=list)


@dataclass
class KernelAST:
    """A parsed @qpu kernel before expansion."""

    name: str
    params: list[KernelParam]
    return_annotation: Optional[ParamAnnotation]
    body: list[Stmt]
    dimvars: list[str]
    span: Optional[SourceSpan] = None
