"""Noise modeling: Kraus channels, readout errors, and noise models.

The fifth-layer scenario axis of the reproduction: every circuit the
compiler emits can execute under a :class:`NoiseModel`, either exactly
(the ``density_matrix`` backend evolves :math:`\\rho` through each
channel's Kraus sum) or stochastically (the ``statevector`` /
``interpreter`` backends unravel each channel into per-trajectory Kraus
draws).  See docs/noise.md for the channel zoo, attachment rules, and
the memory/accuracy trade-offs between the two executions.
"""

from repro.noise.channels import (
    KrausChannel,
    ReadoutError,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    phase_damping,
    phase_flip,
)
from repro.noise.model import (
    NoiseModel,
    NoiseStats,
    effective_noise_model,
    standard_noise_model,
)

__all__ = [
    "KrausChannel",
    "NoiseModel",
    "NoiseStats",
    "ReadoutError",
    "amplitude_damping",
    "bit_flip",
    "bit_phase_flip",
    "depolarizing",
    "effective_noise_model",
    "phase_damping",
    "phase_flip",
    "standard_noise_model",
]
