"""Kraus-channel primitives and the readout-error confusion matrix.

A :class:`KrausChannel` is a completely-positive trace-preserving (CPTP)
map given by operators :math:`\\{K_i\\}` with
:math:`\\sum_i K_i^\\dagger K_i = I`; it acts on a density matrix as
:math:`\\rho \\mapsto \\sum_i K_i \\rho K_i^\\dagger`.  The constructor
*validates* the completeness relation, so a channel object is CPTP by
construction everywhere downstream — the density-matrix backend applies
the sum exactly, and the trajectory engines unravel it stochastically
(draw operator ``i`` with probability :math:`\\|K_i|\\psi\\rangle\\|^2`).

The channel zoo covers the standard single-qubit noise processes
(depolarizing, bit/phase/bit-phase flip, amplitude and phase damping)
plus an ``n``-qubit depolarizing channel; anything else can be built by
passing raw operators to :class:`KrausChannel` directly.  See
docs/noise.md.
"""

from __future__ import annotations

import itertools
import math
from typing import Sequence

import numpy as np

from repro.errors import NoiseError

#: Operators whose largest entry is below this are dropped (e.g. the
#: X/Y/Z legs of ``depolarizing(0.0)``), keeping unraveling free of
#: zero-probability draws; the completeness relation is re-checked on
#: what remains.
_NEGLIGIBLE = 1e-12

#: Tolerance for the CPTP completeness check sum(K^dag K) == I.
_CPTP_ATOL = 1e-9


class KrausChannel:
    """A validated CPTP channel: named Kraus operators on ``num_qubits``.

    ``operators`` are ``(2^k, 2^k)`` complex matrices sharing one shape;
    the constructor checks the completeness relation and freezes them
    (they are shared by every simulator that applies the channel).
    Equality compares the operator tuples elementwise, so two separately
    constructed ``bit_flip(0.1)`` channels compare equal.
    """

    def __init__(
        self, name: str, operators: Sequence[np.ndarray]
    ) -> None:
        ops = [np.array(op, dtype=complex) for op in operators]
        if not ops:
            raise NoiseError(f"channel {name!r} has no Kraus operators")
        shape = ops[0].shape
        for op in ops:
            if op.ndim != 2 or op.shape[0] != op.shape[1]:
                raise NoiseError(
                    f"channel {name!r}: Kraus operators must be square "
                    f"matrices, got shape {op.shape}"
                )
            if op.shape != shape:
                raise NoiseError(
                    f"channel {name!r}: Kraus operators disagree on shape "
                    f"({shape} vs {op.shape})"
                )
        dim = shape[0]
        num_qubits = dim.bit_length() - 1
        if dim < 2 or 2**num_qubits != dim:
            raise NoiseError(
                f"channel {name!r}: operator dimension {dim} is not a "
                f"power of two"
            )
        kept = [op for op in ops if np.abs(op).max() > _NEGLIGIBLE]
        if not kept:
            # All-negligible set (e.g. every coefficient 0): keep the
            # first so the completeness check reports the real problem.
            kept = ops[:1]
        completeness = sum(op.conj().T @ op for op in kept)
        if not np.allclose(completeness, np.eye(dim), atol=_CPTP_ATOL):
            raise NoiseError(
                f"channel {name!r} is not trace-preserving: "
                f"sum(K^dag K) deviates from the identity by "
                f"{np.abs(completeness - np.eye(dim)).max():.3e}"
            )
        for op in kept:
            op.setflags(write=False)
        self.name = name
        self.operators: tuple[np.ndarray, ...] = tuple(kept)
        self.num_qubits = num_qubits
        self.dim = dim

    def apply(self, rho: np.ndarray) -> np.ndarray:
        """The channel's exact action on a ``(2^k, 2^k)`` density matrix."""
        rho = np.asarray(rho, dtype=complex)
        if rho.shape != (self.dim, self.dim):
            raise NoiseError(
                f"channel {self.name!r} acts on {self.dim}x{self.dim} "
                f"density matrices, got shape {rho.shape}"
            )
        return sum(op @ rho @ op.conj().T for op in self.operators)

    def __eq__(self, other) -> bool:
        if not isinstance(other, KrausChannel):
            return NotImplemented
        return (
            self.name == other.name
            and len(self.operators) == len(other.operators)
            and all(
                np.array_equal(a, b)
                for a, b in zip(self.operators, other.operators)
            )
        )

    def __hash__(self) -> int:
        return hash((self.name, self.num_qubits, len(self.operators)))

    def __repr__(self) -> str:
        return (
            f"KrausChannel({self.name!r}, {len(self.operators)} operators, "
            f"{self.num_qubits} qubit(s))"
        )


def _check_probability(name: str, label: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise NoiseError(
            f"{name}: {label} must lie in [0, 1], got {value!r}"
        )
    return float(value)


_PAULIS = {
    "i": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def bit_flip(p: float) -> KrausChannel:
    """X with probability ``p``, identity otherwise."""
    p = _check_probability("bit_flip", "p", p)
    return KrausChannel(
        f"bit_flip({p:g})",
        [math.sqrt(1.0 - p) * _PAULIS["i"], math.sqrt(p) * _PAULIS["x"]],
    )


def phase_flip(p: float) -> KrausChannel:
    """Z with probability ``p``, identity otherwise."""
    p = _check_probability("phase_flip", "p", p)
    return KrausChannel(
        f"phase_flip({p:g})",
        [math.sqrt(1.0 - p) * _PAULIS["i"], math.sqrt(p) * _PAULIS["z"]],
    )


def bit_phase_flip(p: float) -> KrausChannel:
    """Y with probability ``p``, identity otherwise."""
    p = _check_probability("bit_phase_flip", "p", p)
    return KrausChannel(
        f"bit_phase_flip({p:g})",
        [math.sqrt(1.0 - p) * _PAULIS["i"], math.sqrt(p) * _PAULIS["y"]],
    )


def depolarizing(p: float, num_qubits: int = 1) -> KrausChannel:
    """The ``num_qubits``-qubit depolarizing channel of strength ``p``.

    With probability ``p`` the state is replaced by the maximally mixed
    state: :math:`\\rho \\mapsto (1-p)\\rho + p\\, I/2^n`.  In Kraus
    form, every non-identity Pauli string carries weight
    :math:`p/4^n` and the identity the rest.
    """
    p = _check_probability("depolarizing", "p", p)
    if num_qubits < 1 or num_qubits > 3:
        raise NoiseError(
            "depolarizing supports 1 to 3 qubits (the Pauli basis has "
            f"4^n operators), got num_qubits={num_qubits}"
        )
    pauli_weight = p / 4**num_qubits
    identity_weight = 1.0 - p + pauli_weight
    operators = []
    for labels in itertools.product("ixyz", repeat=num_qubits):
        matrix = _PAULIS[labels[0]]
        for label in labels[1:]:
            matrix = np.kron(matrix, _PAULIS[label])
        weight = (
            identity_weight
            if all(label == "i" for label in labels)
            else pauli_weight
        )
        operators.append(math.sqrt(weight) * matrix)
    name = (
        f"depolarizing({p:g})"
        if num_qubits == 1
        else f"depolarizing({p:g}, {num_qubits}q)"
    )
    return KrausChannel(name, operators)


def amplitude_damping(gamma: float) -> KrausChannel:
    """Energy relaxation |1> -> |0> with probability ``gamma`` (T1)."""
    gamma = _check_probability("amplitude_damping", "gamma", gamma)
    k0 = np.array([[1, 0], [0, math.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return KrausChannel(f"amplitude_damping({gamma:g})", [k0, k1])


def phase_damping(lam: float) -> KrausChannel:
    """Pure dephasing: off-diagonals shrink by sqrt(1 - lambda) (T2)."""
    lam = _check_probability("phase_damping", "lambda", lam)
    k0 = np.array([[1, 0], [0, math.sqrt(1.0 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return KrausChannel(f"phase_damping({lam:g})", [k0, k1])


class ReadoutError:
    """A classical confusion matrix on one measured bit.

    ``matrix[i][j]`` is the probability of *recording* ``j`` when the
    true measurement outcome was ``i``; each row must be a probability
    distribution.  The post-measurement quantum state always follows
    the true outcome — only the recorded classical bit (and anything
    conditioned on it) is corrupted.
    """

    def __init__(self, matrix) -> None:
        confusion = np.array(matrix, dtype=float)
        if confusion.shape != (2, 2):
            raise NoiseError(
                f"readout confusion matrix must be 2x2, got shape "
                f"{confusion.shape}"
            )
        if np.any(confusion < 0.0) or np.any(confusion > 1.0):
            raise NoiseError(
                "readout confusion entries must lie in [0, 1]"
            )
        if not np.allclose(confusion.sum(axis=1), 1.0, atol=1e-9):
            raise NoiseError(
                "readout confusion rows must each sum to 1 "
                f"(got row sums {confusion.sum(axis=1)})"
            )
        confusion.setflags(write=False)
        self.matrix = confusion

    @classmethod
    def symmetric(cls, p: float) -> "ReadoutError":
        """Both outcomes misread with the same probability ``p``."""
        p = _check_probability("ReadoutError.symmetric", "p", p)
        return cls([[1.0 - p, p], [p, 1.0 - p]])

    @classmethod
    def asymmetric(cls, p01: float, p10: float) -> "ReadoutError":
        """``p01`` = P(record 1 | true 0), ``p10`` = P(record 0 | true 1)."""
        p01 = _check_probability("ReadoutError.asymmetric", "p01", p01)
        p10 = _check_probability("ReadoutError.asymmetric", "p10", p10)
        return cls([[1.0 - p01, p01], [p10, 1.0 - p10]])

    @property
    def p01(self) -> float:
        return float(self.matrix[0, 1])

    @property
    def p10(self) -> float:
        return float(self.matrix[1, 0])

    @property
    def trivial(self) -> bool:
        """Whether this is the identity (never misreads)."""
        return self.p01 == 0.0 and self.p10 == 0.0

    def apply_to_distribution(self, probabilities) -> np.ndarray:
        """Transform a length-2 true-outcome distribution into the
        recorded-outcome distribution (``p @ matrix``)."""
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.shape != (2,):
            raise NoiseError(
                "expected a length-2 outcome distribution, got shape "
                f"{probabilities.shape}"
            )
        return probabilities @ self.matrix

    def __eq__(self, other) -> bool:
        if not isinstance(other, ReadoutError):
            return NotImplemented
        return np.array_equal(self.matrix, other.matrix)

    def __hash__(self) -> int:
        return hash(tuple(self.matrix.reshape(-1)))

    def __repr__(self) -> str:
        return f"ReadoutError(p01={self.p01:g}, p10={self.p10:g})"
