"""The :class:`NoiseModel`: attach channels to a circuit's execution.

A noise model is a list of *attachment rules* — each rule binds one
:class:`~repro.noise.channels.KrausChannel` to a gate-name filter
and/or a qubit filter — plus per-qubit (or default) readout confusion
matrices.  Execution engines consult :meth:`NoiseModel.channels_for`
after applying each gate and :meth:`NoiseModel.readout_error_for` at
each measurement; the model itself never touches a state, so the same
model drives the exact density-matrix backend and the stochastic
trajectory engines identically.

Attachment semantics (docs/noise.md has the full rules):

- A **single-qubit channel** is applied once to *every qubit the gate
  touches* (controls and targets) that passes the qubit filter.
- A **multi-qubit channel** is applied once, on the gate's qubits in
  ``controls + targets`` order, to gates whose total qubit count equals
  the channel arity (and whose qubits all pass the filter); gates of a
  different arity are unaffected.
- Rules apply in insertion order, after the gate's unitary.
- Readout errors corrupt the *recorded* classical bit at measurement;
  the post-measurement state follows the true outcome, and gates
  classically conditioned on the bit see the corrupted value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import NoiseError
from repro.noise.channels import KrausChannel, ReadoutError
from repro.qcircuit.circuit import KNOWN_GATES, CircuitGate


@dataclass
class NoiseStats:
    """Mutable telemetry accumulator shared by the execution engines.

    ``channel_applications`` counts channel-application *events* the
    engine actually performed: per shot for the per-shot interpreter,
    per batched sweep (one masked Kraus draw covers every shot) for the
    batched trajectory engine, and per evolved branch for the exact
    density-matrix backend.  ``readout_applications`` counts
    measurements whose recorded bit went through a confusion matrix:
    per shot for the interpreter, per sweep for the batched engine
    (one vectorized flip draw covers every shot), and per
    ``Measurement`` instruction for the density-matrix backend (the
    confusion is folded into the exact distribution once, however many
    branches are live).
    """

    channel_applications: int = 0
    readout_applications: int = 0


@dataclass(frozen=True)
class _ChannelRule:
    channel: KrausChannel
    gates: Optional[frozenset]
    qubits: Optional[frozenset]


class NoiseModel:
    """Channels per gate name, per qubit, or globally, plus readout.

    Attachment methods return ``self`` so models compose fluently::

        model = (
            NoiseModel()
            .add_channel(depolarizing(0.01))                  # every gate
            .add_channel(amplitude_damping(0.05), gates=("h",))
            .add_channel(phase_flip(0.02), qubits=(0, 1))
            .add_readout_error(ReadoutError.symmetric(0.03))
        )
    """

    def __init__(self) -> None:
        self._rules: list[_ChannelRule] = []
        self._readout: dict[int, ReadoutError] = {}
        self._default_readout: Optional[ReadoutError] = None

    # ------------------------------------------------------------------
    # Attachment.
    # ------------------------------------------------------------------
    def add_channel(
        self,
        channel: KrausChannel,
        gates: Optional[Iterable[str]] = None,
        qubits: Optional[Iterable[int]] = None,
    ) -> "NoiseModel":
        """Attach ``channel`` after matching gate applications.

        ``gates=None`` matches every gate name; ``qubits=None`` matches
        every qubit.  Unknown gate names raise (catching typos beats
        silently simulating less noise than requested).
        """
        if not isinstance(channel, KrausChannel):
            raise NoiseError(
                f"add_channel expects a KrausChannel, got "
                f"{type(channel).__name__}"
            )
        gate_filter = None
        if gates is not None:
            gate_filter = frozenset(gates)
            unknown = gate_filter - KNOWN_GATES
            if unknown:
                raise NoiseError(
                    f"unknown gate name(s) in noise rule: "
                    f"{', '.join(sorted(unknown))} (known gates: "
                    f"{', '.join(sorted(KNOWN_GATES))})"
                )
        qubit_filter = None
        if qubits is not None:
            qubit_filter = frozenset(int(q) for q in qubits)
            if any(q < 0 for q in qubit_filter):
                raise NoiseError("qubit filters must be non-negative")
        self._rules.append(
            _ChannelRule(channel, gate_filter, qubit_filter)
        )
        return self

    def add_readout_error(
        self,
        error: ReadoutError,
        qubits: Optional[Iterable[int]] = None,
    ) -> "NoiseModel":
        """Attach a confusion matrix to measurements of ``qubits``
        (``None`` = the default for every qubit; a per-qubit entry wins
        over the default)."""
        if not isinstance(error, ReadoutError):
            raise NoiseError(
                f"add_readout_error expects a ReadoutError, got "
                f"{type(error).__name__}"
            )
        if qubits is None:
            self._default_readout = error
        else:
            for qubit in qubits:
                self._readout[int(qubit)] = error
        return self

    # ------------------------------------------------------------------
    # Lookup (the engines' interface).
    # ------------------------------------------------------------------
    def channels_for(
        self, gate: CircuitGate
    ) -> list[tuple[KrausChannel, tuple[int, ...]]]:
        """The ``(channel, qubits)`` applications due after ``gate``,
        in rule-insertion order."""
        applications: list[tuple[KrausChannel, tuple[int, ...]]] = []
        for rule in self._rules:
            if rule.gates is not None and gate.name not in rule.gates:
                continue
            if rule.channel.num_qubits == 1:
                for qubit in gate.qubits:
                    if rule.qubits is None or qubit in rule.qubits:
                        applications.append((rule.channel, (qubit,)))
            else:
                if len(gate.qubits) != rule.channel.num_qubits:
                    continue
                if rule.qubits is not None and not set(
                    gate.qubits
                ) <= rule.qubits:
                    continue
                applications.append((rule.channel, gate.qubits))
        return applications

    def readout_error_for(self, qubit: int) -> Optional[ReadoutError]:
        """The confusion matrix for measurements of ``qubit``, if any."""
        error = self._readout.get(qubit, self._default_readout)
        if error is not None and error.trivial:
            return None
        return error

    @property
    def has_noise(self) -> bool:
        """Whether the model attaches any channel or *non-trivial*
        readout error.  Identity confusion matrices don't count: a
        model carrying only those is effectively noiseless, and
        engines must keep their ideal fast paths."""
        if self._rules:
            return True
        if (
            self._default_readout is not None
            and not self._default_readout.trivial
        ):
            return True
        return any(not error.trivial for error in self._readout.values())

    @property
    def channel_rules(
        self,
    ) -> tuple[tuple[KrausChannel, Optional[frozenset], Optional[frozenset]], ...]:
        """The attachment rules, read-only (for reports and repr)."""
        return tuple(
            (rule.channel, rule.gates, rule.qubits)
            for rule in self._rules
        )

    def __repr__(self) -> str:
        readout = len(self._readout) + (
            1 if self._default_readout is not None else 0
        )
        return (
            f"NoiseModel({len(self._rules)} channel rule(s), "
            f"{readout} readout error(s))"
        )


def effective_noise_model(noise_model):
    """``noise_model`` if it actually attaches noise, else ``None``.

    The one normalization every engine applies before branching on
    "is this run noisy": an absent model and a model with no
    (non-trivial) attachments take identical — ideal — code paths.
    """
    if noise_model is not None and noise_model.has_noise:
        return noise_model
    return None


def standard_noise_model(
    p: float, readout: Optional[float] = None
) -> NoiseModel:
    """A one-knob model for benchmarks and examples: depolarizing ``p``
    on every gate qubit plus a symmetric readout error (``p / 2`` unless
    given).  ``p = 0`` yields a model with no attachments at all, so
    ``has_noise`` is False and engines take their ideal paths."""
    from repro.noise.channels import depolarizing

    model = NoiseModel()
    if p > 0.0:
        model.add_channel(depolarizing(p))
    readout_p = p / 2.0 if readout is None else readout
    if readout_p > 0.0:
        model.add_readout_error(ReadoutError.symmetric(readout_p))
    return model
