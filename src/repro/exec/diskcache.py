"""The persistent on-disk compile cache (cross-process warm starts).

The in-memory LRU in :mod:`repro.pipeline` amortizes compilation
within one process; every fresh process still used to recompile from
scratch.  This module adds the second layer: pickled
:class:`~repro.pipeline.CompileResult` artifacts on disk, keyed by a
SHA-256 digest over ``(kernel fingerprint, dims, pipeline specs)``
plus a **version salt**, so a cold process whose kernel was compiled
by any earlier process starts warm.

Layout and atomicity
--------------------
Artifacts live under ``<cache_dir>/compile/<digest>.pkl`` where
``<cache_dir>`` is ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.  Writes go to a
``NamedTemporaryFile`` in the same directory followed by
``os.replace``, which is atomic on POSIX and Windows — concurrent
workers (the parallel shot executor, a future multi-tenant service)
can race on the same key and readers still never observe a torn
entry.  A corrupted or truncated entry (killed writer on a non-atomic
filesystem, bit rot, a hand-edited file) fails to unpickle, is counted
(``corrupt``), deleted, and treated as a miss — the caller recompiles
and rewrites it.

Invalidation
------------
The digest folds in :func:`version_salt`: a format version, the
Python/NumPy versions (pickles of ndarray-bearing artifacts are not
guaranteed portable across them), and a fingerprint of the ``repro``
package's own source files (per-file path, size, mtime).  Editing the
compiler therefore invalidates every artifact automatically — stale
results can never outlive the code that produced them, which is what
keeps benchmark numbers and dev iterations honest.  Old-salt entries
are garbage, removed by :func:`clear` or an eventual manual wipe.

Set ``REPRO_DISK_CACHE=0`` to disable the layer entirely (the
in-memory LRU still works); counters are exposed through
:func:`repro.pipeline.compile_cache_info`.  See docs/performance.md.
"""

from __future__ import annotations

import functools
import hashlib
import os
import pickle
import sys
import tempfile
from pathlib import Path
from typing import Optional

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

_DISK_LOOKUPS = _metrics.counter(
    "repro_cache_lookups_total",
    "Compile-cache lookups by layer and outcome",
    labels=("layer", "outcome"),
)
_DISK_WRITES = _metrics.counter(
    "repro_cache_writes_total",
    "Persistent compile-cache write attempts by outcome",
    labels=("layer", "outcome"),
)
_TMP_SWEPT = _metrics.counter(
    "repro_cache_tmp_swept_total",
    "Orphaned compile-cache tmpfiles removed by the startup sweep",
    labels=("layer",),
)

#: Environment variable naming the cache directory root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Set to "0" to disable the persistent layer ("1"/unset enables it).
DISK_CACHE_ENV = "REPRO_DISK_CACHE"

#: Bump when the on-disk format changes incompatibly.  v2:
#: :class:`repro.sim.backend.RunInfo` grew robustness counters
#: (``retries`` / ``faults_injected`` / ``degraded``); bumping the
#: version salts every key so artifacts pickled before the counters
#: existed invalidate cleanly instead of resurfacing as
#: attribute-less records.
CACHE_FORMAT_VERSION = 2

#: Orphaned ``*.tmp`` files (a worker killed mid-write never reaches
#: its ``os.replace``) older than this many seconds are swept on first
#: cache use per process.  The TTL keeps the sweep from racing a live
#: concurrent writer whose tmpfile is seconds old.
TMP_TTL_ENV = "REPRO_CACHE_TMP_TTL"
DEFAULT_TMP_TTL_SECONDS = 3600.0

#: Process-wide counters for the persistent layer, reported through
#: ``compile_cache_info()`` alongside the in-memory LRU's counters.
#: ``corrupt`` counts entries that failed to unpickle (bit rot, torn
#: writes on non-atomic filesystems, injected ``diskcache_corrupt``
#: faults); ``tmp_swept`` counts orphaned tmpfiles removed.
_STATS = {
    "hits": 0,
    "misses": 0,
    "writes": 0,
    "corrupt": 0,
    "errors": 0,
    "tmp_swept": 0,
}

#: One sweep per process (reset by :func:`reset_stats` for tests).
_SWEPT = False


def enabled() -> bool:
    """Whether the persistent layer is active (``REPRO_DISK_CACHE``)."""
    return os.environ.get(DISK_CACHE_ENV, "1") != "0"


def cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` > ``$XDG_CACHE_HOME/repro``
    > ``~/.cache/repro`` (not created until the first write)."""
    explicit = os.environ.get(CACHE_DIR_ENV)
    if explicit:
        return Path(explicit)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro"
    return Path.home() / ".cache" / "repro"


def _compile_dir() -> Path:
    return cache_dir() / "compile"


@functools.lru_cache(maxsize=1)
def _source_fingerprint() -> str:
    """A digest of the ``repro`` package's own source files.

    Folding (relative path, size, mtime_ns) of every ``*.py`` under
    the package root into the salt makes *any* compiler edit invalidate
    the whole cache — the safe direction: an unnecessary miss costs one
    recompile, a stale hit would silently serve old-compiler output.
    Computed once per process (~100 stat calls).
    """
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    try:
        for path in sorted(root.rglob("*.py")):
            stat = path.stat()
            digest.update(str(path.relative_to(root)).encode())
            digest.update(f":{stat.st_size}:{stat.st_mtime_ns};".encode())
    except OSError:
        # An unreadable tree falls back to a constant — the version
        # components below still gate format compatibility.
        digest.update(b"unreadable")
    return digest.hexdigest()


def version_salt() -> str:
    """The invalidation salt folded into every key digest."""
    import numpy

    return (
        f"v{CACHE_FORMAT_VERSION}"
        f":py{sys.version_info.major}.{sys.version_info.minor}"
        f":np{numpy.__version__}"
        f":src{_source_fingerprint()}"
    )


def key_digest(key: object) -> str:
    """SHA-256 hex digest identifying one compile-cache key on disk.

    ``key`` is the in-memory cache key — nested tuples of strings,
    ints, and frozen dataclasses, whose ``repr`` is deterministic
    across processes (no memory addresses participate).
    """
    payload = f"{version_salt()}\x00{key!r}".encode()
    return hashlib.sha256(payload).hexdigest()


def _entry_path(digest: str) -> Path:
    return _compile_dir() / f"{digest}.pkl"


def sweep_stale_tmpfiles(ttl_seconds: Optional[float] = None) -> int:
    """Remove orphaned ``*.tmp`` files older than the TTL.

    A worker killed between ``NamedTemporaryFile`` and ``os.replace``
    (an injected ``worker_crash``, an OOM kill, a hard service stop)
    leaks its tmpfile; they accumulate forever since no reader ever
    opens them.  Runs automatically on the first cache access per
    process; the TTL (``REPRO_CACHE_TMP_TTL``, default one hour) keeps
    the sweep from deleting a live concurrent writer's seconds-old
    tmpfile out from under it.  Returns the number removed.
    """
    if ttl_seconds is None:
        ttl_seconds = float(
            os.environ.get(TMP_TTL_ENV, DEFAULT_TMP_TTL_SECONDS)
        )
    directory = _compile_dir()
    if not directory.is_dir():
        return 0
    import time

    cutoff = time.time() - ttl_seconds
    removed = 0
    for path in directory.glob("*.tmp"):
        try:
            if path.stat().st_mtime <= cutoff:
                path.unlink()
                removed += 1
        except OSError:
            pass  # already gone, or the writer's — either way, skip
    _STATS["tmp_swept"] += removed
    if removed:
        _TMP_SWEPT.inc(removed, layer="disk")
    return removed


def _sweep_once() -> None:
    global _SWEPT
    if not _SWEPT:
        _SWEPT = True
        sweep_stale_tmpfiles()


def load(digest: str) -> Optional[object]:
    """The artifact stored under ``digest``, or ``None``.

    Any failure — missing entry, truncated pickle, unpicklable payload
    from an incompatible environment — is a miss; corrupt entries are
    additionally counted and deleted so they are rebuilt, not retried
    forever.  An active ``diskcache_corrupt`` fault plan
    (:mod:`repro.exec.faults`) truncates the blob before unpickling,
    driving this exact path on purpose.
    """
    if not enabled():
        return None
    _sweep_once()
    path = _entry_path(digest)
    with _trace.span("cache.lookup", layer="disk") as span:
        try:
            blob = path.read_bytes()
        except OSError:
            _STATS["misses"] += 1
            span.set(outcome="miss")
            _DISK_LOOKUPS.inc(layer="disk", outcome="miss")
            return None
        from repro.exec.faults import maybe_corrupt_blob

        blob = maybe_corrupt_blob(digest, blob)
        try:
            artifact = pickle.loads(blob)
        except Exception:
            _STATS["corrupt"] += 1
            _STATS["misses"] += 1
            span.set(outcome="corrupt")
            _DISK_LOOKUPS.inc(layer="disk", outcome="corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        _STATS["hits"] += 1
        span.set(outcome="hit")
        _DISK_LOOKUPS.inc(layer="disk", outcome="hit")
        return artifact


def store(digest: str, artifact: object) -> bool:
    """Persist ``artifact`` under ``digest``, atomically.

    tmpfile-in-same-directory + ``os.replace``: a concurrent reader
    sees either the old entry or the complete new one, never a torn
    write.  Failures (unwritable cache dir, unpicklable artifact) are
    counted and swallowed — the disk layer is an accelerator, never a
    correctness dependency.
    """
    if not enabled():
        return False
    _sweep_once()
    directory = _compile_dir()
    tmp_name = None
    try:
        directory.mkdir(parents=True, exist_ok=True)
        with tempfile.NamedTemporaryFile(
            mode="wb", dir=directory, suffix=".tmp", delete=False
        ) as handle:
            tmp_name = handle.name
            pickle.dump(artifact, handle, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        # Includes RecursionError: a deeply nested artifact (large-n
        # kernels carry deeply recursive IR) can exceed pickle's
        # recursion limit, and that must degrade to "not cached", not
        # break the compile that produced the artifact.
        _STATS["errors"] += 1
        _DISK_WRITES.inc(layer="disk", outcome="error")
        if tmp_name is not None:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        return False
    try:
        os.replace(tmp_name, _entry_path(digest))
    except OSError:
        _STATS["errors"] += 1
        _DISK_WRITES.inc(layer="disk", outcome="error")
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        return False
    _STATS["writes"] += 1
    _DISK_WRITES.inc(layer="disk", outcome="written")
    return True


def clear() -> int:
    """Delete every persisted compile artifact; returns the count."""
    removed = 0
    directory = _compile_dir()
    if not directory.is_dir():
        return 0
    for path in directory.glob("*.pkl"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    for path in directory.glob("*.tmp"):
        try:
            path.unlink()
        except OSError:
            pass
    return removed


def reset_stats() -> None:
    """Zero the process-wide counters (test isolation)."""
    global _SWEPT
    for key in _STATS:
        _STATS[key] = 0
    _SWEPT = False


def info() -> dict:
    """Observability snapshot for ``compile_cache_info()``."""
    directory = _compile_dir()
    entries = (
        sum(1 for _ in directory.glob("*.pkl"))
        if directory.is_dir()
        else 0
    )
    return {
        "enabled": enabled(),
        "dir": str(directory),
        "entries": entries,
        **_STATS,
    }
