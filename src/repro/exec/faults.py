"""Deterministic, seed-driven fault injection for the execution stack.

Crash recovery, retry budgets, and cache-corruption handling are only
trustworthy if their paths run on purpose, in CI, on every commit —
not the first time a production worker segfaults.  This module is the
one switchboard those paths consult:

- ``worker_crash`` — a chunk execution fails (raises
  :class:`~repro.errors.FaultInjectedError`), or, in ``crash_mode
  "exit"`` inside a pool worker, the worker process hard-exits so the
  parent observes a genuine ``BrokenProcessPool``;
- ``worker_hang`` — a chunk sleeps ``hang_seconds`` before running,
  long enough to trip the retry layer's per-wave timeout;
- ``diskcache_corrupt`` — a persistent compile-cache read sees a
  truncated blob, exercising the real corrupt-entry path (counted,
  deleted, treated as a miss);
- ``compile_error`` — :func:`repro.pipeline.compile_kernel` fails with
  a coded diagnostic before doing any work.

Determinism contract: whether a site fires is a pure function of the
plan's ``(seed, kind, site key)`` — **no RNG state, no wall clock** —
so a red chaos run reproduces bit-identically.  Chunk sites key on
``(chunk seed, attempt)``: a chunk that crashed on attempt 0 draws a
fresh decision on attempt 1, which is exactly how a real transient
fault behaves and what lets retry tests converge.

Activation is layered: :func:`inject_faults` sets a contextvar for the
enclosing block (tests, benchmarks); the ``REPRO_FAULTS`` environment
variable (``"worker_crash=0.05,worker_hang=0.01"``, with
``REPRO_FAULTS_SEED`` / ``REPRO_FAULTS_HANG_SECONDS`` /
``REPRO_FAULTS_CRASH_MODE``) covers whole processes (the CI
service-smoke job).  Pool workers never read ambient state: the chunk
dispatcher ships the active plan on the task itself, so injection
works identically under ``fork`` and ``spawn``.  See docs/service.md.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import FaultInjectedError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

_INJECTED = _metrics.counter(
    "repro_faults_injected_total",
    "Faults actually fired by kind",
    labels=("kind",),
)


def _note_injection(kind: str, **attrs: object) -> None:
    """One bookkeeping point for every fired fault: a counter bump and
    a zero-duration trace event at the injection site."""
    _INJECTED.inc(kind=kind)
    _trace.event("fault.inject", kind=kind, **attrs)


#: The recognized fault kinds; unknown kinds are rejected at plan
#: construction so a typo cannot silently disable a chaos test.
FAULT_KINDS = (
    "worker_crash",
    "worker_hang",
    "diskcache_corrupt",
    "compile_error",
)

#: Environment knobs (documented in docs/service.md).
FAULTS_ENV = "REPRO_FAULTS"
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"
FAULTS_HANG_SECONDS_ENV = "REPRO_FAULTS_HANG_SECONDS"
FAULTS_CRASH_MODE_ENV = "REPRO_FAULTS_CRASH_MODE"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable description of what to inject.

    ``rates`` maps fault kind to a probability in ``[0, 1]``;
    ``seed`` derandomizes every decision; ``hang_seconds`` bounds the
    injected hang (a worker must always wake up eventually — an
    unbounded sleep would outlive the test run and block interpreter
    exit); ``crash_mode`` is ``"exception"`` (the chunk fails, the
    pool survives) or ``"exit"`` (the worker process dies, the parent
    sees ``BrokenProcessPool``).
    """

    rates: Mapping[str, float] = field(default_factory=dict)
    seed: int = 0
    hang_seconds: float = 0.25
    crash_mode: str = "exception"

    def __post_init__(self) -> None:
        for kind, rate in self.rates.items():
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} "
                    f"(known: {', '.join(FAULT_KINDS)})"
                )
            if not 0.0 <= float(rate) <= 1.0:
                raise ValueError(
                    f"fault rate for {kind!r} must be in [0, 1], "
                    f"got {rate!r}"
                )
        if self.crash_mode not in ("exception", "exit"):
            raise ValueError(
                f"crash_mode must be 'exception' or 'exit', "
                f"got {self.crash_mode!r}"
            )

    def should(self, kind: str, key: object) -> bool:
        """Whether the site identified by ``key`` fires for ``kind``.

        A pure function of ``(seed, kind, key)``: the key string is
        hashed to a uniform draw in ``[0, 1)`` and compared against the
        configured rate.  Identical in every process and on every
        re-run — the anchor of the chaos determinism contract.
        """
        rate = float(self.rates.get(kind, 0.0))
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        payload = f"{self.seed}\x00{kind}\x00{key}".encode()
        digest = hashlib.sha256(payload).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0**64
        return draw < rate


# ----------------------------------------------------------------------
# The active plan: contextvar first, environment second.
# ----------------------------------------------------------------------
_ACTIVE: ContextVar[Optional[FaultPlan]] = ContextVar(
    "repro_fault_plan", default=None
)

#: Per-process, per-kind invocation counters for sites without a
#: natural cross-process key (compile calls, disk-cache reads).  Chunk
#: sites use (chunk seed, attempt) instead and never touch these.
_COUNTERS: dict[str, int] = {}


def plan_from_env(environ: Optional[Mapping[str, str]] = None) -> (
    Optional[FaultPlan]
):
    """Parse ``REPRO_FAULTS`` (``"kind=rate,kind=rate"``) or ``None``."""
    environ = os.environ if environ is None else environ
    spec = environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    rates: dict[str, float] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        kind, _, rate = entry.partition("=")
        rates[kind.strip()] = float(rate)
    return FaultPlan(
        rates=rates,
        seed=int(environ.get(FAULTS_SEED_ENV, "0")),
        hang_seconds=float(environ.get(FAULTS_HANG_SECONDS_ENV, "0.25")),
        crash_mode=environ.get(FAULTS_CRASH_MODE_ENV, "exception"),
    )


def active_fault_plan() -> Optional[FaultPlan]:
    """The plan chaos-aware code consults: contextvar, else env, else
    ``None`` (the production configuration — zero overhead beyond this
    lookup)."""
    plan = _ACTIVE.get()
    if plan is not None:
        return plan
    return plan_from_env()


@contextmanager
def inject_faults(
    plan: Optional[FaultPlan] = None,
    *,
    seed: int = 0,
    hang_seconds: float = 0.25,
    crash_mode: str = "exception",
    **rates: float,
):
    """Activate fault injection for the enclosing block.

    Either pass a prebuilt :class:`FaultPlan` or name rates directly::

        with inject_faults(worker_crash=0.05, seed=7):
            service_runs_with_5pct_chunk_crashes()
    """
    if plan is None:
        plan = FaultPlan(
            rates=rates,
            seed=seed,
            hang_seconds=hang_seconds,
            crash_mode=crash_mode,
        )
    elif rates:
        raise ValueError("pass a FaultPlan or keyword rates, not both")
    token = _ACTIVE.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE.reset(token)


def reset_counters() -> None:
    """Zero the per-process site counters (test isolation)."""
    _COUNTERS.clear()


def draw(kind: str, salt: object = "") -> bool:
    """Consult the active plan at an auto-counted in-process site.

    For sites whose invocations have no natural cross-process identity
    (a compile call, a cache read): each call advances a per-kind
    counter, so the decision sequence is deterministic for a fixed call
    order yet successive calls draw independently.  Returns ``False``
    (for free) when no plan is active.
    """
    plan = active_fault_plan()
    if plan is None:
        return False
    index = _COUNTERS.get(kind, 0) + 1
    _COUNTERS[kind] = index
    return plan.should(kind, f"{salt}\x00{index}")


def chunk_fault_key(seed: int, attempt: int) -> str:
    """The site key for one chunk-execution attempt.

    Keyed on the chunk's *data* seed plus the attempt number: the data
    seed identifies the work unit across processes and re-runs, and
    folding in the attempt lets a retried chunk draw a fresh decision
    (a transient fault, not a curse).
    """
    return f"{seed}@{attempt}"


def maybe_inject_chunk_fault(
    plan: Optional[FaultPlan], seed: int, attempt: int
) -> None:
    """The chunk runner's injection site (crash and hang).

    Called at the top of every chunk execution with the plan shipped on
    the task (never ambient state — pool workers must behave
    identically under ``fork`` and ``spawn``).  A hang sleeps
    ``plan.hang_seconds`` and then *continues normally*: if the retry
    layer's timeout is shorter, the chunk reads as hung and is retried;
    the sleeping worker wakes, finishes, and its late result is
    discarded.  A crash raises :class:`FaultInjectedError`, or in
    ``"exit"`` mode inside a pool worker hard-exits the process so the
    parent observes the real ``BrokenProcessPool`` it must recover
    from.
    """
    if plan is None:
        return
    key = chunk_fault_key(seed, attempt)
    if plan.should("worker_hang", key):
        import time

        _note_injection(
            "worker_hang", seed=seed, attempt=attempt,
            hang_seconds=plan.hang_seconds,
        )
        time.sleep(plan.hang_seconds)
    if plan.should("worker_crash", key):
        _note_injection(
            "worker_crash", seed=seed, attempt=attempt,
            crash_mode=plan.crash_mode,
        )
        if plan.crash_mode == "exit":
            import multiprocessing

            if multiprocessing.parent_process() is not None:
                os._exit(17)
        raise FaultInjectedError(
            f"injected worker_crash (chunk seed {seed}, attempt {attempt})"
        )


def maybe_corrupt_blob(digest: str, blob: bytes) -> bytes:
    """The disk cache's injection site: truncate the blob so the real
    corrupt-entry path (failed unpickle -> counted, deleted, miss)
    runs, rather than simulating its outcome."""
    if draw("diskcache_corrupt", salt=digest):
        _note_injection("diskcache_corrupt", digest=digest)
        return blob[: len(blob) // 2]
    return blob


def maybe_inject_compile_error(kernel_name: str) -> None:
    """The compiler's injection site (:func:`repro.pipeline.compile_kernel`)."""
    if draw("compile_error", salt=kernel_name):
        _note_injection("compile_error", kernel=kernel_name)
        raise FaultInjectedError(
            f"injected compile_error while compiling {kernel_name!r}"
        )
