"""The parallel shot executor: shard shot chunks across processes.

Every engine in :mod:`repro.sim` scales *within* one process; the
batched trajectory engine already splits an over-envelope run into
memory-bounded chunks (:func:`repro.sim.batched.batch_chunk_size`),
but those chunks ran serially on one core.  This module dispatches
them to a :class:`concurrent.futures.ProcessPoolExecutor` instead:

- :func:`chunk_plan` splits a shot count into the **same work units**
  the batched engine's 256 MiB envelope defines, additionally splitting
  until every worker has work (an under-envelope run on 4 workers still
  parallelizes);
- each chunk gets a **derived seed** from
  ``numpy.random.SeedSequence(seed).spawn(...)`` — statistically
  independent streams, so the sharded histogram is statistically
  equivalent to a single-process run and *fully deterministic* for a
  fixed ``(seed, workers)`` pair;
- per-chunk results concatenate in plan order and per-chunk
  :class:`~repro.sim.backend.RunInfo` telemetry merges via
  :meth:`RunInfo.merge`, with ``workers``/``chunks`` recorded.

Determinism contract: the output depends only on the chunk plan and
the derived seeds — **not** on which process (or whether a process at
all) executed a chunk.  A pool that cannot start (sandboxed
environments, missing semaphores) silently falls back to in-process
execution of the identical plan and produces bit-identical results.

Statelessness: the worker entry point re-resolves everything it needs
from explicit task fields — backend *name* (resolved in the parent, so
a monkeypatched ``DEFAULT_BACKEND`` cannot diverge between parent and
worker), apply-kernel name (the parent's context-local selection,
shipped explicitly because a ``spawn``-started worker does not inherit
:mod:`contextvars` state), the pickled circuit and noise model.
In-tree backends and kernels register at import time, so workers
started with **any** start method behave identically; custom backends
registered only in the parent are visible under ``fork`` but must be
registered at import time (module level) to work under ``spawn``.

Pools are cached per ``(workers, start method)`` and reused across
calls — the process-warmup cost is paid once, which is what a
long-lived service (ROADMAP: async execution service) needs.  See
docs/performance.md ("Parallel execution & the persistent cache").
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.exec.faults import (
    FaultPlan,
    active_fault_plan,
    maybe_inject_chunk_fault,
)
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.qcircuit.circuit import Circuit
from repro.sim.backend import (
    DEFAULT_BACKEND,
    RunInfo,
    SimBackend,
    get_backend,
)
from repro.sim.batched import MAX_BATCH_BYTES, batch_chunk_size
from repro.sim.kernels import active_kernel_name, use_kernel

#: Environment override for the multiprocessing start method used by
#: the shared pools ("fork", "spawn", "forkserver").  Unset keeps the
#: platform default.  Results are identical either way (see the
#: determinism contract above); this only trades startup cost against
#: fork-safety.
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"

_DISPATCHES = _metrics.counter(
    "repro_exec_dispatches_total",
    "Parallel run dispatches (one per parallel_run_with_info call)",
)
_CHUNKS = _metrics.counter(
    "repro_exec_chunks_total",
    "Chunks planned for dispatch across all parallel runs",
)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``parallel_workers`` request to a concrete count.

    ``None`` and ``0`` mean "one per available core"; negative counts
    are rejected.
    """
    if workers is None or workers == 0:
        return max(os.cpu_count() or 1, 1)
    if workers < 0:
        raise SimulationError(
            f"parallel_workers must be >= 0, got {workers}"
        )
    return workers


def chunk_plan(
    shots: int,
    num_qubits: int,
    workers: int,
    max_batch_bytes: int = MAX_BATCH_BYTES,
) -> list[int]:
    """Split ``shots`` into per-chunk shot counts.

    The base unit is the batched engine's memory envelope
    (:func:`~repro.sim.batched.batch_chunk_size`); when that yields
    fewer chunks than ``workers``, the run is split further so every
    worker has work.  The plan is a pure function of
    ``(shots, num_qubits, workers, max_batch_bytes)`` — the anchor of
    the determinism contract.
    """
    if shots < 1:
        raise SimulationError("a parallel run needs at least one shot")
    envelope = batch_chunk_size(num_qubits, max_batch_bytes)
    target_chunks = max(-(-shots // envelope), max(workers, 1))
    size = -(-shots // target_chunks)  # ceil division
    full, remainder = divmod(shots, size)
    return [size] * full + ([remainder] if remainder else [])


def derive_chunk_seeds(seed: int, chunks: int) -> list[int]:
    """One independent integer seed per chunk.

    ``SeedSequence(seed).spawn(chunks)`` gives statistically
    independent child streams; each child collapses to one uint63 the
    backends' integer ``seed`` parameter accepts.  Derivation is pure,
    so chunk *i* of a fixed plan always receives the same seed — in a
    worker process, in the serial fallback, or in a re-run.
    """
    children = np.random.SeedSequence(seed).spawn(chunks)
    return [
        int(child.generate_state(1, dtype=np.uint64)[0] >> np.uint64(1))
        for child in children
    ]


@dataclass(frozen=True)
class _ChunkTask:
    """Everything a worker needs, explicit and picklable.

    ``faults`` ships the parent's active :class:`FaultPlan` (ambient
    contextvar/env state never crosses into ``spawn`` workers);
    ``attempt`` is the retry ordinal, folded into fault decisions only
    — the *data* seed never changes across attempts, which is what
    makes retried runs bit-identical to fault-free ones.  ``trace``
    ships the dispatcher's span context the same way, so worker-side
    ``exec.chunk`` spans stitch into the parent trace.
    """

    circuit: Circuit
    shots: int
    seed: int
    backend: "str | SimBackend"
    kernel: Optional[str]
    noise_model: Optional[object]
    faults: Optional[FaultPlan] = None
    attempt: int = 0
    trace: Optional[_trace.TraceContext] = None


def _run_chunk_body(
    task: _ChunkTask,
) -> tuple[list[tuple[int, ...]], RunInfo]:
    with _trace.span(
        "exec.chunk",
        shots=task.shots, seed=task.seed, attempt=task.attempt,
    ):
        maybe_inject_chunk_fault(task.faults, task.seed, task.attempt)
        backend = get_backend(task.backend)
        with use_kernel(task.kernel):
            if task.noise_model is None:
                return backend.run_with_info(
                    task.circuit, task.shots, task.seed
                )
            return backend.run_with_info(
                task.circuit,
                task.shots,
                task.seed,
                noise_model=task.noise_model,
            )


def _run_chunk(
    task: _ChunkTask,
) -> tuple[list[tuple[int, ...]], RunInfo, Optional[list[dict]]]:
    """Worker entry point: one chunk, no ambient state consulted.

    Returns ``(results, info, spans)``.  ``spans`` is non-``None`` only
    when this runs *in a pool worker* under a shipped trace context: a
    worker cannot append to the parent's tracer, so it records into a
    throwaway local one (:func:`repro.obs.trace.recording`) and ships
    the span dicts back with the result for the dispatcher to
    :func:`~repro.obs.trace.absorb_spans`.  In the serial/in-process
    path the ambient tracer receives spans directly and ``spans`` is
    ``None``.
    """
    if (
        task.trace is not None
        and multiprocessing.parent_process() is not None
    ):
        with _trace.recording(task.trace) as tracer:
            results, info = _run_chunk_body(task)
        return results, info, tracer.spans
    results, info = _run_chunk_body(task)
    return results, info, None


# ----------------------------------------------------------------------
# Shared worker pools (one per (workers, start method), reused).
# ----------------------------------------------------------------------
_POOLS: dict[tuple[int, str], ProcessPoolExecutor] = {}


def _mp_context():
    method = os.environ.get(START_METHOD_ENV)
    return (
        multiprocessing.get_context(method)
        if method
        else multiprocessing.get_context()
    )


def _get_pool(workers: int) -> ProcessPoolExecutor:
    context = _mp_context()
    key = (workers, context.get_start_method())
    pool = _POOLS.get(key)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        _POOLS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every cached worker pool (tests, service teardown)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.shutdown(wait=True, cancel_futures=True)


def recycle_pool(workers: int) -> None:
    """Discard the cached pool(s) for ``workers``, killing stragglers.

    Used after a ``BrokenProcessPool`` or a hung-chunk timeout: a
    broken pool never recovers, and a hung worker would otherwise hold
    its slot (and block interpreter exit) indefinitely.  Surviving
    worker processes are terminated outright — their chunks are
    re-dispatched by the caller, and per-chunk seeding makes the
    re-run bit-identical, so killing them loses nothing.
    """
    for key in [k for k in _POOLS if k[0] == workers]:
        pool = _POOLS.pop(key)
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except (OSError, ValueError):
                pass
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


def _execute_tasks(
    tasks: Sequence[_ChunkTask], workers: int, use_processes: bool
) -> list[tuple[list[tuple[int, ...]], RunInfo, Optional[list[dict]]]]:
    """Run the chunk tasks, preserving plan order.

    One worker, one chunk, or ``use_processes=False`` stays in-process.
    A pool that cannot *start* (sandboxed environments, missing
    semaphores -> ``OSError``/``PermissionError``) or that *breaks*
    mid-run (``BrokenProcessPool``: a worker died) falls back to
    in-process execution of the same plan — per-chunk seeding makes
    the result identical to the pooled run.  Nothing else is caught:
    a genuine error raised by a chunk (a backend bug, an injected
    ``worker_crash``) propagates to the caller instead of being
    silently masked by a whole-plan re-run.  Chunk-granular recovery
    with budgets lives in :mod:`repro.exec.retry`.
    """
    if not use_processes or workers <= 1 or len(tasks) <= 1:
        return [_run_chunk(task) for task in tasks]
    try:
        pool = _get_pool(workers)
    except OSError:
        return [_run_chunk(task) for task in tasks]
    try:
        return list(pool.map(_run_chunk, tasks))
    except BrokenProcessPool:
        # The pool died (worker crash / kill): drop it so the next call
        # builds a fresh one, then finish this plan serially.
        recycle_pool(workers)
        return [_run_chunk(task) for task in tasks]


def parallel_run_with_info(
    circuit: Circuit,
    shots: int,
    seed: int = 0,
    workers: Optional[int] = None,
    backend: "str | SimBackend | None" = None,
    noise_model=None,
    max_batch_bytes: int = MAX_BATCH_BYTES,
    use_processes: bool = True,
    retry=None,
    cancel_event=None,
) -> tuple[list[tuple[int, ...]], RunInfo]:
    """Run ``shots`` sharded across ``workers`` processes.

    Returns ``(results, info)`` where ``results`` concatenates the
    chunks in plan order and ``info`` is the :meth:`RunInfo.merge` of
    the per-chunk records with ``workers`` and ``chunks`` filled in.
    Deterministic for fixed ``(seed, workers)`` (and the workload);
    different worker counts give statistically equivalent histograms
    drawn from independent derived streams.

    ``backend`` may be a registry name or a (picklable) instance;
    ``None`` resolves to the registry default *here in the parent*, so
    workers can never disagree with the dispatcher about the default.
    The parent's context-local apply-kernel selection is shipped along
    for the same reason.  ``use_processes=False`` executes the same
    plan in-process (bit-identical results; used by tests and the
    broken-pool fallback).

    ``retry`` (a :class:`repro.exec.retry.RetryPolicy`) switches chunk
    dispatch to the fault-tolerant path: per-chunk timeouts, bounded
    retry with backoff, pool recycling on ``BrokenProcessPool``, and
    graceful serial degradation — with the recovery telemetry merged
    into ``info`` (``retries`` / ``faults_injected`` / ``degraded``).
    ``cancel_event`` (a :class:`threading.Event`) cooperatively cancels
    the remaining work between chunk waves (the service's deadline
    path).  The parent's active fault plan
    (:func:`repro.exec.faults.active_fault_plan`) is shipped on every
    chunk task, so injected faults reach pool workers under any start
    method.
    """
    workers = resolve_workers(workers)
    if isinstance(backend, SimBackend):
        resolved_backend: "str | SimBackend" = backend
    else:
        resolved_backend = backend or DEFAULT_BACKEND
        get_backend(resolved_backend)  # fail fast on unknown names
    plan = chunk_plan(shots, circuit.num_qubits, workers, max_batch_bytes)
    seeds = derive_chunk_seeds(seed, len(plan))
    kernel = active_kernel_name()
    fault_plan = active_fault_plan()
    with _trace.span(
        "exec.dispatch",
        shots=shots, chunks=len(plan), workers=workers,
    ) as dispatch_span:
        trace_ctx = _trace.current_context()
        tasks = [
            _ChunkTask(
                circuit, chunk_shots, chunk_seed,
                resolved_backend, kernel, noise_model, fault_plan,
                trace=trace_ctx,
            )
            for chunk_shots, chunk_seed in zip(plan, seeds)
        ]
        _DISPATCHES.inc()
        _CHUNKS.inc(len(tasks))
        telemetry = None
        if retry is not None:
            from repro.exec.retry import execute_with_retry

            outcomes, telemetry = execute_with_retry(
                tasks, workers, retry,
                use_processes=use_processes,
                cancel_event=cancel_event,
            )
        else:
            outcomes = _execute_tasks(tasks, workers, use_processes)
        results: list[tuple[int, ...]] = []
        infos: list[RunInfo] = []
        for chunk_results, chunk_info, chunk_spans in outcomes:
            results.extend(chunk_results)
            infos.append(chunk_info)
            _trace.absorb_spans(chunk_spans)
        if telemetry is not None:
            dispatch_span.set(
                retries=telemetry.retries, degraded=telemetry.degraded
            )
    merged = RunInfo.merge(infos, workers=workers)
    if telemetry is not None:
        import dataclasses

        merged = dataclasses.replace(
            merged,
            retries=telemetry.retries,
            faults_injected=telemetry.faults_injected,
            degraded=telemetry.degraded,
        )
    return results, merged


def parallel_run(
    circuit: Circuit,
    shots: int,
    seed: int = 0,
    workers: Optional[int] = None,
    backend: "str | SimBackend | None" = None,
    noise_model=None,
    max_batch_bytes: int = MAX_BATCH_BYTES,
) -> list[tuple[int, ...]]:
    """:func:`parallel_run_with_info` without the telemetry record."""
    results, _ = parallel_run_with_info(
        circuit,
        shots,
        seed,
        workers=workers,
        backend=backend,
        noise_model=noise_model,
        max_batch_bytes=max_batch_bytes,
    )
    return results
