"""Fault-tolerant chunk dispatch: timeouts, bounded retry, recycling.

The plain dispatcher (:func:`repro.exec.parallel._execute_tasks`)
assumes chunks succeed; a service cannot.  This module replaces its
all-or-nothing semantics with **chunk-granular recovery**:

- every pending chunk is submitted as its own future and the wave is
  awaited with :func:`concurrent.futures.wait` under
  ``RetryPolicy.timeout`` — a hung worker (injected ``worker_hang``,
  a wedged BLAS call) turns into a timed-out wave, not a forever-block;
- a failed or hung chunk is retried with **decorrelated-jitter
  exponential backoff** (seeded by the chunk's data seed, so even the
  sleep schedule is deterministic), bounded twice: ``max_attempts``
  per chunk and a per-request ``budget`` across all chunks.
  Exhaustion raises :class:`~repro.errors.RetryBudgetExhaustedError`
  — a coded, rendered diagnostic, not a hang;
- a ``BrokenProcessPool`` or a timed-out wave recycles the pool
  (killing stragglers) and re-dispatches only the unfinished chunks;
  after ``degrade_after`` recycles the dispatcher **degrades
  gracefully** to serial in-process execution — slower, but it
  completes, and the run is flagged ``degraded`` in its telemetry;
- only *retryable* failures are retried:
  :class:`~repro.errors.FaultInjectedError`, pool breakage, and
  timeouts.  A genuine error raised by a chunk (a backend bug, an
  invalid circuit) propagates immediately — retrying a deterministic
  bug burns the budget to mask it.

Because a chunk's *data* seed never changes across attempts (only the
fault-decision key does), a run that absorbed crashes, hangs, and
recycles returns results **bit-identical** to a fault-free run — the
property the chaos tests and ``BENCH_service.json`` assert.

Cooperative cancellation: pass a :class:`threading.Event`; it is
checked between waves, and a set event cancels pending futures and
raises :class:`concurrent.futures.CancelledError` — the service's
deadline path actually stops the pool work instead of abandoning it.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import CancelledError, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.errors import FaultInjectedError, RetryBudgetExhaustedError
from repro.obs import logging as _obs_logging
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

_RETRIES = _metrics.counter(
    "repro_exec_retries_total",
    "Chunk retry attempts granted by the recovery path",
)
_RECYCLES = _metrics.counter(
    "repro_exec_pool_recycles_total",
    "Worker-pool recycles after breakage or a hung wave",
)
_DEGRADATIONS = _metrics.counter(
    "repro_exec_degradations_total",
    "Fallbacks to serial in-process execution",
)


def _note_degradation(reason: str, recycles: int) -> None:
    _DEGRADATIONS.inc()
    _trace.event("retry.degrade", reason=reason, recycles=recycles)
    _obs_logging.get_logger("exec.retry").warning(
        "degrading to serial in-process execution",
        extra={"fields": {"reason": reason, "recycles": recycles}},
    )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds for the fault-tolerant dispatch path.

    ``max_attempts`` caps executions *per chunk* (first try included);
    ``budget`` caps retries (attempts beyond the first) summed over
    the whole request, so a request-wide fault storm fails fast
    instead of multiplying per-chunk limits.  ``timeout`` is the
    per-wave wall-clock bound in seconds (``None`` waits forever —
    only sensible without hang faults); ``backoff_base`` /
    ``backoff_cap`` shape the decorrelated-jitter sleep between a
    chunk's attempts; ``degrade_after`` is how many pool recycles are
    tolerated before falling back to serial in-process execution.
    """

    max_attempts: int = 3
    budget: int = 16
    timeout: Optional[float] = 30.0
    backoff_base: float = 0.01
    backoff_cap: float = 0.5
    degrade_after: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.budget < 0:
            raise ValueError("budget must be >= 0")


@dataclass
class RetryTelemetry:
    """What the recovery machinery actually did, for ``RunInfo``."""

    retries: int = 0
    faults_injected: int = 0
    pool_recycles: int = 0
    degraded: bool = False


def backoff_delay(policy: RetryPolicy, seed: int, attempt: int) -> float:
    """The decorrelated-jitter sleep before retry number ``attempt``.

    ``sleep_n = min(cap, uniform(base, 3 * sleep_{n-1}))`` (the AWS
    architecture-blog variant), with the jitter stream seeded by the
    chunk's data seed — deterministic per chunk, decorrelated across
    chunks, so a fault storm's retries do not stampede in lockstep.
    """
    rng = random.Random((seed << 8) ^ 0x5EED)
    delay = policy.backoff_base
    for _ in range(attempt):
        delay = min(
            policy.backoff_cap, rng.uniform(policy.backoff_base, delay * 3)
        )
    return delay


def _check_cancel(cancel_event: Optional[threading.Event]) -> None:
    if cancel_event is not None and cancel_event.is_set():
        raise CancelledError("execution cancelled (deadline or shutdown)")


def _budget_error(
    task, attempts: int, telemetry: RetryTelemetry, policy: RetryPolicy
) -> RetryBudgetExhaustedError:
    error = RetryBudgetExhaustedError(
        f"chunk (seed {task.seed}, {task.shots} shots) still failing "
        f"after {attempts} attempt(s)"
    )
    error.with_note(
        f"retry policy: max_attempts={policy.max_attempts}, "
        f"budget={policy.budget}; request consumed "
        f"{telemetry.retries} retr{'y' if telemetry.retries == 1 else 'ies'}"
    )
    if telemetry.faults_injected:
        error.with_note(
            f"{telemetry.faults_injected} injected fault(s) absorbed "
            f"before exhaustion (see repro.exec.faults)"
        )
    return error


def _fault_plan_is_active(tasks: Sequence) -> bool:
    return any(task.faults is not None for task in tasks)


def execute_with_retry(
    tasks: Sequence,
    workers: int,
    policy: RetryPolicy,
    *,
    use_processes: bool = True,
    cancel_event: Optional[threading.Event] = None,
) -> tuple[list, RetryTelemetry]:
    """Run chunk tasks with recovery; returns ``(outcomes, telemetry)``.

    ``outcomes`` preserves plan order, exactly like the plain
    dispatcher.  ``tasks`` are :class:`repro.exec.parallel._ChunkTask`
    instances (shipped with their fault plan and ``attempt=0``).
    """
    from repro.exec.parallel import _get_pool, _run_chunk, recycle_pool

    telemetry = RetryTelemetry()
    results: list = [None] * len(tasks)
    pending: dict[int, int] = {i: 0 for i in range(len(tasks))}  # -> attempt
    budget_left = policy.budget
    chaos = _fault_plan_is_active(tasks)

    def note_retry(index: int, *, injected: bool) -> None:
        nonlocal budget_left
        attempt = pending[index]
        if injected:
            telemetry.faults_injected += 1
        if attempt + 1 >= policy.max_attempts or budget_left <= 0:
            raise _budget_error(
                replace(tasks[index], attempt=attempt),
                attempt + 1,
                telemetry,
                policy,
            )
        budget_left -= 1
        telemetry.retries += 1
        pending[index] = attempt + 1
        _RETRIES.inc()
        _trace.event(
            "retry.attempt",
            chunk_seed=tasks[index].seed,
            attempt=attempt + 1,
            injected=injected,
        )

    serial = not use_processes or workers <= 1 or telemetry.degraded

    while pending:
        _check_cancel(cancel_event)
        if serial or telemetry.degraded:
            _serial_wave(
                tasks, pending, results, note_retry, policy, cancel_event
            )
            continue

        try:
            pool = _get_pool(workers)
        except OSError:
            # The pool cannot start here at all (sandbox): degrade.
            telemetry.degraded = True
            _note_degradation("pool failed to start", telemetry.pool_recycles)
            continue

        wave = {}
        broken = False
        for index in sorted(pending):
            task = replace(tasks[index], attempt=pending[index])
            try:
                wave[pool.submit(_run_chunk, task)] = index
            except (BrokenProcessPool, RuntimeError):
                # submit() after breakage/shutdown; retry this wave on
                # a fresh pool.
                broken = True
                break

        if wave:
            done, not_done = wait(wave, timeout=policy.timeout)
            for future in done:
                index = wave[future]
                try:
                    results[index] = future.result()
                    del pending[index]
                except FaultInjectedError:
                    note_retry(index, injected=True)
                except BrokenProcessPool:
                    broken = True
                    note_retry(index, injected=chaos)
                except CancelledError:
                    pass  # re-dispatched (or surfaced) next wave
            if not_done:
                # Hung chunks: count a retry for each, then recycle the
                # pool below so their stuck workers are killed.
                for future in not_done:
                    future.cancel()
                    note_retry(wave[future], injected=chaos)
                broken = True

        if broken:
            recycle_pool(workers)
            telemetry.pool_recycles += 1
            _RECYCLES.inc()
            _trace.event(
                "retry.pool_recycle", recycles=telemetry.pool_recycles
            )
            if telemetry.pool_recycles >= policy.degrade_after:
                telemetry.degraded = True
                _note_degradation(
                    "recycle limit reached", telemetry.pool_recycles
                )
        if pending:
            _check_cancel(cancel_event)
            index = min(pending)
            delay = backoff_delay(
                policy, tasks[index].seed, pending[index]
            )
            if delay > 0:
                time.sleep(delay)

    return results, telemetry


def _serial_wave(
    tasks, pending, results, note_retry, policy, cancel_event
) -> None:
    """One in-process pass over the pending chunks (degraded mode).

    No timeouts apply — there is no process to kill — but injected
    hangs are bounded by ``FaultPlan.hang_seconds``, so the pass always
    terminates; crashes retry exactly like the pooled path.
    """
    from repro.exec.parallel import _run_chunk

    for index in sorted(pending):
        while True:
            _check_cancel(cancel_event)
            task = replace(tasks[index], attempt=pending[index])
            try:
                results[index] = _run_chunk(task)
                del pending[index]
                break
            except FaultInjectedError:
                note_retry(index, injected=True)
                delay = backoff_delay(policy, task.seed, pending[index])
                if delay > 0:
                    time.sleep(delay)


__all__ = [
    "RetryPolicy",
    "RetryTelemetry",
    "backoff_delay",
    "execute_with_retry",
]
