"""The execution substrate: multicore shot sharding + persistent cache.

Two capabilities turn the single-process simulator into something a
multi-tenant service can sit on (ROADMAP: async execution service):

- :mod:`repro.exec.parallel` — shard a run's shot chunks across a
  reusable :class:`~concurrent.futures.ProcessPoolExecutor` with
  per-chunk derived seeds and merged :class:`~repro.sim.backend.RunInfo`
  telemetry; threaded through every entry point as
  ``parallel_workers=``.
- :mod:`repro.exec.diskcache` — a persistent on-disk compile cache
  (atomic writes, version-salted keys) layered under the in-memory
  LRU of :mod:`repro.pipeline`, so fresh processes start warm.

See docs/performance.md ("Parallel execution & the persistent cache").
"""

__all__ = [
    "START_METHOD_ENV",
    "chunk_plan",
    "derive_chunk_seeds",
    "parallel_run",
    "parallel_run_with_info",
    "resolve_workers",
    "shutdown_pools",
]


def __getattr__(name: str):
    # Lazy re-exports: repro.pipeline imports repro.exec.diskcache at
    # module level, and an eager `from repro.exec.parallel import ...`
    # here would drag repro.sim into that import and close a cycle.
    if name in __all__:
        from repro.exec import parallel

        return getattr(parallel, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
