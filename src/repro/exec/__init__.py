"""The execution substrate: sharding, caching, and fault tolerance.

Four capabilities turn the single-process simulator into something a
multi-tenant service can sit on (ROADMAP: async execution service):

- :mod:`repro.exec.parallel` — shard a run's shot chunks across a
  reusable :class:`~concurrent.futures.ProcessPoolExecutor` with
  per-chunk derived seeds and merged :class:`~repro.sim.backend.RunInfo`
  telemetry; threaded through every entry point as
  ``parallel_workers=``.
- :mod:`repro.exec.diskcache` — a persistent on-disk compile cache
  (atomic writes, version-salted keys, stale-tmpfile sweeping) layered
  under the in-memory LRU of :mod:`repro.pipeline`, so fresh processes
  start warm.
- :mod:`repro.exec.faults` — deterministic, seed-driven fault
  injection (worker crash/hang, cache corruption, compile errors) so
  every recovery path below is exercised in CI, not discovered in
  production.
- :mod:`repro.exec.retry` — chunk-granular recovery: per-wave
  timeouts, bounded retry with decorrelated-jitter backoff, pool
  recycling on ``BrokenProcessPool``, and graceful serial degradation.

See docs/performance.md ("Parallel execution & the persistent cache")
and docs/service.md (fault injection, retry, and the service on top).
"""

#: Names re-exported from repro.exec.parallel.
_PARALLEL_EXPORTS = (
    "START_METHOD_ENV",
    "chunk_plan",
    "derive_chunk_seeds",
    "parallel_run",
    "parallel_run_with_info",
    "recycle_pool",
    "resolve_workers",
    "shutdown_pools",
)

#: Names re-exported from repro.exec.faults.
_FAULTS_EXPORTS = (
    "FAULT_KINDS",
    "FaultPlan",
    "active_fault_plan",
    "inject_faults",
)

#: Names re-exported from repro.exec.retry.
_RETRY_EXPORTS = (
    "RetryPolicy",
    "RetryTelemetry",
)

__all__ = list(_PARALLEL_EXPORTS + _FAULTS_EXPORTS + _RETRY_EXPORTS)


def __getattr__(name: str):
    # Lazy re-exports: repro.pipeline imports repro.exec.diskcache at
    # module level, and an eager `from repro.exec.parallel import ...`
    # here would drag repro.sim into that import and close a cycle.
    if name in _PARALLEL_EXPORTS:
        from repro.exec import parallel

        return getattr(parallel, name)
    if name in _FAULTS_EXPORTS:
        from repro.exec import faults

        return getattr(faults, name)
    if name in _RETRY_EXPORTS:
        from repro.exec import retry

        return getattr(retry, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
