"""Reproduction of ASDF, the compiler for the Qwerty basis-oriented
quantum programming language (CGO 2025).

Public API::

    from repro import qpu, classical, bit, N

    @classical[N](secret)
    def f(secret: bit[N], x: bit[N]) -> bit:
        return (secret & x).xor_reduce()

    @qpu[N](f)
    def kernel(f: cfunc[N, 1]) -> bit[N]:
        return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure

    print(kernel())
"""

from repro.errors import (
    Diagnostic,
    Note,
    QwertyError,
    SourceSpan,
)
from repro.frontend.decorators import (
    Bits,
    DimVar,
    I,
    J,
    K,
    M,
    N,
    angle,
    bit,
    cfunc,
    classical,
    qfunc,
    qpu,
    qubit,
    rev_qfunc,
)
from repro.parameters import Parameter, ParamExpr
from repro.noise import (
    KrausChannel,
    NoiseModel,
    ReadoutError,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    phase_damping,
    phase_flip,
    standard_noise_model,
)
from repro.pipeline import (
    PRESETS,
    CompileOptions,
    CompileResult,
    clear_compile_cache,
    compile_cache_info,
    compile_kernel,
    simulate_kernel,
    simulate_kernel_with_info,
)
from repro.sim.backend import (
    SimBackend,
    available_backends,
    get_backend,
    register_backend,
)

__all__ = [
    "Bits",
    "CompileOptions",
    "CompileResult",
    "Diagnostic",
    "KrausChannel",
    "NoiseModel",
    "Note",
    "PRESETS",
    "ParamExpr",
    "Parameter",
    "QwertyError",
    "ReadoutError",
    "SimBackend",
    "SourceSpan",
    "amplitude_damping",
    "available_backends",
    "bit_flip",
    "bit_phase_flip",
    "depolarizing",
    "get_backend",
    "phase_damping",
    "phase_flip",
    "register_backend",
    "standard_noise_model",
    "DimVar",
    "I",
    "J",
    "K",
    "M",
    "N",
    "angle",
    "bit",
    "cfunc",
    "classical",
    "clear_compile_cache",
    "compile_cache_info",
    "compile_kernel",
    "qfunc",
    "qpu",
    "qubit",
    "rev_qfunc",
    "simulate_kernel",
    "simulate_kernel_with_info",
]

__version__ = "0.1.0"
