"""Built-in bases: N-qubit primitive bases such as ``pm[4]`` (paper §2.2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.basis.primitive import PrimitiveBasis
from repro.errors import BasisError


@dataclass(frozen=True)
class BuiltinBasis:
    """An N-qubit primitive basis, e.g. ``std[3]`` or ``fourier[2]``."""

    prim: PrimitiveBasis
    dim: int

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise BasisError("built-in bases must have dimension >= 1")

    @property
    def fully_spans(self) -> bool:
        """Built-in bases always span the full space."""
        return True

    @property
    def has_phases(self) -> bool:
        return False

    def normalized(self) -> "BuiltinBasis":
        return self

    def __str__(self) -> str:
        if self.dim == 1:
            return str(self.prim)
        return f"{self.prim}[{self.dim}]"
