"""The four primitive bases of Qwerty (paper §2.2).

``std`` is the Z eigenbasis |0>/|1>, ``pm`` the X eigenbasis |+>/|->,
``ij`` the Y eigenbasis |i>/|j>, and ``fourier`` the N-qubit Fourier
basis.  The first vector of each single-qubit pair is the *plus
eigenstate* and the second the *minus eigenstate*; the *eigenbit* of a
position is 1 exactly when the position is a minus eigenstate.
"""

from __future__ import annotations

import enum


class PrimitiveBasis(enum.Enum):
    """One of Qwerty's four primitive bases."""

    STD = "std"
    PM = "pm"
    IJ = "ij"
    FOURIER = "fourier"

    @property
    def is_separable(self) -> bool:
        """Whether an N-qubit built-in basis of this primitive basis can be
        written as a tensor product of single-qubit bases.

        The Fourier basis is the only inseparable primitive basis
        (paper Appendix E).
        """
        return self is not PrimitiveBasis.FOURIER

    @property
    def plus_char(self) -> str:
        """The qubit-literal character of the plus eigenstate."""
        return {
            PrimitiveBasis.STD: "0",
            PrimitiveBasis.PM: "p",
            PrimitiveBasis.IJ: "i",
        }[self]

    @property
    def minus_char(self) -> str:
        """The qubit-literal character of the minus eigenstate."""
        return {
            PrimitiveBasis.STD: "1",
            PrimitiveBasis.PM: "m",
            PrimitiveBasis.IJ: "j",
        }[self]

    def char_for_eigenbit(self, eigenbit: int) -> str:
        """Return the qubit-literal character for the given eigenbit."""
        return self.minus_char if eigenbit else self.plus_char

    def __str__(self) -> str:
        return self.value


#: Map from qubit-literal character to ``(primitive basis, eigenbit)``.
CHAR_TO_PRIM_EIGENBIT: dict[str, tuple[PrimitiveBasis, int]] = {
    "0": (PrimitiveBasis.STD, 0),
    "1": (PrimitiveBasis.STD, 1),
    "p": (PrimitiveBasis.PM, 0),
    "m": (PrimitiveBasis.PM, 1),
    "i": (PrimitiveBasis.IJ, 0),
    "j": (PrimitiveBasis.IJ, 1),
}
