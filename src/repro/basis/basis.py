"""Canon-form bases (paper §2.2).

A canon form of a basis is a sequence (tensor product) of *basis
elements*, each either a :class:`BasisLiteral` or a
:class:`BuiltinBasis`.  Any Qwerty basis can be written in canon form,
and :class:`Basis` is exactly that form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from repro.basis.builtin import BuiltinBasis
from repro.basis.literal import BasisLiteral
from repro.basis.primitive import PrimitiveBasis
from repro.basis.vector import BasisVector
from repro.errors import BasisError

BasisElement = Union[BasisLiteral, BuiltinBasis]


@dataclass(frozen=True)
class Basis:
    """A basis in canon form: a tensor product of basis elements."""

    elements: tuple[BasisElement, ...]

    def __post_init__(self) -> None:
        if not self.elements:
            raise BasisError("a basis must contain at least one element")

    @classmethod
    def of(cls, *elements: BasisElement) -> "Basis":
        return cls(tuple(elements))

    @classmethod
    def builtin(cls, prim: PrimitiveBasis, dim: int) -> "Basis":
        return cls((BuiltinBasis(prim, dim),))

    @classmethod
    def literal(cls, *vectors: BasisVector | str) -> "Basis":
        return cls((BasisLiteral.of(*vectors),))

    @property
    def dim(self) -> int:
        """Total number of qubits the basis spans."""
        return sum(element.dim for element in self.elements)

    @property
    def fully_spans(self) -> bool:
        return all(element.fully_spans for element in self.elements)

    @property
    def has_phases(self) -> bool:
        return any(element.has_phases for element in self.elements)

    def tensor(self, other: "Basis") -> "Basis":
        """Tensor product ``b1 + b2``: concatenation of canon elements."""
        return Basis(self.elements + other.elements)

    def broadcast(self, n: int) -> "Basis":
        """N-fold tensor power ``b[N]``."""
        if n < 1:
            raise BasisError("broadcast count must be >= 1")
        return Basis(self.elements * n)

    def normalized_elements(self) -> list[BasisElement]:
        """Each element normalized: phases stripped, vectors sorted."""
        return [element.normalized() for element in self.elements]

    def without_phases(self) -> "Basis":
        return Basis(
            tuple(
                element.without_phases()
                if isinstance(element, BasisLiteral)
                else element
                for element in self.elements
            )
        )

    def element_ranges(self) -> list[tuple[BasisElement, int, int]]:
        """Each element with its (start, stop) qubit offsets."""
        ranges = []
        offset = 0
        for element in self.elements:
            ranges.append((element, offset, offset + element.dim))
            offset += element.dim
        return ranges

    def __str__(self) -> str:
        return " + ".join(str(element) for element in self.elements)

    def __iter__(self) -> Iterable[BasisElement]:
        return iter(self.elements)


def std(dim: int = 1) -> Basis:
    """The standard (Z eigen-) basis on ``dim`` qubits."""
    return Basis.builtin(PrimitiveBasis.STD, dim)


def pm(dim: int = 1) -> Basis:
    """The X eigenbasis (|+>/|->) on ``dim`` qubits."""
    return Basis.builtin(PrimitiveBasis.PM, dim)


def ij(dim: int = 1) -> Basis:
    """The Y eigenbasis (|i>/|j>) on ``dim`` qubits."""
    return Basis.builtin(PrimitiveBasis.IJ, dim)


def fourier(dim: int) -> Basis:
    """The N-qubit Fourier basis."""
    return Basis.builtin(PrimitiveBasis.FOURIER, dim)
