"""Basis literals (paper §2.2).

A basis literal ``{bv1, bv2, ..., bvm}`` is a set of basis vectors.  In
a well-typed literal all eigenbits are distinct, all dimensions are
equal, and every position of every vector belongs to the same primitive
basis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.basis.primitive import PrimitiveBasis
from repro.basis.vector import BasisVector
from repro.errors import BasisError


@dataclass(frozen=True)
class BasisLiteral:
    """A basis literal: an ordered set of basis vectors."""

    vectors: tuple[BasisVector, ...]
    _validated: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self._validated:
            return
        if not self.vectors:
            raise BasisError("basis literals must contain at least one vector")
        dims = {vec.dim for vec in self.vectors}
        if len(dims) != 1:
            raise BasisError("all vectors in a basis literal must have equal dimension")
        prims = {vec.prim for vec in self.vectors}
        if len(prims) != 1:
            raise BasisError(
                "all vectors in a basis literal must share one primitive basis"
            )
        eigenbits = {vec.eigenbits for vec in self.vectors}
        if len(eigenbits) != len(self.vectors):
            raise BasisError("all eigenbits in a basis literal must be distinct")
        object.__setattr__(self, "_validated", True)

    @classmethod
    def of(cls, *vectors: BasisVector | str) -> "BasisLiteral":
        """Convenience constructor accepting chars strings or vectors."""
        built = tuple(
            vec if isinstance(vec, BasisVector) else BasisVector.from_chars(vec)
            for vec in vectors
        )
        return cls(built)

    @property
    def dim(self) -> int:
        """Number of qubits each vector spans."""
        return self.vectors[0].dim

    @property
    def prim(self) -> PrimitiveBasis:
        """The shared primitive basis of every vector."""
        return self.vectors[0].prim

    @property
    def fully_spans(self) -> bool:
        """Whether this literal spans the whole 2^dim-dimensional space."""
        return len(self.vectors) == 2**self.dim

    @property
    def has_phases(self) -> bool:
        return any(vec.has_phase for vec in self.vectors)

    def normalized(self) -> "BasisLiteral":
        """Strip vector phases and sort lexicographically (paper §4.1)."""
        vectors = tuple(sorted(vec.without_phase() for vec in self.vectors))
        return BasisLiteral(vectors)

    def sorted_vectors(self) -> tuple[BasisVector, ...]:
        """Vectors sorted lexicographically by eigenbits (phases kept)."""
        return tuple(sorted(self.vectors, key=lambda vec: vec.eigenbits))

    def with_prim(self, prim: PrimitiveBasis) -> "BasisLiteral":
        """The same eigenbit pattern re-based onto another primitive basis."""
        return BasisLiteral(
            tuple(BasisVector(vec.eigenbits, prim, vec.phase) for vec in self.vectors)
        )

    def without_phases(self) -> "BasisLiteral":
        return BasisLiteral(tuple(vec.without_phase() for vec in self.vectors))

    def tensor(self, other: "BasisLiteral") -> "BasisLiteral":
        """Cartesian-product tensor of two literals (paper §4.1 'merging')."""
        if self.prim is not other.prim:
            raise BasisError("cannot merge literals with different primitive bases")
        vectors = tuple(
            left.concat(right) for left in self.vectors for right in other.vectors
        )
        return BasisLiteral(vectors)

    def __str__(self) -> str:
        return "{" + ", ".join(str(vec) for vec in self.vectors) + "}"

    def __len__(self) -> int:
        return len(self.vectors)


def full_literal(prim: PrimitiveBasis, dim: int) -> BasisLiteral:
    """The fully-spanning literal of the given primitive basis and dimension.

    This realizes "std[N] as a basis literal" from Algorithm E7.  Note
    the size is 2^dim, so callers should keep ``dim`` modest; alignment
    only resorts to this when factoring fails.
    """
    if prim is PrimitiveBasis.FOURIER:
        raise BasisError("the fourier basis has no basis-literal form")
    vectors = []
    for value in range(2**dim):
        eigenbits = tuple((value >> (dim - 1 - k)) & 1 for k in range(dim))
        vectors.append(BasisVector(eigenbits, prim))
    return BasisLiteral(tuple(vectors))
