"""Span equivalence checking (paper §4.1 and Appendix B, Algorithm B1).

A basis translation ``b_in >> b_out`` type checks only if
``span(b_in) = span(b_out)``.  Even simple bases may represent
exponentially many vectors (e.g. ``{'0','1'}[64]``), so this module
checks span equivalence in O(k^2 log k) time for k AST nodes by
*factoring* basis elements (Appendix B) instead of enumerating vectors.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.basis.basis import Basis, BasisElement
from repro.basis.builtin import BuiltinBasis
from repro.basis.factor import factor_fully_spanning, factor_literal
from repro.basis.literal import BasisLiteral
from repro.errors import SpanCheckError


def _elements_equal(left: BasisElement, right: BasisElement) -> bool:
    """Equality of normalized basis elements.

    Normalization has already stripped phases and sorted vectors, so
    structural equality suffices.  A built-in basis never compares
    equal to a literal here; both-fully-span handles that case.
    """
    return left == right


def _factor(
    big: BasisElement, small: BasisElement
) -> Optional[BasisElement]:
    """Algorithm B2: factor ``small`` from ``big``; return the remainder.

    Returns the basis element to push back onto ``big``'s deque, or
    ``None`` if factoring fails.
    """
    delta = big.dim - small.dim
    if big.fully_spans and small.fully_spans:
        # Lemmas B.1/B.2: remainder is a fully spanning basis of the
        # big element's primitive basis.
        if isinstance(big, BuiltinBasis):
            return BuiltinBasis(big.prim, delta)
        return BuiltinBasis(big.prim, delta)
    if small.fully_spans and isinstance(big, BasisLiteral):
        return factor_fully_spanning(big, small.dim)
    if isinstance(big, BasisLiteral) and isinstance(small, BasisLiteral):
        return factor_literal(big, small)
    return None  # Fallthrough failure.


def spans_equal(b_in: Basis, b_out: Basis) -> bool:
    """Whether ``span(b_in) == span(b_out)`` (Algorithm B1)."""
    try:
        check_span_equivalence(b_in, b_out)
    except SpanCheckError:
        return False
    return True


def check_span_equivalence(b_in: Basis, b_out: Basis) -> None:
    """Raise :class:`SpanCheckError` unless ``span(b_in) == span(b_out)``.

    This is Algorithm B1: both sides are normalized into deques of
    basis elements; at each step the front elements either match
    directly (equal, or both fully spanning) or the larger is factored
    by the smaller.
    """
    ldeque: deque[BasisElement] = deque(b_in.normalized_elements())
    rdeque: deque[BasisElement] = deque(b_out.normalized_elements())

    while ldeque and rdeque:
        left = ldeque.popleft()
        right = rdeque.popleft()
        if left.dim == right.dim:
            if _elements_equal(left, right) or (
                left.fully_spans and right.fully_spans
            ):
                continue
            raise SpanCheckError(
                f"basis elements {left} and {right} have equal dimension but "
                f"are neither identical nor both fully spanning"
            )
        if left.dim > right.dim:
            big, small, bigdeque = left, right, ldeque
        else:
            big, small, bigdeque = right, left, rdeque
        if not small.fully_spans and not _could_factor_literals(big, small):
            raise SpanCheckError(
                f"cannot factor {small} from {big}: spans differ"
            )
        remainder = _factor(big, small)
        if remainder is None:
            raise SpanCheckError(f"cannot factor {small} from {big}: spans differ")
        bigdeque.appendleft(remainder)

    if ldeque or rdeque:
        leftover = " + ".join(str(e) for e in (ldeque or rdeque))
        raise SpanCheckError(f"dimension mismatch: leftover basis {leftover}")


def _could_factor_literals(big: BasisElement, small: BasisElement) -> bool:
    """Whether the both-literals factoring case could apply."""
    return isinstance(big, BasisLiteral) and isinstance(small, BasisLiteral)
