"""Factoring of basis elements (paper Appendix B, Algorithms B3 and B4).

Factoring is the opposite of taking Cartesian products of vector lists:
given a basis literal ``bl`` it recovers a prefix/suffix tensor
decomposition when one exists.  It is the key to polynomial-time span
equivalence checking (§4.1) and to basis alignment (Appendix F).
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.basis.literal import BasisLiteral
from repro.basis.vector import BasisVector


def factor_fully_spanning(
    literal: BasisLiteral, n: int
) -> Optional[BasisLiteral]:
    """Algorithm B3: factor ``std[n]``/``pm[n]``/``ij[n]`` from ``literal``.

    Checks whether the span of ``literal`` equals the full ``n``-qubit
    space tensored with the span of some remainder, and returns that
    remainder (the distinct suffixes) on success or ``None`` on failure.
    Bit operations are on eigenbits; the primitive basis of a fully
    spanning factor is irrelevant to spans (Lemma B.2).
    """
    m = len(literal.vectors)
    if n <= 0 or n >= literal.dim:
        return None
    # Corollary B.4 short-circuit: 2^n must divide m.
    if m % (2**n) != 0:
        return None
    prefixes = {vec.eigenbits[:n] for vec in literal.vectors}
    if len(prefixes) < 2**n:
        return None
    suffix_counts = Counter(vec.eigenbits[n:] for vec in literal.vectors)
    if any(count < 2**n for count in suffix_counts.values()):
        return None
    remainder = tuple(
        sorted(BasisVector(bits, literal.prim) for bits in suffix_counts)
    )
    return BasisLiteral(remainder)


def factor_literal(
    literal: BasisLiteral, small: BasisLiteral
) -> Optional[BasisLiteral]:
    """Algorithm B4: factor the basis literal ``small`` from ``literal``.

    Both literals must be normalized (phases stripped).  Returns the
    remainder literal (the distinct suffixes) on success or ``None``.
    """
    if literal.prim is not small.prim:
        return None
    m = len(literal.vectors)
    m_small = len(small.vectors)
    if m % m_small != 0:
        return None
    n = small.dim
    if n >= literal.dim:
        return None
    small_bits = {vec.eigenbits for vec in small.vectors}
    prefixes = {vec.eigenbits[:n] for vec in literal.vectors}
    if len(prefixes) < m_small or any(pre not in small_bits for pre in prefixes):
        return None
    suffix_counts = Counter(vec.eigenbits[n:] for vec in literal.vectors)
    if any(count < m_small for count in suffix_counts.values()):
        return None
    remainder = tuple(
        sorted(BasisVector(bits, literal.prim) for bits in suffix_counts)
    )
    return BasisLiteral(remainder)


def factor_prefix_ordered(
    literal: BasisLiteral, n: int
) -> Optional[tuple[BasisLiteral, BasisLiteral]]:
    """Factor ``literal`` into prefix (x) suffix *preserving vector order*.

    Basis alignment (Appendix F) needs factorizations that are equal to
    the original literal as an *ordered* list, because the i-th vector
    of each side of a translation corresponds to the i-th vector of the
    other.  Succeeds only when ``literal`` is exactly the row-major
    Cartesian product of its distinct prefixes (in first-appearance
    order) and the suffixes of the first prefix block (in order).
    """
    if n <= 0 or n >= literal.dim:
        return None
    m = len(literal.vectors)
    prefixes: list[tuple[int, ...]] = []
    for vec in literal.vectors:
        pre = vec.eigenbits[:n]
        if pre not in prefixes:
            prefixes.append(pre)
    if m % len(prefixes) != 0:
        return None
    block = m // len(prefixes)
    suffixes = [vec.eigenbits[n:] for vec in literal.vectors[:block]]
    if len(set(suffixes)) != block:
        return None
    expected = [
        pre + suf for pre in prefixes for suf in suffixes
    ]
    if [vec.eigenbits for vec in literal.vectors] != expected:
        return None
    prefix = BasisLiteral(
        tuple(BasisVector(bits, literal.prim) for bits in prefixes)
    )
    remainder = BasisLiteral(
        tuple(BasisVector(bits, literal.prim) for bits in suffixes)
    )
    return prefix, remainder


def factor_prefix(
    literal: BasisLiteral, n: int
) -> Optional[tuple[BasisLiteral, BasisLiteral]]:
    """Factor ``literal`` into an ``n``-qubit prefix literal and a remainder.

    Used by basis alignment (Algorithm E7, line 25): succeeds only when
    ``literal`` is exactly the Cartesian product of its distinct
    prefixes and distinct suffixes.  Returns ``(prefix, remainder)`` or
    ``None``.
    """
    if n <= 0 or n >= literal.dim:
        return None
    prefix_counts = Counter(vec.eigenbits[:n] for vec in literal.vectors)
    suffix_counts = Counter(vec.eigenbits[n:] for vec in literal.vectors)
    m = len(literal.vectors)
    if len(prefix_counts) * len(suffix_counts) != m:
        return None
    pairs = {(vec.eigenbits[:n], vec.eigenbits[n:]) for vec in literal.vectors}
    for pre in prefix_counts:
        for suf in suffix_counts:
            if (pre, suf) not in pairs:
                return None
    prefix = BasisLiteral(
        tuple(sorted(BasisVector(bits, literal.prim) for bits in prefix_counts))
    )
    remainder = BasisLiteral(
        tuple(sorted(BasisVector(bits, literal.prim) for bits in suffix_counts))
    )
    return prefix, remainder
