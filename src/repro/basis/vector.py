"""Basis vectors (paper §2.2).

A basis vector is a qubit literal with an optional unit scalar phase
factor, written ``bv@theta`` in Qwerty (theta in degrees) or ``-bv``
for a 180-degree phase.  Inside a well-typed basis literal all
positions of all vectors share one primitive basis, so a
:class:`BasisVector` stores a single primitive basis together with its
eigenbits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.basis.primitive import CHAR_TO_PRIM_EIGENBIT, PrimitiveBasis
from repro.errors import BasisError


def _normalize_phase(phase_degrees):
    """Map a phase in degrees into [0, 360).

    Symbolic phases (:class:`repro.parameters.ParamExpr`) pass through
    unchanged: phases are 360°-periodic, so normalization is
    display-only and an unbound expression cannot be reduced anyway.
    """
    from repro.parameters import is_symbolic

    if is_symbolic(phase_degrees):
        return phase_degrees
    phase = phase_degrees % 360.0
    # Avoid -0.0 so equality and hashing behave.
    return phase + 0.0


@dataclass(frozen=True, order=True)
class BasisVector:
    """One vector of a basis literal.

    Attributes:
        eigenbits: tuple of 0/1 ints, one per qubit position, 1 exactly
            when the position is the minus eigenstate of ``prim``.
        prim: the primitive basis shared by every position.
        phase: optional phase factor in degrees (``bv@theta``).
    """

    eigenbits: tuple[int, ...]
    prim: PrimitiveBasis
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.prim is PrimitiveBasis.FOURIER:
            raise BasisError("basis vectors cannot use the fourier basis")
        if not self.eigenbits:
            raise BasisError("basis vectors must have dimension >= 1")
        if any(bit not in (0, 1) for bit in self.eigenbits):
            raise BasisError("eigenbits must be 0 or 1")
        object.__setattr__(self, "phase", _normalize_phase(self.phase))

    @classmethod
    def from_chars(cls, chars: str, phase: float = 0.0) -> "BasisVector":
        """Build a vector from qubit-literal characters such as ``'10'``.

        All characters must belong to the same primitive basis; mixed
        literals like ``'p0'`` are valid *qubit literals* (state
        preparation) but not valid basis-literal vectors.
        """
        if not chars:
            raise BasisError("empty qubit literal")
        prims = set()
        eigenbits = []
        for ch in chars:
            if ch not in CHAR_TO_PRIM_EIGENBIT:
                raise BasisError(f"invalid qubit literal character {ch!r}")
            prim, eigenbit = CHAR_TO_PRIM_EIGENBIT[ch]
            prims.add(prim)
            eigenbits.append(eigenbit)
        if len(prims) != 1:
            raise BasisError(
                f"basis vector {chars!r} mixes primitive bases "
                f"({', '.join(sorted(p.value for p in prims))})"
            )
        return cls(tuple(eigenbits), prims.pop(), phase)

    @property
    def dim(self) -> int:
        """Number of qubits this vector spans."""
        return len(self.eigenbits)

    @property
    def has_phase(self) -> bool:
        return self.phase != 0.0

    @property
    def eigenbits_int(self) -> int:
        """Eigenbits as an integer, leftmost position most significant."""
        value = 0
        for bit in self.eigenbits:
            value = (value << 1) | bit
        return value

    def without_phase(self) -> "BasisVector":
        """The same vector with its phase stripped (normalization)."""
        if not self.has_phase:
            return self
        return BasisVector(self.eigenbits, self.prim)

    def prefix(self, n: int) -> "BasisVector":
        """The first ``n`` positions of this vector (phase dropped)."""
        return BasisVector(self.eigenbits[:n], self.prim)

    def suffix_from(self, n: int) -> "BasisVector":
        """Positions ``n`` onward of this vector (phase dropped)."""
        return BasisVector(self.eigenbits[n:], self.prim)

    def concat(self, other: "BasisVector") -> "BasisVector":
        """Tensor product of two vectors of the same primitive basis."""
        if self.prim is not other.prim:
            raise BasisError("cannot concatenate vectors of different bases")
        return BasisVector(
            self.eigenbits + other.eigenbits,
            self.prim,
            self.phase + other.phase,
        )

    def chars(self) -> str:
        """The qubit-literal characters for this vector."""
        return "".join(self.prim.char_for_eigenbit(bit) for bit in self.eigenbits)

    def __str__(self) -> str:
        from repro.parameters import is_symbolic

        text = f"'{self.chars()}'"
        if is_symbolic(self.phase):
            return f"{text}@({self.phase})"
        if self.phase == 180.0:
            return f"-{text}"
        if self.has_phase:
            return f"{text}@{self.phase:g}"
        return text
