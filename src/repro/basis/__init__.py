"""Bases, basis vectors and basis literals (paper §2.2) plus span checking.

This package implements the data model behind Qwerty's basis-oriented
primitives: the four primitive bases (``std``, ``pm``, ``ij``,
``fourier``), basis vectors with eigenbits and phases, basis literals,
canon-form bases, the factoring machinery of Appendix B, and the
polynomial-time span equivalence checker of §4.1.
"""

from repro.basis.primitive import PrimitiveBasis
from repro.basis.vector import BasisVector
from repro.basis.literal import BasisLiteral
from repro.basis.builtin import BuiltinBasis
from repro.basis.basis import Basis, BasisElement
from repro.basis.span import check_span_equivalence, spans_equal

__all__ = [
    "PrimitiveBasis",
    "BasisVector",
    "BasisLiteral",
    "BuiltinBasis",
    "Basis",
    "BasisElement",
    "check_span_equivalence",
    "spans_equal",
]
