"""MLIR-style pass management shared by every IR layer.

ASDF is organized as staged IR pipelines (paper Fig. 2): Qwerty IR is
optimized by a fixed sequence of transformations (§5.4), and the flat
QCircuit form is cleaned up by peephole and decomposition passes
(§6.5).  This module provides the one pass infrastructure both layers
(and the driver in :mod:`repro.pipeline`) run on, mirroring MLIR's
``PassManager``:

* a :class:`Pass` protocol — a named transformation over one IR
  artifact, reporting whether it changed anything;
* a global registry (:func:`register_pass`) mapping textual names to
  pass factories;
* textual pipeline specs in the spirit of ``--pass-pipeline``, e.g.
  ``"lift-lambdas,canonicalize,specialize,inline,dce"`` with per-pass
  options in braces (``"peephole{relaxed=false}"``);
* optional inter-pass IR verification; and
* per-pass instrumentation — wall time, fire counts, and op-count
  deltas — collected into a :class:`PassStatistics` report.

The artifact is deliberately untyped: Qwerty-level passes run on
:class:`~repro.ir.module.ModuleOp` and circuit-level passes on
:class:`~repro.qcircuit.circuit.Circuit`, both mutated in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.errors import PassPipelineError, QwertyError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

#: Per-pass fire counts and cumulative wall time, process-wide (the
#: per-compilation view lives in :class:`PassStatistics`).
_PASS_RUNS = _metrics.counter(
    "repro_compile_pass_runs_total",
    "Compiler pass executions by pass name",
    labels=("pass_name",),
)
_PASS_SECONDS = _metrics.counter(
    "repro_compile_pass_seconds_total",
    "Cumulative wall-clock seconds spent in each compiler pass",
    labels=("pass_name",),
)


class Pass:
    """A named in-place transformation of one IR artifact.

    Subclasses set :attr:`name` and implement :meth:`run`, returning
    True iff the artifact changed.  ``ir`` documents which artifact
    kind the pass expects (``"qwerty"``, ``"qcircuit"`` or ``"any"``);
    the manager itself is artifact-agnostic.
    """

    name: str = "<anonymous>"
    ir: str = "any"

    def run(self, artifact) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Pass {self.name}>"


class FunctionPass(Pass):
    """Adapt a plain ``fn(artifact) -> bool | None`` into a Pass."""

    def __init__(self, name: str, fn: Callable[[Any], Any], ir: str = "any"):
        self.name = name
        self.ir = ir
        self._fn = fn

    def run(self, artifact) -> bool:
        return bool(self._fn(artifact))


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
#: name -> factory(options dict) -> Pass.  Factories must consume (pop)
#: every option they understand and reject leftovers.
PassFactory = Callable[[dict], Pass]

_REGISTRY: dict[str, PassFactory] = {}


def register_pass(name: str, factory: Optional[PassFactory] = None):
    """Register ``factory`` as the builder for pass ``name``.

    Usable directly (``register_pass("dce", make_dce)``) or as a
    decorator (``@register_pass("dce")``).  Registering the same name
    twice is an error — pass names are a global vocabulary shared by
    every pipeline spec.
    """

    def _register(f: PassFactory) -> PassFactory:
        if name in _REGISTRY:
            raise PassPipelineError(f"pass {name!r} is already registered")
        _REGISTRY[name] = f
        return f

    if factory is None:
        return _register
    return _register(factory)


def registered_passes() -> tuple[str, ...]:
    """All known pass names, sorted."""
    return tuple(sorted(_REGISTRY))


def _load_standard_passes() -> None:
    """Import the modules that register the built-in passes.

    Registration is an import side effect; this makes name lookup
    independent of which layer the caller happened to import first.
    """
    import repro.qcircuit.passes  # noqa: F401
    import repro.qwerty_ir.pipeline  # noqa: F401


def create_pass(name: str, options: Optional[dict] = None) -> Pass:
    """Instantiate a registered pass by name."""
    factory = _REGISTRY.get(name)
    if factory is None:
        _load_standard_passes()
        factory = _REGISTRY.get(name)
    if factory is None:
        known = ", ".join(registered_passes()) or "<none>"
        raise PassPipelineError(
            f"unknown pass {name!r} in pipeline spec (known passes: {known})"
        )
    return factory(dict(options or {}))


def expect_no_options(name: str, options: dict) -> None:
    """Helper for factories of option-free passes."""
    if options:
        raise PassPipelineError(
            f"pass {name!r} takes no options, got {sorted(options)}"
        )


# ----------------------------------------------------------------------
# Pipeline spec parsing.
# ----------------------------------------------------------------------
def _parse_option_value(text: str):
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _parse_options(name: str, text: str) -> dict:
    options: dict = {}
    for item in filter(None, (part.strip() for part in text.split(","))):
        key, sep, value = item.partition("=")
        if not sep or not key.strip():
            raise PassPipelineError(
                f"malformed option {item!r} for pass {name!r}; "
                f"expected key=value"
            )
        options[key.strip()] = _parse_option_value(value.strip())
    return options


def parse_pipeline_spec(spec: str) -> list[tuple[str, dict]]:
    """Parse ``"a,b{k=v},c"`` into ``[(name, options), ...]``.

    Commas inside ``{...}`` option groups do not split passes.  An
    empty spec is a valid empty pipeline.
    """
    entries: list[tuple[str, dict]] = []
    segment = ""
    depth = 0
    for ch in spec + ",":
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                raise PassPipelineError(f"unbalanced '}}' in spec {spec!r}")
        elif ch == "," and depth == 0:
            segment = segment.strip()
            if segment:
                entries.append(_parse_segment(segment, spec))
            segment = ""
            continue
        segment += ch
    if depth != 0:
        raise PassPipelineError(f"unbalanced '{{' in spec {spec!r}")
    return entries


def _parse_segment(segment: str, spec: str) -> tuple[str, dict]:
    if "{" in segment:
        name, brace, rest = segment.partition("{")
        name = name.strip()
        if not rest.endswith("}"):
            raise PassPipelineError(f"malformed segment {segment!r} in {spec!r}")
        options = _parse_options(name, rest[:-1])
    else:
        name, options = segment, {}
    if not name:
        raise PassPipelineError(f"missing pass name in segment {segment!r}")
    return name, options


def parse_pipeline(spec: str) -> list[Pass]:
    """Materialize a textual pipeline spec into pass instances."""
    return [
        create_pass(name, options)
        for name, options in parse_pipeline_spec(spec)
    ]


# ----------------------------------------------------------------------
# Statistics.
# ----------------------------------------------------------------------
@dataclass
class PassStatistic:
    """Aggregate instrumentation for one pass (or pseudo-stage) name."""

    name: str
    runs: int = 0
    changes: int = 0
    seconds: float = 0.0
    ops_delta: int = 0

    def record(self, seconds: float, changed: bool, ops_delta: int = 0) -> None:
        self.runs += 1
        self.changes += int(changed)
        self.seconds += seconds
        self.ops_delta += ops_delta


@dataclass
class PassStatistics:
    """Per-pass instrumentation for one or more pipeline runs.

    Entries are aggregated by pass name in first-fire order, so one
    report can span several managers (e.g. the Qwerty IR pipeline plus
    both circuit pipelines of a single compilation).
    """

    entries: list[PassStatistic] = field(default_factory=list)

    def entry(self, name: str) -> PassStatistic:
        for existing in self.entries:
            if existing.name == name:
                return existing
        created = PassStatistic(name)
        self.entries.append(created)
        return created

    def measure(self, name: str):
        """Context manager timing a non-pass stage into this report."""
        return _MeasureStage(self, name)

    @property
    def total_seconds(self) -> float:
        return sum(entry.seconds for entry in self.entries)

    def report(self) -> str:
        """An aligned, human-readable per-pass breakdown."""
        width = max(
            [len(entry.name) for entry in self.entries] + [len("pass")]
        )
        lines = [
            f"{'pass':<{width}}  {'runs':>5}  {'changed':>7}  "
            f"{'Δops':>7}  {'time':>11}"
        ]
        for entry in self.entries:
            lines.append(
                f"{entry.name:<{width}}  {entry.runs:>5}  "
                f"{entry.changes:>7}  {entry.ops_delta:>+7}  "
                f"{entry.seconds * 1e3:>9.3f}ms"
            )
        lines.append(
            f"{'total':<{width}}  {'':>5}  {'':>7}  {'':>7}  "
            f"{self.total_seconds * 1e3:>9.3f}ms"
        )
        return "\n".join(lines)


class _MeasureStage:
    """Times a pseudo-stage through the tracer (one timing source):
    the stage appears as a ``compile.stage`` span in exported traces
    and its statistics entry records that same measurement."""

    def __init__(self, statistics: PassStatistics, name: str) -> None:
        self.statistics = statistics
        self.name = name

    def __enter__(self) -> "_MeasureStage":
        self._span = _trace.timed_span("compile.stage", stage=self.name)
        self._span.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.__exit__(exc_type, exc, tb)
        self.statistics.entry(self.name).record(
            self._span.seconds, changed=exc is None
        )


# ----------------------------------------------------------------------
# The manager.
# ----------------------------------------------------------------------
class PassManager:
    """Run a sequence of passes over one artifact, instrumented.

    ``verifier`` (optional) is called on the artifact before the first
    pass and again after every pass that reports a change — MLIR's
    ``verifyPasses`` discipline.  ``count_ops`` (optional) sizes the
    artifact so statistics can report per-pass op-count deltas.
    ``statistics`` may be shared across managers to produce one unified
    report.
    """

    def __init__(
        self,
        passes: Iterable[Pass] = (),
        *,
        verifier: Optional[Callable[[Any], None]] = None,
        count_ops: Optional[Callable[[Any], int]] = None,
        statistics: Optional[PassStatistics] = None,
    ) -> None:
        self.passes: list[Pass] = list(passes)
        self.verifier = verifier
        self.count_ops = count_ops
        self.statistics = statistics if statistics is not None else PassStatistics()

    @classmethod
    def from_spec(cls, spec: str, **kwargs) -> "PassManager":
        """Build a manager from a textual pipeline spec."""
        return cls(parse_pipeline(spec), **kwargs)

    @property
    def spec(self) -> str:
        """The names of the scheduled passes, comma-joined."""
        return ",".join(p.name for p in self.passes)

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, artifact) -> bool:
        """Run every pass once, in order.  Returns True iff any changed."""
        self._verify(artifact, after=None)
        changed_any = False
        for pass_ in self.passes:
            before = self.count_ops(artifact) if self.count_ops else 0
            # One timing source: the span measures, everything else —
            # the statistics table, the process-wide metrics, an
            # exported trace — consumes its measurement, so the pass
            # breakdown and a trace can never disagree.
            span = _trace.timed_span(
                "compile.pass", **{"pass": pass_.name}
            )
            try:
                with span:
                    changed = bool(pass_.run(artifact))
            except QwertyError as error:
                raise error.with_note(f"while running pass '{pass_.name}'")
            after = self.count_ops(artifact) if self.count_ops else 0
            # The recorded span holds the attrs dict by reference, so
            # outcome attributes may still be attached post-exit.
            span.set(changed=changed, ops_delta=after - before)
            self.statistics.entry(pass_.name).record(
                span.seconds, changed, after - before
            )
            _PASS_RUNS.inc(pass_name=pass_.name)
            _PASS_SECONDS.inc(span.seconds, pass_name=pass_.name)
            if changed:
                self._verify(artifact, after=pass_.name)
            changed_any |= changed
        return changed_any

    def _verify(self, artifact, after: Optional[str]) -> None:
        """Run the inter-pass verifier, annotating failures with the
        pass that produced the broken IR (the op location rides on the
        :class:`~repro.errors.IRVerificationError` itself)."""
        if self.verifier is None:
            return
        try:
            self.verifier(artifact)
        except QwertyError as error:
            if after is None:
                raise error.with_note(
                    "IR was invalid before the first pass ran"
                )
            raise error.with_note(
                f"IR verification failed after pass '{after}'"
            )


def count_module_ops(module) -> int:
    """Total operation count across a module's functions (for stats)."""
    from repro.ir.core import walk

    return sum(1 for func in module for _ in walk(func.entry))
