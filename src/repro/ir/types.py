"""IR types for both dialects (paper §5 and §6).

Qwerty IR defines ``qbundle[N]``, ``bitbundle[N]`` and function types
that may be reversible or irreversible.  QCircuit IR defines ``qubit``,
``array<T>[N]`` and ``callable``.  MLIR built-ins ``i1`` and ``f64``
round out the set.
"""

from __future__ import annotations

from dataclasses import dataclass


class Type:
    """Base class for IR types.  All concrete types are frozen dataclasses."""

    @property
    def is_quantum(self) -> bool:
        """Whether values of this type obey linear (use-once) typing."""
        return False


@dataclass(frozen=True)
class QBundleType(Type):
    """A tuple of N qubits (Qwerty dialect), written ``qbundle[N]``."""

    n: int

    @property
    def is_quantum(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"qbundle[{self.n}]"


@dataclass(frozen=True)
class BitBundleType(Type):
    """A tuple of N classical bits (Qwerty dialect), ``bitbundle[N]``."""

    n: int

    def __str__(self) -> str:
        return f"bitbundle[{self.n}]"


@dataclass(frozen=True)
class FunctionType(Type):
    """A function type, possibly reversible (``T1 rev-> T2``)."""

    inputs: tuple[Type, ...]
    outputs: tuple[Type, ...]
    reversible: bool = False

    def __str__(self) -> str:
        arrow = "rev->" if self.reversible else "->"
        ins = ", ".join(str(t) for t in self.inputs)
        outs = ", ".join(str(t) for t in self.outputs)
        return f"({ins}) {arrow} ({outs})"


@dataclass(frozen=True)
class QubitType(Type):
    """A single qubit (QCircuit dialect), corresponding to QIR %Qubit*."""

    @property
    def is_quantum(self) -> bool:
        return True

    def __str__(self) -> str:
        return "qubit"


@dataclass(frozen=True)
class ArrayType(Type):
    """A fixed-length array (QCircuit dialect), QIR %Array*."""

    element: Type
    n: int

    @property
    def is_quantum(self) -> bool:
        return self.element.is_quantum

    def __str__(self) -> str:
        return f"array<{self.element}>[{self.n}]"


@dataclass(frozen=True)
class CallableType(Type):
    """A callable value (QCircuit dialect), QIR %Callable*."""

    def __str__(self) -> str:
        return "callable"


@dataclass(frozen=True)
class I1Type(Type):
    """A 1-bit integer (MLIR built-in ``i1``)."""

    def __str__(self) -> str:
        return "i1"


@dataclass(frozen=True)
class F64Type(Type):
    """A 64-bit float (MLIR built-in ``f64``)."""

    def __str__(self) -> str:
        return "f64"


I1 = I1Type()
F64 = F64Type()
QUBIT = QubitType()
CALLABLE = CallableType()
