"""A small SSA IR infrastructure standing in for MLIR (paper §5).

ASDF relies on generic MLIR machinery: dialect-defined ops with
operands, results, attributes and regions; canonicalization driven by
rewrite patterns; an inliner; and dataflow analysis.  This package
reproduces exactly that subset.  Ops are generic
:class:`~repro.ir.core.Operation` instances tagged with a dialect name
(e.g. ``qwerty.qbtrans``); dialects register builders, verifiers and
interfaces (Adjointable, Predicatable) in registries keyed by op name.
"""

from repro.ir.types import (
    ArrayType,
    BitBundleType,
    CallableType,
    F64Type,
    FunctionType,
    I1Type,
    QBundleType,
    QubitType,
    Type,
)
from repro.ir.core import (
    Block,
    BlockArgument,
    Operation,
    OpResult,
    Region,
    Value,
)
from repro.ir.module import FuncOp, ModuleOp, Builder
from repro.ir.printer import print_module, print_op
from repro.ir.verifier import verify_module
from repro.ir.rewrite import RewritePattern, apply_patterns_greedily
from repro.ir.inline import inline_calls, inline_call_op
from repro.ir.passmanager import (
    FunctionPass,
    Pass,
    PassManager,
    PassStatistics,
    count_module_ops,
    create_pass,
    parse_pipeline,
    parse_pipeline_spec,
    register_pass,
    registered_passes,
)

__all__ = [
    "ArrayType",
    "BitBundleType",
    "Block",
    "BlockArgument",
    "Builder",
    "CallableType",
    "F64Type",
    "FuncOp",
    "FunctionPass",
    "FunctionType",
    "I1Type",
    "ModuleOp",
    "Operation",
    "OpResult",
    "Pass",
    "PassManager",
    "PassStatistics",
    "QBundleType",
    "QubitType",
    "Region",
    "RewritePattern",
    "Type",
    "Value",
    "apply_patterns_greedily",
    "count_module_ops",
    "create_pass",
    "inline_call_op",
    "inline_calls",
    "parse_pipeline",
    "parse_pipeline_spec",
    "print_module",
    "print_op",
    "register_pass",
    "registered_passes",
    "verify_module",
]
