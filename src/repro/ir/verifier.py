"""IR verification: SSA dominance, linear qubit use, per-op invariants.

The Qwerty type checker enforces linear types for qubits at the AST
level (paper §4); the verifier re-checks the same property in the IR,
where it reads: every value of quantum type is used exactly once.
"""

from __future__ import annotations

from typing import Callable

from repro.ir.core import Block, Operation, Value
from repro.ir.module import FuncOp, ModuleOp
from repro.errors import IRVerificationError, QwertyError

#: Per-op verifiers registered by dialects, keyed by op name.
OP_VERIFIERS: dict[str, Callable[[Operation], None]] = {}

#: Op names that terminate a function body and return values.
RETURN_OPS = {"func.return", "scf.yield"}

#: Op names whose results or operands are exempt from strict linearity
#: (e.g. classical values may be used many times or not at all).
def _is_linear(value: Value) -> bool:
    return value.type.is_quantum


def register_verifier(name: str):
    """Decorator registering a per-op verifier."""

    def wrap(fn: Callable[[Operation], None]):
        OP_VERIFIERS[name] = fn
        return fn

    return wrap


def _verify_block(block: Block, visible: set[int]) -> None:
    defined = set(visible)
    for arg in block.args:
        defined.add(id(arg))
    for op in block.ops:
        for operand in op.operands:
            if id(operand) not in defined:
                raise IRVerificationError(
                    f"operand of {op.name} used before definition",
                    span=op.loc,
                )
        for result in op.results:
            defined.add(id(result))
        for region in op.regions:
            for inner in region.blocks:
                _verify_block(inner, defined)
        verifier = OP_VERIFIERS.get(op.name)
        if verifier is not None:
            try:
                verifier(op)
            except QwertyError as error:
                # Dialect verifiers need not thread locations; the
                # walker knows which op failed.
                raise error.attach_span(op.loc)


def _branch_path(op: Operation) -> tuple[tuple[int, int], ...]:
    """The chain of (scf.if identity, region index) enclosing ``op``.

    Two uses whose paths diverge at a common ``scf.if`` are mutually
    exclusive at runtime, so together they count as one linear use.
    """
    path: list[tuple[int, int]] = []
    block = op.parent_block
    while block is not None and block.parent_region is not None:
        region = block.parent_region
        parent = region.parent_op
        if parent is None:
            break
        path.append((id(parent), parent.regions.index(region)))
        block = parent.parent_block
    return tuple(reversed(path))


def _uses_mutually_exclusive(op_a: Operation, op_b: Operation) -> bool:
    path_a = _branch_path(op_a)
    path_b = _branch_path(op_b)
    for (if_a, region_a), (if_b, region_b) in zip(path_a, path_b):
        if if_a == if_b and region_a != region_b:
            return True
    return False


def _verify_linearity(func: FuncOp) -> None:
    from repro.ir.core import walk

    def check(value: Value, desc: str, loc=None) -> None:
        if not _is_linear(value):
            return
        uses = value.uses
        if len(uses) == 1:
            return
        if len(uses) == 0:
            raise IRVerificationError(
                f"linear value {desc} in @{func.name} has 0 uses "
                f"(expected exactly 1)",
                span=loc,
            )
        ops = [op for op, _ in uses]
        for i in range(len(ops)):
            for j in range(i + 1, len(ops)):
                if not _uses_mutually_exclusive(ops[i], ops[j]):
                    raise IRVerificationError(
                        f"linear value {desc} in @{func.name} has "
                        f"{len(uses)} non-exclusive uses (expected exactly 1)",
                        span=loc,
                    )

    for block in func.body.blocks:
        for arg in block.args:
            check(arg, f"block argument #{arg.index}")
    for op in walk(func.entry):
        for result in op.results:
            check(result, f"result of {op.name}", loc=op.loc)


def _verify_terminator(func: FuncOp) -> None:
    if func.is_declaration:
        return
    terminator = func.entry.terminator
    if terminator.name not in RETURN_OPS:
        raise IRVerificationError(
            f"@{func.name} ends with {terminator.name}, not a return",
            span=terminator.loc,
        )
    got = tuple(operand.type for operand in terminator.operands)
    if got != func.type.outputs:
        raise IRVerificationError(
            f"@{func.name} returns {got}, expected {func.type.outputs}",
            span=terminator.loc,
        )


def verify_func(func: FuncOp) -> None:
    if func.is_declaration:
        return
    _verify_block(func.entry, set())
    _verify_linearity(func)
    _verify_terminator(func)


def verify_module(module: ModuleOp) -> None:
    """Verify every function in the module; raise on the first violation."""
    for func in module:
        verify_func(func)
