"""Textual IR printing, for debugging and golden tests."""

from __future__ import annotations

from io import StringIO

from repro.ir.core import Block, Operation, Value
from repro.ir.module import FuncOp, ModuleOp


class _Namer:
    """Assigns %0, %1, ... to SSA values in definition order."""

    def __init__(self) -> None:
        self._names: dict[int, str] = {}
        self._counter = 0

    def name(self, value: Value) -> str:
        key = id(value)
        if key not in self._names:
            self._names[key] = f"%{self._counter}"
            self._counter += 1
        return self._names[key]


def _format_attr(value: object) -> str:
    return str(value)


def _print_op(op: Operation, namer: _Namer, out: StringIO, indent: int) -> None:
    pad = "  " * indent
    results = ", ".join(namer.name(result) for result in op.results)
    prefix = f"{results} = " if op.results else ""
    operands = ", ".join(namer.name(operand) for operand in op.operands)
    attrs = ""
    if op.attrs:
        rendered = ", ".join(
            f"{key}={_format_attr(val)}" for key, val in sorted(op.attrs.items())
        )
        attrs = f" {{{rendered}}}"
    types = ""
    if op.results:
        types = " : " + ", ".join(str(result.type) for result in op.results)
    out.write(f"{pad}{prefix}{op.name}({operands}){attrs}{types}\n")
    for region in op.regions:
        for block in region.blocks:
            _print_block(block, namer, out, indent + 1)


def _print_block(block: Block, namer: _Namer, out: StringIO, indent: int) -> None:
    pad = "  " * indent
    args = ", ".join(
        f"{namer.name(arg)}: {arg.type}" for arg in block.args
    )
    out.write(f"{pad}^block({args}):\n")
    for op in block.ops:
        _print_op(op, namer, out, indent + 1)


def print_op(op: Operation) -> str:
    out = StringIO()
    _print_op(op, _Namer(), out, 0)
    return out.getvalue()


def print_func(func: FuncOp, namer: _Namer | None = None) -> str:
    out = StringIO()
    namer = namer or _Namer()
    spec = ""
    if func.specialization_of:
        spec = f" // specialization of {func.specialization_of}"
    out.write(f"func @{func.name} : {func.type}{spec}\n")
    for block in func.body.blocks:
        _print_block(block, namer, out, 1)
    return out.getvalue()


def print_module(module: ModuleOp) -> str:
    out = StringIO()
    namer = _Namer()
    for func in module:
        out.write(print_func(func, namer))
        out.write("\n")
    return out.getvalue()
