"""Function inlining (paper §5.4).

Inlining is the most important optimization in the Qwerty compiler: it
linearizes functional code into straight-line quantum operations.  The
inliner repeatedly inlines direct ``call`` ops whose callee body is a
single basic block, interleaved with canonicalization by the caller
(mirroring how the MLIR inliner re-runs the canonicalizer).

Calls marked ``adj``/``pred`` are rewritten to call the corresponding
compiler-generated specialization before inlining (see
:mod:`repro.qwerty_ir.specialize`), so by the time this module runs, a
``call`` op is always a plain forward call.
"""

from __future__ import annotations

from repro.ir.core import Operation, Value, walk
from repro.ir.module import FuncOp, ModuleOp
from repro.errors import LoweringError

#: Direct-call op names this inliner understands.
CALL_OPS = ("qwerty.call", "qcirc.call")


def inline_call_op(call: Operation, module: ModuleOp) -> bool:
    """Inline one direct call op in place.  Returns True on success.

    The callee must exist in the module, must not be a declaration, and
    must consist of a single basic block.  Calls carrying ``adj`` or
    ``pred`` markers are left alone (specialization handles them).
    """
    if call.attrs.get("adj") or call.attrs.get("pred") is not None:
        return False
    callee_name = call.attrs["callee"]
    callee = module.funcs.get(callee_name)
    if callee is None or callee.is_declaration:
        return False
    if len(callee.body.blocks) != 1:
        return False

    block = call.parent_block
    value_map: dict[Value, Value] = {}
    for arg, operand in zip(callee.entry.args, call.operands):
        value_map[arg] = operand

    insert_at = block.ops.index(call)
    return_operands: list[Value] = []
    for op in callee.entry.ops:
        if op.name == "func.return":
            return_operands = [value_map.get(v, v) for v in op.operands]
            break
        clone = op.clone(value_map)
        clone.parent_block = block
        block.ops.insert(insert_at, clone)
        insert_at += 1

    if len(return_operands) != len(call.results):
        raise LoweringError(
            f"callee @{callee_name} returned {len(return_operands)} values, "
            f"call expected {len(call.results)}"
        )
    call.replace_all_results_with(return_operands)
    call.erase()
    return True


def inline_calls(module: ModuleOp, canonicalize=None) -> bool:
    """Inline every inlinable direct call to a fixpoint.

    ``canonicalize`` is an optional callback run after each sweep so
    newly exposed patterns (e.g. ``call_indirect(func_const)``) convert
    into further direct calls, exactly the interleaving the paper
    describes (§5.4).
    """
    changed_ever = False
    for _ in range(64):
        changed = False
        for func in list(module):
            for op in list(walk(func.entry)):
                if op.name in CALL_OPS and op.parent_block is not None:
                    if inline_call_op(op, module):
                        changed = True
        if canonicalize is not None and canonicalize(module):
            changed = True
        changed_ever |= changed
        if not changed:
            break
    return changed_ever
