"""Modules, functions, and an insertion-point builder."""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.errors import SourceSpan
from repro.ir.core import Block, Operation, Region, Value
from repro.ir.types import FunctionType, Type


class FuncOp:
    """A function: a symbol name, a function type, and a body region.

    Qwerty functions are single-basic-block (paper §5.2 adjoints
    "the single basic block making up the callee function body"),
    though the region model permits more.
    """

    def __init__(
        self,
        name: str,
        type: FunctionType,
        visibility: str = "public",
    ) -> None:
        self.name = name
        self.type = type
        self.visibility = visibility
        self.body = Region([Block(list(type.inputs))])
        #: Which specialization this function is, if compiler-generated:
        #: None for user functions, else (base_name, is_adjoint, num_controls).
        self.specialization_of: Optional[tuple[str, bool, int]] = None

    @property
    def entry(self) -> Block:
        return self.body.entry

    @property
    def is_declaration(self) -> bool:
        return not self.entry.ops

    def clone(self, new_name: Optional[str] = None) -> "FuncOp":
        clone = FuncOp(new_name or self.name, self.type, self.visibility)
        value_map: dict[Value, Value] = {}
        for old_arg, new_arg in zip(self.entry.args, clone.entry.args):
            value_map[old_arg] = new_arg
        for op in self.entry.ops:
            clone.entry.append(op.clone(value_map))
        clone.specialization_of = self.specialization_of
        return clone


class ModuleOp:
    """A module: an ordered symbol table of functions."""

    def __init__(self) -> None:
        self.funcs: dict[str, FuncOp] = {}
        self.entry_point: Optional[str] = None

    def add(self, func: FuncOp) -> FuncOp:
        if func.name in self.funcs:
            raise ValueError(f"duplicate function symbol @{func.name}")
        self.funcs[func.name] = func
        return func

    def get(self, name: str) -> FuncOp:
        return self.funcs[name]

    def remove(self, name: str) -> None:
        del self.funcs[name]

    def unique_name(self, base: str) -> str:
        """A symbol name not yet present in the module."""
        if base not in self.funcs:
            return base
        counter = 0
        while f"{base}_{counter}" in self.funcs:
            counter += 1
        return f"{base}_{counter}"

    def __iter__(self) -> Iterable[FuncOp]:
        return iter(list(self.funcs.values()))


class Builder:
    """Appends ops at an insertion point, mirroring MLIR's OpBuilder.

    The builder also carries the *current source location* (``loc``),
    mirroring how MLIR builders thread a ``Location`` into every op
    they create: :meth:`create` stamps it on each op unless the caller
    passes an explicit override.  :meth:`before` inherits the anchor
    op's location, so rewrite patterns that build replacements with
    ``Builder.before(op)`` preserve locations automatically.
    """

    def __init__(
        self, block: Block, loc: Optional[SourceSpan] = None
    ) -> None:
        self.block = block
        self.insert_before_op: Optional[Operation] = None
        #: Location stamped on created ops (None = unknown).
        self.loc: Optional[SourceSpan] = loc

    @classmethod
    def before(cls, op: Operation) -> "Builder":
        builder = cls(op.parent_block, loc=op.loc)
        builder.insert_before_op = op
        return builder

    def insert(self, op: Operation) -> Operation:
        """Insert an already-constructed op at the insertion point."""
        if op.loc is None:
            op.loc = self.loc
        if self.insert_before_op is not None:
            self.block.insert_before(self.insert_before_op, op)
        else:
            self.block.append(op)
        return op

    def create(
        self,
        name: str,
        operands: Iterable[Value] = (),
        result_types: Iterable[Type] = (),
        attrs: Optional[dict[str, Any]] = None,
        regions: Optional[list[Region]] = None,
        loc: Optional[SourceSpan] = None,
    ) -> Operation:
        op = Operation(
            name,
            list(operands),
            list(result_types),
            attrs,
            regions,
            loc=loc if loc is not None else self.loc,
        )
        if self.insert_before_op is not None:
            self.block.insert_before(self.insert_before_op, op)
        else:
            self.block.append(op)
        return op
