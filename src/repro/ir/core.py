"""Core SSA structures: values, operations, blocks, regions.

Mirrors MLIR's object model (paper §5): an :class:`Operation` has
operands (SSA values), results, compile-time attributes, and nested
regions; a :class:`Region` holds :class:`Block` objects whose arguments
are themselves SSA values.  Quantum instructions have no side effects;
qubits *flow through* operations, so dependencies are explicit.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.errors import SourceSpan
from repro.ir.types import Type


class Value:
    """An SSA value: either an operation result or a block argument."""

    def __init__(self, type: Type) -> None:
        self.type = type
        self.uses: list[tuple["Operation", int]] = []

    @property
    def owner_op(self) -> Optional["Operation"]:
        return None

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every use of this value to use ``new`` instead."""
        if new is self:
            return
        for op, index in list(self.uses):
            op.set_operand(index, new)

    @property
    def has_one_use(self) -> bool:
        return len(self.uses) == 1

    @property
    def unused(self) -> bool:
        return not self.uses


class OpResult(Value):
    """A result of an operation."""

    def __init__(self, op: "Operation", index: int, type: Type) -> None:
        super().__init__(type)
        self.op = op
        self.index = index

    @property
    def owner_op(self) -> Optional["Operation"]:
        return self.op


class BlockArgument(Value):
    """An argument of a block (function arguments are block arguments)."""

    def __init__(self, block: "Block", index: int, type: Type) -> None:
        super().__init__(type)
        self.block = block
        self.index = index


class Operation:
    """A generic IR operation.

    The op's semantics are identified by ``name`` (e.g.
    ``qwerty.qbtrans``); dialect modules provide typed builder functions
    and register verifiers/interfaces keyed by this name.
    """

    def __init__(
        self,
        name: str,
        operands: list[Value] | tuple[Value, ...] = (),
        result_types: list[Type] | tuple[Type, ...] = (),
        attrs: Optional[dict[str, Any]] = None,
        regions: Optional[list["Region"]] = None,
        loc: Optional[SourceSpan] = None,
    ) -> None:
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs or {})
        #: The user-source location this op came from (MLIR's Location).
        #: ``None`` means unknown; transformations must propagate it —
        #: fused/rewritten ops inherit the span of the op they replace.
        self.loc: Optional[SourceSpan] = loc
        self.parent_block: Optional[Block] = None
        self._operands: list[Value] = []
        for value in operands:
            self._append_operand(value)
        self.results: list[OpResult] = [
            OpResult(self, i, t) for i, t in enumerate(result_types)
        ]
        self.regions: list[Region] = list(regions or [])
        for region in self.regions:
            region.parent_op = self

    # ------------------------------------------------------------------
    # Operand management (keeps use lists consistent).
    # ------------------------------------------------------------------
    @property
    def operands(self) -> tuple[Value, ...]:
        return tuple(self._operands)

    def _append_operand(self, value: Value) -> None:
        index = len(self._operands)
        self._operands.append(value)
        value.uses.append((self, index))

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        old.uses.remove((self, index))
        self._operands[index] = value
        value.uses.append((self, index))

    def set_operands(self, values: list[Value]) -> None:
        self.drop_all_operands()
        for value in values:
            self._append_operand(value)

    def drop_all_operands(self) -> None:
        for index, value in enumerate(self._operands):
            value.uses.remove((self, index))
        self._operands = []

    # ------------------------------------------------------------------
    # Results.
    # ------------------------------------------------------------------
    @property
    def result(self) -> OpResult:
        """The sole result (asserts exactly one exists)."""
        if len(self.results) != 1:
            raise ValueError(f"{self.name} has {len(self.results)} results")
        return self.results[0]

    def replace_all_results_with(self, values: list[Value]) -> None:
        if len(values) != len(self.results):
            raise ValueError("result count mismatch")
        for result, value in zip(self.results, values):
            result.replace_all_uses_with(value)

    # ------------------------------------------------------------------
    # Placement.
    # ------------------------------------------------------------------
    def erase(self) -> None:
        """Remove this op from its block and drop its operand uses."""
        for result in self.results:
            if result.uses:
                raise ValueError(
                    f"erasing {self.name} whose result still has uses"
                )
        self.drop_all_operands()
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.ops):
                    op.drop_all_operands()
        if self.parent_block is not None:
            self.parent_block.ops.remove(self)
            self.parent_block = None

    def remove_from_block(self) -> None:
        """Detach from the block without touching uses (for moving ops)."""
        if self.parent_block is not None:
            self.parent_block.ops.remove(self)
            self.parent_block = None

    def clone(self, value_map: dict[Value, Value]) -> "Operation":
        """Deep-copy this op, remapping operands through ``value_map``.

        The clone's results are recorded in ``value_map`` so subsequent
        clones see them.  Nested regions are cloned recursively.
        """
        operands = [value_map.get(operand, operand) for operand in self._operands]
        clone = Operation(
            self.name,
            operands,
            [result.type for result in self.results],
            dict(self.attrs),
            loc=self.loc,
        )
        for region in self.regions:
            clone.regions.append(region.clone(value_map, parent_op=clone))
        for old, new in zip(self.results, clone.results):
            value_map[old] = new
        return clone

    def __repr__(self) -> str:
        return f"<Operation {self.name}>"


class Block:
    """A basic block: typed arguments followed by a list of operations."""

    def __init__(self, arg_types: list[Type] | tuple[Type, ...] = ()) -> None:
        self.args: list[BlockArgument] = [
            BlockArgument(self, i, t) for i, t in enumerate(arg_types)
        ]
        self.ops: list[Operation] = []
        self.parent_region: Optional[Region] = None

    def append(self, op: Operation) -> Operation:
        op.parent_block = self
        self.ops.append(op)
        return op

    def insert_before(self, anchor: Operation, op: Operation) -> Operation:
        index = self.ops.index(anchor)
        op.parent_block = self
        self.ops.insert(index, op)
        return op

    def add_argument(self, type: Type) -> BlockArgument:
        arg = BlockArgument(self, len(self.args), type)
        self.args.append(arg)
        return arg

    @property
    def terminator(self) -> Operation:
        if not self.ops:
            raise ValueError("empty block has no terminator")
        return self.ops[-1]

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)


class Region:
    """A list of blocks nested inside an operation."""

    def __init__(self, blocks: Optional[list[Block]] = None) -> None:
        self.blocks: list[Block] = list(blocks or [])
        for block in self.blocks:
            block.parent_region = self
        self.parent_op: Optional[Operation] = None

    def add_block(self, block: Block) -> Block:
        block.parent_region = self
        self.blocks.append(block)
        return block

    @property
    def entry(self) -> Block:
        return self.blocks[0]

    def clone(
        self, value_map: dict[Value, Value], parent_op: Optional[Operation] = None
    ) -> "Region":
        region = Region()
        region.parent_op = parent_op
        for block in self.blocks:
            new_block = Block([arg.type for arg in block.args])
            for old_arg, new_arg in zip(block.args, new_block.args):
                value_map[old_arg] = new_arg
            region.add_block(new_block)
        for block, new_block in zip(self.blocks, region.blocks):
            for op in block.ops:
                new_block.append(op.clone(value_map))
        return region


def walk(op_or_block: Operation | Block) -> Iterator[Operation]:
    """Yield every operation nested under the given op or block, pre-order."""
    if isinstance(op_or_block, Block):
        ops: list[Operation] = list(op_or_block.ops)
    else:
        yield op_or_block
        ops = [
            inner
            for region in op_or_block.regions
            for block in region.blocks
            for inner in block.ops
        ]
    for op in ops:
        yield from walk(op)
