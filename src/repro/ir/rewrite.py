"""Greedy pattern rewriting, standing in for MLIR's canonicalizer.

A :class:`RewritePattern` matches ops by name and attempts a rewrite.
:func:`apply_patterns_greedily` iterates all patterns over all ops to a
fixpoint, the same discipline the MLIR canonicalizer uses (paper §5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.ir.core import Operation, walk
from repro.ir.module import FuncOp, ModuleOp


@dataclass
class RewritePattern:
    """A named rewrite: ``fn(op, module) -> bool`` returns True if it fired.

    ``op_names`` restricts which ops the pattern is tried on; an empty
    tuple means "try on every op".
    """

    name: str
    op_names: tuple[str, ...]
    fn: Callable[[Operation, ModuleOp], bool]


def erase_if_dead(op: Operation) -> bool:
    """Erase a side-effect-free op whose results are all unused."""
    if any(result.uses for result in op.results):
        return False
    op.erase()
    return True


#: Ops that must never be erased even when their results are unused.
_SIDE_EFFECT_OPS = {
    "func.return",
    "scf.yield",
    "qwerty.qbdiscard",
    "qwerty.qbdiscardz",
    "qcirc.qfree",
    "qcirc.qfreez",
}


def _dce_func(func: FuncOp) -> bool:
    """Remove dead side-effect-free ops (MLIR canonicalize includes DCE)."""
    changed = False
    progress = True
    while progress:
        progress = False
        for block in _all_blocks(func):
            for op in reversed(list(block.ops)):
                if op.name in _SIDE_EFFECT_OPS:
                    continue
                if any(v.type.is_quantum for v in op.operands) or any(
                    r.type.is_quantum for r in op.results
                ):
                    # Erasing quantum ops would orphan linear values;
                    # dedicated patterns handle those cases.
                    continue
                if op.results and all(not r.uses for r in op.results):
                    op.erase()
                    progress = True
                    changed = True
    return changed


def _all_blocks(func: FuncOp):
    stack = list(func.body.blocks)
    while stack:
        block = stack.pop()
        yield block
        for op in block.ops:
            for region in op.regions:
                stack.extend(region.blocks)


def apply_patterns_greedily(
    module: ModuleOp,
    patterns: Iterable[RewritePattern],
    max_iterations: int = 64,
    run_dce: bool = True,
) -> bool:
    """Apply patterns to a fixpoint; returns True if anything changed."""
    patterns = list(patterns)
    by_name: dict[str, list[RewritePattern]] = {}
    generic: list[RewritePattern] = []
    for pattern in patterns:
        if pattern.op_names:
            for op_name in pattern.op_names:
                by_name.setdefault(op_name, []).append(pattern)
        else:
            generic.append(pattern)

    changed_ever = False
    for _ in range(max_iterations):
        changed = False
        for func in list(module):
            for op in list(walk(func.entry)):
                if op.parent_block is None:
                    continue  # Already erased by an earlier pattern.
                candidates = by_name.get(op.name, []) + generic
                for pattern in candidates:
                    if op.parent_block is None:
                        break
                    if pattern.fn(op, module):
                        changed = True
            if run_dce and _dce_func(func):
                changed = True
        changed_ever |= changed
        if not changed:
            break
    return changed_ever
