"""Diagnostics: source spans, the diagnostic engine, and exceptions.

Every user-facing failure raised by the compiler derives from
:class:`QwertyError` so that callers can catch compiler diagnostics
separately from programming errors in the compiler itself.

Mirroring MLIR (where every operation carries a ``Location`` and
verifier/pass failures point back at user source), each error carries a
:class:`Diagnostic`: a severity, a stable error code (``QW101``), a
primary :class:`SourceSpan`, and secondary notes.  Rendering follows
the rustc style — a header line, a ``-->`` file:line:col pointer, the
offending source line, and a caret underline::

    error[QW121]: pipe type mismatch: value is qubit[2], function takes qubit[3]
      --> kernel.py:12:16
       |
    12 |     return '00' | std[3].measure
       |                   ^^^^^^^^^^^^^^
       = note: while type checking @kernel

Spans originate in the frontend (:mod:`repro.frontend.pyast` reads them
off the decorated function's Python AST) and are threaded onto every
Qwerty AST node, every IR :class:`~repro.ir.core.Operation` (its
``loc``), and every flat-circuit instruction, so failures at any layer
of the Fig. 2 pipeline can point at the Qwerty expression that produced
the failing construct.  See docs/diagnostics.md for the error-code
registry and the guide to attaching spans in new passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


# ----------------------------------------------------------------------
# Source spans.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SourceSpan:
    """A half-open region of user source code.

    ``line``/``col`` are 1-based (column 0 or line 0 means "unknown").
    ``snippet`` is the text of the first spanned source line, used by
    the renderer to print the line under the ``-->`` pointer.
    """

    file: str = "<unknown>"
    line: int = 0
    col: int = 0
    end_line: int = 0
    end_col: int = 0
    snippet: str = ""

    @property
    def is_unknown(self) -> bool:
        return self.line <= 0

    def caret_width(self) -> int:
        """Length of the caret underline on the first spanned line."""
        if self.end_line == self.line and self.end_col > self.col:
            return self.end_col - self.col
        remainder = len(self.snippet.rstrip()) - (self.col - 1)
        return max(remainder, 1)

    def __str__(self) -> str:
        if self.is_unknown:
            return "<unknown location>"
        return f"{self.file}:{self.line}:{self.col}"


#: The "no location" sentinel, analogous to MLIR's UnknownLoc.
UNKNOWN_SPAN = SourceSpan()


# ----------------------------------------------------------------------
# Diagnostics.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Note:
    """A secondary message attached to a diagnostic, optionally spanned."""

    message: str
    span: SourceSpan = UNKNOWN_SPAN


@dataclass(frozen=True)
class Diagnostic:
    """One structured compiler diagnostic (severity, code, span, notes)."""

    message: str
    code: str = "QW000"
    severity: str = "error"  # 'error' | 'warning' | 'note'
    span: SourceSpan = UNKNOWN_SPAN
    notes: tuple[Note, ...] = ()

    def render(self) -> str:
        """The rustc-style multi-line rendering of this diagnostic."""
        lines = [f"{self.severity}[{self.code}]: {self.message}"]
        lines.extend(_render_span_block(self.span))
        for note in self.notes:
            lines.append(f"  = note: {note.message}")
            lines.extend(_render_span_block(note.span, indent="    "))
        return "\n".join(lines)


def _render_span_block(span: SourceSpan, indent: str = "  ") -> list[str]:
    if span.is_unknown:
        return []
    lines = [f"{indent}--> {span}"]
    if span.snippet:
        gutter = str(span.line)
        pad = " " * len(gutter)
        lines.append(f"{indent}{pad} |")
        lines.append(f"{indent}{gutter} | {span.snippet}")
        caret = " " * max(span.col - 1, 0) + "^" * span.caret_width()
        lines.append(f"{indent}{pad} | {caret}")
    return lines


# ----------------------------------------------------------------------
# The exception hierarchy.
# ----------------------------------------------------------------------
class QwertyError(Exception):
    """Base class for all compiler diagnostics.

    Carries a :class:`Diagnostic`.  ``span``, ``notes``, and ``code``
    are keyword-only so every historical ``raise XError("message")``
    site keeps working; layers that know a location attach it either at
    construction or later via :meth:`attach_span` (the frontend and the
    pass manager do this for errors bubbling out of span-less helpers
    such as the basis library).
    """

    #: Default error code for this class; see docs/diagnostics.md.
    code = "QW000"

    def __init__(
        self,
        message: str,
        *,
        span: Optional[SourceSpan] = None,
        notes: tuple[Note, ...] | list[Note] = (),
        code: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.message = str(message)
        self.span = span if span is not None else UNKNOWN_SPAN
        self.notes: list[Note] = list(notes)
        if code is not None:
            self.code = code

    @property
    def diagnostic(self) -> Diagnostic:
        return Diagnostic(
            self.message,
            code=self.code,
            severity="error",
            span=self.span,
            notes=tuple(self.notes),
        )

    def attach_span(self, span: Optional[SourceSpan]) -> "QwertyError":
        """Set the primary span if none is attached yet (innermost wins)."""
        if span is not None and not span.is_unknown and self.span.is_unknown:
            self.span = span
        return self

    def with_note(
        self, message: str, span: Optional[SourceSpan] = None
    ) -> "QwertyError":
        """Append a secondary note and return self (for re-raising).

        Deliberately not named ``add_note``: Python 3.11's builtin
        ``Exception.add_note`` has different semantics (``__notes__``,
        returns None), and shadowing it would break both conventions.
        """
        self.notes.append(Note(message, span or UNKNOWN_SPAN))
        return self

    def render(self) -> str:
        """The full caret rendering (also what ``str()`` returns once a
        span or note is attached)."""
        return self.diagnostic.render()

    def __str__(self) -> str:
        if self.span.is_unknown and not self.notes:
            return self.message
        return self.render()


class QwertySyntaxError(QwertyError):
    """The Python AST did not match any recognized Qwerty construct."""

    code = "QW101"


class QwertyTypeError(QwertyError):
    """A Qwerty type rule was violated (including linearity)."""

    code = "QW121"


class SpanCheckError(QwertyTypeError):
    """A basis translation failed span equivalence checking (paper §4.1)."""

    code = "QW122"


class BasisError(QwertyTypeError):
    """A basis literal or basis expression is malformed (paper §2.2)."""

    code = "QW123"


class DimVarError(QwertyError):
    """A dimension variable could not be inferred or was inconsistent."""

    code = "QW124"


class ReversibilityError(QwertyTypeError):
    """An irreversible construct appeared where a reversible one is required."""

    code = "QW125"


class LinearityError(QwertyTypeError):
    """A qubit value was duplicated or discarded without ``discard``."""

    code = "QW126"


class SynthesisError(QwertyError):
    """Circuit synthesis for a basis translation or oracle failed."""

    code = "QW201"


class LoweringError(QwertyError):
    """An IR-to-IR lowering step encountered unsupported input."""

    code = "QW202"


class PassPipelineError(QwertyError):
    """A pass pipeline spec named an unknown pass or malformed options."""

    code = "QW301"


class IRVerificationError(QwertyError):
    """An IR invariant (SSA dominance, linear qubit use, types) was violated."""

    code = "QW302"


class BackendError(QwertyError):
    """Code generation for OpenQASM 3 or QIR failed."""

    code = "QW401"


class SimulationError(QwertyError):
    """The statevector simulator was given an invalid circuit."""

    code = "QW501"


class NoiseError(SimulationError):
    """An invalid noise channel, readout error, or noise model."""

    code = "QW502"


class FaultInjectedError(QwertyError):
    """A deterministic fault-injection site fired (:mod:`repro.exec.faults`).

    Never raised in production configurations — only when a
    :class:`~repro.exec.faults.FaultPlan` is active.  The retry layer
    treats it as retryable; anything else escaping a worker is a real
    bug and propagates.
    """

    code = "QW510"


class ServiceError(QwertyError):
    """Base class for execution-service failures (:mod:`repro.service`).

    Every subclass maps to one structured error response on the wire;
    ``retryable`` tells clients whether backing off and resubmitting
    can succeed.
    """

    code = "QW600"

    #: Whether a client resubmission can plausibly succeed.
    retryable = False


class QueueFullError(ServiceError):
    """The admission queue is full; the request was shed (429-style)."""

    code = "QW601"
    retryable = True


class DeadlineExceededError(ServiceError):
    """The request's deadline elapsed; its work was cancelled."""

    code = "QW602"
    retryable = True


class RetryBudgetExhaustedError(ServiceError):
    """Per-chunk retries exhausted the request's retry budget."""

    code = "QW603"
    retryable = True


class BadRequestError(ServiceError):
    """The request payload was malformed or named unknown entities."""

    code = "QW604"


class ServiceUnavailableError(ServiceError):
    """The service is draining for shutdown and accepts no new work."""

    code = "QW605"
    retryable = True


def _collect_error_codes(
    cls: type[QwertyError],
) -> dict[str, type[QwertyError]]:
    """Walk the exception hierarchy so the registry stays complete (and
    collision-free) by construction as new classes are added.

    A class appears under a code only if it *declares* one (subclasses
    that inherit the parent's code share the parent's entry); two
    classes declaring the same code is an import-time error.
    """
    registry: dict[str, type[QwertyError]] = {}
    if "code" in vars(cls) or cls is QwertyError:
        registry[cls.code] = cls
    for subclass in cls.__subclasses__():
        for code, owner in _collect_error_codes(subclass).items():
            existing = registry.get(code)
            if existing is not None and existing is not owner:
                raise RuntimeError(
                    f"error code {code} claimed by both "
                    f"{existing.__name__} and {owner.__name__}"
                )
            registry[code] = owner
    return registry


#: Stable code -> exception class registry (rendered in docs/diagnostics.md).
ERROR_CODES: dict[str, type[QwertyError]] = _collect_error_codes(QwertyError)
