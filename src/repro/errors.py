"""Exception hierarchy for the Qwerty/ASDF reproduction.

Every user-facing failure raised by the compiler derives from
:class:`QwertyError` so that callers can catch compiler diagnostics
separately from programming errors in the compiler itself.
"""

from __future__ import annotations


class QwertyError(Exception):
    """Base class for all compiler diagnostics."""


class QwertySyntaxError(QwertyError):
    """The Python AST did not match any recognized Qwerty construct."""


class QwertyTypeError(QwertyError):
    """A Qwerty type rule was violated (including linearity)."""


class SpanCheckError(QwertyTypeError):
    """A basis translation failed span equivalence checking (paper §4.1)."""


class BasisError(QwertyTypeError):
    """A basis literal or basis expression is malformed (paper §2.2)."""


class DimVarError(QwertyError):
    """A dimension variable could not be inferred or was inconsistent."""


class ReversibilityError(QwertyTypeError):
    """An irreversible construct appeared where a reversible one is required."""


class LinearityError(QwertyTypeError):
    """A qubit value was duplicated or discarded without ``discard``."""


class SynthesisError(QwertyError):
    """Circuit synthesis for a basis translation or oracle failed."""


class LoweringError(QwertyError):
    """An IR-to-IR lowering step encountered unsupported input."""


class PassPipelineError(QwertyError):
    """A pass pipeline spec named an unknown pass or malformed options."""


class IRVerificationError(QwertyError):
    """An IR invariant (SSA dominance, linear qubit use, types) was violated."""


class BackendError(QwertyError):
    """Code generation for OpenQASM 3 or QIR failed."""


class SimulationError(QwertyError):
    """The statevector simulator was given an invalid circuit."""
