"""Symbolic angle parameters that survive the whole compile pipeline.

A :class:`Parameter` is a named placeholder for a rotation angle.  When
a ``@qpu`` kernel captures one (its annotation being ``angle``), every
phase it flows into stays *symbolic* through expansion, typechecking,
lowering, synthesis, and circuit optimization: gate ``params`` tuples
carry :class:`ParamExpr` objects instead of floats.  The compile cache
keys on the parameter *name*, not its value, so one compile serves an
unlimited parameter sweep — ``CompileResult.bind(values)`` substitutes
concrete floats into the already-optimized circuits without touching
the cache.

Only **affine** expressions are representable: ``c0 + c1*p1 + c2*p2 +
…``.  That is exactly what the parameter-shift rule (and the chain rule
through it) needs, and it keeps equality, hashing, and printing
trivial.  Multiplying two symbolic expressions raises
:class:`~repro.errors.QwertyTypeError` (nonlinear parameter use).

Expressions auto-collapse: any arithmetic whose symbolic terms cancel
returns a plain ``float``, so e.g. ``p + (-p)`` is ``0.0`` and the
peephole's rotation-cancellation logic keeps working without special
cases.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Union

from .errors import QwertyTypeError

__all__ = [
    "Parameter",
    "ParamExpr",
    "ParamLike",
    "is_symbolic",
    "evaluate_param",
]

#: A gate/phase parameter: either a concrete number or a symbolic expr.
ParamLike = Union[float, int, "ParamExpr"]

# Coefficients smaller than this are treated as exact zero when
# collapsing terms (guards against float dust from chained arithmetic).
_COEF_EPS = 0.0


class Parameter:
    """A named symbolic angle.

    Parameters are identified by name: two ``Parameter("theta")``
    objects are equal and interchangeable.  Arithmetic on a Parameter
    produces a :class:`ParamExpr` (``2 * theta + 0.5``); using one where
    a number is required before binding raises a clear error.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not name.isidentifier():
            raise QwertyTypeError(
                f"parameter name must be a valid identifier, got {name!r}"
            )
        self.name = name

    def __repr__(self) -> str:
        return f"Parameter({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Parameter):
            return self.name == other.name
        if isinstance(other, ParamExpr):
            return ParamExpr.of(self) == other
        if isinstance(other, (int, float)):
            # A symbol never equals a concrete number.
            return False
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Parameter", self.name))

    # Arithmetic promotes to ParamExpr -------------------------------
    def _expr(self) -> "ParamExpr":
        return ParamExpr.of(self)

    def __add__(self, other): return self._expr() + other
    def __radd__(self, other): return other + self._expr()
    def __sub__(self, other): return self._expr() - other
    def __rsub__(self, other): return (-self._expr()) + other
    def __mul__(self, other): return self._expr() * other
    def __rmul__(self, other): return self._expr() * other
    def __truediv__(self, other): return self._expr() / other
    def __neg__(self): return -self._expr()
    def __pos__(self): return self._expr()
    def __mod__(self, other): return self._expr() % other


class ParamExpr:
    """An affine combination of parameters: ``constant + Σ coef·param``.

    Immutable and hashable (gate-matrix caches and fusion signatures
    hash gate params).  ``terms`` is a tuple of ``(Parameter, coef)``
    sorted by parameter name with no zero coefficients, so structurally
    equal expressions compare and hash equal.
    """

    __slots__ = ("constant", "terms")

    def __init__(
        self,
        constant: float = 0.0,
        terms: Iterable[tuple[Parameter, float]] = (),
    ) -> None:
        merged: dict[str, tuple[Parameter, float]] = {}
        for param, coef in terms:
            if param.name in merged:
                prev_param, prev_coef = merged[param.name]
                merged[param.name] = (prev_param, prev_coef + float(coef))
            else:
                merged[param.name] = (param, float(coef))
        kept = tuple(
            (param, coef)
            for param, coef in (merged[name] for name in sorted(merged))
            if abs(coef) > _COEF_EPS
        )
        object.__setattr__(self, "constant", float(constant))
        object.__setattr__(self, "terms", kept)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ParamExpr is immutable")

    # Immutable: copies are the object itself (AST expansion deepcopies
    # statement trees, and phases ride inside them).
    def __copy__(self) -> "ParamExpr":
        return self

    def __deepcopy__(self, memo) -> "ParamExpr":
        return self

    def __reduce__(self):
        return (ParamExpr, (self.constant, self.terms))

    # Construction ---------------------------------------------------
    @staticmethod
    def of(value: ParamLike | Parameter) -> "ParamExpr":
        """Promote a number, Parameter, or ParamExpr to a ParamExpr."""
        if isinstance(value, ParamExpr):
            return value
        if isinstance(value, Parameter):
            return ParamExpr(0.0, ((value, 1.0),))
        if isinstance(value, (int, float)):
            return ParamExpr(float(value))
        raise QwertyTypeError(
            f"cannot use {type(value).__name__} as an angle parameter"
        )

    @staticmethod
    def _collapse(expr: "ParamExpr") -> "ParamExpr | float":
        """Return a plain float when no symbolic terms remain."""
        if not expr.terms:
            return expr.constant
        return expr

    # Introspection --------------------------------------------------
    @property
    def parameters(self) -> tuple[Parameter, ...]:
        """The distinct parameters appearing in this expression."""
        return tuple(param for param, _ in self.terms)

    def coefficient(self, param: "Parameter | str") -> float:
        """The coefficient of ``param`` (0.0 if absent)."""
        name = param.name if isinstance(param, Parameter) else param
        for p, coef in self.terms:
            if p.name == name:
                return coef
        return 0.0

    # Evaluation -----------------------------------------------------
    def evaluate(self, env: Mapping["Parameter | str", float]) -> float:
        """Evaluate to a float; every parameter must be present in env."""
        lookup = _normalize_env(env)
        total = self.constant
        for param, coef in self.terms:
            if param.name not in lookup:
                raise QwertyTypeError(
                    f"no value bound for parameter '{param.name}'"
                )
            total += coef * lookup[param.name]
        return total

    def subs(
        self, env: Mapping["Parameter | str", ParamLike]
    ) -> "ParamExpr | float":
        """Substitute some parameters; collapses to float when fully bound."""
        lookup = _normalize_env(env)
        constant = self.constant
        remaining: list[tuple[Parameter, float]] = []
        for param, coef in self.terms:
            if param.name in lookup:
                value = lookup[param.name]
                if isinstance(value, (Parameter, ParamExpr)):
                    sub = ParamExpr.of(value)
                    constant += coef * sub.constant
                    remaining.extend(
                        (p, coef * c) for p, c in sub.terms
                    )
                else:
                    constant += coef * float(value)
            else:
                remaining.append((param, coef))
        return ParamExpr._collapse(ParamExpr(constant, remaining))

    # Arithmetic -----------------------------------------------------
    def __add__(self, other: ParamLike) -> "ParamExpr | float":
        if isinstance(other, Parameter):
            other = ParamExpr.of(other)
        if isinstance(other, ParamExpr):
            return ParamExpr._collapse(
                ParamExpr(self.constant + other.constant,
                          self.terms + other.terms)
            )
        if isinstance(other, (int, float)):
            return ParamExpr._collapse(
                ParamExpr(self.constant + float(other), self.terms)
            )
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other: ParamLike) -> "ParamExpr | float":
        if isinstance(other, Parameter):
            other = ParamExpr.of(other)
        if isinstance(other, ParamExpr):
            return self + (-other)
        if isinstance(other, (int, float)):
            return self + (-float(other))
        return NotImplemented

    def __rsub__(self, other: ParamLike) -> "ParamExpr | float":
        return (-self) + other

    def __mul__(self, other: ParamLike) -> "ParamExpr | float":
        if isinstance(other, Parameter):
            other = ParamExpr.of(other)
        if isinstance(other, ParamExpr):
            if self.terms and other.terms:
                raise QwertyTypeError(
                    "nonlinear parameter expression: cannot multiply "
                    f"'{self}' by '{other}' (angles must be affine in "
                    "their parameters)"
                )
            if other.terms:
                return other * self.constant
            other = other.constant
        if isinstance(other, (int, float)):
            scale = float(other)
            return ParamExpr._collapse(
                ParamExpr(
                    self.constant * scale,
                    tuple((p, c * scale) for p, c in self.terms),
                )
            )
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, other: ParamLike) -> "ParamExpr | float":
        if isinstance(other, (Parameter, ParamExpr)):
            raise QwertyTypeError(
                f"nonlinear parameter expression: cannot divide by '{other}'"
            )
        if isinstance(other, (int, float)):
            return self * (1.0 / float(other))
        return NotImplemented

    def __neg__(self) -> "ParamExpr":
        return ParamExpr(
            -self.constant, tuple((p, -c) for p, c in self.terms)
        )

    def __pos__(self) -> "ParamExpr":
        return self

    def __mod__(self, other: object) -> "ParamExpr":
        # Phases are periodic (mod 2π or mod 360°); normalizing a
        # symbolic angle is display-only, so modulo is the identity.
        # This keeps ``phase % 360.0``-style normalization sites
        # working unchanged on symbolic phases.
        return self

    def __abs__(self) -> float:
        raise QwertyTypeError(
            f"cannot take abs() of unbound parameter expression '{self}'; "
            "bind concrete values first"
        )

    def __float__(self) -> float:
        raise QwertyTypeError(
            f"cannot convert unbound parameter expression '{self}' to a "
            "number; bind concrete values first (CompileResult.bind(...))"
        )

    # Equality / hashing ---------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, ParamExpr):
            return (
                self.constant == other.constant and self.terms == other.terms
            )
        if isinstance(other, Parameter):
            return self == ParamExpr.of(other)
        if isinstance(other, (int, float)):
            # A symbolic expression never equals a concrete number
            # (fully-constant exprs collapse to float before escaping).
            return False
        return NotImplemented

    def __hash__(self) -> int:
        return hash(
            (
                "ParamExpr",
                self.constant,
                tuple((p.name, c) for p, c in self.terms),
            )
        )

    # Printing -------------------------------------------------------
    def __str__(self) -> str:
        parts: list[str] = []
        for param, coef in self.terms:
            if not parts:
                if coef == 1.0:
                    parts.append(param.name)
                elif coef == -1.0:
                    parts.append(f"-{param.name}")
                else:
                    parts.append(f"{coef:.12g}*{param.name}")
            else:
                sign = "+" if coef >= 0 else "-"
                mag = abs(coef)
                if mag == 1.0:
                    parts.append(f" {sign} {param.name}")
                else:
                    parts.append(f" {sign} {mag:.12g}*{param.name}")
        if not parts:
            return f"{self.constant:.12g}"
        if self.constant != 0.0:
            sign = "+" if self.constant >= 0 else "-"
            parts.append(f" {sign} {abs(self.constant):.12g}")
        return "".join(parts)

    def __repr__(self) -> str:
        return f"ParamExpr({self})"


def _normalize_env(env: Mapping["Parameter | str", object]) -> dict[str, object]:
    lookup: dict[str, object] = {}
    for key, value in env.items():
        name = key.name if isinstance(key, Parameter) else key
        if not isinstance(name, str):
            raise QwertyTypeError(
                f"parameter binding keys must be Parameter or str, got "
                f"{type(key).__name__}"
            )
        lookup[name] = value
    return lookup


def is_symbolic(value: object) -> bool:
    """True when ``value`` is an unbound Parameter or ParamExpr."""
    return isinstance(value, (Parameter, ParamExpr))


def evaluate_param(
    value: ParamLike | Parameter, env: Mapping["Parameter | str", float]
) -> float:
    """Evaluate a maybe-symbolic param to a float under ``env``."""
    if isinstance(value, Parameter):
        value = ParamExpr.of(value)
    if isinstance(value, ParamExpr):
        return value.evaluate(env)
    return float(value)


def parameters_of(values: Iterable[object]) -> tuple[Parameter, ...]:
    """Distinct parameters appearing across ``values``, sorted by name."""
    found: dict[str, Parameter] = {}
    for value in values:
        if isinstance(value, Parameter):
            found.setdefault(value.name, value)
        elif isinstance(value, ParamExpr):
            for param in value.parameters:
                found.setdefault(param.name, param)
    return tuple(found[name] for name in sorted(found))


def radians_expr(value: ParamLike | Parameter) -> "ParamExpr | float":
    """Convert a degrees angle (possibly symbolic) to radians."""
    if isinstance(value, (Parameter, ParamExpr)):
        return ParamExpr.of(value) * (math.pi / 180.0)
    return math.radians(float(value))
