"""Expectation values and batched parameter-grid evaluation.

:func:`evaluate_grid` is the sweep engine: it simulates a *symbolic*
circuit at ``G`` parameter points in one pass by stacking the grid into
the leading batch axis of a ``(G, 2, …, 2)`` state tensor — the same
layout (and the same :func:`control_sliced_view` slicing) as the
shot-batched trajectory engine.  Fixed gates are applied once across
the whole batch; each symbolic gate evaluates its affine angle
expression over the grid vectorized, builds a ``(G, 2, 2)`` matrix
stack, and contracts it in a single einsum.  Parameter-shift gradients
(:mod:`repro.variational.gradients`) and the optimizer loop ride on
this, so a whole VQE run touches the compiler exactly once.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.errors import QwertyTypeError, SimulationError
from repro.parameters import ParamExpr
from repro.qcircuit.circuit import (
    Circuit,
    CircuitGate,
    Measurement,
    Reset,
    bind_circuit,
    circuit_parameters,
)
from repro.sim.kernels import apply_matrix_inplace, gate_matrix
from repro.sim.statevector import control_sliced_view
from repro.variational.observables import DiagonalObservable

#: Parameterized gates the vectorized evaluator knows how to stack.
_SYMBOLIC_GATES = {"p", "rx", "ry", "rz"}


def _unitary_gates(circuit: Circuit) -> list[CircuitGate]:
    """The circuit's gates, rejecting anything non-unitary mid-stream.

    Grid evaluation runs the state once per batch, so classical control
    flow (mid-circuit measurement, reset, conditioned gates) has no
    meaning here; terminal measurements are fine and simply ignored —
    expectations read |psi|^2 directly.
    """
    gates: list[CircuitGate] = []
    seen_measurement = False
    for inst in circuit.instructions:
        if isinstance(inst, Measurement):
            seen_measurement = True
        elif isinstance(inst, Reset):
            raise SimulationError(
                "grid evaluation supports unitary circuits only; "
                "this circuit resets a qubit"
            )
        elif isinstance(inst, CircuitGate):
            if inst.condition is not None or seen_measurement:
                raise SimulationError(
                    "grid evaluation supports unitary circuits with "
                    "terminal measurements only; this circuit has "
                    "mid-circuit measurement or classical control"
                )
            gates.append(inst)
    return gates


def exact_probabilities(
    circuit: Circuit, values: Optional[Mapping] = None
) -> np.ndarray:
    """The exact 2^n computational-basis probabilities of a circuit.

    ``values`` binds any symbolic parameters first (names or
    :class:`~repro.parameters.Parameter` keys, angles in radians).
    Index ``x`` has qubit ``q`` at bit ``(x >> (n-1-q)) & 1``, matching
    :meth:`DiagonalObservable.eigenvalues`.
    """
    bound = bind_circuit(circuit, values or {})
    gates = _unitary_gates(bound)
    n = max(circuit.num_qubits, 1)
    state = np.zeros((2,) * n, dtype=complex)
    state[(0,) * n] = 1.0
    for gate in gates:
        view, axes = control_sliced_view(
            state, gate.targets, gate.controls, gate.ctrl_states
        )
        apply_matrix_inplace(view, gate_matrix(gate.name, gate.params), axes)
    return np.abs(state.reshape(-1)) ** 2


def expectation(
    circuit: Circuit,
    observable: DiagonalObservable,
    values: Optional[Mapping] = None,
    shots: Optional[int] = None,
    seed: int = 0,
) -> float:
    """``<H>`` for one parameter point — exact, or shot-sampled.

    With ``shots=None`` this is the noiseless expectation
    ``Σ p(x)·λ(x)``; with shots it draws a multinomial histogram from
    the exact distribution (seeded) and averages, the estimator an
    actual device would give.
    """
    probs = exact_probabilities(circuit, values)
    eigenvalues = observable.eigenvalues(circuit.num_qubits)
    if shots is None:
        return float(probs @ eigenvalues)
    if shots < 1:
        raise SimulationError("shots must be >= 1")
    rng = np.random.default_rng(seed)
    counts = rng.multinomial(shots, probs / probs.sum())
    return float((counts @ eigenvalues) / shots)


def _grid_arrays(
    grid: Mapping, names: Sequence[str]
) -> tuple[dict[str, np.ndarray], int]:
    """Normalize a parameter grid to equal-length float arrays."""
    arrays: dict[str, np.ndarray] = {}
    for key, column in grid.items():
        name = getattr(key, "name", key)
        if not isinstance(name, str):
            raise QwertyTypeError(f"bad grid key {key!r}")
        arrays[name] = np.asarray(column, dtype=float).reshape(-1)
    missing = [name for name in names if name not in arrays]
    if missing:
        raise QwertyTypeError(
            "grid is missing parameter(s) " + ", ".join(missing)
        )
    lengths = {a.shape[0] for a in arrays.values()}
    if len(lengths) > 1:
        raise QwertyTypeError(
            "grid columns have mismatched lengths: "
            + ", ".join(
                f"{name}={a.shape[0]}" for name, a in sorted(arrays.items())
            )
        )
    return arrays, lengths.pop() if lengths else 0


def _angles_over_grid(
    expr, arrays: Mapping[str, np.ndarray], points: int
) -> np.ndarray:
    """Evaluate an affine angle expression at every grid point at once."""
    if not isinstance(expr, ParamExpr):
        return np.full(points, float(expr))
    theta = np.full(points, expr.constant, dtype=float)
    for param, coefficient in expr.terms:
        theta += coefficient * arrays[param.name]
    return theta


def _stacked_matrices(name: str, theta: np.ndarray) -> np.ndarray:
    """A ``(G, 2, 2)`` stack of one rotation gate at ``G`` angles."""
    mats = np.zeros((theta.shape[0], 2, 2), dtype=complex)
    cos, sin = np.cos(theta / 2.0), np.sin(theta / 2.0)
    if name == "p":
        mats[:, 0, 0] = 1.0
        mats[:, 1, 1] = np.exp(1j * theta)
    elif name == "rx":
        mats[:, 0, 0] = mats[:, 1, 1] = cos
        mats[:, 0, 1] = mats[:, 1, 0] = -1j * sin
    elif name == "ry":
        mats[:, 0, 0] = mats[:, 1, 1] = cos
        mats[:, 0, 1] = -sin
        mats[:, 1, 0] = sin
    elif name == "rz":
        mats[:, 0, 0] = np.exp(-0.5j * theta)
        mats[:, 1, 1] = np.exp(0.5j * theta)
    else:
        raise SimulationError(
            f"gate {name!r} cannot carry a symbolic parameter"
        )
    return mats


def grid_probabilities(circuit: Circuit, grid: Mapping) -> np.ndarray:
    """Probabilities at every grid point: a ``(G, 2^n)`` array.

    ``grid`` maps parameter names (or ``Parameter`` objects) to
    equal-length 1-D arrays of angles in radians; point ``g`` binds
    every parameter to its ``g``-th entry.  The whole sweep runs as one
    batched simulation over a ``(G, 2, …, 2)`` state tensor.
    """
    names = [p.name for p in circuit_parameters(circuit)]
    arrays, points = _grid_arrays(grid, names)
    if points == 0:
        return np.zeros((0, 2 ** circuit.num_qubits))
    gates = _unitary_gates(circuit)
    n = max(circuit.num_qubits, 1)
    state = np.zeros((points,) + (2,) * n, dtype=complex)
    state[(slice(None),) + (0,) * n] = 1.0
    for gate in gates:
        view, axes = control_sliced_view(
            state, gate.targets, gate.controls, gate.ctrl_states,
            axis_offset=1,
        )
        if not gate.is_symbolic:
            # One fixed matrix broadcast across the whole batch axis.
            apply_matrix_inplace(
                view, gate_matrix(gate.name, gate.params), axes
            )
            continue
        theta = _angles_over_grid(gate.params[0], arrays, points)
        mats = _stacked_matrices(gate.name, theta)
        # Bring the (sliced) target axis next to the batch axis and
        # contract each grid point against its own 2x2 matrix.
        moved = np.moveaxis(view, axes[0], 1)
        moved[...] = np.einsum("gij,gj...->gi...", mats, moved)
    return np.abs(state.reshape(points, -1)) ** 2


def evaluate_grid(
    circuit: Circuit,
    observable: DiagonalObservable,
    grid: Mapping,
) -> np.ndarray:
    """``<H>`` at every grid point, batched: a ``(G,)`` float array.

    Equivalent to ``[expectation(circuit, observable, point) for point
    in grid]`` but runs the whole sweep through one batched state, so
    fixed gates cost one apply total instead of one per point.
    """
    probabilities = grid_probabilities(circuit, grid)
    eigenvalues = observable.eigenvalues(circuit.num_qubits)
    return probabilities @ eigenvalues
