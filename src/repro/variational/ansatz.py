"""Parameterized circuit ansätze (mirroring DeepQuantum's ansatz zoo).

These builders produce symbolic flat circuits — gate params are
:class:`repro.parameters.ParamExpr` over named
:class:`~repro.parameters.Parameter` symbols — plus the parameter list
in a stable order.  Build once; evaluate unlimited parameter points via
:func:`repro.variational.evaluate.evaluate_grid` or per-point binding
(:func:`repro.qcircuit.circuit.bind_circuit`).

Angles here are **radians** (gate-level params), unlike DSL phases
which are degrees.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import SimulationError
from repro.parameters import Parameter, ParamExpr
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement


def _measured(circuit: Circuit) -> Circuit:
    """Append a terminal measurement of every qubit, in qubit order."""
    circuit.num_bits = circuit.num_qubits
    for q in range(circuit.num_qubits):
        circuit.add(Measurement(q, q))
    circuit.output_bits = list(range(circuit.num_qubits))
    return circuit


def hardware_efficient_ansatz(
    num_qubits: int,
    layers: int = 1,
    prefix: str = "theta",
) -> tuple[Circuit, list[Parameter]]:
    """RY rotation layers interleaved with CZ entangling ladders.

    Layer ``l`` applies ``ry(theta_l_q)`` on every qubit ``q`` followed
    by a ladder of ``cz`` gates on neighbouring pairs; a final rotation
    layer follows the last ladder, giving ``(layers + 1) * num_qubits``
    parameters named ``{prefix}_{layer}_{qubit}``.
    """
    if num_qubits < 1 or layers < 0:
        raise SimulationError("ansatz needs >= 1 qubit and >= 0 layers")
    circuit = Circuit(num_qubits)
    params: list[Parameter] = []

    def rotation_layer(layer: int) -> None:
        for q in range(num_qubits):
            param = Parameter(f"{prefix}_{layer}_{q}")
            params.append(param)
            circuit.add(
                CircuitGate("ry", (q,), params=(ParamExpr.of(param),))
            )

    for layer in range(layers):
        rotation_layer(layer)
        for q in range(num_qubits - 1):
            circuit.add(CircuitGate("z", (q + 1,), controls=(q,)))
    rotation_layer(layers)
    return _measured(circuit), params


def qaoa_maxcut_ansatz(
    num_qubits: int,
    edges: Iterable[tuple[int, int]],
    layers: int = 1,
) -> tuple[Circuit, list[Parameter]]:
    """The QAOA MaxCut ansatz: H layer, then alternating cost/mixer.

    Per layer ``l``: the cost unitary ``exp(-i γ_l Σ Z_i Z_j / 2)``
    compiled as ``cx · rz(γ_l) · cx`` per edge, then the mixer
    ``rx(β_l)`` on every qubit.  Parameters come back ordered
    ``[gamma_0, beta_0, gamma_1, beta_1, …]``.
    """
    edge_list = [(int(a), int(b)) for a, b in edges]
    if num_qubits < 2 or layers < 1:
        raise SimulationError("QAOA needs >= 2 qubits and >= 1 layer")
    for a, b in edge_list:
        if not (0 <= a < num_qubits and 0 <= b < num_qubits) or a == b:
            raise SimulationError(f"bad edge ({a}, {b})")
    circuit = Circuit(num_qubits)
    params: list[Parameter] = []
    for q in range(num_qubits):
        circuit.add(CircuitGate("h", (q,)))
    for layer in range(layers):
        gamma = Parameter(f"gamma_{layer}")
        beta = Parameter(f"beta_{layer}")
        params.extend((gamma, beta))
        for a, b in edge_list:
            circuit.add(CircuitGate("x", (b,), controls=(a,)))
            circuit.add(
                CircuitGate("rz", (b,), params=(ParamExpr.of(gamma),))
            )
            circuit.add(CircuitGate("x", (b,), controls=(a,)))
        for q in range(num_qubits):
            circuit.add(
                CircuitGate("rx", (q,), params=(2.0 * ParamExpr.of(beta),))
            )
    return _measured(circuit), params
