"""End-to-end variational drivers: VQE on an Ising chain, QAOA MaxCut.

These mirror the example workloads of DeepQuantum's ansatz zoo but run
entirely on this repository's stack: a symbolic ansatz built once,
exact expectations from :mod:`repro.variational.evaluate`,
parameter-shift gradients, and a native Adam loop.  Both are seeded and
deterministic — the convergence tests assert ``final loss < initial
loss`` on fixed seeds.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.variational.ansatz import (
    hardware_efficient_ansatz,
    qaoa_maxcut_ansatz,
)
from repro.variational.evaluate import exact_probabilities, expectation
from repro.variational.gradients import parameter_shift_gradient
from repro.variational.observables import (
    ising_observable,
    maxcut_observable,
)
from repro.variational.optim import Adam, minimize


def _run(circuit, parameters, observable, x0, optimizer, steps) -> dict:
    names = [p.name for p in parameters]

    def loss(x: np.ndarray) -> float:
        return expectation(circuit, observable, dict(zip(names, x)))

    def grad(x: np.ndarray) -> np.ndarray:
        return parameter_shift_gradient(
            circuit, observable, dict(zip(names, x)), parameters
        )

    result = minimize(loss, grad, x0, optimizer=optimizer, steps=steps)
    result.update(
        circuit=circuit,
        parameters=names,
        values=dict(zip(names, result["x"])),
        initial_loss=result["history"][0],
        final_loss=result["loss"],
    )
    return result


def run_vqe(
    num_qubits: int = 4,
    layers: int = 1,
    edges: Optional[Iterable[tuple[int, int]]] = None,
    j: float = 1.0,
    h: float = 0.5,
    steps: int = 60,
    optimizer=None,
    seed: int = 0,
) -> dict:
    """Minimize an Ising-chain energy with a hardware-efficient ansatz.

    Defaults to antiferromagnetic ``J Σ Z_i Z_{i+1} + h Σ Z_i`` on a
    path graph.  Returns the :func:`minimize` record augmented with the
    circuit, parameter names, bound values, ``initial_loss``,
    ``final_loss``, and ``ground_energy`` (exact, for the gap check).
    """
    edge_list = (
        [(q, q + 1) for q in range(num_qubits - 1)]
        if edges is None
        else [(int(a), int(b)) for a, b in edges]
    )
    observable = ising_observable(num_qubits, edge_list, j=j, h=h)
    circuit, parameters = hardware_efficient_ansatz(num_qubits, layers)
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(-0.4, 0.4, size=len(parameters))
    result = _run(
        circuit, parameters, observable,
        x0, optimizer if optimizer is not None else Adam(lr=0.1), steps,
    )
    result["ground_energy"] = float(
        observable.eigenvalues(num_qubits).min()
    )
    return result


def run_qaoa_maxcut(
    num_qubits: int = 4,
    edges: Optional[Sequence[tuple[int, int]]] = None,
    layers: int = 2,
    steps: int = 40,
    optimizer=None,
    seed: int = 0,
) -> dict:
    """QAOA for MaxCut on a small graph (default: the 4-cycle).

    Minimizes the negated cut ``-Σ (1 - Z_i Z_j)/2``; the returned
    record adds ``best_bitstring`` (the most probable measurement at
    the optimum) and its ``cut_value``, plus ``max_cut`` by brute
    force so tests can assert the approximation quality.
    """
    edge_list = (
        [(q, (q + 1) % num_qubits) for q in range(num_qubits)]
        if edges is None
        else [(int(a), int(b)) for a, b in edges]
    )
    observable = maxcut_observable(edge_list)
    circuit, parameters = qaoa_maxcut_ansatz(num_qubits, edge_list, layers)
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(0.05, 0.6, size=len(parameters))
    result = _run(
        circuit, parameters, observable,
        x0, optimizer if optimizer is not None else Adam(lr=0.1), steps,
    )

    def cut_value(bits: tuple[int, ...]) -> int:
        return sum(1 for a, b in edge_list if bits[a] != bits[b])

    probabilities = exact_probabilities(circuit, result["values"])
    best_index = int(np.argmax(probabilities))
    best_bits = tuple(
        (best_index >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)
    )
    result["best_bitstring"] = "".join(str(b) for b in best_bits)
    result["cut_value"] = cut_value(best_bits)
    result["max_cut"] = max(
        cut_value(
            tuple((x >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits))
        )
        for x in range(2**num_qubits)
    )
    return result
