"""Diagonal (Z-basis) observables for variational loss functions.

A :class:`DiagonalObservable` is a sum of Pauli-Z strings plus a
constant: ``H = c0 + Σ_k coeff_k · Π_{q in qubits_k} Z_q``.  Every
term is diagonal in the computational basis, so expectation values
reduce to a weighted sum over measured bitstrings — the natural loss
for VQE on Ising Hamiltonians and for QAOA MaxCut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class DiagonalObservable:
    """``constant + Σ coeff · Z-string``, indexed by *qubit* number.

    ``terms`` is a tuple of ``(coeff, qubits)`` pairs; each term is the
    product of Pauli-Z on the named qubits.  ``Z|b> = (-1)^b |b>``, so
    the eigenvalue on bitstring ``b`` is
    ``constant + Σ coeff · (-1)^(parity of the term's bits)``.
    """

    terms: tuple[tuple[float, tuple[int, ...]], ...]
    constant: float = 0.0

    def __post_init__(self) -> None:
        normalized = tuple(
            (float(coeff), tuple(int(q) for q in qubits))
            for coeff, qubits in self.terms
        )
        for _, qubits in normalized:
            if len(set(qubits)) != len(qubits):
                raise SimulationError(
                    "a Z-string term names the same qubit twice"
                )
        object.__setattr__(self, "terms", normalized)

    @property
    def num_qubits(self) -> int:
        """One past the highest qubit index any term touches."""
        return 1 + max(
            (q for _, qubits in self.terms for q in qubits), default=-1
        )

    def value(self, bits: Sequence[int]) -> float:
        """The eigenvalue on one computational-basis bitstring.

        ``bits[q]`` is qubit ``q``'s measured bit (0 or 1), in the
        repository's leftmost-is-qubit-0 convention.
        """
        total = self.constant
        for coeff, qubits in self.terms:
            parity = 0
            for q in qubits:
                parity ^= int(bits[q])
            total += coeff * (1.0 - 2.0 * parity)
        return total

    def eigenvalues(self, num_qubits: int) -> np.ndarray:
        """All 2^n eigenvalues as a vector over basis-state indices.

        Index ``x`` has qubit ``q`` at bit ``(x >> (n-1-q)) & 1`` (the
        statevector convention), so ``probabilities.reshape(-1) @
        eigenvalues`` is the exact expectation value.
        """
        if num_qubits < self.num_qubits:
            raise SimulationError(
                f"observable touches qubit {self.num_qubits - 1} but the "
                f"circuit has only {num_qubits} qubit(s)"
            )
        indices = np.arange(2**num_qubits)
        values = np.full(indices.shape, self.constant, dtype=float)
        for coeff, qubits in self.terms:
            parity = np.zeros_like(indices)
            for q in qubits:
                parity ^= (indices >> (num_qubits - 1 - q)) & 1
            values += coeff * (1.0 - 2.0 * parity)
        return values

    def expectation_from_counts(
        self, counts: Mapping[str, int] | Mapping[tuple[int, ...], int]
    ) -> float:
        """Shot-averaged expectation from a measurement histogram.

        Keys are bitstrings (``"0110"``) or bit tuples, qubit 0
        leftmost — the format of ``kernel.histogram()`` and the sampled
        backends.
        """
        total = 0.0
        shots = 0
        for key, count in counts.items():
            bits = [int(b) for b in key]
            total += self.value(bits) * count
            shots += count
        if shots == 0:
            raise SimulationError("empty histogram")
        return total / shots


def ising_observable(
    num_qubits: int,
    edges: Iterable[tuple[int, int]],
    j: float = 1.0,
    h: float = 0.0,
) -> DiagonalObservable:
    """A diagonal Ising Hamiltonian ``J Σ Z_i Z_j + h Σ Z_i``.

    The classic VQE target for hardware-efficient ansätze; its ground
    state for ``J > 0`` on a path graph is the antiferromagnetic
    configuration.
    """
    terms: list[tuple[float, tuple[int, ...]]] = [
        (j, (int(a), int(b))) for a, b in edges
    ]
    if h != 0.0:
        terms.extend((h, (q,)) for q in range(num_qubits))
    return DiagonalObservable(tuple(terms))


def maxcut_observable(edges: Iterable[tuple[int, int]]) -> DiagonalObservable:
    """The (negated) MaxCut objective ``-Σ (1 - Z_i Z_j) / 2``.

    Minimizing this observable maximizes the cut: each edge contributes
    -1 when its endpoints are measured on opposite sides.
    """
    edge_list = [(int(a), int(b)) for a, b in edges]
    return DiagonalObservable(
        tuple((0.5, (a, b)) for a, b in edge_list),
        constant=-0.5 * len(edge_list),
    )
