"""Variational workloads: ansätze, expectation values, gradients, and
optimizers (docs/variational.md).

The compiler side of this story is :class:`repro.Parameter` — angles
that stay symbolic through the whole pipeline so one compile (one
compile-cache entry) serves an unlimited parameter sweep via
``CompileResult.bind``.  This package is the workload side: circuit
ansätze in the style of DeepQuantum's ``ansatz.py`` (hardware-efficient
VQE layers, QAOA MaxCut), diagonal observables, batched parameter-grid
evaluation on the trajectory engine's ``(G, 2, …, 2)`` batch layout,
parameter-shift gradients, and Adam/AdamW/ADOPT optimizers grounded in
the Adam-convergence papers of PAPERS.md.
"""

from repro.variational.ansatz import (
    hardware_efficient_ansatz,
    qaoa_maxcut_ansatz,
)
from repro.variational.evaluate import (
    evaluate_grid,
    expectation,
    exact_probabilities,
)
from repro.variational.gradients import (
    finite_difference_gradient,
    parameter_shift_gradient,
)
from repro.variational.observables import (
    DiagonalObservable,
    ising_observable,
    maxcut_observable,
)
from repro.variational.optim import ADOPT, Adam, AdamW, minimize
from repro.variational.vqe import run_qaoa_maxcut, run_vqe

__all__ = [
    "ADOPT",
    "Adam",
    "AdamW",
    "DiagonalObservable",
    "evaluate_grid",
    "exact_probabilities",
    "expectation",
    "finite_difference_gradient",
    "hardware_efficient_ansatz",
    "ising_observable",
    "maxcut_observable",
    "minimize",
    "parameter_shift_gradient",
    "qaoa_maxcut_ansatz",
    "run_qaoa_maxcut",
    "run_vqe",
]
