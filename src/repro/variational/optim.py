"""First-order optimizers for variational loops: Adam, AdamW, ADOPT.

Pure NumPy implementations of the update rules from the PAPERS.md
Adam-convergence line of work: classic Adam (Kingma & Ba) with coupled
L2, AdamW (Loshchilov & Hutter) with *decoupled* weight decay, and
ADOPT (Taniguchi et al.), which normalizes by the *previous* second
moment before applying momentum so convergence no longer depends on
the β₂ choice.

Optimizers are stateful (`step(params, grad) -> new params`) and
framework-free; :func:`minimize` is the driving loop used by
:mod:`repro.variational.vqe`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import SimulationError


class Adam:
    """Adam with bias correction (and optional *coupled* L2 decay).

    First step from zero state reduces to ``params − lr·g/(|g|+eps)``
    because the bias corrections exactly cancel the ``(1−β)`` factors —
    the hand-computed check in the optimizer tests.
    """

    def __init__(
        self,
        lr: float = 0.05,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise SimulationError("betas must lie in [0, 1)")
        if lr <= 0.0 or eps <= 0.0:
            raise SimulationError("lr and eps must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self.m: Optional[np.ndarray] = None
        self.v: Optional[np.ndarray] = None

    def _ensure_state(self, shape: tuple[int, ...]) -> None:
        if self.m is None:
            self.m = np.zeros(shape)
            self.v = np.zeros(shape)
        elif self.m.shape != shape:
            raise SimulationError(
                f"optimizer state has shape {self.m.shape}, "
                f"got gradient of shape {shape}"
            )

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """One update; returns the new parameter vector (input unchanged)."""
        params = np.asarray(params, dtype=float)
        grad = np.asarray(grad, dtype=float)
        self._ensure_state(params.shape)
        if self.weight_decay:
            # Coupled L2: decay enters the gradient, hence the moments.
            grad = grad + self.weight_decay * params
        self.t += 1
        self.m = self.beta1 * self.m + (1.0 - self.beta1) * grad
        self.v = self.beta2 * self.v + (1.0 - self.beta2) * grad**2
        m_hat = self.m / (1.0 - self.beta1**self.t)
        v_hat = self.v / (1.0 - self.beta2**self.t)
        return params - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with *decoupled* weight decay (Loshchilov & Hutter).

    Decay multiplies the parameters directly instead of entering the
    adaptive moments, so regularization strength no longer depends on
    the per-coordinate learning-rate rescaling.
    """

    def __init__(
        self,
        lr: float = 0.05,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(lr, beta1, beta2, eps, weight_decay=0.0)
        self.decoupled_decay = weight_decay

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        params = np.asarray(params, dtype=float)
        decayed = params * (1.0 - self.lr * self.decoupled_decay)
        return super().step(decayed, grad)


class ADOPT:
    """ADOPT: modified Adam that converges for any β₂.

    Two changes versus Adam: the gradient is normalized by the
    *previous* second moment (decorrelating numerator and denominator),
    and normalization happens *before* the momentum average.  The first
    call only seeds ``v₀ = g²`` and leaves the parameters unchanged, as
    in the published algorithm.
    """

    def __init__(
        self,
        lr: float = 0.05,
        beta1: float = 0.9,
        beta2: float = 0.9999,
        eps: float = 1e-6,
    ) -> None:
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise SimulationError("betas must lie in [0, 1)")
        if lr <= 0.0 or eps <= 0.0:
            raise SimulationError("lr and eps must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.m: Optional[np.ndarray] = None
        self.v: Optional[np.ndarray] = None

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        params = np.asarray(params, dtype=float)
        grad = np.asarray(grad, dtype=float)
        if self.v is None:
            self.v = grad**2
            self.m = np.zeros_like(grad)
            return params.copy()
        normalized = grad / np.maximum(np.sqrt(self.v), self.eps)
        self.m = self.beta1 * self.m + (1.0 - self.beta1) * normalized
        new_params = params - self.lr * self.m
        self.v = self.beta2 * self.v + (1.0 - self.beta2) * grad**2
        return new_params


def minimize(
    fun: Callable[[np.ndarray], float],
    grad: Callable[[np.ndarray], np.ndarray],
    x0: Sequence[float],
    optimizer=None,
    steps: int = 100,
    callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
) -> dict:
    """Run an optimizer for ``steps`` iterations; keep the best point.

    Returns ``{"x": best params, "loss": best loss, "history": [loss
    per iterate, history[0] = f(x0)]}``.  The history has ``steps + 1``
    entries, so ``history[-1] < history[0]`` is the convergence check
    the VQE tests assert.
    """
    x = np.asarray(list(x0), dtype=float)
    optimizer = optimizer if optimizer is not None else Adam()
    history = [float(fun(x))]
    best_x, best_loss = x.copy(), history[0]
    for iteration in range(steps):
        x = optimizer.step(x, np.asarray(grad(x), dtype=float))
        loss = float(fun(x))
        history.append(loss)
        if loss < best_loss:
            best_x, best_loss = x.copy(), loss
        if callback is not None:
            callback(iteration, x, loss)
    return {"x": best_x, "loss": best_loss, "history": history}
