"""Process-wide metric instruments with Prometheus-style exposition.

A flat registry of named instruments — :class:`Counter`,
:class:`Gauge`, and fixed-bucket :class:`Histogram` — each carrying
zero or more labels, rendered as Prometheus text-format exposition
(the service's ``op: "metrics"`` endpoint) and snapshotted as plain
dicts for tests.  Naming convention: ``repro_<layer>_<name>``
(docs/observability.md).

Registration is idempotent: requesting an existing name with the same
type and label set returns the existing instrument (so module-level
instruments in code imported twice, or per-instance service labels,
just work), while a conflicting re-registration raises — two meanings
for one name is a bug, not a merge.

All updates are O(1) dict operations under a per-instrument lock;
:func:`disabled` turns every update into an early return (used by the
``BENCH_obs.json`` overhead benchmark to price the instrumentation
itself, and available to latency-critical embedders).
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator, Mapping, Optional, Sequence

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): 1ms .. 10s, roughly log-spaced.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_REGISTRY: "dict[str, _Instrument]" = {}
_REGISTRY_LOCK = threading.Lock()

#: Global kill switch: False turns every inc/set/observe into an
#: early return.  Toggled by :func:`disabled` / :func:`set_enabled`.
_ENABLED = True


class _Instrument:
    """Shared base: name/help/label plumbing and the series store."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(
                    f"invalid label name {label!r} for metric {name!r}"
                )
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: dict = {}
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, object]) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{list(self.labelnames)}, got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def series(self) -> dict:
        """Label-tuple -> value snapshot (scalar, or histogram cell)."""
        with self._lock:
            return {
                key: (dict(value) if isinstance(value, dict) else value)
                for key, value in self._series.items()
            }

    def clear(self) -> None:
        with self._lock:
            self._series.clear()


class Counter(_Instrument):
    """A monotonically increasing sum (events, retries, cache hits)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return float(self._series.get(self._key(labels), 0.0))


class Gauge(_Instrument):
    """A settable point-in-time value (queue depth, pool size)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        if not _ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not _ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return float(self._series.get(self._key(labels), 0.0))


class Histogram(_Instrument):
    """A fixed-bucket distribution (request latency).

    Buckets are upper bounds with ``le`` (<=) semantics, exactly like
    Prometheus: an observation equal to a bound lands *in* that
    bucket, and exposition renders cumulative ``_bucket`` counts plus
    ``_sum`` and ``_count`` series (with an implicit ``+Inf`` bucket).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            not math.isfinite(b) for b in bounds
        ) or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name!r} buckets must be finite, unique, "
                f"and sorted, got {buckets!r}"
            )
        self.buckets = bounds

    def _cell(self, key: tuple) -> dict:
        cell = self._series.get(key)
        if cell is None:
            cell = {
                "counts": [0] * (len(self.buckets) + 1),
                "sum": 0.0,
                "count": 0,
            }
            self._series[key] = cell
        return cell

    def observe(self, value: float, **labels) -> None:
        if not _ENABLED:
            return
        key = self._key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            cell = self._cell(key)
            cell["counts"][index] += 1
            cell["sum"] += value
            cell["count"] += 1

    def count(self, **labels) -> int:
        cell = self._series.get(self._key(labels))
        return int(cell["count"]) if cell else 0

    def sum(self, **labels) -> float:
        cell = self._series.get(self._key(labels))
        return float(cell["sum"]) if cell else 0.0

    def quantile(self, q: float, **labels) -> Optional[float]:
        """A bucket-interpolated quantile estimate (p50/p99 reports).

        Linear interpolation within the bucket containing the target
        rank; observations beyond the last finite bound clamp to it.
        ``None`` with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        cell = self._series.get(self._key(labels))
        if not cell or not cell["count"]:
            return None
        target = q * cell["count"]
        cumulative = 0
        lower = 0.0
        for bound, bucket_count in zip(self.buckets, cell["counts"]):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                if not bucket_count:
                    return lower
                fraction = (target - previous) / bucket_count
                return lower + (bound - lower) * fraction
            lower = bound
        return self.buckets[-1]


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
def _register(cls, name: str, help: str, labels: Sequence[str], **extra):
    with _REGISTRY_LOCK:
        existing = _REGISTRY.get(name)
        if existing is not None:
            if type(existing) is not cls or (
                existing.labelnames != tuple(labels)
            ):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind} with labels "
                    f"{list(existing.labelnames)}"
                )
            return existing
        instrument = cls(name, help, labels, **extra)
        _REGISTRY[name] = instrument
        return instrument


def counter(
    name: str, help: str = "", labels: Sequence[str] = ()
) -> Counter:
    """Get-or-create the :class:`Counter` named ``name``."""
    return _register(Counter, name, help, labels)


def gauge(name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
    """Get-or-create the :class:`Gauge` named ``name``."""
    return _register(Gauge, name, help, labels)


def histogram(
    name: str,
    help: str = "",
    labels: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> Histogram:
    """Get-or-create the :class:`Histogram` named ``name``."""
    instrument = _register(Histogram, name, help, labels, buckets=buckets)
    if instrument.buckets != tuple(float(b) for b in buckets):
        raise ValueError(
            f"histogram {name!r} already registered with buckets "
            f"{instrument.buckets}"
        )
    return instrument


def instruments() -> "dict[str, _Instrument]":
    """The live registry (name -> instrument), for introspection."""
    with _REGISTRY_LOCK:
        return dict(_REGISTRY)


def reset_metrics() -> None:
    """Zero every series while keeping registrations (test isolation:
    module-level instrument handles stay valid)."""
    with _REGISTRY_LOCK:
        for instrument in _REGISTRY.values():
            instrument.clear()


def set_enabled(flag: bool) -> None:
    """Globally enable/disable metric updates."""
    global _ENABLED
    _ENABLED = bool(flag)


@contextmanager
def disabled() -> Iterator[None]:
    """Suppress every metric update inside the block (overhead
    benchmarking; latency-critical embedders)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


# ----------------------------------------------------------------------
# Exposition.
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_text(labelnames, key, extra=()) -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"'
        for name, value in list(zip(labelnames, key)) + list(extra)
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render() -> str:
    """The whole registry as Prometheus text exposition (format 0.0.4).

    Deterministic: metrics sort by name, series by label values — the
    property the golden-format test pins down.
    """
    lines: list[str] = []
    for name in sorted(_REGISTRY):
        instrument = _REGISTRY[name]
        if instrument.help:
            lines.append(f"# HELP {name} {instrument.help}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        series = instrument.series()
        if isinstance(instrument, Histogram):
            for key in sorted(series):
                cell = series[key]
                cumulative = 0
                for bound, count in zip(
                    instrument.buckets, cell["counts"]
                ):
                    cumulative += count
                    labels = _label_text(
                        instrument.labelnames, key,
                        extra=[("le", _format_value(bound))],
                    )
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                cumulative += cell["counts"][-1]
                inf_labels = _label_text(
                    instrument.labelnames, key, extra=[("le", "+Inf")]
                )
                lines.append(f"{name}_bucket{inf_labels} {cumulative}")
                plain = _label_text(instrument.labelnames, key)
                lines.append(
                    f"{name}_sum{plain} {_format_value(cell['sum'])}"
                )
                lines.append(f"{name}_count{plain} {cell['count']}")
        else:
            for key in sorted(series):
                labels = _label_text(instrument.labelnames, key)
                lines.append(
                    f"{name}{labels} {_format_value(series[key])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot() -> dict:
    """Plain-dict view for tests: ``{name: {label_tuple: value}}``
    with histogram values as ``{"count", "sum", "buckets"}`` cells
    (``buckets`` cumulative, aligned with the instrument's bounds plus
    ``+Inf``)."""
    out: dict = {}
    for name, instrument in instruments().items():
        series = instrument.series()
        if isinstance(instrument, Histogram):
            cells = {}
            for key, cell in series.items():
                cumulative, total = [], 0
                for count in cell["counts"]:
                    total += count
                    cumulative.append(total)
                cells[key] = {
                    "count": cell["count"],
                    "sum": cell["sum"],
                    "buckets": cumulative,
                }
            out[name] = cells
        else:
            out[name] = dict(series)
    return out


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "counter",
    "disabled",
    "gauge",
    "histogram",
    "instruments",
    "render",
    "reset_metrics",
    "set_enabled",
    "snapshot",
]
