"""Unified observability: tracing, metrics, and structured logging.

One substrate for everything the repo measures (docs/observability.md):

- :mod:`repro.obs.trace` — contextvar-based spans with parent/child
  nesting, cross-process stitching for pool workers, and a Chrome
  trace-event exporter (``REPRO_TRACE=trace.json`` / ``trace_to``)
  loadable in Perfetto;
- :mod:`repro.obs.metrics` — a process-wide Counter/Gauge/Histogram
  registry with label support and Prometheus-style text exposition
  (the service's ``op: "metrics"`` endpoint);
- :mod:`repro.obs.logging` — a JSON-lines log formatter carrying
  trace and request ids, configured by ``REPRO_LOG_LEVEL`` /
  ``REPRO_LOG_FORMAT``.

Everything here is stdlib-only and import-light: the instrumented hot
paths (compile passes, chunk dispatch, batched sweeps) pay one module
attribute read plus a branch when tracing is disabled.
"""

from repro.obs import logging, metrics, trace  # noqa: F401

__all__ = ["logging", "metrics", "trace"]
