"""Structured JSON-lines logging, correlated with traces and requests.

One log record per line, each a JSON object carrying the active trace
and span ids (when tracing is on) and the bound request id (inside
:func:`bound_request`) — so a service log line, an exported trace, and
a metrics series all join on the same identifiers.

Configuration is environment-driven and lazy (first
:func:`get_logger` call):

- ``REPRO_LOG_LEVEL`` — a standard level name (default ``INFO``);
- ``REPRO_LOG_FORMAT`` — ``"json"`` (default) for JSON lines or
  ``"text"`` for a classic human-readable format.

Handlers attach to the ``"repro"`` logger only (no root-logger
pollution: embedding applications keep their own logging setup), and
records stream to stdout line-buffered — the service-smoke harness
reads the listening announcement from the first line.

Extra structured fields ride on the standard ``extra`` mechanism::

    log.warning("degrading to serial", extra={"fields": {"recycles": 2}})
"""

from __future__ import annotations

import json
import logging
import os
import sys
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from repro.obs import trace as _trace

LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"
LOG_FORMAT_ENV = "REPRO_LOG_FORMAT"

_TEXT_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"

_REQUEST_ID: ContextVar[Optional[str]] = ContextVar(
    "repro_log_request_id", default=None
)

_CONFIGURED = False


@contextmanager
def bound_request(request_id: object) -> Iterator[None]:
    """Bind a request id to every log record in the enclosing block
    (the service binds each admitted request's id)."""
    token = _REQUEST_ID.set(str(request_id))
    try:
        yield
    finally:
        _REQUEST_ID.reset(token)


def current_request_id() -> Optional[str]:
    return _REQUEST_ID.get()


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record, keys sorted for stable output."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        ids = _trace.current_ids()
        if ids is not None:
            payload["trace_id"], payload["span_id"] = ids
        request_id = _REQUEST_ID.get()
        if request_id is not None:
            payload["request_id"] = request_id
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def _configure() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    _CONFIGURED = True
    root = logging.getLogger("repro")
    if root.handlers:
        return  # an embedder configured "repro" first; respect it
    handler = logging.StreamHandler(sys.stdout)
    fmt = os.environ.get(LOG_FORMAT_ENV, "json").strip().lower()
    if fmt == "text":
        handler.setFormatter(logging.Formatter(_TEXT_FORMAT))
    else:
        handler.setFormatter(JsonLineFormatter())
    root.addHandler(handler)
    root.propagate = False
    level = os.environ.get(LOG_LEVEL_ENV, "INFO").strip().upper()
    root.setLevel(logging.getLevelName(level) if level in {
        "CRITICAL", "ERROR", "WARNING", "INFO", "DEBUG", "NOTSET"
    } else logging.INFO)


def reset_logging() -> None:
    """Drop the configured handlers so the next :func:`get_logger`
    re-reads the environment (tests exercising the env knobs)."""
    global _CONFIGURED
    _CONFIGURED = False
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)


def get_logger(name: str = "repro") -> logging.Logger:
    """A logger under the ``repro`` hierarchy, configured on first use."""
    _configure()
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)


__all__ = [
    "LOG_FORMAT_ENV",
    "LOG_LEVEL_ENV",
    "JsonLineFormatter",
    "bound_request",
    "current_request_id",
    "get_logger",
    "reset_logging",
]
