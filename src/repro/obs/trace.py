"""Contextvar-based span tracing with cross-process stitching.

A *span* is one named, timed region with attributes — ``span("compile.pass",
**{"pass": "peephole"})`` — and spans nest: the contextvar
:data:`_CTX` carries ``(trace id, span id)`` so a span opened inside
another records that span as its parent, across ``await`` points and
(explicitly, via :func:`attached`) across threads.  The span
vocabulary is documented in docs/observability.md.

Tracing is **disabled by default and near-free when off**: the module
global :data:`_TRACER` is ``None``, :func:`span` returns a shared
no-op context manager, and :func:`event` returns immediately — one
attribute read plus a branch on the hot path (the ``BENCH_obs.json``
benchmark gates this at <= 5% on a hot trajectory workload).

Enabling:

- ``REPRO_TRACE=/path/trace.json`` in the environment turns tracing on
  for the whole process and exports a Chrome trace-event JSON file at
  interpreter exit (loadable in Perfetto / ``chrome://tracing``);
- :func:`trace_to` scopes tracing to a block and exports on exit;
- :func:`enable_tracing` / :func:`disable_tracing` for manual control.

Cross-process stitching: pool workers cannot append to the parent's
tracer, so the chunk dispatcher ships a picklable
:class:`TraceContext` on every ``_ChunkTask``; the worker records its
spans into a throwaway local tracer under that context
(:func:`recording`) and returns them with the chunk result, and the
parent folds them in with :func:`absorb_spans`.  Span ids embed the
recording pid, so ids never collide across processes and the exported
trace shows worker chunks on their own process tracks, linked to the
parent request by ``trace_id``/``parent_id``.

:func:`timed_span` is the **one timing source** rule
(docs/observability.md): it always measures wall time (one
``perf_counter`` pair — the same cost the bookkeeping it replaced
paid) and exposes ``.seconds`` after exit, but records into the
tracer only when tracing is on.  ``PassManager`` statistics read from
it, so the pass table and an exported trace can never disagree.
"""

from __future__ import annotations

import atexit
import itertools
import json
import multiprocessing
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterable, Optional

#: Environment variable: a path enables process-wide tracing and
#: exports a Chrome trace-event JSON file there at interpreter exit.
TRACE_ENV = "REPRO_TRACE"

#: Maps ``perf_counter`` readings onto the epoch, so span timestamps
#: from different processes land on one comparable timeline.  Each
#: process computes its own anchor; the skew between them is far below
#: the span durations being visualized.
_EPOCH_ANCHOR = time.time() - time.perf_counter()

_IDS = itertools.count(1)

#: The active (trace id, span id) pair, or None outside any span.
_CTX: ContextVar[Optional[tuple[str, str]]] = ContextVar(
    "repro_trace_ctx", default=None
)


def _new_id() -> str:
    """A process-unique span/trace id (pid-prefixed, never colliding
    across the parent and its pool workers)."""
    return f"{os.getpid():x}.{next(_IDS):x}"


@dataclass(frozen=True)
class TraceContext:
    """The picklable parent context shipped to pool workers."""

    trace_id: str
    span_id: str


class Tracer:
    """A process-local span sink (thread-safe append-only list).

    Span records are plain dicts — picklable for worker shipping,
    directly serializable for export — with keys ``name``,
    ``trace_id``, ``span_id``, ``parent_id``, ``start_us``, ``dur_us``,
    ``pid``, ``tid``, ``attrs``.
    """

    def __init__(self) -> None:
        self.spans: list[dict] = []
        self._lock = threading.Lock()

    def record(self, span: dict) -> None:
        with self._lock:
            self.spans.append(span)

    def absorb(self, spans: Iterable[dict]) -> None:
        """Fold worker-recorded span dicts into this tracer."""
        with self._lock:
            self.spans.extend(spans)

    def kinds(self) -> set[str]:
        """The distinct span names recorded so far."""
        return {span["name"] for span in self.spans}

    def by_name(self, name: str) -> list[dict]:
        return [span for span in self.spans if span["name"] == name]

    # ------------------------------------------------------------------
    # Chrome trace-event export (Perfetto / chrome://tracing).
    # ------------------------------------------------------------------
    def chrome_events(self) -> list[dict]:
        """Complete-event (``ph: "X"``) records, one per span.

        Nesting within a (pid, tid) track is inferred by the viewer
        from timestamp containment; the explicit ids ride in ``args``
        so cross-process parentage stays inspectable.
        """
        events = []
        for span in self.spans:
            args = dict(span["attrs"])
            args["trace_id"] = span["trace_id"]
            args["span_id"] = span["span_id"]
            if span["parent_id"] is not None:
                args["parent_id"] = span["parent_id"]
            events.append(
                {
                    "name": span["name"],
                    "cat": span["name"].split(".", 1)[0],
                    "ph": "X",
                    "ts": span["start_us"],
                    "dur": span["dur_us"],
                    "pid": span["pid"],
                    "tid": span["tid"],
                    "args": args,
                }
            )
        return events

    def export_chrome(self, path) -> None:
        """Write the collected spans as Chrome trace-event JSON."""
        payload = {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)


#: The process-wide tracer; ``None`` means tracing is disabled (the
#: default, and the state the no-op fast path branches on).
_TRACER: Optional[Tracer] = None


class _Span:
    """A live span handle; also the always-timing ``timed_span`` form.

    ``tracer`` may be ``None`` (a :func:`timed_span` with tracing off):
    the span then only measures ``seconds`` and touches neither the
    contextvar nor any sink.
    """

    __slots__ = ("name", "attrs", "seconds", "_tracer", "_token", "_ids",
                 "_start")

    def __init__(self, tracer: Optional[Tracer], name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.seconds = 0.0

    def set(self, **attrs) -> "_Span":
        """Attach/overwrite attributes (e.g. an outcome discovered
        after entry)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        if self._tracer is not None:
            parent = _CTX.get()
            if parent is None:
                trace_id, parent_id = _new_id(), None
            else:
                trace_id, parent_id = parent
            span_id = _new_id()
            self._ids = (trace_id, span_id, parent_id)
            self._token = _CTX.set((trace_id, span_id))
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._start
        if self._tracer is not None:
            _CTX.reset(self._token)
            if exc_type is not None:
                self.attrs.setdefault("error", exc_type.__name__)
            trace_id, span_id, parent_id = self._ids
            self._tracer.record(
                {
                    "name": self.name,
                    "trace_id": trace_id,
                    "span_id": span_id,
                    "parent_id": parent_id,
                    "start_us": (_EPOCH_ANCHOR + self._start) * 1e6,
                    "dur_us": self.seconds * 1e6,
                    "pid": os.getpid(),
                    "tid": threading.get_ident(),
                    "attrs": self.attrs,
                }
            )
        return False


class _NoopSpan:
    """The shared do-nothing span returned while tracing is off."""

    __slots__ = ()
    name = ""
    seconds = 0.0

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP = _NoopSpan()


# ----------------------------------------------------------------------
# Public API.
# ----------------------------------------------------------------------
def span(name: str, **attrs):
    """A traced region: ``with span("exec.chunk", seed=7): ...``.

    Returns the shared no-op when tracing is disabled — the hot-path
    contract (one global read + branch, no allocation).
    """
    tracer = _TRACER
    if tracer is None:
        return _NOOP
    return _Span(tracer, name, attrs)


def timed_span(name: str, **attrs) -> _Span:
    """A span that *always* measures wall time (``.seconds`` after
    exit) and records into the tracer only when tracing is on.

    This is the one-timing-source primitive: consumers that need the
    elapsed time regardless (``PassManager`` statistics) read it from
    the same measurement an exported trace would show.
    """
    return _Span(_TRACER, name, attrs)


def event(name: str, **attrs) -> None:
    """An instant (zero-duration) span under the current context —
    retry attempts, fault injections, pool recycles."""
    tracer = _TRACER
    if tracer is None:
        return
    parent = _CTX.get()
    if parent is None:
        trace_id, parent_id = _new_id(), None
    else:
        trace_id, parent_id = parent
    now = time.perf_counter()
    tracer.record(
        {
            "name": name,
            "trace_id": trace_id,
            "span_id": _new_id(),
            "parent_id": parent_id,
            "start_us": (_EPOCH_ANCHOR + now) * 1e6,
            "dur_us": 0.0,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "attrs": attrs,
        }
    )


def tracing_enabled() -> bool:
    return _TRACER is not None


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _TRACER


def enable_tracing() -> Tracer:
    """Turn tracing on (idempotent); returns the active tracer."""
    global _TRACER
    if _TRACER is None:
        _TRACER = Tracer()
    return _TRACER


def disable_tracing() -> Optional[Tracer]:
    """Turn tracing off; returns the tracer that was active (its
    collected spans stay inspectable/exportable)."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    return tracer


@contextmanager
def trace_to(path):
    """Trace the enclosing block and export Chrome trace-event JSON to
    ``path`` on exit (even on error — a failing run's trace is the one
    worth looking at)."""
    global _TRACER
    previous = _TRACER
    tracer = Tracer()
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = previous
        tracer.export_chrome(path)


# ----------------------------------------------------------------------
# Context propagation: threads and pool workers.
# ----------------------------------------------------------------------
def current_context() -> Optional[TraceContext]:
    """The shippable parent context, or ``None`` when tracing is off
    or no span is open."""
    if _TRACER is None:
        return None
    ctx = _CTX.get()
    if ctx is None:
        return None
    return TraceContext(*ctx)


def current_ids() -> Optional[tuple[str, str]]:
    """The raw (trace id, span id) pair for log correlation, if any."""
    return _CTX.get()


@contextmanager
def attached(ctx: Optional[TraceContext]):
    """Adopt ``ctx`` as the parent context for the enclosing block.

    Used where contextvars do not flow by themselves: the service's
    executor threads (``run_in_executor`` does not copy context) and
    the serial chunk fallback.  A ``None`` context is a no-op.
    """
    if ctx is None:
        yield
        return
    token = _CTX.set((ctx.trace_id, ctx.span_id))
    try:
        yield
    finally:
        _CTX.reset(token)


@contextmanager
def recording(ctx: TraceContext):
    """Worker-side span collection under a shipped parent context.

    Installs a throwaway local tracer (never the worker's own ambient
    one — a forked worker inherits the parent's ``_TRACER`` object and
    appending there would be lost with the process) and attaches
    ``ctx``; yields the tracer whose ``.spans`` the worker returns
    with its result for the parent to :func:`absorb_spans`.
    """
    global _TRACER
    previous = _TRACER
    tracer = Tracer()
    _TRACER = tracer
    token = _CTX.set((ctx.trace_id, ctx.span_id))
    try:
        yield tracer
    finally:
        _CTX.reset(token)
        _TRACER = previous


def absorb_spans(spans: Optional[Iterable[dict]]) -> None:
    """Parent-side: fold worker-returned span records into the active
    trace (no-op when tracing is off or ``spans`` is empty)."""
    if _TRACER is not None and spans:
        _TRACER.absorb(spans)


def _maybe_enable_from_env() -> None:
    """``REPRO_TRACE=path``: enable now, export at interpreter exit.

    Only in the *parent* process: pool workers inherit the environment
    but must ship spans back on chunk results instead of racing to
    overwrite the parent's export file.
    """
    path = os.environ.get(TRACE_ENV)
    if not path:
        return
    if multiprocessing.parent_process() is not None:
        return
    tracer = enable_tracing()
    atexit.register(tracer.export_chrome, path)


_maybe_enable_from_env()


__all__ = [
    "TRACE_ENV",
    "TraceContext",
    "Tracer",
    "absorb_spans",
    "attached",
    "current_context",
    "current_ids",
    "disable_tracing",
    "enable_tracing",
    "event",
    "get_tracer",
    "recording",
    "span",
    "timed_span",
    "trace_to",
    "tracing_enabled",
]
