"""Dialect conversion from Qwerty IR to QCircuit IR (paper §6.1).

Conversion patterns per op: ``qbprep`` becomes ``qalloc`` plus H/S/X
gates; ``qbdiscard`` becomes ``qfree`` per qubit; ``qbtrans`` invokes
basis translation synthesis (§6.3) and splices the resulting gates in
dataflow form; ``qbmeas`` becomes a translation to std followed by
per-qubit measures; function-value ops become QIR-style callable ops.
Bundle types become arrays, with ``qbpack``/``qbunpack`` turning into
``arrpack``/``arrunpack`` whose redundant compositions canonicalize
away.
"""

from __future__ import annotations

from repro.basis import Basis
from repro.basis.basis import std as std_basis
from repro.basis.literal import BasisLiteral
from repro.basis.primitive import PrimitiveBasis
from repro.basis.vector import BasisVector
from repro.dialects import arith, qcircuit, qwerty, scf
from repro.errors import LoweringError
from repro.ir.core import Operation, Value, walk
from repro.ir.module import Builder, FuncOp, ModuleOp
from repro.ir.rewrite import RewritePattern, apply_patterns_greedily
from repro.ir.types import (
    ArrayType,
    BitBundleType,
    FunctionType,
    I1,
    QBundleType,
    QubitType,
    Type,
)
from repro.qcircuit.circuit import CircuitGate

_QUBIT = QubitType()

#: Gate sequences preparing each single-qubit literal from |0>.
_PREP_GATES: dict[tuple[PrimitiveBasis, int], tuple[str, ...]] = {
    (PrimitiveBasis.STD, 0): (),
    (PrimitiveBasis.STD, 1): ("x",),
    (PrimitiveBasis.PM, 0): ("h",),
    (PrimitiveBasis.PM, 1): ("x", "h"),
    (PrimitiveBasis.IJ, 0): ("h", "s"),
    (PrimitiveBasis.IJ, 1): ("x", "h", "s"),
}


def convert_type(type: Type) -> Type:
    if isinstance(type, QBundleType):
        return ArrayType(_QUBIT, type.n)
    if isinstance(type, BitBundleType):
        return ArrayType(I1, type.n)
    if isinstance(type, FunctionType):
        return FunctionType(
            tuple(convert_type(t) for t in type.inputs),
            tuple(convert_type(t) for t in type.outputs),
            type.reversible,
        )
    return type


def _emit_gates(
    builder: Builder, gates: list[CircuitGate], qubits: list[Value]
) -> list[Value]:
    """Thread SSA qubit values through a synthesized gate list."""
    for gate in gates:
        controls = [qubits[q] for q in gate.controls]
        targets = [qubits[q] for q in gate.targets]
        results = qcircuit.gate(
            builder,
            gate.name,
            controls,
            targets,
            gate.params,
            gate.ctrl_states,
        )
        for index, qubit_index in enumerate(gate.controls + gate.targets):
            qubits[qubit_index] = results[index]
    return qubits


def _resolve_phases(op: Operation) -> tuple[Basis, Basis]:
    """Merge dynamic phase operands (degrees) into the basis attrs."""
    b_in: Basis = op.attrs["bin"]
    b_out: Basis = op.attrs["bout"]
    slots = op.attrs["phase_slots"]
    if not slots:
        return b_in, b_out
    overrides: dict[tuple[str, int], float] = {}
    for value, slot in zip(op.operands[1:], slots):
        phase = arith.const_value(value)
        if phase is None:
            raise LoweringError(
                "dynamic basis-translation phase did not fold to a constant"
            )
        overrides[slot] = phase

    def apply(basis: Basis, side: str) -> Basis:
        elements = []
        counter = 0
        for element in basis.elements:
            if not isinstance(element, BasisLiteral):
                elements.append(element)
                continue
            vectors = []
            for vector in element.vectors:
                key = (side, counter)
                if key in overrides:
                    vectors.append(
                        BasisVector(
                            vector.eigenbits, vector.prim, overrides[key]
                        )
                    )
                else:
                    vectors.append(vector)
                counter += 1
            elements.append(BasisLiteral(tuple(vectors)))
        return Basis(tuple(elements))

    return apply(b_in, "in"), apply(b_out, "out")


def _lower_qbprep(op: Operation, builder: Builder) -> Value:
    prim = op.attrs["prim"]
    qubits = []
    for eigenbit in op.attrs["eigenbits"]:
        qubit = qcircuit.qalloc(builder)
        for gate_name in _PREP_GATES[(prim, eigenbit)]:
            (qubit,) = qcircuit.gate(builder, gate_name, [], [qubit])
        qubits.append(qubit)
    return qcircuit.arrpack(builder, qubits, _QUBIT)


def _lower_qbunprep(op: Operation, builder: Builder, operand: Value) -> None:
    prim = op.attrs["prim"]
    qubits = qcircuit.arrunpack(builder, operand)
    for qubit, eigenbit in zip(qubits, op.attrs["eigenbits"]):
        inverse = [
            {"x": "x", "h": "h", "s": "sdg"}[name]
            for name in reversed(_PREP_GATES[(prim, eigenbit)])
        ]
        for gate_name in inverse:
            (qubit,) = qcircuit.gate(builder, gate_name, [], [qubit])
        qcircuit.qfreez(builder, qubit)


class _FuncLowering:
    """Lowers one function's ops in place (single forward walk)."""

    def __init__(self, module: ModuleOp) -> None:
        self.module = module
        self.mapping: dict[int, Value] = {}

    def value(self, original: Value) -> Value:
        return self.mapping.get(id(original), original)

    def lower_block(self, block, builder: Builder) -> None:
        from repro.synth import synthesize_basis_translation

        for op in list(block.ops):
            # Every op emitted while converting this op inherits its
            # source location (synthesized gate sequences included).
            builder.loc = op.loc
            handler = getattr(self, "_op_" + op.name.replace(".", "_"), None)
            if handler is not None:
                handler(op, builder)
            else:
                self._copy(op, builder)

    # ------------------------------------------------------------------
    def _copy(self, op: Operation, builder: Builder) -> None:
        operands = [self.value(v) for v in op.operands]
        clone = Operation(
            op.name,
            operands,
            [convert_type(r.type) for r in op.results],
            dict(op.attrs),
            loc=op.loc,
        )
        builder.insert(clone)
        for region in op.regions:
            new_region = type(region)()
            clone.regions.append(new_region)
            new_region.parent_op = clone
            for inner in region.blocks:
                from repro.ir.core import Block

                new_block = Block([convert_type(a.type) for a in inner.args])
                new_region.add_block(new_block)
                for old_arg, new_arg in zip(inner.args, new_block.args):
                    self.mapping[id(old_arg)] = new_arg
                self.lower_block(inner, Builder(new_block))
        for old, new in zip(op.results, clone.results):
            self.mapping[id(old)] = new

    def _op_qwerty_qbprep(self, op: Operation, builder: Builder) -> None:
        self.mapping[id(op.result)] = _lower_qbprep(op, builder)

    def _op_qwerty_qbunprep(self, op: Operation, builder: Builder) -> None:
        _lower_qbunprep(op, builder, self.value(op.operands[0]))

    def _op_qwerty_qbdiscard(self, op: Operation, builder: Builder) -> None:
        qubits = qcircuit.arrunpack(builder, self.value(op.operands[0]))
        for qubit in qubits:
            qcircuit.qfree(builder, qubit)

    def _op_qwerty_qbdiscardz(self, op: Operation, builder: Builder) -> None:
        qubits = qcircuit.arrunpack(builder, self.value(op.operands[0]))
        for qubit in qubits:
            qcircuit.qfreez(builder, qubit)

    def _op_qwerty_qbtrans(self, op: Operation, builder: Builder) -> None:
        from repro.synth import synthesize_basis_translation

        b_in, b_out = _resolve_phases(op)
        gates = synthesize_basis_translation(b_in, b_out)
        qubits = qcircuit.arrunpack(builder, self.value(op.operands[0]))
        qubits = _emit_gates(builder, gates, qubits)
        self.mapping[id(op.result)] = qcircuit.arrpack(
            builder, qubits, _QUBIT
        )

    def _op_qwerty_qbmeas(self, op: Operation, builder: Builder) -> None:
        from repro.synth import synthesize_basis_translation

        basis: Basis = op.attrs["basis"]
        gates = synthesize_basis_translation(basis, std_basis(basis.dim))
        qubits = qcircuit.arrunpack(builder, self.value(op.operands[0]))
        qubits = _emit_gates(builder, gates, qubits)
        bits = []
        for index, qubit in enumerate(qubits):
            new_qubit, bit = qcircuit.measure(builder, qubit)
            qcircuit.qfree(builder, new_qubit)
            bits.append(bit)
        self.mapping[id(op.result)] = qcircuit.arrpack(builder, bits, I1)

    def _op_qwerty_embed(self, op: Operation, builder: Builder) -> None:
        from repro.classical.embed import (
            synthesize_sign_embedding,
            synthesize_xor_embedding,
        )

        network = op.attrs["network"]
        kind = op.attrs["kind"]
        if kind == "xor":
            oracle = synthesize_xor_embedding(network)
        else:
            oracle = synthesize_sign_embedding(network)

        pred = op.attrs.get("pred")
        pred_controls = pred.dim if pred is not None else 0
        qubits = qcircuit.arrunpack(builder, self.value(op.operands[0]))
        payload = qubits[pred_controls:]
        if len(payload) != oracle.num_inputs + oracle.num_outputs:
            raise LoweringError(
                f"embed bundle has {len(payload)} qubits, oracle expects "
                f"{oracle.num_inputs + oracle.num_outputs}"
            )
        ancillas = [qcircuit.qalloc(builder) for _ in range(oracle.num_ancillas)]
        wires = payload + ancillas

        gates = oracle.gates
        if pred is not None:
            gates = _predicated_oracle_gates(gates, pred, oracle)
        # Predicate controls live at indices [payload..payload+M) in the
        # pred-extended gate list; map wire index -> SSA value list.
        all_wires = wires + qubits[:pred_controls]
        all_wires = _emit_gates(builder, gates, all_wires)
        new_payload = all_wires[: len(payload)]
        new_ancillas = all_wires[len(payload) : len(wires)]
        new_controls = all_wires[len(wires):]
        for ancilla in new_ancillas:
            qcircuit.qfreez(builder, ancilla)
        self.mapping[id(op.result)] = qcircuit.arrpack(
            builder, new_controls + new_payload, _QUBIT
        )

    def _op_qwerty_qbpack(self, op: Operation, builder: Builder) -> None:
        operands = [self.value(v) for v in op.operands]
        self.mapping[id(op.result)] = qcircuit.arrpack(
            builder, operands, _QUBIT
        )

    def _op_qwerty_qbunpack(self, op: Operation, builder: Builder) -> None:
        results = qcircuit.arrunpack(builder, self.value(op.operands[0]))
        for old, new in zip(op.results, results):
            self.mapping[id(old)] = new

    def _op_qwerty_bitpack(self, op: Operation, builder: Builder) -> None:
        operands = [self.value(v) for v in op.operands]
        self.mapping[id(op.result)] = qcircuit.arrpack(builder, operands, I1)

    def _op_qwerty_bitunpack(self, op: Operation, builder: Builder) -> None:
        results = qcircuit.arrunpack(builder, self.value(op.operands[0]))
        for old, new in zip(op.results, results):
            self.mapping[id(old)] = new

    def _op_qwerty_call(self, op: Operation, builder: Builder) -> None:
        if op.attrs.get("adj") or op.attrs.get("pred") is not None:
            raise LoweringError(
                "call adj/pred survived to lowering; specialization "
                "should have rewritten it"
            )
        operands = [self.value(v) for v in op.operands]
        new = qcircuit.call(
            builder,
            op.attrs["callee"],
            operands,
            [convert_type(r.type) for r in op.results],
        )
        for old, fresh in zip(op.results, new.results):
            self.mapping[id(old)] = fresh

    def _op_qwerty_call_indirect(self, op: Operation, builder: Builder) -> None:
        callee = self.value(op.operands[0])
        operands = [self.value(v) for v in op.operands[1:]]
        new = qcircuit.callable_invoke(
            builder,
            callee,
            operands,
            [convert_type(r.type) for r in op.results],
        )
        for old, fresh in zip(op.results, new.results):
            self.mapping[id(old)] = fresh

    def _op_qwerty_func_const(self, op: Operation, builder: Builder) -> None:
        self.mapping[id(op.result)] = qcircuit.callable_create(
            builder, op.attrs["callee"]
        )

    def _op_qwerty_func_adj(self, op: Operation, builder: Builder) -> None:
        self.mapping[id(op.result)] = qcircuit.callable_adjoint(
            builder, self.value(op.operands[0])
        )

    def _op_qwerty_func_pred(self, op: Operation, builder: Builder) -> None:
        self.mapping[id(op.result)] = qcircuit.callable_control(
            builder, self.value(op.operands[0])
        )


def _predicated_oracle_gates(gates, pred, oracle):
    """Control every oracle gate on the predicate's pattern set.

    Predicate control wires sit after the oracle's own wires (payload
    then ancillas) in the extended gate list built by the embed
    lowering.  Gates that only prepare/unprepare ancillas (X/H shells
    with no interaction with inputs) are still controlled; this is
    conservative but correct because controlled prep of an ancilla that
    is then only touched by controlled gates stays |0> outside the
    predicate space.
    """
    from repro.basis.literal import BasisLiteral

    base = oracle.num_qubits
    combos: list[tuple[list[int], list[int]]] = [([], [])]
    offset = 0
    for element in pred.elements:
        if isinstance(element, BasisLiteral):
            if element.prim is not PrimitiveBasis.STD:
                raise LoweringError(
                    "predicated embeds require std-basis predicates"
                )
            patterns = [vec.eigenbits for vec in element.vectors]
        else:
            patterns = [None]  # Fully spanning: no constraint.
        new_combos = []
        for controls, states in combos:
            for pattern in patterns:
                if pattern is None:
                    new_combos.append((controls, states))
                else:
                    new_combos.append(
                        (
                            controls
                            + [base + offset + k for k in range(len(pattern))],
                            states + list(pattern),
                        )
                    )
        combos = new_combos
        offset += element.dim
    out = []
    for gate in gates:
        for controls, states in combos:
            out.append(gate.with_extra_controls(controls, states))
    return out


def _fold_arr_roundtrips(op: Operation, module: ModuleOp) -> bool:
    """arrpack(arrunpack(x)) -> x and arrunpack(arrpack(x...)) -> x..."""
    if op.name == qcircuit.ARRPACK:
        sources = {operand.owner_op for operand in op.operands}
        if len(sources) != 1:
            return False
        (source,) = sources
        if source is None or source.name != qcircuit.ARRUNPACK:
            return False
        if tuple(op.operands) != tuple(source.results):
            return False
        op.result.replace_all_uses_with(source.operands[0])
        op.erase()
        source.erase()
        return True
    if op.name == qcircuit.ARRUNPACK:
        source = op.operands[0].owner_op
        if source is None or source.name != qcircuit.ARRPACK:
            return False
        if not source.result.has_one_use:
            # The array is also consumed elsewhere (e.g. in the other
            # fork of an scf.if); folding would un-exclusive the uses.
            return False
        op.replace_all_results_with(list(source.operands))
        op.erase()
        source.erase()
        return True
    return False


QCIRCUIT_CANONICALIZATION_PATTERNS = [
    RewritePattern(
        "qcirc.fold-arr",
        (qcircuit.ARRPACK, qcircuit.ARRUNPACK),
        _fold_arr_roundtrips,
    ),
] + arith.CANONICALIZATION_PATTERNS


def lower_module(module: ModuleOp) -> ModuleOp:
    """Convert every function from the Qwerty to the QCircuit dialect."""
    lowered = ModuleOp()
    lowered.entry_point = module.entry_point
    for func in module:
        new_type = convert_type(func.type)
        new_func = FuncOp(func.name, new_type, func.visibility)
        new_func.specialization_of = func.specialization_of
        lowering = _FuncLowering(module)
        for old_arg, new_arg in zip(func.entry.args, new_func.entry.args):
            lowering.mapping[id(old_arg)] = new_arg
        lowering.lower_block(func.entry, Builder(new_func.entry))
        lowered.add(new_func)
    apply_patterns_greedily(lowered, QCIRCUIT_CANONICALIZATION_PATTERNS)
    return lowered
