"""Flattening QCircuit IR into an imperative circuit (paper §7).

This is the reg2mem-style conversion used for OpenQASM 3 export and the
QIR Base Profile: SSA qubit values become physical qubit indices,
measure results become classical bits, and ``scf.if`` regions become
classically conditioned gates.  It requires inlining to have succeeded
(no calls or callables remain), mirroring the paper's note that
OpenQASM 3 generation depends on inlining.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dialects import arith, qcircuit, qwerty, scf
from repro.errors import LoweringError
from repro.ir.core import Operation, Value
from repro.ir.module import FuncOp, ModuleOp
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement, Reset


@dataclass
class _State:
    circuit: Circuit
    qubit_of: dict[int, int] = field(default_factory=dict)
    bit_of: dict[int, int] = field(default_factory=dict)
    arrays: dict[int, tuple] = field(default_factory=dict)
    free_qubits: list[int] = field(default_factory=list)

    def alloc_qubit(self) -> int:
        if self.free_qubits:
            return self.free_qubits.pop()
        index = self.circuit.num_qubits
        self.circuit.num_qubits += 1
        return index

    def alloc_bit(self) -> int:
        index = self.circuit.num_bits
        self.circuit.num_bits += 1
        return index


def _flatten_block(
    block_ops, state: _State, condition: tuple[int, int] | None
) -> list:
    """Flatten ops; returns the operands of the terminator (if any)."""
    terminator_operands: list = []
    for op in block_ops:
        name = op.name
        if name == qcircuit.QALLOC:
            state.qubit_of[id(op.result)] = state.alloc_qubit()
        elif name in (qcircuit.QFREE, qcircuit.QFREEZ):
            qubit = state.qubit_of[id(op.operands[0])]
            if name == qcircuit.QFREE:
                state.circuit.add(Reset(qubit, loc=op.loc))
            state.free_qubits.append(qubit)
        elif name == qcircuit.GATE:
            num_controls = op.attrs["num_controls"]
            physical = [state.qubit_of[id(v)] for v in op.operands]
            gate = CircuitGate(
                op.attrs["gate"],
                tuple(physical[num_controls:]),
                tuple(physical[:num_controls]),
                op.attrs["params"],
                op.attrs["ctrl_states"],
                condition,
                loc=op.loc,
            )
            state.circuit.add(gate)
            for value, qubit in zip(op.results, physical):
                state.qubit_of[id(value)] = qubit
        elif name == qcircuit.MEASURE:
            if condition is not None:
                raise LoweringError(
                    "measurement inside a conditional block", span=op.loc
                )
            qubit = state.qubit_of[id(op.operands[0])]
            bit = state.alloc_bit()
            state.circuit.add(Measurement(qubit, bit, loc=op.loc))
            state.qubit_of[id(op.results[0])] = qubit
            state.bit_of[id(op.results[1])] = bit
        elif name == qcircuit.ARRPACK:
            state.arrays[id(op.result)] = tuple(op.operands)
        elif name == qcircuit.ARRUNPACK:
            source = state.arrays.get(id(op.operands[0]))
            if source is None:
                raise LoweringError(
                    "arrunpack of an unknown array value", span=op.loc
                )
            for result, origin in zip(op.results, source):
                # Alias the unpacked values to the packed ones.
                if id(origin) in state.qubit_of:
                    state.qubit_of[id(result)] = state.qubit_of[id(origin)]
                elif id(origin) in state.bit_of:
                    state.bit_of[id(result)] = state.bit_of[id(origin)]
                elif id(origin) in state.arrays:
                    state.arrays[id(result)] = state.arrays[id(origin)]
                else:
                    raise LoweringError("array element has no physical home")
        elif name == arith.CONSTANT:
            pass  # Constants fold into gate attrs before flattening.
        elif name == scf.IF:
            _flatten_if(op, state, condition)
        elif name in (qwerty.RETURN, scf.YIELD):
            terminator_operands = list(op.operands)
        elif name in arith.STATIONARY_OPS:
            pass
        else:
            raise LoweringError(
                f"cannot flatten op {name}; inlining may have failed",
                span=op.loc,
            )
    return terminator_operands


def _physical_signature(values, state: _State):
    out = []
    for value in values:
        if id(value) in state.qubit_of:
            out.append(("q", state.qubit_of[id(value)]))
        elif id(value) in state.bit_of:
            out.append(("b", state.bit_of[id(value)]))
        elif id(value) in state.arrays:
            out.append(
                ("a", _physical_signature(state.arrays[id(value)], state))
            )
        else:
            raise LoweringError("value has no physical home")
    return out


def _flatten_if(
    op: Operation, state: _State, condition: tuple[int, int] | None
) -> None:
    if condition is not None:
        raise LoweringError(
            "nested conditionals are not supported", span=op.loc
        )
    cond_value = op.operands[0]
    bit = state.bit_of.get(id(cond_value))
    if bit is None:
        raise LoweringError(
            "scf.if condition is not a measurement result", span=op.loc
        )

    then_yield = _flatten_block(
        scf.then_block(op).ops, state, condition=(bit, 1)
    )
    then_signature = _physical_signature(then_yield, state)
    then_values = list(then_yield)

    else_yield = _flatten_block(
        scf.else_block(op).ops, state, condition=(bit, 0)
    )
    else_signature = _physical_signature(else_yield, state)
    if then_signature != else_signature:
        raise LoweringError(
            "scf.if branches place results on different physical qubits"
        )
    for result, value in zip(op.results, then_values):
        if id(value) in state.qubit_of:
            state.qubit_of[id(result)] = state.qubit_of[id(value)]
        elif id(value) in state.bit_of:
            state.bit_of[id(result)] = state.bit_of[id(value)]
        elif id(value) in state.arrays:
            state.arrays[id(result)] = state.arrays[id(value)]


def flatten_to_circuit(module: ModuleOp, entry: str | None = None) -> Circuit:
    """Flatten the (inlined) entry function into a flat circuit.

    Classical bits returned by the entry function become the circuit's
    ``output_bits``, in return order.
    """
    entry = entry or module.entry_point
    if entry is None:
        raise LoweringError("no entry point to flatten")
    func = module.get(entry)
    state = _State(Circuit(0, 0))
    if func.entry.args:
        raise LoweringError("entry function must take no arguments")
    returned = _flatten_block(func.entry.ops, state, None)

    output_bits: list[int] = []

    def collect(signature) -> None:
        for kind, payload in signature:
            if kind == "b":
                output_bits.append(payload)
            elif kind == "a":
                collect(payload)

    collect(_physical_signature(returned, state))
    state.circuit.output_bits = output_bits
    return state.circuit
