"""Lowering Qwerty IR to QCircuit IR (paper §6.1) and flattening
QCircuit IR into imperative circuits (paper §7)."""

from repro.lower.qwerty_to_qcircuit import lower_module
from repro.lower.flatten import flatten_to_circuit

__all__ = ["flatten_to_circuit", "lower_module"]
