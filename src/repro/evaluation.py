"""The paper's evaluation harness (§8): Table 1 and Figs. 11-12.

Methodology (paper §8.3): (1) generate circuits from all five
benchmarks in all four toolchains at each oracle input size; (2)
optimize every output with the shared transpiler substitute; (3) feed
the result to the surface-code resource estimator, reporting estimated
runtime (Fig. 11) and physical qubit count (Fig. 12).  Table 1 counts
QIR callable intrinsics for Q#, ASDF without inlining, and ASDF with
inlining (§8.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.algorithms import (
    alternating_secret,
    bernstein_vazirani,
    deutsch_jozsa,
    grover,
    period_finding,
    simon,
)
from repro.backends.qir import count_callable_intrinsics
from repro.baselines import build_baseline, transpile_o3
from repro.baselines.qsharp_qir import qsharp_callable_counts
from repro.qcircuit.circuit import Circuit
from repro.resources import PhysicalEstimate, estimate_physical_resources

ALGORITHMS = ("bv", "dj", "grover", "simon", "period")
COMPILERS = ("asdf", "qiskit", "quipper", "qsharp")
PAPER_SIZES = (16, 32, 64, 128)


def _simon_secret(n: int):
    # The alternating secret 1010... (nonzero, as the paper requires),
    # matching the baseline circuits in repro.baselines.circuits.
    return alternating_secret(n)


def asdf_kernel(algorithm: str, n: int):
    """The Qwerty program for one benchmark at size ``n``."""
    if algorithm == "bv":
        return bernstein_vazirani(alternating_secret(n))
    if algorithm == "dj":
        return deutsch_jozsa(n)
    if algorithm == "grover":
        return grover(n)
    if algorithm == "simon":
        return simon(_simon_secret(n))
    if algorithm == "period":
        return period_finding(n)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def compiled_circuit(algorithm: str, compiler: str, n: int) -> Circuit:
    """One benchmark through one compiler, post shared transpile."""
    if compiler == "asdf":
        result = asdf_kernel(algorithm, n).compile(
            pipeline="default", cache=True
        )
        return result.decomposed_circuit
    baseline = build_baseline(algorithm, compiler, n)
    return transpile_o3(baseline, style=compiler)


@dataclass(frozen=True)
class EvaluationRow:
    """One point of Fig. 11 / Fig. 12."""

    algorithm: str
    compiler: str
    input_size: int
    estimate: PhysicalEstimate

    @property
    def runtime_seconds(self) -> float:
        return self.estimate.runtime_seconds

    @property
    def physical_kiloqubits(self) -> float:
        return self.estimate.physical_kiloqubits


def evaluate(
    algorithms: Iterable[str] = ALGORITHMS,
    compilers: Iterable[str] = COMPILERS,
    sizes: Iterable[int] = PAPER_SIZES,
    progress: Callable[[str], None] | None = None,
) -> list[EvaluationRow]:
    """Run the full Fig. 11/12 sweep."""
    rows = []
    for algorithm in algorithms:
        for compiler in compilers:
            for n in sizes:
                if progress:
                    progress(f"{algorithm}/{compiler}/n={n}")
                circuit = compiled_circuit(algorithm, compiler, n)
                estimate = estimate_physical_resources(circuit)
                rows.append(
                    EvaluationRow(algorithm, compiler, n, estimate)
                )
    return rows


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 (QIR callable intrinsics)."""

    algorithm: str
    qsharp_create: int
    qsharp_invoke: int
    asdf_noopt_create: int
    asdf_noopt_invoke: int
    asdf_opt_create: int
    asdf_opt_invoke: int


def table1(n: int = 4) -> list[Table1Row]:
    """Reproduce Table 1: callable counts per compiler configuration."""
    rows = []
    for algorithm in ALGORITHMS:
        kernel = asdf_kernel(algorithm, n)
        noopt = kernel.compile(pipeline="no-opt")
        noopt_counts = count_callable_intrinsics(noopt.qir("unrestricted"))
        opt = kernel.compile(pipeline="default", cache=True)
        opt_counts = count_callable_intrinsics(opt.qir("unrestricted"))
        qsharp = qsharp_callable_counts(algorithm)
        rows.append(
            Table1Row(
                algorithm,
                qsharp[0],
                qsharp[1],
                noopt_counts[0],
                noopt_counts[1],
                opt_counts[0],
                opt_counts[1],
            )
        )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render Table 1 in the paper's layout."""
    lines = [
        "            Q#           Asdf (No Opt)  Asdf (Opt)",
        "          create  inv.   create  inv.   create  inv.",
    ]
    names = {
        "bv": "B-V",
        "dj": "D-J",
        "grover": "Grover",
        "period": "Period",
        "simon": "Simon",
    }
    for row in rows:
        lines.append(
            f"{names[row.algorithm]:<10}"
            f"{row.qsharp_create:>4}  {row.qsharp_invoke:>4}   "
            f"{row.asdf_noopt_create:>4}  {row.asdf_noopt_invoke:>4}   "
            f"{row.asdf_opt_create:>4}  {row.asdf_opt_invoke:>4}"
        )
    return "\n".join(lines)


def format_series(
    rows: list[EvaluationRow], metric: str
) -> dict[str, dict[str, list[tuple[int, float]]]]:
    """Group rows into {algorithm: {compiler: [(n, value), ...]}}."""
    out: dict[str, dict[str, list[tuple[int, float]]]] = {}
    for row in rows:
        value = getattr(row, metric)
        out.setdefault(row.algorithm, {}).setdefault(row.compiler, []).append(
            (row.input_size, value)
        )
    return out
