"""The paper's evaluation harness (§8): Table 1 and Figs. 11-12.

Methodology (paper §8.3): (1) generate circuits from all five
benchmarks in all four toolchains at each oracle input size; (2)
optimize every output with the shared transpiler substitute; (3) feed
the result to the surface-code resource estimator, reporting estimated
runtime (Fig. 11) and physical qubit count (Fig. 12).  Table 1 counts
QIR callable intrinsics for Q#, ASDF without inlining, and ASDF with
inlining (§8.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.algorithms import (
    alternating_secret,
    bernstein_vazirani,
    deutsch_jozsa,
    grover,
    period_finding,
    simon,
)
from repro.backends.qir import count_callable_intrinsics
from repro.baselines import build_baseline, transpile_o3
from repro.baselines.qsharp_qir import qsharp_callable_counts
from repro.qcircuit.circuit import Circuit
from repro.resources import PhysicalEstimate, estimate_physical_resources
from repro.stats import (  # noqa: F401  (re-exported report vocabulary)
    classical_fidelity,
    distribution_of,
    distribution_tvd,
)

ALGORITHMS = ("bv", "dj", "grover", "simon", "period")
COMPILERS = ("asdf", "qiskit", "quipper", "qsharp")
PAPER_SIZES = (16, 32, 64, 128)


def _simon_secret(n: int):
    # The alternating secret 1010... (nonzero, as the paper requires),
    # matching the baseline circuits in repro.baselines.circuits.
    return alternating_secret(n)


def asdf_kernel(algorithm: str, n: int):
    """The Qwerty program for one benchmark at size ``n``."""
    if algorithm == "bv":
        return bernstein_vazirani(alternating_secret(n))
    if algorithm == "dj":
        return deutsch_jozsa(n)
    if algorithm == "grover":
        return grover(n)
    if algorithm == "simon":
        return simon(_simon_secret(n))
    if algorithm == "period":
        return period_finding(n)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def compiled_circuit(algorithm: str, compiler: str, n: int) -> Circuit:
    """One benchmark through one compiler, post shared transpile."""
    if compiler == "asdf":
        result = asdf_kernel(algorithm, n).compile(
            pipeline="default", cache=True
        )
        return result.decomposed_circuit
    baseline = build_baseline(algorithm, compiler, n)
    return transpile_o3(baseline, style=compiler)


@dataclass(frozen=True)
class EvaluationRow:
    """One point of Fig. 11 / Fig. 12."""

    algorithm: str
    compiler: str
    input_size: int
    estimate: PhysicalEstimate

    @property
    def runtime_seconds(self) -> float:
        return self.estimate.runtime_seconds

    @property
    def physical_kiloqubits(self) -> float:
        return self.estimate.physical_kiloqubits


def evaluate(
    algorithms: Iterable[str] = ALGORITHMS,
    compilers: Iterable[str] = COMPILERS,
    sizes: Iterable[int] = PAPER_SIZES,
    progress: Callable[[str], None] | None = None,
) -> list[EvaluationRow]:
    """Run the full Fig. 11/12 sweep."""
    rows = []
    for algorithm in algorithms:
        for compiler in compilers:
            for n in sizes:
                if progress:
                    progress(f"{algorithm}/{compiler}/n={n}")
                circuit = compiled_circuit(algorithm, compiler, n)
                estimate = estimate_physical_resources(circuit)
                rows.append(
                    EvaluationRow(algorithm, compiler, n, estimate)
                )
    return rows


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 (QIR callable intrinsics)."""

    algorithm: str
    qsharp_create: int
    qsharp_invoke: int
    asdf_noopt_create: int
    asdf_noopt_invoke: int
    asdf_opt_create: int
    asdf_opt_invoke: int


def table1(n: int = 4) -> list[Table1Row]:
    """Reproduce Table 1: callable counts per compiler configuration."""
    rows = []
    for algorithm in ALGORITHMS:
        kernel = asdf_kernel(algorithm, n)
        noopt = kernel.compile(pipeline="no-opt")
        noopt_counts = count_callable_intrinsics(noopt.qir("unrestricted"))
        opt = kernel.compile(pipeline="default", cache=True)
        opt_counts = count_callable_intrinsics(opt.qir("unrestricted"))
        qsharp = qsharp_callable_counts(algorithm)
        rows.append(
            Table1Row(
                algorithm,
                qsharp[0],
                qsharp[1],
                noopt_counts[0],
                noopt_counts[1],
                opt_counts[0],
                opt_counts[1],
            )
        )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render Table 1 in the paper's layout."""
    lines = [
        "            Q#           Asdf (No Opt)  Asdf (Opt)",
        "          create  inv.   create  inv.   create  inv.",
    ]
    names = {
        "bv": "B-V",
        "dj": "D-J",
        "grover": "Grover",
        "period": "Period",
        "simon": "Simon",
    }
    for row in rows:
        lines.append(
            f"{names[row.algorithm]:<10}"
            f"{row.qsharp_create:>4}  {row.qsharp_invoke:>4}   "
            f"{row.asdf_noopt_create:>4}  {row.asdf_noopt_invoke:>4}   "
            f"{row.asdf_opt_create:>4}  {row.asdf_opt_invoke:>4}"
        )
    return "\n".join(lines)


#: Backends compared by the shot-execution benchmarks.
SHOT_BACKENDS = ("interpreter", "statevector")


@dataclass(frozen=True)
class ShotExecutionRow:
    """Timing of one (benchmark, backend) shot-execution run.

    ``evolutions`` counts statevector evolution sweeps — the vectorized
    backend's terminal-measurement fast path does exactly one per run,
    independent of ``shots``; the per-shot interpreter does ``shots``;
    the batched trajectory engine (``batched`` True) does one batched
    sweep per memory-envelope chunk, usually 1.  ``gates_fused`` and
    ``kernel`` come straight from :class:`~repro.sim.backend.RunInfo`:
    gates eliminated by the compile-time fusion pass, and which
    apply-kernel ran the matrix sweeps (docs/performance.md).
    """

    algorithm: str
    input_size: int
    backend: str
    shots: int
    seconds: float
    evolutions: int
    fast_path: bool
    batched: bool = False
    gates_fused: int = 0
    kernel: Optional[str] = None


def shot_execution_report(
    algorithms: Iterable[str] = ("bv", "grover"),
    sizes: Iterable[int] = (5,),
    shots: int = 256,
    seed: int = 0,
    backends: Sequence[str] = SHOT_BACKENDS,
) -> list[ShotExecutionRow]:
    """Execute compiled benchmark circuits under each backend, timed.

    The evaluation harness's analogue of the paper's shot runs (§7):
    every circuit goes through the same compiled artifact, and each
    registered backend samples the same number of shots with the same
    seed.  Sizes must stay within the dense-simulation qubit limit.

    Circuits are gate-fused before execution (the ``default``
    pipeline's execution form — docs/performance.md), so the rows'
    ``gates_fused`` column reports the fusion pass's savings.
    """
    from repro.qcircuit.fusion import fuse_adjacent_gates
    from repro.sim.backend import get_backend

    rows = []
    for algorithm in algorithms:
        for n in sizes:
            circuit = fuse_adjacent_gates(
                compiled_circuit(algorithm, "asdf", n)
            )
            for name in backends:
                backend = get_backend(name)
                start = time.perf_counter()
                _, info = backend.run_with_info(circuit, shots, seed)
                elapsed = time.perf_counter() - start
                rows.append(
                    ShotExecutionRow(
                        algorithm,
                        n,
                        name,
                        shots,
                        elapsed,
                        info.evolutions,
                        info.fast_path,
                        info.batched,
                        gates_fused=info.gates_fused,
                        kernel=info.kernel,
                    )
                )
    return rows


def trajectory_execution_report(
    circuits: "dict[str, Circuit] | None" = None,
    shots: int = 1024,
    seed: int = 0,
    backends: Sequence[str] = SHOT_BACKENDS,
) -> list[ShotExecutionRow]:
    """Time *non-terminal* circuits (mid-circuit measurement, classical
    conditioning, mid-evolution reset) under each backend.

    These are the workloads the terminal-measurement fast path cannot
    touch; on the ``statevector`` backend they run on the batched
    trajectory engine (one sweep over all shots), while ``interpreter``
    pays one full evolution per shot.  ``circuits`` maps a label to a
    flat circuit; the default set is teleportation, the conditioned
    fan-out, and the Fig. 12-style qubit-reuse loop from
    :mod:`repro.qcircuit.examples`.
    """
    from repro.qcircuit.examples import (
        conditioned_fanout_circuit,
        qubit_reuse_circuit,
        teleport_circuit,
    )
    from repro.sim.backend import get_backend

    if circuits is None:
        circuits = {
            "teleport": teleport_circuit(),
            "cond-fanout": conditioned_fanout_circuit(),
            "qubit-reuse": qubit_reuse_circuit(),
        }
    rows = []
    for label, circuit in circuits.items():
        for name in backends:
            backend = get_backend(name)
            start = time.perf_counter()
            _, info = backend.run_with_info(circuit, shots, seed)
            elapsed = time.perf_counter() - start
            rows.append(
                ShotExecutionRow(
                    label,
                    circuit.num_qubits,
                    name,
                    shots,
                    elapsed,
                    info.evolutions,
                    info.fast_path,
                    info.batched,
                    gates_fused=info.gates_fused,
                    kernel=info.kernel,
                )
            )
    return rows


#: Backends compared by the noisy-execution benchmarks: the exact
#: density-matrix reference and the stochastic Kraus-unraveling
#: trajectory engine behind the vectorized backend.
NOISY_BACKENDS = ("density_matrix", "statevector")


@dataclass(frozen=True)
class NoisyExecutionRow:
    """Timing + accuracy of one (workload, backend, noise strength) run.

    ``fidelity`` is the classical fidelity (squared Bhattacharyya
    overlap) between the *exact* noisy output distribution and the
    exact ideal one — a property of the noise model, shared by every
    backend at that strength.  ``sampling_tvd`` is the total-variation
    distance between this backend's sampled histogram and the exact
    noisy distribution — the per-backend convergence measure (the
    density-matrix backend samples from the exact distribution, so its
    TVD reflects shot noise only; the unraveling engines add trajectory
    noise).  ``channel_applications`` / ``readout_applications`` come
    straight from :class:`~repro.sim.backend.RunInfo`.
    """

    workload: str
    backend: str
    strength: float
    shots: int
    seconds: float
    evolutions: int
    channel_applications: int
    readout_applications: int
    fidelity: float
    sampling_tvd: float


def noisy_execution_report(
    circuits: "dict[str, Circuit] | None" = None,
    strengths: Sequence[float] = (0.0, 0.02, 0.05, 0.1),
    shots: int = 2048,
    seed: int = 0,
    backends: Sequence[str] = NOISY_BACKENDS,
) -> list[NoisyExecutionRow]:
    """Execute workloads under increasing noise on each noisy backend.

    For every (workload, strength) pair the exact output distribution
    comes from the density-matrix reference
    (:meth:`~repro.sim.density.DensityMatrixBackend.output_distribution`);
    each backend then samples ``shots`` noisy shots, timed, and the row
    records its distance to the exact distribution plus the
    fidelity-vs-ideal of the noise level itself.  The default workloads
    are teleportation and the conditioned fan-out (both non-terminal —
    the circuits whose unraveling is genuinely per-shot) plus a
    terminal GHZ preparation; the default noise is
    :func:`repro.noise.standard_noise_model` (depolarizing on every
    gate qubit + symmetric readout).
    """
    from repro.noise import standard_noise_model
    from repro.qcircuit.circuit import CircuitGate, Measurement
    from repro.qcircuit.examples import (
        conditioned_fanout_circuit,
        teleport_circuit,
    )
    from repro.sim.backend import get_backend
    from repro.sim.density import DensityMatrixBackend

    if circuits is None:
        ghz = Circuit(num_qubits=3, num_bits=3)
        ghz.add(CircuitGate("h", (0,)))
        ghz.add(CircuitGate("x", (1,), controls=(0,)))
        ghz.add(CircuitGate("x", (2,), controls=(1,)))
        for qubit in range(3):
            ghz.add(Measurement(qubit, qubit))
        circuits = {
            "teleport": teleport_circuit(),
            "cond-fanout": conditioned_fanout_circuit(),
            "ghz": ghz,
        }

    reference = DensityMatrixBackend()
    rows = []
    for label, circuit in circuits.items():
        ideal = reference.output_distribution(circuit)
        for strength in strengths:
            model = standard_noise_model(strength)
            exact = reference.output_distribution(
                circuit, noise_model=model
            )
            fidelity = classical_fidelity(exact, ideal)
            for name in backends:
                backend = get_backend(name)
                start = time.perf_counter()
                results, info = backend.run_with_info(
                    circuit, shots, seed, noise_model=model
                )
                elapsed = time.perf_counter() - start
                rows.append(
                    NoisyExecutionRow(
                        label,
                        name,
                        strength,
                        shots,
                        elapsed,
                        info.evolutions,
                        info.channel_applications,
                        info.readout_applications,
                        fidelity,
                        distribution_tvd(
                            distribution_of(results), exact
                        ),
                    )
                )
    return rows


def format_noisy_report(rows: Iterable[NoisyExecutionRow]) -> str:
    """Render a noisy-execution report as an aligned table."""
    lines = [
        f"{'workload':<14}{'backend':<16}{'p':>6}{'shots':>7}"
        f"{'seconds':>10}{'evol':>6}{'chans':>7}{'readout':>8}"
        f"{'fidelity':>10}{'tvd':>8}"
    ]
    for row in rows:
        lines.append(
            f"{row.workload:<14}{row.backend:<16}{row.strength:>6.3f}"
            f"{row.shots:>7}{row.seconds:>10.4f}{row.evolutions:>6}"
            f"{row.channel_applications:>7}{row.readout_applications:>8}"
            f"{row.fidelity:>10.4f}{row.sampling_tvd:>8.4f}"
        )
    return "\n".join(lines)


def format_shot_report(rows: Iterable[ShotExecutionRow]) -> str:
    """Render a shot-execution report as an aligned table."""
    lines = [
        f"{'algorithm':<12}{'n':>4}  {'backend':<14}{'shots':>7}"
        f"{'seconds':>12}{'evolutions':>12}  {'fast_path':<11}"
        f"{'batched':<9}{'fused':>6}  kernel"
    ]
    for row in rows:
        lines.append(
            f"{row.algorithm:<12}{row.input_size:>4}  {row.backend:<14}"
            f"{row.shots:>7}{row.seconds:>12.4f}{row.evolutions:>12}"
            f"  {str(row.fast_path):<11}{str(row.batched):<9}"
            f"{row.gates_fused:>6}  {row.kernel or '-'}"
        )
    return "\n".join(lines)


def format_series(
    rows: list[EvaluationRow], metric: str
) -> dict[str, dict[str, list[tuple[int, float]]]]:
    """Group rows into {algorithm: {compiler: [(n, value), ...]}}."""
    out: dict[str, dict[str, list[tuple[int, float]]]] = {}
    for row in rows:
        value = getattr(row, metric)
        out.setdefault(row.algorithm, {}).setdefault(row.compiler, []).append(
            (row.input_size, value)
        )
    return out
