"""Compile-time gate fusion: fewer, bigger unitaries per circuit.

Every simulation backend pays one full state sweep per gate, so a deep
circuit's wall-clock is dominated by sweep *count*, not sweep width.
This pass shrinks the count at compile time, in two composed moves:

1. **Run merging** — maximal runs of adjacent gates on the same (or
   overlapping) qubit set collapse into a single product matrix.
   Quantum controls are folded into the block as explicit block
   unitaries (:func:`controlled_matrix`), so a CX ladder fuses just
   like a single-qubit run.  Product matrices are LRU-cached per block
   signature, so recompiles of the same kernel (parameter sweeps, the
   compile cache's misses) pay the matmuls once.
2. **Layer grouping** — runs on *disjoint* qubit sets that would each
   cost a sweep are kron-grouped into one fused-layer op under the same
   qubit budget, applied by the backends as a single batched
   matmul/einsum sweep.

The result is a :class:`FusedUnitary` instruction stream that every
backend executes natively — the per-shot interpreter, the vectorized
statevector sampler, the shot-batched trajectory engine, and the
density-matrix backend all benefit, instead of only the statevector
backend's terminal-measurement fast path (whose private
``fuse_single_qubit_gates`` used to be the only fusion in the tree and
now lives here).  Classically conditioned gates are fusion barriers on
the qubits they touch; measurements and resets flush every pending
block, so fused circuits preserve terminal-measurement structure.

Fusion never touches ``CompileResult.optimized_circuit`` (the QASM/QIR
export artifact): the pipeline runs it on a separate copy recorded as
``CompileResult.execution_circuit``.  Noise models attach channels by
*gate name*, which a fused block no longer has — so noisy executions
use the unfused circuit (``simulate_kernel`` routes this automatically)
and backends apply no channels to :class:`FusedUnitary` ops.

Registered in the pass registry as ``fuse{max_qubits=…,layer=…}``; the
``default`` preset schedules it via ``CompileOptions.fusion_spec``.
See docs/performance.md.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import PassPipelineError, SimulationError, SourceSpan
from repro.qcircuit.circuit import (
    Circuit,
    CircuitGate,
    Measurement,
    Reset,
)

# NOTE: repro.sim.kernels is imported lazily inside functions.  The sim
# package's __init__ imports repro.sim.statevector, which imports this
# module — an eager import here would re-enter repro.sim mid-init.

#: The driver's default execution-circuit fusion pipeline.
CIRCUIT_FUSION_SPEC = "fuse"

#: Default cap on a fused block's qubit count: a block's matrix holds
#: 4^k amplitudes and folding a gate costs an O(8^k) matmul, so the
#: budget trades sweep count against per-sweep width.  5 keeps block
#: matrices at 32x32 — far below the point where the matmul stops
#: being cheaper than the sweeps it replaces.
DEFAULT_MAX_FUSED_QUBITS = 5


def controlled_matrix(
    matrix: np.ndarray, ctrl_states: tuple[int, ...]
) -> np.ndarray:
    """Expand ``matrix`` to a full unitary over ``controls + targets``.

    The control qubits are the *leading* axes (matching
    ``CircuitGate.qubits = controls + targets``): the result is the
    identity except on the block where every control reads its required
    polarity, which holds ``matrix``.  Used by the fusion pass to fold
    controlled gates into plain block unitaries, and by the
    density-matrix simulator, which cannot use the statevector engines'
    control *slicing* — a sliced update would miss the coherences
    between the control-on and control-off blocks of rho.
    """
    if not ctrl_states:
        return matrix
    block = matrix.shape[0]
    selector = 0
    for state in ctrl_states:
        selector = (selector << 1) | state
    full = np.eye((1 << len(ctrl_states)) * block, dtype=complex)
    start = selector * block
    full[start : start + block, start : start + block] = matrix
    return full


@dataclass(frozen=True, eq=False)
class FusedUnitary:
    """One fused instruction: a raw unitary on explicit qubits.

    Unlike :class:`~repro.qcircuit.circuit.CircuitGate`, the matrix is
    arbitrary — the product of a whole run of gates (controls already
    folded in), acting on ``targets`` in tuple order (first target is
    the most significant matrix index).  ``gate_count`` records how
    many source gates the block absorbed, which is where the
    ``RunInfo.gates_fused`` telemetry comes from
    (:func:`fused_gate_savings`).

    Fused ops appear only in *execution* circuits
    (``CompileResult.execution_circuit``); the QASM 3 / QIR exporters
    and the resource estimator consume the unfused
    ``optimized_circuit`` / ``decomposed_circuit`` artifacts.
    """

    matrix: np.ndarray
    targets: tuple[int, ...]
    gate_count: int = 1
    loc: Optional[SourceSpan] = field(default=None)

    def __post_init__(self) -> None:
        dim = 1 << len(self.targets)
        if self.matrix.shape != (dim, dim):
            raise SimulationError(
                f"fused unitary of shape {self.matrix.shape} does not act "
                f"on {len(self.targets)} qubit(s)"
            )
        if len(set(self.targets)) != len(self.targets):
            raise SimulationError("fused unitary touches a qubit twice")

    @property
    def qubits(self) -> tuple[int, ...]:
        return self.targets

    def __eq__(self, other) -> bool:
        if not isinstance(other, FusedUnitary):
            return NotImplemented
        return (
            self.targets == other.targets
            and self.gate_count == other.gate_count
            and self.matrix.shape == other.matrix.shape
            and bool(np.array_equal(self.matrix, other.matrix))
        )

    def __hash__(self) -> int:  # matrix content is not hashed
        return hash((self.targets, self.gate_count))


def fused_gate_savings(circuit: Circuit) -> int:
    """Gate applications eliminated by fusion: for every
    :class:`FusedUnitary`, the absorbed gates minus the one sweep the
    block still costs.  0 on unfused circuits — this is what backends
    report as ``RunInfo.gates_fused``."""
    return sum(
        inst.gate_count - 1
        for inst in circuit.instructions
        if isinstance(inst, FusedUnitary)
    )


# ----------------------------------------------------------------------
# Block-matrix construction (cached per signature).
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=1024)
def _cached_block_matrix(
    qubits: tuple[int, ...],
    signature: tuple,
) -> np.ndarray:
    """The product matrix of one fused block, built once per signature.

    ``signature`` is the block's gate list as hashable
    ``(name, params, qubits, ctrl_states)`` tuples in program order.
    Each gate folds into the accumulating matrix by applying it to the
    *row* axes of the block matrix viewed as a ``(2,)*k + (2^k,)``
    tensor — ``U_full @ M`` without materializing ``U_full``.
    """
    from repro.sim.kernels import apply_matrix_inplace, gate_matrix

    k = len(qubits)
    dim = 1 << k
    matrix = np.eye(dim, dtype=complex)
    tensor = matrix.reshape((2,) * k + (dim,))
    position = {qubit: index for index, qubit in enumerate(qubits)}
    for name, params, gate_qubits, ctrl_states in signature:
        full = controlled_matrix(gate_matrix(name, params), ctrl_states)
        apply_matrix_inplace(
            tensor, full, tuple(position[q] for q in gate_qubits)
        )
    matrix.setflags(write=False)
    return matrix


def _gate_signature(gate: CircuitGate) -> tuple:
    return (gate.name, gate.params, gate.qubits, gate.ctrl_states)


class _Block:
    """One pending fusion block during the sweep (mutable)."""

    __slots__ = ("qubits", "gates", "order")

    def __init__(self, gate: CircuitGate, order: int) -> None:
        self.qubits: tuple[int, ...] = tuple(sorted(gate.qubits))
        self.gates: list[CircuitGate] = [gate]
        self.order = order

    def absorb(self, gate: CircuitGate) -> None:
        union = set(self.qubits) | set(gate.qubits)
        self.qubits = tuple(sorted(union))
        self.gates.append(gate)

    def merge(self, other: "_Block") -> None:
        """Fold ``other`` (disjoint or overlapping-free pending block)
        into this one.  Pending blocks are pairwise disjoint, so their
        gate lists commute and concatenation is a valid linearization."""
        self.qubits = tuple(sorted(set(self.qubits) | set(other.qubits)))
        self.gates.extend(other.gates)
        self.order = min(self.order, other.order)

    def emit(self):
        if len(self.gates) == 1:
            # A lone gate gains nothing from becoming a raw matrix;
            # keep it as-is (readable, noise-attachable, exportable).
            return self.gates[0]
        signature = tuple(_gate_signature(gate) for gate in self.gates)
        loc = next(
            (gate.loc for gate in self.gates if gate.loc is not None), None
        )
        return FusedUnitary(
            _cached_block_matrix(self.qubits, signature),
            self.qubits,
            gate_count=len(self.gates),
            loc=loc,
        )


def fuse_adjacent_gates(
    circuit: Circuit,
    max_qubits: int = DEFAULT_MAX_FUSED_QUBITS,
    layer: bool = True,
) -> Circuit:
    """Fuse runs of adjacent gates into :class:`FusedUnitary` blocks.

    Pending blocks are pairwise disjoint; a gate joins (and merges) the
    blocks it overlaps while the union stays within ``max_qubits``,
    otherwise the overlapped blocks flush and the gate starts fresh.
    With ``layer=True`` a gate overlapping *no* block may also join a
    disjoint one under the budget — kron-grouping whole layers of
    independent gates into one sweep.  Classically conditioned gates
    are barriers on the qubits they touch; measurements and resets
    flush *every* pending block (so no unitary is ever reordered past
    a measurement, and terminal-measurement circuits stay terminal —
    preserving the vectorized backend's fast path).
    """
    if max_qubits < 1:
        raise PassPipelineError("fuse: max_qubits must be >= 1")
    out = Circuit(
        circuit.num_qubits, circuit.num_bits, [], list(circuit.output_bits)
    )
    pending: list[_Block] = []
    counter = 0

    def flush(blocks: list[_Block]) -> None:
        for block in sorted(blocks, key=lambda b: b.order):
            out.add(block.emit())
            pending.remove(block)

    def flush_touching(qubits: set[int]) -> None:
        flush([b for b in pending if qubits & set(b.qubits)])

    for inst in circuit.instructions:
        if isinstance(inst, CircuitGate):
            # Symbolic (unbound-parameter) gates cannot become a
            # concrete product matrix; they barrier like conditioned
            # gates and pass through for later binding.
            fusible = (
                inst.condition is None
                and len(inst.qubits) <= max_qubits
                and not inst.is_symbolic
            )
            if not fusible:
                flush_touching(set(inst.qubits))
                out.add(inst)
                continue
            gate_qubits = set(inst.qubits)
            overlapping = [
                b for b in pending if gate_qubits & set(b.qubits)
            ]
            union = set(gate_qubits)
            for block in overlapping:
                union |= set(block.qubits)
            if overlapping and len(union) <= max_qubits:
                host = overlapping[0]
                for other in overlapping[1:]:
                    host.merge(other)
                    pending.remove(other)
                host.absorb(inst)
            elif overlapping:
                flush(overlapping)
                pending.append(_Block(inst, counter))
                counter += 1
            else:
                host = None
                if layer:
                    host = next(
                        (
                            b
                            for b in pending
                            if len(set(b.qubits) | gate_qubits) <= max_qubits
                        ),
                        None,
                    )
                if host is not None:
                    host.absorb(inst)
                else:
                    pending.append(_Block(inst, counter))
                    counter += 1
        elif isinstance(inst, FusedUnitary):
            # Already-fused input (an idempotent re-run): barrier on its
            # qubits, passed through untouched.
            flush_touching(set(inst.targets))
            out.add(inst)
        elif isinstance(inst, (Measurement, Reset)):
            # Materialization barrier: every pending block flushes, not
            # just the measured qubit's.  Keeping disjoint blocks
            # pending *would* be unitarily sound (they commute past the
            # measurement), but emitting them after it turns a
            # terminal-measurement circuit into a non-terminal one and
            # costs the vectorized backend its fast path.
            flush(list(pending))
            out.add(inst)
        else:
            flush(list(pending))
            out.add(inst)
    flush(list(pending))
    return out


# ----------------------------------------------------------------------
# The registered pass.
# ----------------------------------------------------------------------
from repro.qcircuit.passes import CircuitPass  # noqa: E402
from repro.ir.passmanager import register_pass  # noqa: E402


class FusionPass(CircuitPass):
    """Compile-time gate fusion (``fuse{max_qubits=…,layer=…}``)."""

    def __init__(
        self,
        max_qubits: int = DEFAULT_MAX_FUSED_QUBITS,
        layer: bool = True,
    ) -> None:
        if max_qubits < 1:
            raise PassPipelineError("fuse: max_qubits must be >= 1")
        self.max_qubits = max_qubits
        self.layer = layer
        self.name = (
            f"fuse{{max_qubits={max_qubits},layer={str(layer).lower()}}}"
        )

    def rewrite(self, circuit: Circuit) -> Circuit:
        return fuse_adjacent_gates(
            circuit, max_qubits=self.max_qubits, layer=self.layer
        )


def _fusion_factory(options: dict) -> FusionPass:
    max_qubits = options.pop("max_qubits", DEFAULT_MAX_FUSED_QUBITS)
    layer = options.pop("layer", True)
    if options:
        raise PassPipelineError(
            f"pass 'fuse' got unknown options {sorted(options)}"
        )
    return FusionPass(max_qubits=int(max_qubits), layer=bool(layer))


register_pass("fuse", _fusion_factory)


# ----------------------------------------------------------------------
# Evolution-step fusion (the statevector fast path's form).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FusedGate:
    """One fused evolution step: a raw unitary on explicit qubits.

    The *simulator-internal* cousin of :class:`FusedUnitary`: it keeps
    controls explicit (the statevector engines apply them by slicing)
    and exists only inside an evolution loop, never in circuits.
    Produced by :func:`fuse_single_qubit_gates`.
    """

    matrix: np.ndarray
    targets: tuple[int, ...]
    controls: tuple[int, ...] = ()
    ctrl_states: tuple[int, ...] = ()


def fuse_single_qubit_gates(
    gates: Sequence,
) -> list[FusedGate]:
    """Fuse runs of adjacent single-qubit gates into single unitaries.

    Uncontrolled single-qubit gates on the same qubit are accumulated
    into one 2x2 product until a multi-qubit or controlled gate touches
    that qubit; single-qubit gates on *different* qubits commute, so
    each qubit keeps its own pending product.  The result applies the
    same unitary as the input with (usually far) fewer statevector
    sweeps.  :class:`FusedUnitary` entries (compile-time fusion output)
    pass through as their own steps.

    This is the statevector backend's terminal-measurement fast-path
    fusion; the general compile-time pass (:func:`fuse_adjacent_gates`)
    subsumes it for whole circuits.  Classically conditioned gates are
    rejected: whether they apply depends on per-shot measurement
    outcomes, so their circuits must be executed as trajectories, not
    fused evolutions.
    """
    from repro.sim.kernels import gate_matrix

    fused: list[FusedGate] = []
    pending: dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is not None:
            fused.append(FusedGate(matrix, (qubit,)))

    for gate in gates:
        if isinstance(gate, FusedUnitary):
            for qubit in gate.targets:
                flush(qubit)
            fused.append(FusedGate(gate.matrix, gate.targets))
            continue
        if gate.condition is not None:
            raise SimulationError(
                "cannot fuse classically conditioned gates; execute the "
                "circuit as per-shot trajectories instead"
            )
        matrix = gate_matrix(gate.name, gate.params)
        if not gate.controls and len(gate.targets) == 1:
            qubit = gate.targets[0]
            previous = pending.get(qubit)
            # New gate acts after the accumulated run: left-multiply.
            pending[qubit] = (
                matrix if previous is None else matrix @ previous
            )
        else:
            for qubit in gate.qubits:
                flush(qubit)
            fused.append(
                FusedGate(
                    matrix, gate.targets, gate.controls, gate.ctrl_states
                )
            )
    for qubit in sorted(pending):
        flush(qubit)
    return fused
