"""Canonical non-terminal example circuits (mid-circuit measurement).

The benchmark algorithms (:mod:`repro.algorithms`) all measure at the
end, so they never exercise the trajectory engines.  These builders are
the shared workloads for everything that does: the batched-trajectory
tests, the teleportation speedup smoke in ``benchmarks/``, and the
docs.  Each returns a fresh flat :class:`~repro.qcircuit.circuit.Circuit`.
"""

from __future__ import annotations

from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement, Reset


def teleport_circuit(theta: float = 0.7) -> Circuit:
    """Teleport an rx(theta)-rotated qubit (mid-circuit measurement +
    classically conditioned X/Z corrections).  Output bit 2 reads 1
    with probability sin^2(theta / 2)."""
    circuit = Circuit(num_qubits=3, num_bits=3, output_bits=[2])
    circuit.add(CircuitGate("rx", (0,), params=(theta,)))
    circuit.add(CircuitGate("h", (1,)))
    circuit.add(CircuitGate("x", (2,), controls=(1,)))
    circuit.add(CircuitGate("x", (1,), controls=(0,)))
    circuit.add(CircuitGate("h", (0,)))
    circuit.add(Measurement(0, 0))
    circuit.add(Measurement(1, 1))
    circuit.add(CircuitGate("x", (2,), condition=(1, 1)))
    circuit.add(CircuitGate("z", (2,), condition=(0, 1)))
    circuit.add(Measurement(2, 2))
    return circuit


def conditioned_fanout_circuit() -> Circuit:
    """A coin toss classically fanned out through conditioned gates:
    measure a Hadamard coin, then apply X to qubit 1 only when it read
    1 and to qubit 2 only when it read 0, so the output is '110' or
    '001' with equal probability."""
    circuit = Circuit(num_qubits=3, num_bits=3)
    circuit.add(CircuitGate("h", (0,)))
    circuit.add(Measurement(0, 0))
    circuit.add(CircuitGate("x", (1,), condition=(0, 1)))
    circuit.add(CircuitGate("x", (2,), condition=(0, 0)))
    circuit.add(Measurement(1, 1))
    circuit.add(Measurement(2, 2))
    return circuit


def qubit_reuse_circuit(rounds: int = 3) -> Circuit:
    """A Fig. 12-style qubit-reuse layout: one qubit is measured and
    reset ``rounds`` times, recording an independent Hadamard coin into
    a fresh classical bit each round (mid-evolution reset)."""
    if rounds < 1:
        raise ValueError("need at least one round")
    circuit = Circuit(num_qubits=1, num_bits=rounds)
    for round_index in range(rounds):
        circuit.add(CircuitGate("h", (0,)))
        circuit.add(Measurement(0, round_index))
        circuit.add(Reset(0))
    return circuit


def repeat_until_success_circuit(attempts: int = 2) -> Circuit:
    """A bounded repeat-until-success pattern: each attempt entangles a
    work qubit with a flag qubit, measures the flag, and retries (reset
    + re-prepare, conditioned on failure) up to ``attempts`` times.
    The final bit records the work qubit."""
    if attempts < 1:
        raise ValueError("need at least one attempt")
    circuit = Circuit(num_qubits=2, num_bits=attempts + 1)
    for attempt in range(attempts):
        if attempt == 0:
            circuit.add(CircuitGate("h", (0,)))
            circuit.add(CircuitGate("x", (1,), controls=(0,)))
        else:
            # Retry only the shots whose previous flag read 0: re-prepare
            # the work qubit and re-entangle the (freshly reset) flag.
            # The controlled-X is both quantum-controlled and classically
            # conditioned — the combined path trajectory engines must get
            # right.
            previous = attempt - 1
            circuit.add(CircuitGate("h", (0,), condition=(previous, 0)))
            circuit.add(
                CircuitGate(
                    "x", (1,), controls=(0,), condition=(previous, 0)
                )
            )
        circuit.add(Measurement(1, attempt))
        circuit.add(Reset(1))
    circuit.add(Measurement(0, attempts))
    return circuit
