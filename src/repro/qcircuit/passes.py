"""QCircuit-level optimizations behind the unified pass interface.

Wraps the flat-circuit transformations of paper §6.5 — the
strict/relaxed peephole optimizer and multi-controlled gate
decomposition (Selinger's controlled-iX scheme or the textbook Toffoli
ladder) — as registered passes so the driver schedules them through
the same :class:`~repro.ir.passmanager.PassManager` as the Qwerty IR
stages.  Circuit passes rewrite functionally (the underlying helpers
return fresh circuits) and then splice the result back into the input
:class:`~repro.qcircuit.circuit.Circuit` in place, preserving the
mutate-in-place pass contract.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PassPipelineError
from repro.ir.passmanager import (
    Pass,
    PassManager,
    PassStatistics,
    register_pass,
)
from repro.qcircuit.circuit import Circuit
from repro.qcircuit.peephole import run_peephole
from repro.qcircuit.selinger import decompose_multi_controlled

#: The driver's default circuit-optimization pipeline (paper §6.5).
CIRCUIT_OPT_SPEC = "peephole{relaxed=true}"

#: The driver's default decomposition pipeline: lower multi-controlled
#: gates, then clean up with a strict (non-relaxed) peephole sweep.
CIRCUIT_DECOMPOSE_SPEC = (
    "decompose-multi-controlled{scheme=selinger},peephole{relaxed=false}"
)


def copy_circuit(circuit: Circuit) -> Circuit:
    """A shallow copy safe to optimize in place (instructions are
    immutable dataclasses, so sharing them is fine)."""
    return Circuit(
        circuit.num_qubits,
        circuit.num_bits,
        list(circuit.instructions),
        list(circuit.output_bits),
    )


def replace_circuit(circuit: Circuit, new: Circuit) -> bool:
    """Overwrite ``circuit`` with ``new`` in place; True if different."""
    changed = (
        circuit.num_qubits != new.num_qubits
        or circuit.num_bits != new.num_bits
        or circuit.instructions != new.instructions
        or circuit.output_bits != new.output_bits
    )
    circuit.num_qubits = new.num_qubits
    circuit.num_bits = new.num_bits
    circuit.instructions = list(new.instructions)
    circuit.output_bits = list(new.output_bits)
    return changed


class CircuitPass(Pass):
    """A pass over flat circuits: implement :meth:`rewrite`."""

    ir = "qcircuit"

    def rewrite(self, circuit: Circuit) -> Circuit:
        raise NotImplementedError

    def run(self, circuit: Circuit) -> bool:
        return replace_circuit(circuit, self.rewrite(circuit))


class PeepholePass(CircuitPass):
    """Gate-level peephole to a fixpoint; ``relaxed`` additionally
    enables the Fig. 10 MCX-on-|->-ancilla rewrite."""

    def __init__(self, relaxed: bool = True) -> None:
        self.relaxed = relaxed
        self.name = f"peephole{{relaxed={str(relaxed).lower()}}}"

    def rewrite(self, circuit: Circuit) -> Circuit:
        return run_peephole(circuit, relaxed=self.relaxed)


class DecomposeMultiControlledPass(CircuitPass):
    """Lower multi-controlled gates; ``scheme`` picks Selinger's
    controlled-iX construction or the textbook Toffoli ladder."""

    def __init__(self, scheme: str = "selinger") -> None:
        if scheme not in ("selinger", "naive"):
            raise PassPipelineError(
                f"decompose-multi-controlled: unknown scheme {scheme!r} "
                f"(expected 'selinger' or 'naive')"
            )
        self.scheme = scheme
        self.name = f"decompose-multi-controlled{{scheme={scheme}}}"

    def rewrite(self, circuit: Circuit) -> Circuit:
        return decompose_multi_controlled(
            circuit, use_selinger=self.scheme == "selinger"
        )


def _peephole_factory(options: dict) -> PeepholePass:
    relaxed = options.pop("relaxed", True)
    if options:
        raise PassPipelineError(
            f"pass 'peephole' got unknown options {sorted(options)}"
        )
    return PeepholePass(relaxed=bool(relaxed))


def _decompose_factory(options: dict) -> DecomposeMultiControlledPass:
    scheme = options.pop("scheme", "selinger")
    if options:
        raise PassPipelineError(
            f"pass 'decompose-multi-controlled' got unknown options "
            f"{sorted(options)}"
        )
    return DecomposeMultiControlledPass(scheme=scheme)


register_pass("peephole", _peephole_factory)
register_pass("decompose-multi-controlled", _decompose_factory)


def count_circuit_ops(circuit: Circuit) -> int:
    return len(circuit.instructions)


def make_circuit_pass_manager(
    spec: str,
    *,
    statistics: Optional[PassStatistics] = None,
) -> PassManager:
    """A PassManager over flat circuits for a textual ``spec``."""
    return PassManager.from_spec(
        spec,
        count_ops=count_circuit_ops if statistics is not None else None,
        statistics=statistics,
    )
