"""Gate-level peephole optimizations (paper §6.5).

Implements the common gate-level optimizations of QIRO/QSSA-style
compilers — cancelling adjacent Hermitian pairs, cancelling
adjoint pairs, merging adjacent phase rotations, and rewriting
``H X H -> Z`` / ``H Z H -> X`` — plus the *relaxed* peephole
optimization of Liu, Bello and Zhou [27] shown in paper Fig. 10:
a multi-controlled X targeting a freshly-prepared |-> ancilla becomes a
multi-controlled Z without the ancilla, which is what simplifies
``f.sign`` in Bernstein-Vazirani and Grover's.
"""

from __future__ import annotations

import math

from repro.parameters import is_symbolic
from repro.qcircuit.circuit import (
    Circuit,
    CircuitGate,
    Measurement,
    Reset,
)

_ADJOINT_PAIRS = {
    ("s", "sdg"),
    ("sdg", "s"),
    ("t", "tdg"),
    ("tdg", "t"),
    ("sx", "sxdg"),
    ("sxdg", "sx"),
}

_TWO_PI = 2 * math.pi


def _same_wires(a: CircuitGate, b: CircuitGate) -> bool:
    return (
        a.targets == b.targets
        and a.controls == b.controls
        and a.ctrl_states == b.ctrl_states
        and a.condition == b.condition
    )


def _cancels(a: CircuitGate, b: CircuitGate) -> bool:
    if not _same_wires(a, b):
        return False
    if a.name == b.name and a.name in {"x", "y", "z", "h", "swap"}:
        return True
    if (a.name, b.name) in _ADJOINT_PAIRS:
        return True
    if a.name == b.name and a.name in {"p", "rx", "ry", "rz"}:
        total = a.params[0] + b.params[0]
        if is_symbolic(total):
            # An unbound angle sum could be anything; exactly-opposite
            # symbolic angles (theta + -theta) collapse to 0.0 in the
            # ParamExpr arithmetic and never reach this branch.
            return False
        return abs(total % _TWO_PI) < 1e-12 or (
            abs((total % _TWO_PI) - _TWO_PI) < 1e-12
        )
    return False


def _merge(a: CircuitGate, b: CircuitGate) -> CircuitGate | None:
    """Merge two adjacent rotations on the same wires, if possible."""
    if not _same_wires(a, b):
        return None
    if a.name == b.name and a.name in {"p", "rx", "ry", "rz"}:
        # A symbolic sum merges un-normalized (ParamExpr.__mod__ is the
        # identity); a concrete sum normalizes into [0, 2π) as before.
        angle = (a.params[0] + b.params[0]) % _TWO_PI
        return CircuitGate(
            a.name, a.targets, a.controls, (angle,), a.ctrl_states, a.condition,
            loc=a.loc,
        )
    return None


def _is_identity(gate: CircuitGate) -> bool:
    if gate.name in {"p", "rx", "ry", "rz"}:
        if gate.is_symbolic:
            return False
        angle = gate.params[0] % _TWO_PI
        return abs(angle) < 1e-12 or abs(angle - _TWO_PI) < 1e-12
    return False


class _Window:
    """Streaming peephole: tracks the last live gate per qubit."""

    def __init__(self) -> None:
        self.out: list = []
        self.alive: list[bool] = []
        self.last: dict[int, int] = {}

    def _prev_index(self, gate: CircuitGate) -> int | None:
        indices = {self.last.get(q) for q in gate.qubits}
        if len(indices) != 1 or None in indices:
            return None
        (index,) = indices
        if not self.alive[index]:
            return None
        prev = self.out[index]
        if not isinstance(prev, CircuitGate):
            return None
        if set(prev.qubits) != set(gate.qubits):
            return None
        return index

    def _prev_on_qubit(self, qubit: int, before: int) -> int | None:
        """The last live gate index touching ``qubit`` before ``before``."""
        for index in range(before - 1, -1, -1):
            if not self.alive[index]:
                continue
            inst = self.out[index]
            if isinstance(inst, CircuitGate) and qubit in inst.qubits:
                return index
            if isinstance(inst, (Measurement, Reset)) and inst.qubit == qubit:
                return index
        return None

    def push(self, inst) -> None:
        if isinstance(inst, (Measurement, Reset)):
            index = len(self.out)
            self.out.append(inst)
            self.alive.append(True)
            self.last[inst.qubit] = index
            return
        gate: CircuitGate = inst
        if _is_identity(gate):
            return
        prev_index = self._prev_index(gate)
        if prev_index is not None:
            prev = self.out[prev_index]
            if _cancels(prev, gate):
                self.alive[prev_index] = False
                self._refresh_last(prev.qubits)
                return
            merged = _merge(prev, gate)
            if merged is not None:
                self.alive[prev_index] = False
                self._refresh_last(prev.qubits)
                self.push(merged)
                return
        if self._try_hxh(gate):
            return
        index = len(self.out)
        self.out.append(gate)
        self.alive.append(True)
        for qubit in gate.qubits:
            self.last[qubit] = index

    def _try_hxh(self, gate: CircuitGate) -> bool:
        """H (X|Z) H on one target -> swap X and Z, dropping both H.

        The sandwiched gate may carry controls (H CX H = CZ); only the
        *target* wire must be exactly H-then-gate with no interleaving.
        """
        if (
            gate.name != "h"
            or gate.controls
            or gate.condition is not None
        ):
            return False
        target = gate.targets[0]
        prev_index = self.last.get(target)
        if prev_index is None or not self.alive[prev_index]:
            return False
        prev = self.out[prev_index]
        if not (
            isinstance(prev, CircuitGate)
            and prev.name in {"x", "z"}
            and prev.targets == gate.targets
            and prev.condition is None
            and target not in prev.controls
        ):
            return False
        before_index = self._prev_on_qubit(target, prev_index)
        if before_index is None:
            return False
        before = self.out[before_index]
        if not (
            isinstance(before, CircuitGate)
            and before.name == "h"
            and before.targets == gate.targets
            and not before.controls
            and before.condition is None
        ):
            return False
        # The controls of the sandwiched gate must not be touched
        # between the two H gates (only `prev` sits between them on the
        # target wire; check control wires saw nothing since `before`).
        for control in prev.controls:
            last_on_control = self.last.get(control)
            if last_on_control is not None and last_on_control > prev_index:
                return False
        self.alive[prev_index] = False
        self.alive[before_index] = False
        self._refresh_last(prev.qubits)
        self.push(
            CircuitGate(
                "z" if prev.name == "x" else "x",
                prev.targets,
                prev.controls,
                (),
                prev.ctrl_states,
                loc=prev.loc,
            )
        )
        return True

    def _refresh_last(self, qubits) -> None:
        for qubit in qubits:
            self.last[qubit] = None  # type: ignore[assignment]
            for index in range(len(self.out) - 1, -1, -1):
                if not self.alive[index]:
                    continue
                inst = self.out[index]
                touched = (
                    inst.qubits
                    if isinstance(inst, CircuitGate)
                    else (inst.qubit,)
                )
                if qubit in touched:
                    self.last[qubit] = index
                    break
            else:
                self.last.pop(qubit, None)
            if self.last.get(qubit) is None:
                self.last.pop(qubit, None)

    def result(self) -> list:
        return [inst for inst, alive in zip(self.out, self.alive) if alive]


def _cancellation_pass(instructions: list) -> list:
    window = _Window()
    for inst in instructions:
        window.push(inst)
    return window.result()


def _mcz_from_mcx(mcx: CircuitGate) -> list[CircuitGate]:
    """An MCX whose target is |-> equals an MCZ on its controls."""
    positive = [
        (c, s) for c, s in zip(mcx.controls, mcx.ctrl_states) if s == 1
    ]
    if positive:
        target = positive[0][0]
        rest = [
            (c, s) for c, s in zip(mcx.controls, mcx.ctrl_states) if c != target
        ]
        return [
            CircuitGate(
                "z",
                (target,),
                tuple(c for c, _ in rest),
                (),
                tuple(s for _, s in rest),
                loc=mcx.loc,
            )
        ]
    # All negative controls: X-conjugate one of them.
    target = mcx.controls[0]
    rest = list(zip(mcx.controls, mcx.ctrl_states))[1:]
    return [
        CircuitGate("x", (target,), loc=mcx.loc),
        CircuitGate(
            "z",
            (target,),
            tuple(c for c, _ in rest),
            (),
            tuple(s for _, s in rest),
            loc=mcx.loc,
        ),
        CircuitGate("x", (target,), loc=mcx.loc),
    ]


def _relaxed_peephole_pass(circuit_num_qubits: int, instructions: list) -> list:
    """Paper Fig. 10: MCX onto a |-> ancilla becomes MCZ, ancilla freed.

    Per qubit q, scans its op sequence for segments [X, H, MCX(target
    q)..., H, X] starting where q is known to be |0> (the first op on
    the wire, right after a Reset, or right after a previous matched
    segment), and rewrites each MCX into an MCZ on its controls.
    """
    ops_by_qubit: dict[int, list[int]] = {}
    for index, inst in enumerate(instructions):
        qubits = (
            inst.qubits if isinstance(inst, CircuitGate) else (inst.qubit,)
        )
        for qubit in qubits:
            ops_by_qubit.setdefault(qubit, []).append(index)

    to_drop: set[int] = set()
    to_replace: dict[int, list[CircuitGate]] = {}

    for qubit, indices in ops_by_qubit.items():

        def is_plain(index, name):
            inst = instructions[index]
            return (
                isinstance(inst, CircuitGate)
                and inst.name == name
                and inst.targets == (qubit,)
                and not inst.controls
                and inst.condition is None
            )

        def is_mcx_target(index):
            inst = instructions[index]
            return (
                isinstance(inst, CircuitGate)
                and inst.name == "x"
                and inst.targets == (qubit,)
                and inst.controls
                and qubit not in inst.controls
                and inst.condition is None
            )

        position = 0
        known_zero = True  # All qubits start in |0>.
        while position < len(indices):
            if not known_zero:
                inst = instructions[indices[position]]
                if isinstance(inst, Reset):
                    known_zero = True
                position += 1
                continue
            # Try to match X, H, MCX+, H, X from here.
            if (
                position + 4 < len(indices)
                and is_plain(indices[position], "x")
                and is_plain(indices[position + 1], "h")
            ):
                scan = position + 2
                mcx_positions = []
                while scan < len(indices) and is_mcx_target(indices[scan]):
                    mcx_positions.append(scan)
                    scan += 1
                if (
                    mcx_positions
                    and scan + 1 < len(indices)
                    and is_plain(indices[scan], "h")
                    and is_plain(indices[scan + 1], "x")
                ):
                    to_drop.update(
                        (
                            indices[position],
                            indices[position + 1],
                            indices[scan],
                            indices[scan + 1],
                        )
                    )
                    for mcx_position in mcx_positions:
                        mcx = instructions[indices[mcx_position]]
                        to_replace[indices[mcx_position]] = _mcz_from_mcx(mcx)
                    position = scan + 2
                    continue  # Still |0> after the segment.
            known_zero = False
            position += 1

    out: list = []
    for index, inst in enumerate(instructions):
        if index in to_replace:
            out.extend(to_replace[index])
        elif index not in to_drop:
            out.append(inst)
    return out


def _dead_reset_pass(instructions: list) -> list:
    """Drop Reset instructions with no later operation on the wire.

    A reset exists to return a qubit to the ancilla pool; at the end of
    the program it is dead code (real toolchains' assembly ends at the
    final measurement, so this also keeps op counts comparable).
    """
    live: set[int] = set()
    out_reversed = []
    for inst in reversed(instructions):
        if isinstance(inst, Reset) and inst.qubit not in live:
            continue
        if isinstance(inst, CircuitGate):
            live.update(inst.qubits)
            if inst.condition is not None:
                pass  # Classical bits do not keep wires alive.
        else:
            live.add(inst.qubit)
        out_reversed.append(inst)
    return list(reversed(out_reversed))


def compact_qubits(circuit: Circuit) -> Circuit:
    """Renumber qubits so unused wires (freed ancillas) disappear."""
    used: set[int] = set()
    for inst in circuit.instructions:
        if isinstance(inst, CircuitGate):
            used.update(inst.qubits)
        else:
            used.add(inst.qubit)
    mapping = {old: new for new, old in enumerate(sorted(used))}
    new = Circuit(
        len(mapping), circuit.num_bits, output_bits=list(circuit.output_bits)
    )
    for inst in circuit.instructions:
        if isinstance(inst, CircuitGate):
            new.add(inst.remapped(mapping))
        elif isinstance(inst, Measurement):
            new.add(Measurement(mapping[inst.qubit], inst.bit, loc=inst.loc))
        else:
            new.add(Reset(mapping[inst.qubit], loc=inst.loc))
    return new


def run_peephole(
    circuit: Circuit, relaxed: bool = True, max_iterations: int = 10
) -> Circuit:
    """Run all peephole passes to a fixpoint (paper §6.5)."""
    instructions = list(circuit.instructions)
    for _ in range(max_iterations):
        before = len(instructions)
        # Relaxed peephole first: the generic H-X-H rewrite would
        # otherwise consume the |-> shell and hide the Fig. 10 pattern.
        if relaxed:
            instructions = _relaxed_peephole_pass(
                circuit.num_qubits, instructions
            )
        instructions = _cancellation_pass(instructions)
        instructions = _dead_reset_pass(instructions)
        if len(instructions) == before:
            break
    out = Circuit(
        circuit.num_qubits,
        circuit.num_bits,
        instructions,
        list(circuit.output_bits),
    )
    return compact_qubits(out)
