"""Multi-controlled gate decomposition (paper §6.5).

ASDF decomposes multi-controlled gates with Selinger's controlled-iX
scheme [42] to reduce T counts on fault-tolerant hardware: AND chains
are computed into ancillas with *relative-phase* Toffolis (4 T each,
the controlled-iX trick) whose phases cancel on uncomputation, leaving
roughly 8(n-1) T gates per n-controlled X — about half the cost of the
textbook ladder built from full 7-T Toffolis, which is kept here as the
``naive`` mode used by the Qiskit/Quipper-style baselines (§8.3).
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.errors import SynthesisError
from repro.qcircuit.circuit import Circuit, CircuitGate


def _g(name, target, controls=(), params=()):
    from repro.parameters import is_symbolic

    return CircuitGate(
        name,
        (target,),
        tuple(controls),
        # Halved/negated symbolic angles stay symbolic through the
        # decomposition (the ParamExpr arithmetic already happened).
        tuple(p if is_symbolic(p) else float(p) for p in params),
    )


def _cx(control, target):
    return _g("x", target, (control,))


def relative_phase_toffoli(a: int, b: int, t: int) -> list[CircuitGate]:
    """A controlled-iX-style Toffoli: CCX up to relative phase, 4 T."""
    return [
        _g("h", t),
        _g("t", t),
        _cx(b, t),
        _g("tdg", t),
        _cx(a, t),
        _g("t", t),
        _cx(b, t),
        _g("tdg", t),
        _g("h", t),
    ]


def full_toffoli(a: int, b: int, t: int) -> list[CircuitGate]:
    """The textbook 7-T Toffoli."""
    return [
        _g("h", t),
        _cx(b, t),
        _g("tdg", t),
        _cx(a, t),
        _g("t", t),
        _cx(b, t),
        _g("tdg", t),
        _cx(a, t),
        _g("t", b),
        _g("t", t),
        _g("h", t),
        _cx(a, b),
        _g("t", a),
        _g("tdg", b),
        _cx(a, b),
    ]


def _cp(control: int, target: int, theta: float) -> list[CircuitGate]:
    """Controlled-P(theta)."""
    return [
        _g("p", control, params=[theta / 2]),
        _cx(control, target),
        _g("p", target, params=[-theta / 2]),
        _cx(control, target),
        _g("p", target, params=[theta / 2]),
    ]


def _ch(control: int, target: int) -> list[CircuitGate]:
    """Controlled-H (verified against the exact unitary in tests)."""
    return [
        _g("s", target),
        _g("h", target),
        _g("t", target),
        _cx(control, target),
        _g("tdg", target),
        _g("h", target),
        _g("sdg", target),
    ]


def _crz(control: int, target: int, theta: float) -> list[CircuitGate]:
    return [
        _g("rz", target, params=[theta / 2]),
        _cx(control, target),
        _g("rz", target, params=[-theta / 2]),
        _cx(control, target),
    ]


def _cry(control: int, target: int, theta: float) -> list[CircuitGate]:
    return [
        _g("ry", target, params=[theta / 2]),
        _cx(control, target),
        _g("ry", target, params=[-theta / 2]),
        _cx(control, target),
    ]


def _crx(control: int, target: int, theta: float) -> list[CircuitGate]:
    return (
        [_g("h", target)]
        + _crz(control, target, theta)
        + [_g("h", target)]
    )


_SINGLE_CONTROL = {
    "z": lambda c, t, params: _cp(c, t, math.pi),
    "s": lambda c, t, params: _cp(c, t, math.pi / 2),
    "sdg": lambda c, t, params: _cp(c, t, -math.pi / 2),
    "t": lambda c, t, params: _cp(c, t, math.pi / 4),
    "tdg": lambda c, t, params: _cp(c, t, -math.pi / 4),
    "p": lambda c, t, params: _cp(c, t, params[0]),
    "h": lambda c, t, params: _ch(c, t),
    "rz": lambda c, t, params: _crz(c, t, params[0]),
    "ry": lambda c, t, params: _cry(c, t, params[0]),
    "rx": lambda c, t, params: _crx(c, t, params[0]),
    "y": lambda c, t, params: [_g("sdg", t), _cx(c, t), _g("s", t)],
}


class _Decomposer:
    def __init__(self, num_qubits: int, use_selinger: bool) -> None:
        self.num_qubits = num_qubits
        self.use_selinger = use_selinger
        self.out: list[CircuitGate] = []
        self._free: list[int] = []

    def alloc(self) -> int:
        if self._free:
            return self._free.pop()
        qubit = self.num_qubits
        self.num_qubits += 1
        return qubit

    def free(self, qubit: int) -> None:
        self._free.append(qubit)

    def toffoli(self, a: int, b: int, t: int, relative: bool) -> None:
        if relative and self.use_selinger:
            self.out.extend(relative_phase_toffoli(a, b, t))
        else:
            self.out.extend(full_toffoli(a, b, t))

    def and_ladder(self, controls: list[int]) -> tuple[int, list]:
        """Compute the AND of all controls into a fresh ancilla.

        Returns (result qubit, undo log).  Relative-phase Toffolis are
        safe here because the exact-inverse uncompute cancels their
        phases (the controlled-iX trick).
        """
        log = []
        current = controls[0]
        for next_control in controls[1:]:
            ancilla = self.alloc()
            start = len(self.out)
            self.toffoli(current, next_control, ancilla, relative=True)
            log.append((start, len(self.out), ancilla))
            current = ancilla
        return current, log

    def undo_ladder(self, log: list) -> None:
        for start, stop, ancilla in reversed(log):
            for gate in reversed(self.out[start:stop]):
                self.out.append(gate.dagger())
            self.free(ancilla)

    def emit(self, gate: CircuitGate) -> None:
        # Normalize negative controls with X conjugation.
        flips = [
            qubit
            for qubit, state in zip(gate.controls, gate.ctrl_states)
            if state == 0
        ]
        for qubit in flips:
            self.out.append(_g("x", qubit))
        self._emit_positive(
            CircuitGate(
                gate.name,
                gate.targets,
                gate.controls,
                gate.params,
                (1,) * len(gate.controls),
            )
        )
        for qubit in reversed(flips):
            self.out.append(_g("x", qubit))

    def _emit_positive(self, gate: CircuitGate) -> None:
        controls = list(gate.controls)
        if gate.name == "swap":
            a, b = gate.targets
            if not controls:
                self.out.append(CircuitGate("swap", (a, b)))
                return
            # cswap = CX(b,a) . C^{n+1}X . CX(b,a).
            self.out.append(_cx(b, a))
            self._emit_positive(
                CircuitGate("x", (b,), tuple(controls) + (a,))
            )
            self.out.append(_cx(b, a))
            return
        (target,) = gate.targets
        if not controls:
            self.out.append(gate)
            return
        if gate.name == "x":
            if len(controls) == 1:
                self.out.append(gate)
                return
            if len(controls) == 2:
                self.toffoli(controls[0], controls[1], target, relative=False)
                return
            # AND-ladder the first n-1 controls, then a plain Toffoli.
            result, log = self.and_ladder(controls[:-1])
            self.toffoli(result, controls[-1], target, relative=False)
            self.undo_ladder(log)
            return
        # Other gates: reduce to a single control via the AND ladder.
        if len(controls) == 1:
            builder = _SINGLE_CONTROL.get(gate.name)
            if builder is None:
                raise SynthesisError(
                    f"no controlled decomposition for gate {gate.name!r}"
                )
            self.out.extend(builder(controls[0], target, gate.params))
            return
        result, log = self.and_ladder(controls)
        self._emit_positive(
            CircuitGate(gate.name, (target,), (result,), gate.params)
        )
        self.undo_ladder(log)


def decompose_multi_controlled(
    circuit: Circuit, use_selinger: bool = True
) -> Circuit:
    """Rewrite the circuit over {single-qubit gates, CX, SWAP}.

    ``use_selinger=True`` applies the controlled-iX scheme (paper
    §6.5); ``use_selinger=False`` uses full 7-T Toffolis throughout,
    modeling the costlier decompositions of baseline compilers.
    """
    decomposer = _Decomposer(circuit.num_qubits, use_selinger)
    new = Circuit(
        circuit.num_qubits,
        circuit.num_bits,
        output_bits=list(circuit.output_bits),
    )
    for inst in circuit.instructions:
        if isinstance(inst, CircuitGate) and (
            inst.controls or inst.name not in ("x", "swap")
        ):
            decomposer.out = []
            decomposer.emit(inst)
            for gate in decomposer.out:
                # Decomposed gates inherit the source gate's condition
                # and provenance span.
                gate = replace(
                    gate,
                    condition=(
                        inst.condition
                        if inst.condition is not None
                        else gate.condition
                    ),
                    loc=gate.loc if gate.loc is not None else inst.loc,
                )
                new.add(gate)
        else:
            new.add(inst)
    new.num_qubits = decomposer.num_qubits
    return new
