"""Flat quantum circuits plus QCircuit-level optimizations (paper §6, §6.5)."""

from repro.qcircuit.circuit import Circuit, CircuitGate
from repro.qcircuit.examples import (
    conditioned_fanout_circuit,
    qubit_reuse_circuit,
    repeat_until_success_circuit,
    teleport_circuit,
)
from repro.qcircuit.peephole import run_peephole
from repro.qcircuit.selinger import decompose_multi_controlled
from repro.qcircuit.passes import (
    CIRCUIT_DECOMPOSE_SPEC,
    CIRCUIT_OPT_SPEC,
    CircuitPass,
    DecomposeMultiControlledPass,
    PeepholePass,
    copy_circuit,
    make_circuit_pass_manager,
    replace_circuit,
)
from repro.qcircuit.fusion import (
    CIRCUIT_FUSION_SPEC,
    FusedUnitary,
    FusionPass,
    fuse_adjacent_gates,
    fused_gate_savings,
)

__all__ = [
    "CIRCUIT_DECOMPOSE_SPEC",
    "CIRCUIT_FUSION_SPEC",
    "CIRCUIT_OPT_SPEC",
    "Circuit",
    "CircuitGate",
    "CircuitPass",
    "DecomposeMultiControlledPass",
    "FusedUnitary",
    "FusionPass",
    "PeepholePass",
    "fuse_adjacent_gates",
    "fused_gate_savings",
    "conditioned_fanout_circuit",
    "copy_circuit",
    "decompose_multi_controlled",
    "make_circuit_pass_manager",
    "qubit_reuse_circuit",
    "repeat_until_success_circuit",
    "replace_circuit",
    "run_peephole",
    "teleport_circuit",
]
