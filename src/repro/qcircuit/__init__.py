"""Flat quantum circuits plus QCircuit-level optimizations (paper §6, §6.5)."""

from repro.qcircuit.circuit import Circuit, CircuitGate
from repro.qcircuit.peephole import run_peephole
from repro.qcircuit.selinger import decompose_multi_controlled

__all__ = [
    "Circuit",
    "CircuitGate",
    "decompose_multi_controlled",
    "run_peephole",
]
