"""A flat, imperative quantum circuit representation.

This is the post-IR form used by the backends (OpenQASM 3, QIR), the
statevector simulator, and the resource estimator — the result of the
reg2mem-style conversion from QCircuit-dialect SSA (paper §7).  It is
also the common currency of circuit synthesis: basis translation
synthesis and oracle synthesis produce gate lists in this form before
they are spliced into the IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.errors import SimulationError, SourceSpan

#: Gate names understood by the circuit layer.
KNOWN_GATES = {
    "x",
    "y",
    "z",
    "h",
    "s",
    "sdg",
    "t",
    "tdg",
    "sx",
    "sxdg",
    "p",
    "rx",
    "ry",
    "rz",
    "swap",
}

SELF_ADJOINT = {"x", "y", "z", "h", "swap"}

_NUM_TARGETS = {"swap": 2}


@dataclass(frozen=True)
class CircuitGate:
    """One gate application: ``name`` on ``targets`` with ``controls``.

    ``ctrl_states`` holds the control polarity (1 = control on |1>).
    ``params`` holds rotation/phase angles in radians.
    ``condition`` is an optional ``(classical bit, required value)``
    pair; the gate only runs when the bit holds that value (used for
    measurement-dependent circuits such as teleportation).

    ``loc`` records the Qwerty source span the gate originated from
    (threaded all the way from the decorated function's Python AST);
    it is provenance metadata only, so it is excluded from equality —
    two gates that act identically compare equal regardless of origin.
    """

    name: str
    targets: tuple[int, ...]
    controls: tuple[int, ...] = ()
    params: tuple[float, ...] = ()
    ctrl_states: tuple[int, ...] = ()
    condition: Optional[tuple[int, int]] = None
    loc: Optional[SourceSpan] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.name not in KNOWN_GATES:
            raise SimulationError(f"unknown gate {self.name!r}")
        if len(self.targets) != _NUM_TARGETS.get(self.name, 1):
            raise SimulationError(
                f"gate {self.name!r} takes {_NUM_TARGETS.get(self.name, 1)} "
                f"targets, got {len(self.targets)}"
            )
        if self.ctrl_states and len(self.ctrl_states) != len(self.controls):
            raise SimulationError("ctrl_states must match controls")
        if not self.ctrl_states:
            object.__setattr__(self, "ctrl_states", (1,) * len(self.controls))
        touched = self.targets + self.controls
        if len(set(touched)) != len(touched):
            raise SimulationError(f"gate {self.name!r} touches a qubit twice")

    @property
    def qubits(self) -> tuple[int, ...]:
        return self.controls + self.targets

    @property
    def num_controls(self) -> int:
        return len(self.controls)

    @property
    def is_symbolic(self) -> bool:
        """Whether any param is an unbound symbolic expression."""
        from repro.parameters import is_symbolic

        return any(is_symbolic(p) for p in self.params)

    @property
    def is_clifford(self) -> bool:
        """Whether this is a Clifford gate (T-free), ignoring controls."""
        import math

        if self.name in {"x", "y", "z", "h", "s", "sdg", "sx", "sxdg", "swap"}:
            return True
        if self.name in {"t", "tdg"}:
            return False
        if self.name in {"p", "rz", "rx", "ry"}:
            if self.is_symbolic:
                # An unbound angle could take any value; be conservative.
                return False
            theta = self.params[0] % (2 * math.pi)
            quarter = math.pi / 2
            return min(theta % quarter, quarter - theta % quarter) < 1e-12
        return False

    def shifted(self, offset: int) -> "CircuitGate":
        """The same gate with every qubit index shifted by ``offset``."""
        return replace(
            self,
            targets=tuple(q + offset for q in self.targets),
            controls=tuple(q + offset for q in self.controls),
        )

    def remapped(self, mapping: dict[int, int]) -> "CircuitGate":
        """The same gate with qubits renumbered through ``mapping``."""
        return replace(
            self,
            targets=tuple(mapping[q] for q in self.targets),
            controls=tuple(mapping[q] for q in self.controls),
        )

    def with_extra_controls(
        self, controls: Iterable[int], states: Iterable[int]
    ) -> "CircuitGate":
        """The same gate with additional (possibly negative) controls."""
        extra = tuple(controls)
        extra_states = tuple(states)
        return replace(
            self,
            controls=self.controls + extra,
            ctrl_states=self.ctrl_states + extra_states,
        )

    def dagger(self) -> "CircuitGate":
        """The adjoint gate."""
        if self.name in SELF_ADJOINT:
            return self
        pairs = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t",
                 "sx": "sxdg", "sxdg": "sx"}
        if self.name in pairs:
            return replace(self, name=pairs[self.name])
        if self.name in {"p", "rx", "ry", "rz"}:
            return replace(self, params=tuple(-p for p in self.params))
        raise SimulationError(f"cannot take adjoint of {self.name!r}")


@dataclass(frozen=True)
class Measurement:
    """Measure ``qubit`` in the standard basis into classical ``bit``."""

    qubit: int
    bit: int
    loc: Optional[SourceSpan] = field(default=None, compare=False)


@dataclass(frozen=True)
class Reset:
    """Reset ``qubit`` to |0> (emitted by ``qfree``)."""

    qubit: int
    loc: Optional[SourceSpan] = field(default=None, compare=False)


@dataclass
class Circuit:
    """A flat circuit: qubits, classical bits, and an instruction list.

    Instructions are :class:`CircuitGate`, :class:`Measurement` or
    :class:`Reset` objects in program order.
    """

    num_qubits: int
    num_bits: int = 0
    instructions: list = field(default_factory=list)
    #: Classical bit indices, in order, that form the program output.
    output_bits: list[int] = field(default_factory=list)

    def add(self, instruction) -> None:
        self.instructions.append(instruction)

    @property
    def gates(self) -> list[CircuitGate]:
        return [
            inst for inst in self.instructions if isinstance(inst, CircuitGate)
        ]

    @property
    def measurements(self) -> list[Measurement]:
        return [
            inst for inst in self.instructions if isinstance(inst, Measurement)
        ]

    def gate_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for gate in self.gates:
            key = gate.name if not gate.controls else f"c{gate.num_controls}{gate.name}"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def depth(self) -> int:
        """ASAP circuit depth over gates and measurements."""
        levels: dict[int, int] = {}
        depth = 0
        for inst in self.instructions:
            if isinstance(inst, CircuitGate):
                qubits = inst.qubits
            elif isinstance(inst, Measurement):
                qubits = (inst.qubit,)
            elif hasattr(inst, "qubits"):
                # e.g. a FusedUnitary block from the fusion pass.
                qubits = inst.qubits
            else:
                qubits = (inst.qubit,)
            level = 1 + max((levels.get(q, 0) for q in qubits), default=0)
            for q in qubits:
                levels[q] = level
            depth = max(depth, level)
        return depth

    def t_count(self) -> int:
        """Number of T/Tdg gates plus non-Clifford rotations (each
        counted once; see resources layer for rotation T-costs)."""
        return sum(
            1
            for gate in self.gates
            if not gate.is_clifford and not gate.controls
        ) + sum(1 for gate in self.gates if gate.controls and not gate.is_clifford)


# ----------------------------------------------------------------------
# Symbolic parameters (docs/variational.md).
# ----------------------------------------------------------------------
def circuit_parameters(circuit: Circuit) -> tuple:
    """The distinct unbound :class:`repro.parameters.Parameter` symbols
    appearing in ``circuit``'s gate params, sorted by name."""
    from repro.parameters import parameters_of

    params = []
    for inst in circuit.instructions:
        if isinstance(inst, CircuitGate):
            params.extend(inst.params)
    return parameters_of(params)


def bind_circuit(circuit: Circuit, env, *, partial: bool = False) -> Circuit:
    """A copy of ``circuit`` with symbolic gate params substituted.

    ``env`` maps :class:`~repro.parameters.Parameter` objects or names
    to concrete angles (radians, since gate params are radians).  By
    default every parameter must be covered; ``partial=True`` leaves
    uncovered parameters symbolic.  Gates without symbolic params are
    shared, not copied — binding a 100-point sweep allocates only the
    rotated gates.
    """
    from repro.errors import QwertyTypeError
    from repro.parameters import ParamExpr, Parameter, is_symbolic

    if not partial:
        names = {
            key.name if isinstance(key, Parameter) else str(key)
            for key in env
        }
        missing = [
            p.name for p in circuit_parameters(circuit) if p.name not in names
        ]
        if missing:
            raise QwertyTypeError(
                f"no value bound for parameter(s) {', '.join(missing)}; "
                "pass partial=True to leave them symbolic"
            )

    def bind_param(value):
        if isinstance(value, Parameter):
            value = ParamExpr.of(value)
        if isinstance(value, ParamExpr):
            return value.subs(env) if partial else value.evaluate(env)
        return value

    bound = Circuit(
        circuit.num_qubits,
        circuit.num_bits,
        [],
        list(circuit.output_bits),
    )
    for inst in circuit.instructions:
        if isinstance(inst, CircuitGate) and inst.is_symbolic:
            inst = replace(
                inst, params=tuple(bind_param(p) for p in inst.params)
            )
        bound.add(inst)
    return bound
