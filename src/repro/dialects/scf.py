"""A sliver of MLIR's ``scf`` dialect: structured ``if`` with yields.

``scf.if`` appears when Qwerty code branches on a measurement result,
e.g. ``(pm.flip if m_std else id)`` in quantum teleportation
(paper Appendix C).  Each branch is a single-block region terminated by
``scf.yield``.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.core import Block, Operation, Region, Value
from repro.ir.module import Builder
from repro.ir.types import Type

IF = "scf.if"
YIELD = "scf.yield"


def if_op(
    builder: Builder,
    cond: Value,
    result_types: Sequence[Type],
) -> Operation:
    """Create an ``scf.if`` with two empty single-block regions."""
    then_region = Region([Block()])
    else_region = Region([Block()])
    return builder.create(
        IF, [cond], list(result_types), regions=[then_region, else_region]
    )


def yield_op(builder: Builder, values: Sequence[Value]) -> Operation:
    return builder.create(YIELD, list(values), [])


def then_block(op: Operation) -> Block:
    return op.regions[0].entry


def else_block(op: Operation) -> Block:
    return op.regions[1].entry
