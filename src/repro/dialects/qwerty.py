"""The Qwerty IR dialect (paper §5).

A quantum SSA dialect whose key ops are ``qbprep``, ``qbdiscard``,
``qbdiscardz``, ``qbtrans`` and ``qbmeas``, plus structural
pack/unpack ops and function-value ops (``func_const``, ``func_adj``,
``func_pred``, ``call``, ``call_indirect``, ``lambda``).  Bases appear
as compile-time attributes (the paper's BasisAttr et al.), reusing the
:mod:`repro.basis` data model.

Every builder accepts an optional ``loc`` — the :class:`SourceSpan` of
the Qwerty expression the op implements — defaulting to the builder's
current location (see :class:`repro.ir.module.Builder`), so lowering
code sets the location once per expression and every op it emits
inherits it.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.basis import Basis
from repro.basis.primitive import PrimitiveBasis
from repro.errors import LoweringError, SourceSpan
from repro.ir.core import Block, Operation, Region, Value
from repro.ir.module import Builder
from repro.ir.types import (
    BitBundleType,
    FunctionType,
    I1,
    QBundleType,
    QubitType,
    Type,
)

QBPREP = "qwerty.qbprep"
QBUNPREP = "qwerty.qbunprep"
QBDISCARD = "qwerty.qbdiscard"
QBDISCARDZ = "qwerty.qbdiscardz"
QBTRANS = "qwerty.qbtrans"
QBMEAS = "qwerty.qbmeas"
QBPACK = "qwerty.qbpack"
QBUNPACK = "qwerty.qbunpack"
BITPACK = "qwerty.bitpack"
BITUNPACK = "qwerty.bitunpack"
FUNC_CONST = "qwerty.func_const"
FUNC_ADJ = "qwerty.func_adj"
FUNC_PRED = "qwerty.func_pred"
CALL = "qwerty.call"
CALL_INDIRECT = "qwerty.call_indirect"
LAMBDA = "qwerty.lambda"
EMBED = "qwerty.embed"
RETURN = "func.return"

_QUBIT = QubitType()

Loc = Optional[SourceSpan]


def qbprep(
    builder: Builder,
    prim: PrimitiveBasis,
    eigenbits: Sequence[int],
    loc: Loc = None,
) -> Value:
    """Prepare a qbundle in the given primitive basis and eigenstate,
    e.g. ``qbprep std<PLUS>[3]`` prepares |000>."""
    bits = tuple(eigenbits)
    return builder.create(
        QBPREP,
        [],
        [QBundleType(len(bits))],
        {"prim": prim, "eigenbits": bits},
        loc=loc,
    ).result


def qbunprep(
    builder: Builder,
    qb: Value,
    prim: PrimitiveBasis,
    eigenbits: Sequence[int],
    loc: Loc = None,
) -> Operation:
    """Consume a qbundle known to be in the given eigenstate (the adjoint
    of ``qbprep``, used when reversing blocks that allocate ancillas)."""
    return builder.create(
        QBUNPREP,
        [qb],
        [],
        {"prim": prim, "eigenbits": tuple(eigenbits)},
        loc=loc,
    )


def qbdiscard(builder: Builder, qb: Value, loc: Loc = None) -> Operation:
    """Reset each qubit in the bundle and return it to the ancilla pool."""
    return builder.create(QBDISCARD, [qb], [], loc=loc)


def qbdiscardz(builder: Builder, qb: Value, loc: Loc = None) -> Operation:
    """Like ``qbdiscard`` but assumes the qubits are |0> (no reset)."""
    return builder.create(QBDISCARDZ, [qb], [], loc=loc)


def qbtrans(
    builder: Builder,
    qb: Value,
    b_in: Basis,
    b_out: Basis,
    phase_operands: Sequence[Value] = (),
    phase_slots: Sequence[tuple[str, int]] = (),
    loc: Loc = None,
) -> Value:
    """Perform the basis translation ``b_in >> b_out`` on a qbundle.

    Vector phases are normally concrete (stored on the basis attrs),
    but may also arrive as dynamic f64 ``phase_operands``; each operand
    is paired with a ``("in"|"out", vector_index)`` slot identifying the
    vector (counting across all literal vectors of that side) whose
    phase it supplies.  This models the ``phases(...)`` operand list in
    paper Figs. 4–5.
    """
    if len(phase_operands) != len(phase_slots):
        raise LoweringError("each dynamic phase needs a slot")
    n = b_in.dim
    return builder.create(
        QBTRANS,
        [qb, *phase_operands],
        [QBundleType(n)],
        {"bin": b_in, "bout": b_out, "phase_slots": tuple(phase_slots)},
        loc=loc,
    ).result


def qbmeas(builder: Builder, qb: Value, basis: Basis, loc: Loc = None) -> Value:
    """Measure the qbundle in ``basis``, yielding a bitbundle."""
    n = basis.dim
    return builder.create(
        QBMEAS, [qb], [BitBundleType(n)], {"basis": basis}, loc=loc
    ).result


def qbpack(builder: Builder, qubits: Sequence[Value], loc: Loc = None) -> Value:
    return builder.create(
        QBPACK, list(qubits), [QBundleType(len(qubits))], loc=loc
    ).result


def qbunpack(builder: Builder, qb: Value, loc: Loc = None) -> list[Value]:
    n = qb.type.n
    op = builder.create(QBUNPACK, [qb], [_QUBIT] * n, loc=loc)
    return list(op.results)


def bitpack(builder: Builder, bits: Sequence[Value], loc: Loc = None) -> Value:
    return builder.create(
        BITPACK, list(bits), [BitBundleType(len(bits))], loc=loc
    ).result


def bitunpack(builder: Builder, bb: Value, loc: Loc = None) -> list[Value]:
    n = bb.type.n
    op = builder.create(BITUNPACK, [bb], [I1] * n, loc=loc)
    return list(op.results)


def func_const(
    builder: Builder, callee: str, type: FunctionType, loc: Loc = None
) -> Value:
    return builder.create(
        FUNC_CONST, [], [type], {"callee": callee}, loc=loc
    ).result


def func_adj(builder: Builder, fn: Value, loc: Loc = None) -> Value:
    type = fn.type
    adj_type = FunctionType(type.outputs, type.inputs, type.reversible)
    return builder.create(FUNC_ADJ, [fn], [adj_type], loc=loc).result


def func_pred(
    builder: Builder, fn: Value, basis: Basis, loc: Loc = None
) -> Value:
    pred_type = predicated_type(fn.type, basis.dim)
    return builder.create(
        FUNC_PRED, [fn], [pred_type], {"basis": basis}, loc=loc
    ).result


def predicated_type(type: FunctionType, m: int) -> FunctionType:
    """The type of ``b & f``: qubit[M+N] rev-> qubit[M+N] (paper §2.2)."""
    if len(type.inputs) != 1 or len(type.outputs) != 1:
        raise LoweringError("only qbundle->qbundle functions can be predicated")
    (inp,) = type.inputs
    (out,) = type.outputs
    if not isinstance(inp, QBundleType) or not isinstance(out, QBundleType):
        raise LoweringError("only qbundle->qbundle functions can be predicated")
    return FunctionType(
        (QBundleType(m + inp.n),), (QBundleType(m + out.n),), type.reversible
    )


def call(
    builder: Builder,
    callee: str,
    args: Sequence[Value],
    result_types: Sequence[Type],
    adj: bool = False,
    pred: Optional[Basis] = None,
    loc: Loc = None,
) -> Operation:
    """Direct call, optionally marked adjoint or predicated
    (``call adj @f()``, ``call pred (b) @f()``)."""
    return builder.create(
        CALL,
        list(args),
        list(result_types),
        {"callee": callee, "adj": adj, "pred": pred},
        loc=loc,
    )


def call_indirect(
    builder: Builder, fn: Value, args: Sequence[Value], loc: Loc = None
) -> Operation:
    result_types = list(fn.type.outputs)
    return builder.create(CALL_INDIRECT, [fn, *args], result_types, loc=loc)


def lambda_op(builder: Builder, type: FunctionType, loc: Loc = None) -> Operation:
    """A lambda: a function value with an inline single-block body.

    The body block's arguments match the function inputs and must end
    with ``func.return``.
    """
    region = Region([Block(list(type.inputs))])
    return builder.create(LAMBDA, [], [type], regions=[region], loc=loc)


def embed(
    builder: Builder, qb: Value, network, kind: str, loc: Loc = None
) -> Value:
    """Apply a synthesized classical embedding (paper §6.4).

    ``kind`` is ``"xor"`` (the Bennett embedding ``|x>|y> ->
    |x>|y + f(x)>`` over n_in + n_out qubits) or ``"sign"``
    (``|x> -> (-1)^{f(x)} |x>`` over n_in qubits).  The logic network
    rides along as an attribute; gate synthesis happens during lowering
    to the QCircuit dialect.  Both embeddings are self-adjoint.
    """
    n = qb.type.n
    return builder.create(
        EMBED, [qb], [QBundleType(n)], {"network": network, "kind": kind},
        loc=loc,
    ).result


def return_op(
    builder: Builder, values: Sequence[Value], loc: Loc = None
) -> Operation:
    return builder.create(RETURN, list(values), [], loc=loc)


def is_quantum_op(op: Operation) -> bool:
    """Whether the op consumes or produces quantum values."""
    return any(v.type.is_quantum for v in op.operands) or any(
        r.type.is_quantum for r in op.results
    )
