"""A sliver of MLIR's ``arith`` dialect: float constants and arithmetic.

These ops exist to model *stationary* classical computation inside
quantum basic blocks (paper §5.2, Fig. 4): phase angles are computed by
``arith`` ops that stay in place when the quantum DAG around them is
adjointed or predicated.
"""

from __future__ import annotations

from repro.ir.core import Operation, Value
from repro.ir.module import Builder, ModuleOp
from repro.ir.rewrite import RewritePattern
from repro.ir.types import F64, I1

CONSTANT = "arith.constant"
ADDF = "arith.addf"
SUBF = "arith.subf"
MULF = "arith.mulf"
DIVF = "arith.divf"
NEGF = "arith.negf"

#: Classical ops are stationary under adjoint/predication (paper §5.2).
STATIONARY_OPS = {CONSTANT, ADDF, SUBF, MULF, DIVF, NEGF}


def constant(builder: Builder, value: float) -> Value:
    return builder.create(CONSTANT, [], [F64], {"value": float(value)}).result


def constant_i1(builder: Builder, value: bool) -> Value:
    return builder.create(CONSTANT, [], [I1], {"value": bool(value)}).result


def _binary(name: str, builder: Builder, lhs: Value, rhs: Value) -> Value:
    return builder.create(name, [lhs, rhs], [F64]).result


def addf(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return _binary(ADDF, builder, lhs, rhs)


def subf(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return _binary(SUBF, builder, lhs, rhs)


def mulf(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return _binary(MULF, builder, lhs, rhs)


def divf(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return _binary(DIVF, builder, lhs, rhs)


def negf(builder: Builder, operand: Value) -> Value:
    return builder.create(NEGF, [operand], [F64]).result


def const_value(value: Value) -> float | None:
    """The constant behind ``value``, or None if it is not a constant."""
    op = value.owner_op
    if op is not None and op.name == CONSTANT:
        return op.attrs["value"]
    return None


_FOLDS = {
    ADDF: lambda a, b: a + b,
    SUBF: lambda a, b: a - b,
    MULF: lambda a, b: a * b,
    DIVF: lambda a, b: a / b,
}


def _fold_binary(op: Operation, module: ModuleOp) -> bool:
    lhs = const_value(op.operands[0])
    rhs = const_value(op.operands[1])
    if lhs is None or rhs is None:
        return False
    if op.name == DIVF and rhs == 0.0:
        return False
    builder = Builder.before(op)
    folded = constant(builder, _FOLDS[op.name](lhs, rhs))
    op.result.replace_all_uses_with(folded)
    op.erase()
    return True


def _fold_neg(op: Operation, module: ModuleOp) -> bool:
    operand = const_value(op.operands[0])
    if operand is None:
        return False
    builder = Builder.before(op)
    folded = constant(builder, -operand)
    op.result.replace_all_uses_with(folded)
    op.erase()
    return True


CANONICALIZATION_PATTERNS = [
    RewritePattern("arith.fold-binary", (ADDF, SUBF, MULF, DIVF), _fold_binary),
    RewritePattern("arith.fold-neg", (NEGF,), _fold_neg),
]
