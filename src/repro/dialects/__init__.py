"""IR dialects: ``arith``/``scf`` (MLIR built-ins), ``qwerty`` (paper §5),
and ``qcirc`` (the QCircuit dataflow dialect, paper §6)."""
